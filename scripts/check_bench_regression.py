#!/usr/bin/env python
"""Benchmark regression guard for the fleet fast path.

Measures three throughput numbers fresh on the current checkout and
compares each against the best *committed* baseline in
``BENCH_fleet.json``:

* **fleet_throughput** — ``run_fleet_point`` ranks/sec at 50k modules
  (the vectorised simulation fast path);
* **batched_sweep** — the config-batched sweep's speedup over the
  sequential per-config loop at 32 budgets × 50k modules (the batched
  evaluation layer), which must also clear its 3× acceptance floor
  regardless of history;
* **hetero_fleet** — mixed CPU+GPU fleet evaluation rate
  (modules × schemes per second) at 16k modules, guarding the typed
  per-device scatter paths against creep the uniform-fleet guards
  cannot see;
* **numa_procshard** — the topology-pinned process-sharded executor's
  ranks/sec on the (8, 1M) plane (node-local plane segments + CPU-affine
  workers), ratcheted against committed ``numa_procshard`` baselines so
  the locality layer cannot silently rot;
* **service_qps** — allocation-service round trips per second against a
  hot 100k-module fleet (committed baselines in ``BENCH_service.json``),
  which must also clear its 1,000 qps acceptance floor regardless of
  history.

A fresh number more than 25 % below its best committed baseline fails
the check.

It also audits the *latest committed* ``fleet_throughput`` record for a
cache cliff: scaling the fleet up must not cost throughput, so each
point's ranks/sec has to stay within :data:`MONO_TOLERANCE` of the best
rate at any smaller size in the same record.  The 50k-point guard above
cannot see this — a checkout whose 50k rate is fine but whose 1M rate
collapses (the working set falling out of cache) passed it silently.
Only the newest record is audited because older ones legitimately
predate the sharded executor and contain the cliff.  Wall-clock baselines are machine-relative, so the guard is
skippable for underpowered runners: set ``REPRO_BENCH_SKIP=1`` (CI wires
this to the ``skip-bench-guard`` PR label).

The guard never writes to ``BENCH_fleet.json`` — committed baselines
only change when the benchmark suite (``benchmarks/test_fleet.py``)
appends a record and that file is committed.

Exit status 0 = clean (or skipped), 1 = regression.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from time import perf_counter

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

BENCH_FILE = REPO_ROOT / "BENCH_fleet.json"
SERVICE_BENCH_FILE = REPO_ROOT / "BENCH_service.json"

#: Allowed fractional drop from the best committed baseline.
TOLERANCE = 0.25

#: Both measurements run at this fleet size: large enough that the
#: vectorised paths dominate, small enough for a CI smoke job.
GUARD_MODULES = 50_000

#: The batched-sweep acceptance workload (mirrors
#: ``benchmarks/test_fleet.py::test_batched_sweep_speedup_and_bit_identity``).
SWEEP_BUDGETS = 32
SWEEP_APP = "bt"
SWEEP_CM_RANGE_W = (52.0, 72.0)
SWEEP_ITERS = 20
MIN_SWEEP_SPEEDUP = 3.0

#: The mixed-fleet guard workload (mirrors
#: ``benchmarks/test_fleet.py::test_hetero_fleet_throughput_recorded``).
HETERO_MODULES = 16_384
HETERO_REPEATS = 3
MIN_HETERO_RATE = 40_000.0

#: The topology-pinned executor guard workload (mirrors
#: ``benchmarks/test_fleet.py::test_numa_procshard_throughput_recorded``).
#: Ratchet-only: the absolute rate is machine-relative, so the floor is
#: the best committed baseline less TOLERANCE, never a fixed number.
NUMA_MODULES = 1_000_000
NUMA_CONFIGS = 8
NUMA_ITERS = 10
NUMA_WORKERS = 4
NUMA_REPEATS = 2

#: The service-daemon guard workload (mirrors
#: ``benchmarks/test_service.py::test_service_allocation_qps_recorded``,
#: at a shorter duration — the guard is a smoke check, not the bench).
SERVICE_MODULES = 100_000
SERVICE_LOAD_SECONDS = 2.0
SERVICE_CONCURRENCY = 4
MIN_SERVICE_QPS = 1_000.0

REPEATS = 2

#: The fleet-rate measurement is cheap (~0.3 s per run at 50k modules),
#: so it takes more repeats than the sweep: on a shared runner a
#: best-of-2 can land 25-30% under the quiet-box rate the committed
#: baseline was recorded at, tripping the ratchet on noise alone.
FLEET_REPEATS = 4

#: Allowed fractional dip below the best smaller-fleet rate inside one
#: committed ``fleet_throughput`` record (the cache-cliff audit).  The
#: mid-size points run L3-resident while the million-module point
#: streams from DRAM, so some dip is physical on any single-socket
#: runner; the sharded executor holds the measured transition to ~0.48x
#: of peak (best-of-2 points), while the unsharded path collapsed to
#: ~0.38x — the tolerance's floor (0.45x of peak) sits between the two.
MONO_TOLERANCE = 0.55


def monotonic_violations(points, tolerance: float = MONO_TOLERANCE) -> list[str]:
    """Cache-cliff audit of one ``fleet_throughput`` record's points.

    Sorted by fleet size, every point's ranks/sec must stay within
    ``tolerance`` of the best rate observed at any *smaller* size —
    throughput may keep improving with scale, but a larger fleet must
    never fall off a cliff the small-fleet guard cannot see.  Returns
    human-readable violation strings (empty = clean); malformed points
    are reported rather than skipped so a schema drift cannot silently
    disable the audit.
    """
    try:
        pts = sorted(
            ((int(p["n_modules"]), float(p["ranks_per_sec"])) for p in points),
            key=lambda p: p[0],
        )
    except (KeyError, TypeError, ValueError) as exc:
        return [f"fleet_throughput record is malformed: {exc!r}"]
    violations: list[str] = []
    best = best_n = None
    for n, rate in pts:
        if best is not None and rate < best * (1.0 - tolerance):
            violations.append(
                f"fleet throughput cliff: {rate:,.0f} ranks/s at {n:,} "
                f"modules is >{tolerance:.0%} below {best:,.0f} at "
                f"{best_n:,} modules"
            )
        if best is None or rate > best:
            best, best_n = rate, n
    return violations


def _latest_fleet_points() -> list[dict]:
    """Points of the newest committed ``fleet_throughput`` record
    (empty when the file is missing, corrupt, or has no such record)."""
    if not BENCH_FILE.exists():
        return []
    try:
        runs = json.loads(BENCH_FILE.read_text())["runs"]
    except (json.JSONDecodeError, KeyError, TypeError):
        return []
    for r in reversed(runs):
        if isinstance(r, dict) and r.get("kind") == "fleet_throughput":
            return list(r.get("points", []))
    return []


def _baselines() -> tuple[list[float], list[float], list[float], list[float]]:
    """(fleet ranks/sec at GUARD_MODULES, batched-sweep speedups,
    hetero modules/sec at HETERO_MODULES, pinned procshard ranks/sec at
    NUMA_MODULES) from every committed record; corrupt or missing files
    yield no baselines (first run on a branch must still pass the
    absolute floors)."""
    if not BENCH_FILE.exists():
        return [], [], [], []
    try:
        runs = json.loads(BENCH_FILE.read_text())["runs"]
    except (json.JSONDecodeError, KeyError, TypeError):
        return [], [], [], []
    fleet = [
        float(p["ranks_per_sec"])
        for r in runs
        if r.get("kind") == "fleet_throughput"
        for p in r.get("points", [])
        if p.get("n_modules") == GUARD_MODULES
    ]
    sweeps = [
        float(r["speedup"]) for r in runs if r.get("kind") == "batched_sweep"
    ]
    hetero = [
        float(r["modules_per_sec"])
        for r in runs
        if r.get("kind") == "hetero_fleet"
        and r.get("n_modules") == HETERO_MODULES
    ]
    numa = [
        float(r["pinned_ranks_per_sec"])
        for r in runs
        if r.get("kind") == "numa_procshard"
        and r.get("n_modules") == NUMA_MODULES
    ]
    return fleet, sweeps, hetero, numa


def _service_baselines() -> list[float]:
    """Committed ``service_qps`` baselines at SERVICE_MODULES from
    ``BENCH_service.json`` (missing/corrupt file yields none)."""
    if not SERVICE_BENCH_FILE.exists():
        return []
    try:
        runs = json.loads(SERVICE_BENCH_FILE.read_text())["runs"]
    except (json.JSONDecodeError, KeyError, TypeError):
        return []
    return [
        float(r["qps"])
        for r in runs
        if isinstance(r, dict)
        and r.get("kind") == "service_qps"
        and r.get("n_modules") == SERVICE_MODULES
    ]


def _fresh_service_qps() -> float:
    """Best-of-2 allocation qps against a hot SERVICE_MODULES fleet,
    measured through the real daemon + socket + loadgen stack."""
    from repro.service.api import FleetSpec
    from repro.service.daemon import BackgroundServer
    from repro.service.loadgen import run_load

    with BackgroundServer() as server:
        server.service.open_fleet(
            FleetSpec(system="ha8k", n_modules=SERVICE_MODULES, fleet_id="guard")
        )
        kwargs = dict(
            fleet_id="guard",
            concurrency=SERVICE_CONCURRENCY,
            budgets_w=(80.0 * SERVICE_MODULES,),
        )
        run_load(server.address, duration_s=0.5, **kwargs)  # warm
        reports = [
            run_load(server.address, duration_s=SERVICE_LOAD_SECONDS, **kwargs)
            for _ in range(2)
        ]
    for r in reports:
        if r.n_error:
            raise RuntimeError(f"service guard saw protocol errors: {r.summary()}")
    return max(r.qps for r in reports)


def _fresh_fleet_rate() -> float:
    """Best-of-N ranks/sec of the fleet fast path at GUARD_MODULES."""
    from repro.experiments.fleet import run_fleet_point

    run_fleet_point(GUARD_MODULES)  # warm system/PVT caches and pages
    return max(
        run_fleet_point(GUARD_MODULES).ranks_per_sec
        for _ in range(FLEET_REPEATS)
    )


def _fresh_hetero_rate() -> float:
    """Best-of-N mixed-fleet evaluation rate (modules x schemes / sec)."""
    from repro.experiments.hetero_fleet import HETERO_SCHEMES, run_hetero_point

    run_hetero_point(HETERO_MODULES)  # warm system/PVT caches and pages
    wall = min(
        run_hetero_point(HETERO_MODULES).wall_s for _ in range(HETERO_REPEATS)
    )
    return HETERO_MODULES * len(HETERO_SCHEMES) / wall


def _fresh_numa_rate() -> float:
    """Best-of-N pinned process-sharded ranks/sec on the (NUMA_CONFIGS,
    NUMA_MODULES) plane — the topology-pinned executor's headline."""
    import numpy as np

    from repro.simmpi import procshard
    from repro.simmpi.fastpath import BspProgram, VAllreduce, VCompute, VLoop
    from repro.simmpi.sharding import plan_shards
    from repro.util.topology import cpu_budget

    program = BspProgram(
        NUMA_MODULES,
        (VLoop((VCompute(1.0), VAllreduce(64.0)), iters=NUMA_ITERS),),
    )
    rng = np.random.default_rng(11)
    rates = 1.0 + rng.uniform(0.0, 2.0, (NUMA_CONFIGS, NUMA_MODULES))
    topology = cpu_budget().topology
    plan = plan_shards(
        NUMA_CONFIGS, NUMA_MODULES, shard_workers=NUMA_WORKERS,
        topology=topology,
    )
    procshard.reset_pool()
    try:
        walls = []
        for _ in range(NUMA_REPEATS + 1):  # first run warms the pool
            t0 = perf_counter()
            procshard.run_fast_procshard(
                program, rates, plan=plan, pin=True, topology=topology
            )
            walls.append(perf_counter() - t0)
        return NUMA_CONFIGS * NUMA_MODULES / min(walls[1:])
    finally:
        procshard.reset_pool()


def _fresh_sweep_speedup() -> float:
    """Min-of-N walls for the batched vs sequential engine sweep."""
    import numpy as np

    from repro.exec import ExperimentEngine, RunKey
    from repro.experiments.common import DEFAULT_SEED

    lo, hi = SWEEP_CM_RANGE_W
    keys = [
        RunKey(
            system="ha8k",
            n_modules=GUARD_MODULES,
            seed=DEFAULT_SEED,
            app=SWEEP_APP,
            scheme="vafsor",
            budget_w=float(cm) * GUARD_MODULES,
            n_iters=SWEEP_ITERS,
        )
        for cm in np.linspace(lo, hi, SWEEP_BUDGETS)
    ]
    ExperimentEngine(jobs=1, batch=True).submit_sweep(keys)  # warm
    walls: dict[bool, list[float]] = {False: [], True: []}
    for _ in range(REPEATS):
        for batch in (False, True):
            engine = ExperimentEngine(jobs=1, batch=batch)
            t0 = perf_counter()
            engine.submit_sweep(keys)
            walls[batch].append(perf_counter() - t0)
    return min(walls[False]) / min(walls[True])


def main() -> int:
    if os.environ.get("REPRO_BENCH_SKIP"):
        print("bench guard: skipped (REPRO_BENCH_SKIP set)")
        return 0

    fleet_base, sweep_base, hetero_base, numa_base = _baselines()
    failures: list[str] = []

    latest = _latest_fleet_points()
    if latest:
        cliffs = monotonic_violations(latest)
        sizes = "/".join(f"{p.get('n_modules', 0) // 1000}k" for p in latest)
        print(
            f"fleet scaling audit ({sizes}): "
            + ("OK" if not cliffs else f"{len(cliffs)} cliff(s)")
        )
        failures.extend(cliffs)

    rate = _fresh_fleet_rate()
    if fleet_base:
        best = max(fleet_base)
        floor = best * (1.0 - TOLERANCE)
        print(
            f"fleet throughput @ {GUARD_MODULES // 1000}k: "
            f"{rate:,.0f} ranks/s (best committed {best:,.0f}, "
            f"floor {floor:,.0f})"
        )
        if rate < floor:
            failures.append(
                f"fleet throughput regressed >{TOLERANCE:.0%}: "
                f"{rate:,.0f} ranks/s vs best committed {best:,.0f}"
            )
    else:
        print(
            f"fleet throughput @ {GUARD_MODULES // 1000}k: "
            f"{rate:,.0f} ranks/s (no committed baseline)"
        )

    speedup = _fresh_sweep_speedup()
    floors = [MIN_SWEEP_SPEEDUP]
    if sweep_base:
        floors.append(max(sweep_base) * (1.0 - TOLERANCE))
    floor = max(floors)
    print(
        f"batched sweep @ {SWEEP_BUDGETS} budgets x "
        f"{GUARD_MODULES // 1000}k: {speedup:.2f}x sequential "
        f"(floor {floor:.2f}x)"
    )
    if speedup < floor:
        failures.append(
            f"batched-sweep speedup regressed: {speedup:.2f}x "
            f"vs floor {floor:.2f}x"
        )

    hetero_rate = _fresh_hetero_rate()
    floors = [MIN_HETERO_RATE]
    if hetero_base:
        floors.append(max(hetero_base) * (1.0 - TOLERANCE))
    floor = max(floors)
    print(
        f"hetero fleet @ {HETERO_MODULES // 1000}k modules: "
        f"{hetero_rate:,.0f} module-schemes/s (floor {floor:,.0f})"
    )
    if hetero_rate < floor:
        failures.append(
            f"mixed-fleet evaluation regressed: {hetero_rate:,.0f} "
            f"module-schemes/s vs floor {floor:,.0f}"
        )

    numa_rate = _fresh_numa_rate()
    if numa_base:
        best = max(numa_base)
        floor = best * (1.0 - TOLERANCE)
        print(
            f"numa procshard @ {NUMA_CONFIGS} x {NUMA_MODULES // 1000}k "
            f"pinned: {numa_rate:,.0f} ranks/s "
            f"(best committed {best:,.0f}, floor {floor:,.0f})"
        )
        if numa_rate < floor:
            failures.append(
                f"topology-pinned procshard regressed >{TOLERANCE:.0%}: "
                f"{numa_rate:,.0f} ranks/s vs best committed {best:,.0f}"
            )
    else:
        print(
            f"numa procshard @ {NUMA_CONFIGS} x {NUMA_MODULES // 1000}k "
            f"pinned: {numa_rate:,.0f} ranks/s (no committed baseline)"
        )

    qps = _fresh_service_qps()
    floors = [MIN_SERVICE_QPS]
    service_base = _service_baselines()
    if service_base:
        floors.append(max(service_base) * (1.0 - TOLERANCE))
    floor = max(floors)
    print(
        f"service qps @ {SERVICE_MODULES // 1000}k modules: "
        f"{qps:,.0f} allocations/s (floor {floor:,.0f})"
    )
    if qps < floor:
        failures.append(
            f"service throughput regressed: {qps:,.0f} allocations/s "
            f"vs floor {floor:,.0f}"
        )

    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        return 1
    print("bench guard: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
