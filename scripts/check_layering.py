#!/usr/bin/env python
"""Import-layering contract check (see docs/ARCHITECTURE.md).

The array-first refactor depends on a one-way flow between layers:

    hardware  ->  (errors, util)                    ground truth; imports nothing above
    measurement, control, simmpi                    substrate; hardware only
    core, cluster, apps                             budgeting framework
    exec, service, experiments, cli                 orchestration; may import anything
    telemetry ->  (errors, util)                    pure leaf; importable from anywhere

This script parses every module under ``src/repro`` with :mod:`ast`
(no imports are executed) and fails if any package gains an import edge
not present in the allowlist below.  The allowlist is a *ratchet*: it
encodes the graph as it stands — including two grandfathered cycles
(``cluster <-> core`` and ``apps <-> cluster``, both mediated through
late imports and type-only uses) — and edges may be removed as layers
untangle, but adding one requires editing this file, which is the
point: layering violations become a reviewed decision, not drift.

The hard rule the contract exists to protect: ``hardware`` (the ground
truth the schemes are only allowed to observe through measurement) must
never import ``core`` or ``experiments``.

Exit status 0 = clean, 1 = violations (listed on stderr).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"

#: source layer -> layers it may import.  A "layer" is a top-level
#: subpackage of repro, or the stem of a top-level module ("errors",
#: "cli"); the package's own __init__/__main__ are layer "repro".
ALLOWED: dict[str, set[str]] = {
    # Ground truth: the physical model.  NOTHING from the budgeting
    # framework or above — schemes may only learn about hardware through
    # measurement (the PVT) or declared oracle access.
    "hardware": {"errors", "telemetry", "util"},
    # Substrate over hardware.
    "measurement": {"errors", "hardware", "telemetry"},
    "control": {"errors", "hardware", "telemetry"},
    "simmpi": {"errors", "telemetry", "util"},
    # Budgeting framework.  cluster <-> core and apps <-> cluster are
    # grandfathered cycles (ratchet: remove when untangled, never add).
    "apps": {"cluster", "errors", "hardware", "simmpi", "telemetry"},
    "cluster": {
        "apps",
        "control",
        "core",
        "errors",
        "hardware",
        "measurement",
        "telemetry",
        "util",
    },
    "core": {
        "apps",
        "cluster",
        "control",
        "errors",
        "hardware",
        "measurement",
        "simmpi",
        "telemetry",
        "util",
    },
    # Orchestration: may reach down into everything.
    "exec": {
        "apps",
        "cluster",
        "core",
        "errors",
        "hardware",
        "simmpi",
        "telemetry",
        "util",
    },
    # The allocation service: a front-end over exec/core — hosts fleets,
    # serves typed requests.  Like exec it may reach down, never across
    # into experiments/cli (those consume it).
    "service": {
        "apps",
        "cluster",
        "core",
        "errors",
        "exec",
        "hardware",
        "telemetry",
        "util",
    },
    "experiments": {
        "apps",
        "cluster",
        "control",
        "core",
        "errors",
        "exec",
        "hardware",
        "measurement",
        "service",
        "telemetry",
        "util",
    },
    "cli": {"experiments", "errors", "service", "telemetry", "util", "repro"},
    # Leaves.  telemetry is observation-only: any layer may import it,
    # but it must never import the things it observes (see FORBIDDEN).
    "errors": set(),
    "util": {"errors"},
    "telemetry": {"errors", "util"},
    # The package facade re-exports the public API.
    "repro": {
        "apps",
        "cli",
        "cluster",
        "core",
        "errors",
        "exec",
        "hardware",
        "service",
        "telemetry",
        "util",
    },
}

#: Intra-``hardware`` stack: ``devices.py`` (device types / the
#: DeviceMap) sits at the *top* of the hardware layer, built on these
#: foundation modules — none of them may import it back.  A reverse
#: edge would make the generic physics depend on the concrete catalogue.
DEVICE_FOUNDATION = ("dvfs", "variability", "microarch", "power_model")

#: Concrete device names (ARCHITECTURE.md invariant 10): no module below
#: ``experiments`` may branch on — or even mention — one.  Heterogeneity
#: flows exclusively through DeviceType parameters and the DeviceMap
#: index; a name literal in the core would be a hidden device branch.
DEVICE_NAME_LITERALS = ("cpu-ivy-bridge-e5-2697v2", "gpu-v100-sxm2")

#: Layers allowed to name concrete devices (plus hardware/devices.py
#: itself, which defines them).
DEVICE_NAME_LAYERS = {"experiments", "cli"}

#: The edges this contract was written to forbid — reported with a
#: louder message than a plain allowlist miss.
FORBIDDEN: set[tuple[str, str]] = {
    ("hardware", "core"),
    ("hardware", "experiments"),
    ("hardware", "cluster"),
    ("hardware", "apps"),
    # Telemetry observes every layer, so it must depend on none of them —
    # otherwise enabling it could change what it measures.
    ("telemetry", "core"),
    ("telemetry", "exec"),
    ("telemetry", "experiments"),
}


def _layer_of(path: Path) -> str:
    rel = path.relative_to(PACKAGE_ROOT)
    if len(rel.parts) > 1:
        return rel.parts[0]
    if rel.stem in ("__init__", "__main__"):
        return "repro"
    return rel.stem


def _target_layer(module: str) -> str | None:
    """Layer a ``repro[.x[.y]]`` import lands in; None for third-party."""
    if module != "repro" and not module.startswith("repro."):
        return None
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else "repro"


def collect_edges() -> list[tuple[str, str, str, int]]:
    """All intra-repro import edges: (src_layer, dst_layer, file, lineno)."""
    edges = []
    for py in sorted(PACKAGE_ROOT.rglob("*.py")):
        src = _layer_of(py)
        tree = ast.parse(py.read_text(), filename=str(py))
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                targets = [(alias.name, node.lineno) for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                targets = [(node.module, node.lineno)]
            else:
                continue
            for module, lineno in targets:
                dst = _target_layer(module)
                if dst is not None and dst != src:
                    edges.append((src, dst, str(py.relative_to(REPO_ROOT)), lineno))
    return edges


def check_device_rules() -> list[str]:
    """Invariant 10: device types stay atop hardware, names stay out of
    the core.

    Two rules: (a) the hardware foundation modules
    (:data:`DEVICE_FOUNDATION`) must not import
    ``repro.hardware.devices``; (b) concrete device-name string literals
    appear only in ``hardware/devices.py`` and the layers in
    :data:`DEVICE_NAME_LAYERS`.  Docstrings are exempt — *mentioning* a
    device in prose is documentation, not a branch.
    """
    violations = []
    devices_py = PACKAGE_ROOT / "hardware" / "devices.py"
    for py in sorted(PACKAGE_ROOT.rglob("*.py")):
        layer = _layer_of(py)
        tree = ast.parse(py.read_text(), filename=str(py))
        rel = str(py.relative_to(REPO_ROOT))
        if layer == "hardware" and py.stem in DEVICE_FOUNDATION:
            for node in ast.walk(tree):
                modules = []
                if isinstance(node, ast.Import):
                    modules = [(a.name, node.lineno) for a in node.names]
                elif isinstance(node, ast.ImportFrom) and node.module:
                    modules = [(node.module, node.lineno)]
                for module, lineno in modules:
                    if module.startswith("repro.hardware.devices"):
                        violations.append(
                            f"{rel}:{lineno}: hardware foundation module "
                            f"{py.stem!r} imports hardware.devices — device "
                            "types build ON the foundation, never the reverse"
                        )
        if py == devices_py or layer in DEVICE_NAME_LAYERS:
            continue
        docstrings = set()
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                body = node.body
                if (
                    body
                    and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)
                ):
                    docstrings.add(id(body[0].value))
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and id(node) not in docstrings
            ):
                for name in DEVICE_NAME_LITERALS:
                    if name in node.value:
                        violations.append(
                            f"{rel}:{node.lineno}: concrete device name "
                            f"{name!r} below the experiment layer — "
                            "invariant 10: heterogeneity flows through "
                            "DeviceType parameters, never name branches"
                        )
    return violations


def check() -> list[str]:
    """Return a list of violation messages (empty = contract holds)."""
    violations = check_device_rules()
    for src, dst, path, lineno in collect_edges():
        if src not in ALLOWED:
            violations.append(
                f"{path}:{lineno}: unknown layer {src!r} — register it in "
                "scripts/check_layering.py"
            )
        elif dst not in ALLOWED[src]:
            note = (
                "FORBIDDEN by the layering contract (ground truth must not "
                "import the budgeting framework; telemetry must not import "
                "what it observes)"
                if (src, dst) in FORBIDDEN
                else "not in the allowlist — layering is a ratchet; adding an "
                "edge requires editing scripts/check_layering.py"
            )
            violations.append(f"{path}:{lineno}: {src} -> {dst}: {note}")
    return violations


def main() -> int:
    violations = check()
    if violations:
        print("import-layering contract violated:", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print(f"layering OK ({len(collect_edges())} intra-package edges checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
