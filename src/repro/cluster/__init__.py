"""Cluster substrate: systems, configurations, topology, and scheduling.

* :mod:`repro.cluster.system` — a :class:`System` bundles a
  :class:`~repro.hardware.ModuleArray` with its measurement and control
  capabilities and a deterministic RNG namespace.
* :mod:`repro.cluster.configs` — factories for the paper's four systems
  (Table 2): Cab, Vulcan, Teller and HA8K.
* :mod:`repro.cluster.topology` — rank neighbourhood patterns used by
  the application communication models (ring, 2-D/3-D torus).
* :mod:`repro.cluster.scheduler` — a job scheduler that hands module
  allocations to applications (the budgeting framework takes the
  scheduler's module list as input, Fig 4).
"""

from repro.cluster.configs import SYSTEM_FACTORIES, build_hetero_system, build_system
from repro.cluster.scheduler import Allocation, JobScheduler
from repro.cluster.system import System
from repro.cluster.topology import (
    grid_dims,
    ring_neighbors,
    torus_neighbors,
)

__all__ = [
    "System",
    "build_system",
    "build_hetero_system",
    "SYSTEM_FACTORIES",
    "JobScheduler",
    "Allocation",
    "ring_neighbors",
    "torus_neighbors",
    "grid_dims",
]
