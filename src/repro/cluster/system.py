"""The :class:`System` — one production machine from the paper's Table 2.

A system bundles:

* the hardware ground truth (a :class:`~repro.hardware.ModuleArray` with
  sampled manufacturing variation);
* its power measurement capability (RAPL / PowerInsight / EMON);
* its actuation capability (RAPL capping, cpufreq), where supported;
* a namespaced :class:`~repro.util.RngFactory` so every stochastic
  element is reproducible from the system's seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CappingUnsupportedError, ConfigurationError
from repro.control.cpufreq import CpuFreq
from repro.control.rapl_cap import RaplCapController
from repro.hardware.microarch import Microarchitecture
from repro.hardware.module import ModuleArray
from repro.hardware.variability import sample_variation
from repro.measurement.base import PowerMeter
from repro.measurement.emon import EmonMeter
from repro.measurement.powerinsight import PowerInsightMeter
from repro.measurement.rapl import RaplMeter
from repro.util.rng import RngFactory

__all__ = ["System"]

_METER_KINDS = ("rapl", "powerinsight", "emon")


@dataclass
class System:
    """One supercomputer: hardware, measurement, control, determinism.

    Build instances through :func:`repro.cluster.build_system` for the
    paper's four machines, or construct directly for synthetic studies.

    Attributes
    ----------
    name:
        Site/system name ("cab", "vulcan", "teller", "ha8k", ...).
    arch:
        The shared microarchitecture.
    modules:
        Ground-truth module array (variation already sampled).
    procs_per_node:
        Sockets per node (Table 2 "Procs. Per Node").
    meter_kind:
        Which Table 1 technique the site supports.
    rng:
        Factory namespaced to this system.
    dram_measurable:
        False on Cab, where "DRAM power measurement was not available
        due to BIOS restrictions".
    """

    name: str
    arch: Microarchitecture
    modules: ModuleArray
    procs_per_node: int
    meter_kind: str
    rng: RngFactory
    dram_measurable: bool = True

    def __post_init__(self) -> None:
        if self.meter_kind not in _METER_KINDS:
            raise ConfigurationError(
                f"meter_kind must be one of {_METER_KINDS}, got {self.meter_kind!r}"
            )
        if self.procs_per_node <= 0:
            raise ConfigurationError("procs_per_node must be positive")

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        name: str,
        arch: Microarchitecture,
        n_modules: int,
        *,
        procs_per_node: int = 1,
        meter_kind: str = "rapl",
        seed: int = 0,
        dram_measurable: bool = True,
        variation_group_size: int | None = None,
    ) -> "System":
        """Sample manufacturing variation and assemble a system.

        ``variation_group_size`` sets how many modules share the
        correlated part of their leakage draw (defaults to
        ``procs_per_node``; BG/Q uses 32 — the compute cards of one node
        board share DCAs and a thermal environment).
        """
        rng = RngFactory(seed).child(f"system/{name}")
        variation = sample_variation(
            arch.variation,
            n_modules,
            rng.rng("variability"),
            procs_per_node=(
                variation_group_size
                if variation_group_size is not None
                else procs_per_node
            ),
        )
        return cls(
            name=name,
            arch=arch,
            modules=ModuleArray(arch, variation),
            procs_per_node=procs_per_node,
            meter_kind=meter_kind,
            rng=rng,
            dram_measurable=dram_measurable,
        )

    # -- introspection ----------------------------------------------------------

    @property
    def n_modules(self) -> int:
        """Total modules (CPU socket + DRAM) in the system."""
        return self.modules.n_modules

    @property
    def n_nodes(self) -> int:
        """Total nodes."""
        return self.n_modules // self.procs_per_node

    @property
    def device_map(self):
        """Per-module device assignment (``None`` on homogeneous fleets)."""
        return self.modules.device_map

    @property
    def is_mixed(self) -> bool:
        """True when the fleet spans more than one device type."""
        return self.modules.is_mixed

    @property
    def supports_capping(self) -> bool:
        """Whether hardware power caps can be enforced here.

        A mixed fleet is cappable when every device type present declares
        a cap mechanism (RAPL, NVML, ...); the homogeneous check is the
        paper's Table 1 rule, unchanged.
        """
        if self.modules.is_mixed:
            return all(
                dt.supports_capping for _pos, dt, _sel in self.device_map.groups()
            )
        return self.arch.supports_capping and self.meter_kind == "rapl"

    def subset(self, indices: np.ndarray | list[int]) -> "System":
        """A system view restricted to the given modules (a job allocation).

        Contiguous ascending allocations are zero-copy: the subset's
        :class:`~repro.hardware.ModuleArray` shares the parent's
        variation buffers (array slicing), so per-job views at fleet
        scale allocate nothing.  Scattered allocations copy.
        """
        return System(
            name=self.name,
            arch=self.arch,
            modules=self.modules.take(indices),
            procs_per_node=self.procs_per_node,
            meter_kind=self.meter_kind,
            rng=self.rng,
            dram_measurable=self.dram_measurable,
        )

    # -- capability factories ----------------------------------------------------

    def meter(self, *, noisy: bool = True) -> PowerMeter:
        """Instantiate this system's power meter (Table 1 technique)."""
        rng = self.rng.rng("meter") if noisy else None
        if self.meter_kind == "rapl":
            return RaplMeter(self.modules, rng=rng)
        if self.meter_kind == "powerinsight":
            return PowerInsightMeter(self.modules, rng=rng)
        return EmonMeter(self.modules, rng=rng)

    def cap_controller(self, *, ideal: bool = False) -> RaplCapController:
        """RAPL capping controller (raises on non-capping systems)."""
        if not self.supports_capping:
            raise CappingUnsupportedError(
                f"system {self.name!r} cannot enforce power caps"
            )
        if ideal:
            return RaplCapController(
                self.modules, rng=None, dither_loss_frac=0.0, guardband_frac=0.0
            )
        return RaplCapController(self.modules, rng=self.rng.rng("rapl-dither"))

    def cpufreq(self) -> CpuFreq:
        """Frequency-selection interface (cpufrequtils)."""
        return CpuFreq(self.modules)
