"""Synthetic job-stream generation for resource-manager studies.

Throughput experiments need job arrival streams with controllable load.
This module draws them reproducibly: Poisson arrivals, log-uniform job
widths snapped to node multiples, and applications sampled from the
benchmark registry — the standard synthetic-workload recipe of the
batch-scheduling literature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.registry import APPS, get_app
from repro.core.resource_manager import JobRequest
from repro.errors import ConfigurationError

__all__ = ["WorkloadSpec", "generate_workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic job stream.

    Attributes
    ----------
    n_jobs:
        Number of jobs to draw.
    mean_interarrival_s:
        Mean of the exponential inter-arrival distribution.
    min_modules / max_modules:
        Job width bounds (log-uniform between them).
    width_quantum:
        Widths are rounded to multiples of this (node granularity).
    apps:
        Application names to sample uniformly from (defaults to the
        multizone/synchronised subset that dominates real queues).
    """

    n_jobs: int
    mean_interarrival_s: float
    min_modules: int
    max_modules: int
    width_quantum: int = 8
    apps: tuple[str, ...] = ("mhd", "bt", "sp", "mvmc")

    def __post_init__(self) -> None:
        if self.n_jobs <= 0:
            raise ConfigurationError("n_jobs must be positive")
        if self.mean_interarrival_s < 0:
            raise ConfigurationError("mean_interarrival_s must be non-negative")
        if not (0 < self.min_modules <= self.max_modules):
            raise ConfigurationError("need 0 < min_modules <= max_modules")
        if self.width_quantum <= 0:
            raise ConfigurationError("width_quantum must be positive")
        unknown = [a for a in self.apps if a not in APPS]
        if unknown:
            raise ConfigurationError(f"unknown applications: {unknown}")
        if not self.apps:
            raise ConfigurationError("apps must be non-empty")


def generate_workload(
    spec: WorkloadSpec, rng: np.random.Generator
) -> list[JobRequest]:
    """Draw a job stream from ``spec`` (deterministic in ``rng``)."""
    arrivals = np.cumsum(rng.exponential(spec.mean_interarrival_s, spec.n_jobs))
    lo, hi = np.log(spec.min_modules), np.log(spec.max_modules)
    widths = np.exp(rng.uniform(lo, hi, spec.n_jobs))
    widths = np.maximum(
        spec.width_quantum,
        (widths / spec.width_quantum).round().astype(int) * spec.width_quantum,
    )
    widths = np.minimum(widths, spec.max_modules)
    names = rng.choice(list(spec.apps), size=spec.n_jobs)
    return [
        JobRequest(
            name=f"job{i:03d}-{names[i]}",
            app=get_app(str(names[i])),
            n_modules=int(widths[i]),
            arrival_s=float(arrivals[i]),
        )
        for i in range(spec.n_jobs)
    ]
