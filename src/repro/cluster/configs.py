"""Factories for the paper's four systems (Table 2).

=========  =========================  =======  ======  ===========  ========
System     Microarchitecture          Nodes    Procs   Measurement  Capping
=========  =========================  =======  ======  ===========  ========
Cab        Intel Sandy Bridge         1,296    2/node  RAPL         yes*
Vulcan     IBM BG/Q PowerPC A2        24,576   1/node  EMON         no
Teller     AMD Piledriver             104      1/node  PowerInsight no
HA8K       Intel Ivy Bridge           960      2/node  RAPL         yes
=========  =========================  =======  ======  ===========  ========

(*) Cab supports RAPL but DRAM measurement is unavailable there due to
BIOS restrictions, and the paper enforced no caps on Cab.

``n_modules`` defaults to the full machine but can be overridden for the
subset sizes the paper actually measured (2,386 sockets on Cab, 48 node
boards = 1,536 chips on Vulcan, 64 sockets on Teller, 1,920 modules on
HA8K).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.cluster.system import System
from repro.errors import ConfigurationError
from repro.hardware.devices import DeviceMap, DeviceType, get_device_type
from repro.hardware.microarch import (
    BGQ_POWERPC_A2,
    IVY_BRIDGE_E5_2697V2,
    PILEDRIVER_A10_5800K,
    SANDY_BRIDGE_E5_2670,
)
from repro.hardware.module import ModuleArray
from repro.hardware.variability import ModuleVariation, sample_variation
from repro.util.rng import RngFactory

__all__ = ["build_system", "build_hetero_system", "SYSTEM_FACTORIES"]


def _cab(n_modules: int | None, seed: int) -> System:
    return System.create(
        "cab",
        SANDY_BRIDGE_E5_2670,
        n_modules if n_modules is not None else 1296 * 2,
        procs_per_node=2,
        meter_kind="rapl",
        seed=seed,
        dram_measurable=False,
    )


def _vulcan(n_modules: int | None, seed: int) -> System:
    return System.create(
        "vulcan",
        BGQ_POWERPC_A2,
        n_modules if n_modules is not None else 24576,
        procs_per_node=1,
        meter_kind="emon",
        seed=seed,
        # The 32 compute cards of a node board share DCAs and a thermal
        # environment, so part of their variation is board-correlated —
        # the component EMON's board-level measurement can actually see.
        variation_group_size=32,
    )


def _teller(n_modules: int | None, seed: int) -> System:
    return System.create(
        "teller",
        PILEDRIVER_A10_5800K,
        n_modules if n_modules is not None else 104,
        procs_per_node=1,
        meter_kind="powerinsight",
        seed=seed,
    )


def _ha8k(n_modules: int | None, seed: int) -> System:
    return System.create(
        "ha8k",
        IVY_BRIDGE_E5_2697V2,
        n_modules if n_modules is not None else 960 * 2,
        procs_per_node=2,
        meter_kind="rapl",
        seed=seed,
    )


#: Registered system factories, keyed by lowercase site name.
SYSTEM_FACTORIES: dict[str, Callable[[int | None, int], System]] = {
    "cab": _cab,
    "vulcan": _vulcan,
    "teller": _teller,
    "ha8k": _ha8k,
}

#: Module counts the paper's measurements actually covered.
PAPER_STUDY_SIZES: dict[str, int] = {
    "cab": 2386,
    "vulcan": 1536,
    "teller": 64,
    "ha8k": 1920,
}


def build_system(
    name: str, *, n_modules: int | None = None, seed: int = 2015
) -> System:
    """Instantiate one of the paper's systems.

    Parameters
    ----------
    name:
        ``"cab"``, ``"vulcan"``, ``"teller"`` or ``"ha8k"``
        (case-insensitive).
    n_modules:
        Override the machine size; ``None`` builds the full system.  Use
        ``PAPER_STUDY_SIZES[name]`` for the subset each figure used.
    seed:
        Root seed for the manufacturing-variation draw and all
        measurement/control noise.
    """
    try:
        factory = SYSTEM_FACTORIES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(SYSTEM_FACTORIES))
        raise ConfigurationError(f"unknown system {name!r}; known: {known}") from None
    if n_modules is not None and n_modules <= 0:
        raise ConfigurationError("n_modules must be positive")
    return factory(n_modules, seed)


def build_hetero_system(
    counts: Sequence[tuple[str | DeviceType, int]] | dict[str, int],
    *,
    name: str = "hetero",
    seed: int = 2015,
    procs_per_node: int = 1,
    meter_kind: str = "rapl",
) -> System:
    """Assemble a heterogeneous fleet from per-device-type module counts.

    ``counts`` maps device-type names (or :class:`DeviceType` instances)
    to module counts, e.g. ``{"cpu-ivy-bridge-e5-2697v2": 512,
    "gpu-v100-sxm2": 512}``.  Each type's manufacturing variation is
    sampled from *its own* distribution under a per-type keyed RNG
    stream (``device/<name>/variability``), so adding a type never
    perturbs another type's draw.  Modules are laid out in contiguous
    per-type blocks — the layout every contiguity-aware ``take`` rides —
    and the first listed type is the fleet's *primary* (its arch becomes
    ``system.arch`` and the shared-α frequency reference).
    """
    items = list(counts.items()) if isinstance(counts, dict) else list(counts)
    if not items:
        raise ConfigurationError("counts must name at least one device type")
    types: list[DeviceType] = []
    sizes: list[int] = []
    for dt, n in items:
        if isinstance(dt, str):
            dt = get_device_type(dt)
        if int(n) <= 0:
            raise ConfigurationError(f"device count for {dt.name!r} must be positive")
        types.append(dt)
        sizes.append(int(n))
    if len({dt.name for dt in types}) != len(types):
        raise ConfigurationError("each device type may appear once in counts")

    rng = RngFactory(seed).child(f"system/{name}")
    parts = [
        sample_variation(
            dt.arch.variation,
            n,
            rng.rng(f"device/{dt.name}/variability"),
            procs_per_node=procs_per_node,
        )
        for dt, n in zip(types, sizes)
    ]
    variation = ModuleVariation(
        leak=np.concatenate([p.leak for p in parts]),
        dyn=np.concatenate([p.dyn for p in parts]),
        dram=np.concatenate([p.dram for p in parts]),
        perf=np.concatenate([p.perf for p in parts]),
    )
    index = np.concatenate(
        [np.full(n, pos, dtype=np.int8) for pos, n in enumerate(sizes)]
    )
    device_map = DeviceMap(tuple(types), index)
    arch = types[0].arch
    return System(
        name=name,
        arch=arch,
        modules=ModuleArray(arch, variation, device_map),
        procs_per_node=procs_per_node,
        meter_kind=meter_kind,
        rng=rng,
    )
