"""Job scheduler — produces the module allocations the budgeting framework
takes as input.

Fig 4 of the paper lists "Module Allocation (Scheduler)" as an input to
the variation-aware budgeting algorithm: the scheduler decides *which*
physical processors a job gets, the budgeting algorithm decides how much
power each of them receives.  The paper argues its approach "can work in
conjunction with existing as well as future resource managers", so the
scheduler here is deliberately simple and pluggable.

Policies
--------
``contiguous``
    First-fit over consecutive free module ids (typical production
    default, preserves network locality).
``random``
    Uniformly random free modules — what a fragmented machine hands you.
``efficient-first``
    Variation-aware placement: prefer the most power-efficient modules
    (lowest module power at fmax for a reference signature).  Not part
    of the paper's evaluation, but the natural scheduler-side complement
    it hints at; exposed for ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.system import System
from repro.errors import SchedulerError
from repro.hardware.power_model import PowerSignature
from repro.util.indexing import as_contiguous_slice

__all__ = ["JobScheduler", "Allocation"]

_POLICIES = ("contiguous", "random", "efficient-first")

#: Reference signature used to rank modules under ``efficient-first``.
_REFERENCE_SIG = PowerSignature(cpu_activity=0.7, dram_activity=0.5)


@dataclass(frozen=True)
class Allocation:
    """A granted job allocation."""

    job_id: str
    module_ids: np.ndarray

    @property
    def n_modules(self) -> int:
        """Number of modules granted."""
        return int(self.module_ids.size)

    def as_slice(self) -> slice | None:
        """The allocation as a contiguous slice, or ``None`` if scattered.

        Contiguous allocations (the ``contiguous`` policy's first-fit
        grants on an unfragmented machine) let every downstream consumer
        — :meth:`System.subset`, PVT/PMT ``take`` — partition fleet
        state by zero-copy array slicing instead of index-list copies.
        """
        return as_contiguous_slice(self.module_ids)


class JobScheduler:
    """Tracks module occupancy of one system and grants allocations."""

    def __init__(self, system: System):
        self.system = system
        self._free = np.ones(system.n_modules, dtype=bool)
        self._jobs: dict[str, Allocation] = {}

    @property
    def n_free(self) -> int:
        """Modules currently unallocated."""
        return int(self._free.sum())

    def jobs(self) -> list[str]:
        """Ids of currently running jobs."""
        return sorted(self._jobs)

    def allocate(
        self, job_id: str, n_modules: int, *, policy: str = "contiguous"
    ) -> Allocation:
        """Grant ``n_modules`` to ``job_id`` under the given policy."""
        if job_id in self._jobs:
            raise SchedulerError(f"job {job_id!r} already has an allocation")
        if n_modules <= 0:
            raise SchedulerError("n_modules must be positive")
        if policy not in _POLICIES:
            raise SchedulerError(
                f"unknown policy {policy!r}; available: {', '.join(_POLICIES)}"
            )
        free_ids = np.flatnonzero(self._free)
        if free_ids.size < n_modules:
            raise SchedulerError(
                f"cannot allocate {n_modules} modules; only {free_ids.size} free"
            )

        if policy == "contiguous":
            chosen = free_ids[:n_modules]
        elif policy == "random":
            rng = self.system.rng.rng(f"scheduler/{job_id}")
            chosen = np.sort(rng.choice(free_ids, size=n_modules, replace=False))
        else:  # efficient-first
            power = self.system.modules.module_power(
                self.system.arch.fmax, _REFERENCE_SIG
            )[free_ids]
            chosen = np.sort(free_ids[np.argsort(power, kind="stable")[:n_modules]])

        self._free[chosen] = False
        alloc = Allocation(job_id=job_id, module_ids=chosen)
        self._jobs[job_id] = alloc
        return alloc

    def release(self, job_id: str) -> None:
        """Return a job's modules to the free pool."""
        try:
            alloc = self._jobs.pop(job_id)
        except KeyError:
            raise SchedulerError(f"job {job_id!r} has no allocation") from None
        self._free[alloc.module_ids] = True
