"""Rank neighbourhood topologies for the application communication models.

The simulated applications exchange halos with logical neighbours: MHD
uses a 3-D decomposition (the paper's code is a 3-D MLF solver), BT/SP
multizone codes sweep over a 2-D zone grid.  These helpers build the
``(n_ranks, k)`` neighbour-index arrays the vectorised BSP engine
consumes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ring_neighbors", "torus_neighbors", "grid_dims"]


def ring_neighbors(n_ranks: int) -> np.ndarray:
    """Left/right neighbours on a periodic 1-D ring, shape ``(n, 2)``."""
    if n_ranks <= 0:
        raise ConfigurationError("n_ranks must be positive")
    idx = np.arange(n_ranks)
    return np.stack([(idx - 1) % n_ranks, (idx + 1) % n_ranks], axis=1)


def grid_dims(n_ranks: int, ndim: int) -> tuple[int, ...]:
    """Factor ``n_ranks`` into ``ndim`` near-equal dimensions.

    Mirrors ``MPI_Dims_create``: dimensions are as close to each other
    as possible, largest first, and their product is exactly
    ``n_ranks``.
    """
    if n_ranks <= 0:
        raise ConfigurationError("n_ranks must be positive")
    if ndim <= 0:
        raise ConfigurationError("ndim must be positive")
    dims = [1] * ndim
    remaining = n_ranks
    # Greedily peel off prime factors onto the currently smallest dim.
    factors: list[int] = []
    d = 2
    while d * d <= remaining:
        while remaining % d == 0:
            factors.append(d)
            remaining //= d
        d += 1
    if remaining > 1:
        factors.append(remaining)
    for f in sorted(factors, reverse=True):
        dims[int(np.argmin(dims))] *= f
    return tuple(sorted(dims, reverse=True))


def torus_neighbors(shape: tuple[int, ...]) -> np.ndarray:
    """Neighbour indices on a periodic Cartesian torus.

    Returns an array of shape ``(prod(shape), 2 * len(shape))`` whose row
    *r* lists the ranks adjacent to *r* (−/+ along each axis).  Axes of
    extent 1 contribute the rank itself (self-neighbour), matching the
    degenerate behaviour of a periodic exchange on a flat axis.
    """
    if not shape or any(s <= 0 for s in shape):
        raise ConfigurationError("shape must be non-empty with positive extents")
    n = int(np.prod(shape))
    coords = np.unravel_index(np.arange(n), shape)
    neighbors = np.empty((n, 2 * len(shape)), dtype=int)
    for axis, extent in enumerate(shape):
        for k, delta in enumerate((-1, +1)):
            shifted = list(coords)
            shifted[axis] = (coords[axis] + delta) % extent
            neighbors[:, 2 * axis + k] = np.ravel_multi_index(tuple(shifted), shape)
    return neighbors
