"""Content-addressed persistent cache for :class:`~repro.core.runner.RunResult`.

A :class:`RunKey` is the complete, serialisable description of one
managed run — everything :func:`~repro.core.runner.run_budgeted` /
:func:`~repro.core.runner.run_uncapped` consume that can change the
output bit-for-bit: the system configuration (name, size, seed, any
microarchitecture overrides), the application (plus residual overrides),
the scheme, the budget, and the execution knobs.  Two keys with the same
canonical form denote the same deterministic computation, so the cached
result can stand in for a live run.

Entries are single ``.npz`` files named by the SHA-256 digest of the
key's canonical JSON (plus :data:`CACHE_SCHEMA_VERSION`), written
atomically (temp file + ``os.replace``) so concurrent workers can never
observe a torn entry.  Canonicalisation hashes *bytes*, not reprs:
floats are encoded as their little-endian IEEE-754 image and numpy
scalars are demoted to the Python value they wrap, so a key built from
``np.float64(96000.0)`` on one platform addresses the same entry as one
built from ``96000.0`` on another.  Arrays round-trip bit-identically
through NPZ; scalar metadata rides along as a JSON string, whose float
formatting (``repr``) is also exact.

Cache invalidation is entirely key-driven: change any field and the
digest — hence the file name — changes; bump
:data:`CACHE_SCHEMA_VERSION` when the *semantics* of a run change (model
constants, scheme algorithms) and every old entry becomes unreachable at
once.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import struct
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.core.budget import BudgetSolution
from repro.core.runner import RunResult
from repro.errors import ConfigurationError, InfeasibleBudgetError
from repro.simmpi.tracing import RankTrace

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "RunKey",
    "ResultCache",
    "default_cache_dir",
]

#: Bump whenever the *meaning* of a run changes (model constants, scheme
#: algorithms, serialisation layout) — all previously cached entries
#: become unreachable without touching the filesystem.
#: v2: canonical-bytes key hashing (IEEE-754 float encoding, numpy
#: scalar demotion) replaced repr-based JSON floats.
CACHE_SCHEMA_VERSION = 2

_Overrides = tuple[tuple[str, object], ...]


def _canon(value):
    """Canonical JSON-able form of one key field, hashed by bytes.

    * numpy scalars (``np.float64``, ``np.int64``, ``np.bool_``, ...)
      are demoted to the Python scalar they wrap, so the *type* an
      experiment happened to compute a budget with cannot change the
      cache address;
    * floats are encoded as the hex of their little-endian IEEE-754
      image — exact, repr-independent, and platform-stable (``repr``
      round-trips too, but hashing the bit pattern makes the invariant
      self-evident and immune to formatting changes);
    * ``-0.0`` collapses to ``0.0`` first: the two compare equal, and
      equal keys must produce equal digests.
    """
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        if value == 0.0:
            value = 0.0
        return "f64:" + struct.pack("<d", value).hex()
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in value.items()}
    raise ConfigurationError(
        f"RunKey field value {value!r} ({type(value).__name__}) is not "
        "canonicalisable"
    )


@dataclass(frozen=True)
class RunKey:
    """Complete description of one deterministic managed run.

    ``scheme=None`` (with ``budget_w=None``) denotes an uncapped
    reference run; otherwise both must be set.

    Attributes
    ----------
    system:
        Either a registered site name ("ha8k", "cab", ...) built through
        :func:`repro.cluster.build_system`, or — when ``arch_base`` is
        set — an arbitrary system name built directly from that
        registered microarchitecture (the sensitivity studies).
    arch_base / arch_overrides:
        ``arch_base`` names a registered microarchitecture;
        ``arch_overrides`` is a flat tuple of ``(field, value)`` pairs
        applied with :meth:`Microarchitecture.with_` — fields prefixed
        ``"variation."`` are applied to the variation model instead.
    app_overrides:
        ``(field, value)`` pairs applied with :meth:`AppModel.with_`
        (residual knobs in the sensitivity study).
    """

    system: str
    n_modules: int
    seed: int
    app: str
    scheme: str | None
    budget_w: float | None
    n_iters: int | None = None
    noisy: bool = True
    fs_guardband_frac: float = 0.02
    test_module: int = 0
    turbo: bool = False
    arch_base: str = ""
    arch_overrides: _Overrides = ()
    app_overrides: _Overrides = ()
    procs_per_node: int = 2
    meter_kind: str = "rapl"
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if (self.scheme is None) != (self.budget_w is None):
            raise ConfigurationError(
                "scheme and budget_w must both be set (budgeted run) "
                "or both be None (uncapped run)"
            )
        if self.n_modules <= 0:
            raise ConfigurationError("n_modules must be positive")

    def canonical(self) -> dict:
        """The key as a stable, JSON-serialisable mapping.

        ``label`` is presentation-only and excluded — relabelling a run
        must not change its cache identity.  Values go through
        :func:`_canon`: numpy scalars are demoted and floats are encoded
        as IEEE-754 bytes, so the digest is a function of the key's
        *values*, never of scalar types or float formatting.
        """
        d = asdict(self)
        d.pop("label")
        d["schema"] = CACHE_SCHEMA_VERSION
        d["arch_overrides"] = [list(p) for p in self.arch_overrides]
        d["app_overrides"] = [list(p) for p in self.app_overrides]
        return _canon(d)

    def digest(self) -> str:
        """SHA-256 content hash of the canonical form (the cache address)."""
        blob = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Human-readable one-liner (stats tables, error messages)."""
        if self.label:
            return self.label
        if self.scheme is None:
            return f"{self.system}/{self.app}/uncapped"
        return f"{self.system}/{self.app}/{self.scheme}@{self.budget_w:.0f}W"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


# -- RunResult <-> NPZ payload -------------------------------------------------

_TRACE_FIELDS = ("total_s", "compute_s", "wait_s", "comm_s")
_SOL_ARRAYS = ("pmodule_w", "pcpu_w", "pdram_w")
_SOL_SCALARS = ("alpha", "raw_alpha", "constrained", "freq_ghz", "budget_w")


def result_to_payload(result: RunResult) -> tuple[dict, dict[str, np.ndarray]]:
    """Split a :class:`RunResult` into JSON-able metadata plus arrays."""
    meta: dict = {
        "kind": "result",
        "app_name": result.app_name,
        "scheme_name": result.scheme_name,
        "budget_w": result.budget_w,
    }
    arrays: dict[str, np.ndarray] = {
        "effective_freq_ghz": result.effective_freq_ghz,
        "cpu_power_w": result.cpu_power_w,
        "dram_power_w": result.dram_power_w,
        "cap_met": result.cap_met,
    }
    for f in _TRACE_FIELDS:
        arrays[f"trace_{f}"] = getattr(result.trace, f)
    if result.solution is not None:
        meta["solution"] = {s: getattr(result.solution, s) for s in _SOL_SCALARS}
        for f in _SOL_ARRAYS:
            arrays[f"sol_{f}"] = getattr(result.solution, f)
    else:
        meta["solution"] = None
    return meta, arrays


def payload_to_result(meta: dict, arrays: dict[str, np.ndarray]) -> RunResult:
    """Inverse of :func:`result_to_payload` (bit-identical arrays)."""
    solution = None
    if meta["solution"] is not None:
        solution = BudgetSolution(
            **meta["solution"],
            **{f: arrays[f"sol_{f}"] for f in _SOL_ARRAYS},
        )
    trace = RankTrace(**{f: arrays[f"trace_{f}"] for f in _TRACE_FIELDS})
    return RunResult(
        app_name=meta["app_name"],
        scheme_name=meta["scheme_name"],
        budget_w=meta["budget_w"],
        solution=solution,
        effective_freq_ghz=arrays["effective_freq_ghz"],
        cpu_power_w=arrays["cpu_power_w"],
        dram_power_w=arrays["dram_power_w"],
        cap_met=arrays["cap_met"],
        trace=trace,
    )


class ResultCache:
    """Directory of ``<digest>.npz`` entries, one per :class:`RunKey`.

    Also caches *infeasibility*: a budget below the fmin floor is a
    deterministic property of the key, so the
    :class:`~repro.errors.InfeasibleBudgetError` is stored and re-raised
    on later lookups instead of re-deriving the PMT.
    """

    def __init__(self, cache_dir: str | Path | None = None):
        self.dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.dir.mkdir(parents=True, exist_ok=True)

    def _path(self, key: RunKey) -> Path:
        return self.dir / f"{key.digest()}.npz"

    def __len__(self) -> int:
        return sum(1 for _ in self.dir.glob("*.npz"))

    def __contains__(self, key: RunKey) -> bool:
        return self._path(key).exists()

    def get(self, key: RunKey) -> RunResult | None:
        """The cached result, ``None`` on a miss.

        Raises :class:`InfeasibleBudgetError` when the cached entry
        records that this key's budget is infeasible.
        """
        path = self._path(key)
        try:
            data = np.load(path, allow_pickle=False)
        except (FileNotFoundError, OSError, ValueError):
            return None  # missing or torn/corrupt entry == miss
        try:
            meta = json.loads(str(data["meta"][()]))
            if meta.get("kind") == "infeasible":
                raise InfeasibleBudgetError(meta["budget_w"], meta["floor_w"])
            arrays = {k: data[k] for k in data.files if k != "meta"}
            return payload_to_result(meta, arrays)
        except KeyError:
            return None
        finally:
            data.close()

    def put(self, key: RunKey, result: RunResult) -> None:
        """Store ``result`` under ``key`` (atomic; last writer wins)."""
        meta, arrays = result_to_payload(result)
        self._write(key, meta, arrays)

    def put_infeasible(self, key: RunKey, exc: InfeasibleBudgetError) -> None:
        """Record that ``key``'s budget is below the fmin floor."""
        meta = {"kind": "infeasible", "budget_w": exc.budget_w, "floor_w": exc.floor_w}
        self._write(key, meta, {})

    def _write(self, key: RunKey, meta: dict, arrays: dict[str, np.ndarray]) -> None:
        buf = io.BytesIO()
        np.savez(buf, meta=np.array(json.dumps(meta)), **arrays)
        fd, tmp = tempfile.mkstemp(dir=self.dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(buf.getvalue())
            os.replace(tmp, self._path(key))
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        for p in self.dir.glob("*.npz"):
            p.unlink(missing_ok=True)
            n += 1
        return n
