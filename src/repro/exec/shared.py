"""Zero-copy fleet handoff to pool workers via POSIX shared memory.

A batched sweep ships each distinct fleet to the worker pool **once**:
the parent exports the four :class:`~repro.hardware.variability.ModuleVariation`
arrays (``leak``, ``dyn``, ``dram``, ``perf``) into one
:class:`multiprocessing.shared_memory.SharedMemory` block and pickles
only a small :class:`SharedFleet` handle per task.  Workers attach the
block and rebuild the :class:`~repro.cluster.system.System` around
read-only ndarray *views* of the mapping — no per-task pickling of
fleet-sized arrays, no re-sampling of variation in every worker.

Bit-identity is inherited rather than argued: the exported arrays are
byte-for-byte the parent's ground truth, and everything else a run
depends on (the :class:`~repro.util.rng.RngFactory`, the
microarchitecture) rides along in the handle, so a worker-side run sees
exactly the state an in-process run would.

Lifecycle: the parent calls :func:`export_fleet` before submitting a
group and :func:`destroy_fleet` after the pool has drained (POSIX keeps
existing worker mappings valid across the unlink).  Workers cache their
attachment per shared-memory name for the life of the process.

Fleets are not the only thing that crosses the process boundary this
way: the cross-process sharded executor exports the batched
``(n_configs, n_ranks)`` *state plane* itself as a named segment.  That
surface (:class:`SharedPlane` / :func:`export_plane` /
:func:`attach_plane` / :func:`destroy_plane`) is implemented in
:mod:`repro.simmpi.procshard` — ``simmpi`` may not import ``exec`` — and
re-exported here so front-ends keep one shared-memory entry point.
"""

from __future__ import annotations

import atexit
import gc
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.cluster.system import System
from repro.core.pvt import PowerVariationTable, generate_pvt
from repro.hardware.devices import DeviceMap, DeviceType
from repro.hardware.microarch import Microarchitecture
from repro.hardware.module import ModuleArray
from repro.hardware.variability import ModuleVariation
from repro.simmpi.procshard import (
    SharedPlane,
    attach_plane,
    destroy_plane,
    export_plane,
)
from repro.util.rng import RngFactory
from repro.util.shm import attach_block as _attach_block

__all__ = [
    "SharedFleet",
    "export_fleet",
    "attach_fleet",
    "destroy_fleet",
    "fleet_pvt",
    "SharedPlane",
    "export_plane",
    "attach_plane",
    "destroy_plane",
]

#: ModuleVariation fields, in on-disk segment order.
_FIELDS = ("leak", "dyn", "dram", "perf")


@dataclass(frozen=True)
class SharedFleet:
    """Picklable handle describing a fleet exported to shared memory.

    Everything needed to rebuild the owning :class:`System` in another
    process: the shared-memory block name plus the small non-array
    attributes (the :class:`RngFactory` is what keeps worker-side PVT
    generation and RAPL noise bit-identical to the parent's).
    """

    shm_name: str
    n_modules: int
    name: str
    arch: Microarchitecture
    procs_per_node: int
    meter_kind: str
    dram_measurable: bool
    rng: RngFactory
    #: Device-type table of a heterogeneous fleet; ``None`` keeps the
    #: homogeneous block layout (4 float64 segments) byte-identical to
    #: before device maps existed.  When set, one int8 index segment
    #: follows the float64 segments and workers rebuild the
    #: :class:`~repro.hardware.devices.DeviceMap` from it zero-copy.
    device_types: tuple[DeviceType, ...] | None = None


def export_fleet(system: System) -> SharedFleet:
    """Copy ``system``'s variation arrays into a new shared-memory block.

    Returns the handle to pass to workers; the parent owns the block and
    must eventually call :func:`destroy_fleet`.
    """
    n = system.n_modules
    device_map = system.device_map
    itemsize = np.dtype(np.float64).itemsize
    size = len(_FIELDS) * n * itemsize + (n if device_map is not None else 0)
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        variation = system.modules.variation
        for seg, field in enumerate(_FIELDS):
            view = np.ndarray((n,), dtype=np.float64, buffer=shm.buf, offset=seg * n * itemsize)
            np.copyto(view, np.asarray(getattr(variation, field), dtype=np.float64))
        if device_map is not None:
            view = np.ndarray(
                (n,), dtype=np.int8, buffer=shm.buf, offset=len(_FIELDS) * n * itemsize
            )
            np.copyto(view, device_map.index)
        handle = SharedFleet(
            shm_name=shm.name,
            n_modules=n,
            name=system.name,
            arch=system.arch,
            procs_per_node=system.procs_per_node,
            meter_kind=system.meter_kind,
            dram_measurable=system.dram_measurable,
            rng=system.rng,
            device_types=device_map.types if device_map is not None else None,
        )
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    # The exporter keeps its own mapping open until destroy_fleet() so the
    # block outlives any worker-side attach/close races.
    _OWNED[handle.shm_name] = shm
    return handle


#: Parent-side open mappings, keyed by block name (closed by destroy_fleet).
_OWNED: dict[str, shared_memory.SharedMemory] = {}

#: Worker-side attachments: one (mapping, System) per block name for the
#: life of the process — repeated groups over the same fleet attach once.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, System]] = {}


def attach_fleet(handle: SharedFleet) -> System:
    """Rebuild the :class:`System` around read-only views of the block.

    Cached per block name: a worker that executes several groups over
    the same fleet maps and validates it once.
    """
    cached = _ATTACHED.get(handle.shm_name)
    if cached is not None:
        return cached[1]
    shm = _attach_block(handle.shm_name)
    n = handle.n_modules
    itemsize = np.dtype(np.float64).itemsize
    views = {}
    for seg, field in enumerate(_FIELDS):
        view = np.ndarray((n,), dtype=np.float64, buffer=shm.buf, offset=seg * n * itemsize)
        view.flags.writeable = False
        views[field] = view
    device_map = None
    if handle.device_types is not None:
        idx = np.ndarray(
            (n,), dtype=np.int8, buffer=shm.buf, offset=len(_FIELDS) * n * itemsize
        )
        idx.flags.writeable = False
        device_map = DeviceMap(handle.device_types, idx)
    system = System(
        name=handle.name,
        arch=handle.arch,
        modules=ModuleArray(handle.arch, ModuleVariation(**views), device_map),
        procs_per_node=handle.procs_per_node,
        meter_kind=handle.meter_kind,
        rng=handle.rng,
        dram_measurable=handle.dram_measurable,
    )
    _ATTACHED[handle.shm_name] = (shm, system)
    return system


#: Worker-side PVT cache for attached fleets, keyed by block name.
_ATTACHED_PVT: dict[str, PowerVariationTable] = {}


def fleet_pvt(handle: SharedFleet) -> PowerVariationTable:
    """The attached fleet's Power Variation Table, built once per process.

    :func:`~repro.core.pvt.generate_pvt` draws only from the system's
    keyed :class:`RngFactory` streams (restarted per call), so a
    worker-built table is bit-identical to one the parent built for the
    same fleet.
    """
    pvt = _ATTACHED_PVT.get(handle.shm_name)
    if pvt is None:
        pvt = _ATTACHED_PVT[handle.shm_name] = generate_pvt(attach_fleet(handle))
    return pvt


@atexit.register
def _release_attachments() -> None:
    """Drop worker-side views before their mappings are torn down.

    ndarray views export the mapping's buffer; closing it while they are
    alive raises ``BufferError`` from ``SharedMemory.__del__`` during
    interpreter shutdown.  Releasing the Systems first (refcounting frees
    the views immediately) makes the close clean.
    """
    while _ATTACHED:
        _name, (shm, system) = _ATTACHED.popitem()
        del system
        gc.collect()
        try:
            shm.close()
        except BufferError:  # a view escaped into user code; let GC finish
            pass


def destroy_fleet(handle: SharedFleet) -> None:
    """Release the parent's mapping and unlink the block.

    Safe after the pool has drained: workers that still hold a mapping
    keep valid views (POSIX semantics); new attaches will fail, which is
    the point.
    """
    shm = _OWNED.pop(handle.shm_name, None)
    if shm is None:
        return
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # already unlinked (e.g. double destroy)
        pass
