"""Run-level observability for the experiment engine.

Every run dispatched through :class:`~repro.exec.ExperimentEngine` is
recorded here: what it was, where the result came from (cache hit, cache
miss, or a plain uncached execution), and how long it took.  The
``--stats`` CLI flag renders the aggregate as a table after the
experiments finish.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import repro.telemetry as telemetry
from repro.util.tables import render_table

__all__ = ["BatchRecord", "RunRecord", "RunStats"]

#: Where a dispatched run's result came from.
SOURCES = ("hit", "miss", "exec")

#: Telemetry counter names per source (every dispatch funnels through
#: :meth:`RunStats.record`, so this one hook observes the whole engine).
_SOURCE_COUNTERS = {
    "hit": "engine.cache.hit",
    "miss": "engine.cache.miss",
    "exec": "engine.exec",
}


@dataclass(frozen=True)
class RunRecord:
    """One dispatched run: identity, result provenance, wall time."""

    label: str
    source: str  # "hit" (cache), "miss" (executed + stored), "exec" (no cache)
    wall_s: float


@dataclass(frozen=True)
class BatchRecord:
    """One config-batched group dispatch: how many keys, total wall time."""

    n_keys: int
    wall_s: float

    @property
    def amortized_wall_s(self) -> float:
        """Wall time per key once the group overhead is shared out."""
        return self.wall_s / self.n_keys if self.n_keys else 0.0


@dataclass
class RunStats:
    """Counters and per-run wall-times for one engine's lifetime."""

    records: list[RunRecord] = field(default_factory=list)
    batches: list[BatchRecord] = field(default_factory=list)

    def record(self, label: str, source: str, wall_s: float) -> None:
        """Append one run record (``source`` must be in :data:`SOURCES`)."""
        if source not in SOURCES:
            raise ValueError(f"source must be one of {SOURCES}, got {source!r}")
        self.records.append(RunRecord(label=label, source=source, wall_s=wall_s))
        telemetry.count(_SOURCE_COUNTERS[source])
        telemetry.observe("engine.dispatch_wall_s", wall_s)

    def record_batch(self, n_keys: int, wall_s: float) -> None:
        """Append one batched-group record (the member runs are recorded
        individually through :meth:`record` with amortised wall times)."""
        rec = BatchRecord(n_keys=int(n_keys), wall_s=wall_s)
        self.batches.append(rec)
        telemetry.count("engine.batched.groups")
        telemetry.observe("engine.batch_size", rec.n_keys)
        telemetry.observe("engine.batch_amortized_wall_s", rec.amortized_wall_s)

    def merge(self, other: "RunStats") -> None:
        """Fold another stats object (e.g. from a worker batch) into this one."""
        self.records.extend(other.records)
        self.batches.extend(other.batches)

    # -- counters ------------------------------------------------------------

    @property
    def n_runs(self) -> int:
        """Total runs dispatched."""
        return len(self.records)

    @property
    def hits(self) -> int:
        """Runs answered from the persistent cache."""
        return sum(1 for r in self.records if r.source == "hit")

    @property
    def misses(self) -> int:
        """Runs executed because the cache had no entry."""
        return sum(1 for r in self.records if r.source == "miss")

    @property
    def executed(self) -> int:
        """Runs executed with caching disabled."""
        return sum(1 for r in self.records if r.source == "exec")

    @property
    def hit_rate(self) -> float:
        """Fraction of cache-eligible runs answered from the cache."""
        eligible = self.hits + self.misses
        return self.hits / eligible if eligible else 0.0

    @property
    def total_wall_s(self) -> float:
        """Cumulative wall time across every dispatched run."""
        return sum(r.wall_s for r in self.records)

    def slowest(self, n: int = 5) -> list[RunRecord]:
        """The ``n`` slowest runs, slowest first."""
        return sorted(self.records, key=lambda r: r.wall_s, reverse=True)[:n]

    # -- batching ------------------------------------------------------------

    @property
    def n_batches(self) -> int:
        """Config-batched group dispatches."""
        return len(self.batches)

    @property
    def batched_keys(self) -> int:
        """Total keys executed through batched groups."""
        return sum(b.n_keys for b in self.batches)

    @property
    def mean_batch_size(self) -> float:
        """Average keys per batched group."""
        return self.batched_keys / self.n_batches if self.n_batches else 0.0

    @property
    def amortized_wall_s(self) -> float:
        """Mean per-key wall time across all batched keys."""
        total = sum(b.wall_s for b in self.batches)
        return total / self.batched_keys if self.batched_keys else 0.0

    # -- rendering -----------------------------------------------------------

    def format_summary(self, top: int = 5) -> str:
        """Render the counters plus the slowest runs as a table."""
        if not self.records:
            return "-- engine stats: no runs dispatched"
        head = (
            f"-- engine stats: {self.n_runs} runs "
            f"({self.hits} cache hits, {self.misses} misses, "
            f"{self.executed} uncached), hit rate {self.hit_rate:.0%}, "
            f"total {self.total_wall_s:.2f} s"
        )
        if self.batches:
            head += (
                f"\n-- batched dispatch: {self.batched_keys} keys in "
                f"{self.n_batches} groups (avg batch {self.mean_batch_size:.1f}, "
                f"amortized {self.amortized_wall_s * 1e3:.1f} ms/key)"
            )
        rows = [
            [r.label, r.source, f"{r.wall_s * 1e3:.1f}"]
            for r in self.slowest(top)
        ]
        table = render_table(
            ["Run", "Source", "Wall [ms]"],
            rows,
            title=f"Slowest {min(top, self.n_runs)} runs",
        )
        return f"{head}\n{table}"
