"""Experiment execution engine: persistent run cache + parallel fan-out.

The sweep experiments describe each managed run as a
:class:`~repro.exec.cache.RunKey` and hand batches of keys to an
:class:`~repro.exec.engine.ExperimentEngine`, which answers from a
content-addressed on-disk cache where it can and fans the rest out over
a process pool.  Runs are deterministic functions of their key (see
:mod:`repro.exec.engine`), so parallel, sequential, and cached results
are bit-identical — `tests/exec/` holds the differential proof.
"""

from repro.exec.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    RunKey,
    default_cache_dir,
)
from repro.exec.engine import (
    ExperimentEngine,
    configure,
    execute_key,
    get_engine,
    reset,
)
from repro.exec.metrics import BatchRecord, RunRecord, RunStats

# Re-exported so front-ends (the CLI) can pin shard layout and mode
# without a direct cli -> simmpi import edge; the engine owns the knob.
from repro.simmpi.sharding import SHARD_MODES, ShardPlan, ShardSpec
from repro.simmpi.procshard import _PIN_ENV as PROCSHARD_PIN_ENV
from repro.simmpi.procshard import _pin_default as procshard_pin_default
from repro.exec.shared import (
    SharedFleet,
    SharedPlane,
    attach_fleet,
    attach_plane,
    destroy_fleet,
    destroy_plane,
    export_fleet,
    export_plane,
    fleet_pvt,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "RunKey",
    "default_cache_dir",
    "ExperimentEngine",
    "configure",
    "execute_key",
    "get_engine",
    "reset",
    "BatchRecord",
    "RunRecord",
    "RunStats",
    "PROCSHARD_PIN_ENV",
    "procshard_pin_default",
    "SHARD_MODES",
    "ShardPlan",
    "ShardSpec",
    "SharedFleet",
    "SharedPlane",
    "attach_fleet",
    "attach_plane",
    "destroy_fleet",
    "destroy_plane",
    "export_fleet",
    "export_plane",
    "fleet_pvt",
]
