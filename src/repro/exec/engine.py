"""The experiment execution engine: cached, parallel, deterministic runs.

:class:`ExperimentEngine` sits between the experiments and
:func:`~repro.core.runner.run_budgeted` / :func:`run_uncapped`:

* every run is addressed by a :class:`~repro.exec.cache.RunKey` and can
  be answered from the persistent :class:`~repro.exec.cache.ResultCache`;
* :meth:`ExperimentEngine.submit_sweep` fans cache misses out over a
  process pool (``jobs`` workers);
* every dispatch is recorded in :class:`~repro.exec.metrics.RunStats`.

Determinism
-----------
Every stochastic element of a run draws from
:class:`~repro.util.rng.RngFactory` streams keyed by (root seed, string
path), restarted per call — a run's output is a pure function of its
:class:`RunKey`, independent of process, ordering, or what ran before
it.  That is what makes parallel fan-out bit-identical to sequential
execution and cached results trustworthy; ``tests/exec/test_engine.py``
proves it differentially.  As a defensive measure, :func:`execute_key`
additionally reseeds numpy's *legacy global* generator from the key
digest, so even a stray ``np.random.*`` draw in future model code would
be order- and schedule-independent rather than silently racy.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import replace
from functools import lru_cache
from time import perf_counter

import numpy as np

import repro.telemetry as telemetry
from repro.apps.registry import get_app
from repro.cluster.configs import build_system
from repro.cluster.system import System
from repro.core.pvt import PowerVariationTable, generate_pvt
from repro.core.runner import (
    RunResult,
    run_budgeted,
    run_budgeted_batched,
    run_uncapped,
)
from repro.errors import InfeasibleBudgetError
from repro.exec.cache import ResultCache, RunKey
from repro.exec.metrics import RunStats
from repro.exec.shared import (
    SharedFleet,
    attach_fleet,
    destroy_fleet,
    export_fleet,
    fleet_pvt,
)
from repro.hardware.microarch import Microarchitecture, get_microarch
from repro.util.topology import cpu_budget, effective_cpu_count

__all__ = [
    "ExperimentEngine",
    "execute_key",
    "configure",
    "get_engine",
    "reset",
]


# -- per-process system/PVT construction (shared by workers via lru_cache) ----

def _apply_arch_overrides(
    arch: Microarchitecture, overrides: tuple[tuple[str, object], ...]
) -> Microarchitecture:
    changes: dict[str, object] = {}
    var_changes: dict[str, object] = {}
    for name, value in overrides:
        if name.startswith("variation."):
            var_changes[name.split(".", 1)[1]] = value
        else:
            changes[name] = value
    if var_changes:
        changes["variation"] = replace(arch.variation, **var_changes)
    return arch.with_(**changes) if changes else arch


_SystemSpec = tuple[str, int, int, str, tuple, int, str]


def _spec(key: RunKey) -> _SystemSpec:
    return (
        key.system,
        key.n_modules,
        key.seed,
        key.arch_base,
        key.arch_overrides,
        key.procs_per_node,
        key.meter_kind,
    )


@lru_cache(maxsize=32)
def _system_for(spec: _SystemSpec) -> System:
    system, n_modules, seed, arch_base, arch_overrides, ppn, meter = spec
    if arch_base:
        arch = _apply_arch_overrides(get_microarch(arch_base), arch_overrides)
        return System.create(
            system,
            arch,
            n_modules,
            procs_per_node=ppn,
            meter_kind=meter,
            seed=seed,
        )
    return build_system(system, n_modules=n_modules, seed=seed)


@lru_cache(maxsize=32)
def _pvt_for(spec: _SystemSpec) -> PowerVariationTable:
    return generate_pvt(_system_for(spec))




def execute_key(key: RunKey) -> RunResult:
    """Execute the run a :class:`RunKey` describes (no cache involved).

    Raises :class:`InfeasibleBudgetError` for budgets below the fmin
    floor, exactly like :func:`~repro.core.runner.run_budgeted`.

    When telemetry is enabled, everything the run records (spans,
    timelines, per-module arrays) is scoped to the key's digest prefix —
    the same identity the result cache uses — so exported traces join
    back to cached results.
    """
    # Defensive per-run seeding (see module docstring): nothing in this
    # package draws from the legacy global generator, but pinning it per
    # key keeps any future stray draw schedule-independent.
    digest = key.digest()
    np.random.seed(int(digest[:8], 16))
    if not telemetry.enabled():
        return _execute_key(key)
    with telemetry.run_scope(digest[:12], key.describe()):
        with telemetry.span("engine.execute"):
            return _execute_key(key)


def _execute_key(key: RunKey) -> RunResult:
    spec = _spec(key)
    system = _system_for(spec)
    app = get_app(key.app)
    if key.app_overrides:
        app = app.with_(**dict(key.app_overrides))
    if key.scheme is None:
        return run_uncapped(system, app, n_iters=key.n_iters, turbo=key.turbo)
    return run_budgeted(
        system,
        app,
        key.scheme,
        key.budget_w,
        pvt=_pvt_for(spec),
        test_module=key.test_module,
        n_iters=key.n_iters,
        noisy=key.noisy,
        fs_guardband_frac=key.fs_guardband_frac,
    )


#: Fault-injection hook for the worker wrappers, mirroring
#: ``REPRO_PROCSHARD_FAULT`` in :mod:`repro.simmpi.procshard`: set to
#: ``"kill"`` to SIGKILL a pool worker at task start.  Only fires in
#: actual pool children (``_pool_run`` also executes inline when
#: ``jobs == 1``, where dying would kill the caller, not simulate a
#: worker crash).  Used by the overload/fault tests to prove callers
#: get a typed retryable error rather than a hang.
_FAULT_ENV = "REPRO_ENGINE_FAULT"


def _maybe_inject_fault() -> None:
    if os.environ.get(_FAULT_ENV) == "kill":
        if multiprocessing.parent_process() is not None:
            os.kill(os.getpid(), signal.SIGKILL)


def _pin_worker(pin_q=None) -> None:
    """Pool-worker initializer: pin to the CPU slice shipped via
    ``pin_q`` (one slice per worker, claimed from the process-wide
    :func:`~repro.util.topology.cpu_budget`).  Only CPUs inside the
    inherited affinity mask are used, and any failure skips pinning —
    placement may never fail a run."""
    if pin_q is None:
        return
    try:
        cpus = tuple(pin_q.get(timeout=10.0))
        allowed = set(os.sched_getaffinity(0))
    except Exception:  # queue drained / no affinity support
        return
    target = set(cpus) & allowed
    if target:
        try:
            os.sched_setaffinity(0, target)
        except OSError:  # pragma: no cover - mask raced with a cgroup change
            pass


def _pool_run(key: RunKey) -> tuple[str, object, float]:
    """Worker-side wrapper: never lets an InfeasibleBudgetError cross the
    process boundary (its multi-argument ``__init__`` does not survive
    pickling); returns a tagged tuple plus the measured wall time."""
    _maybe_inject_fault()
    t0 = perf_counter()
    try:
        result = execute_key(key)
    except InfeasibleBudgetError as exc:
        return "infeasible", (exc.budget_w, exc.floor_w), perf_counter() - t0
    return "ok", result, perf_counter() - t0


# -- config-batched group execution -------------------------------------------

def _group_signature(key: RunKey) -> tuple:
    """Keys sharing this signature run as one batched group: same system,
    fleet, app, and run knobs — only (scheme, budget) vary within it."""
    return (
        _spec(key),
        key.app,
        key.app_overrides,
        key.n_iters,
        key.noisy,
        key.fs_guardband_frac,
        key.test_module,
    )


def _run_group(
    keys: Sequence[RunKey], handle: SharedFleet | None = None, shard="auto"
) -> list[tuple[str, object]]:
    """Execute one batched group; per-key tagged outcomes, input order.

    ``handle`` selects the fleet source: ``None`` builds/caches the
    system in-process (:func:`_system_for`), a :class:`SharedFleet`
    attaches the parent-exported block (worker side).  Either way the
    runs are bit-identical to per-key :func:`execute_key` calls.

    ``shard`` forwards to :func:`~repro.core.runner.run_budgeted_batched`
    unchanged.  It is execution layout only — results, and therefore
    cache payloads and key digests, do not depend on it, which is why it
    is *not* part of :func:`_group_signature` or :class:`RunKey`.
    """
    key0 = keys[0]
    spec = _spec(key0)
    if handle is None:
        system = _system_for(spec)
        pvt = _pvt_for(spec)
    else:
        system = attach_fleet(handle)
        pvt = fleet_pvt(handle)
    app = get_app(key0.app)
    if key0.app_overrides:
        app = app.with_(**dict(key0.app_overrides))
    # Defensive group-level seeding, mirroring execute_key.
    np.random.seed(int(key0.digest()[:8], 16))
    outs = run_budgeted_batched(
        system,
        app,
        [(k.scheme, k.budget_w) for k in keys],
        pvt=pvt,
        test_module=key0.test_module,
        n_iters=key0.n_iters,
        noisy=key0.noisy,
        fs_guardband_frac=key0.fs_guardband_frac,
        shard=shard,
    )
    return [
        ("infeasible", (out.budget_w, out.floor_w))
        if isinstance(out, InfeasibleBudgetError)
        else ("ok", out)
        for out in outs
    ]


def _pool_run_group(
    handle: SharedFleet | None, keys: tuple[RunKey, ...], shard="auto"
) -> tuple[list[tuple[str, object]], float]:
    """Worker-side group wrapper: tagged per-key outcomes + group wall."""
    _maybe_inject_fault()
    t0 = perf_counter()
    tagged = _run_group(keys, handle=handle, shard=shard)
    return tagged, perf_counter() - t0


class ExperimentEngine:
    """Cached, parallel dispatcher for :class:`RunKey` sweeps.

    Parameters
    ----------
    jobs:
        Worker processes for :meth:`submit_sweep` / :meth:`map` fan-out;
        ``1`` (the default) executes in-process, sequentially.  ``0`` or
        ``None`` sizes the pool to the *effective* CPU count
        (:func:`~repro.util.topology.effective_cpu_count` — the
        affinity mask, not ``os.cpu_count()``, so ``taskset``/cgroup
        restricted environments are not oversubscribed).
    pin:
        Pin pool workers to CPU slices claimed from the process-wide
        :func:`~repro.util.topology.cpu_budget`.  ``None`` (default)
        pins whenever the platform supports affinity and the pool is
        actually parallel; ``False`` disables.  Placement only — results
        and digests are unaffected (ARCHITECTURE.md invariant 11), but
        pinning makes composed pools (engine workers × process-sharded
        simulation × inner tile threads) partition the machine instead
        of oversubscribing it, because children derive their own worker
        counts from the shrunken affinity mask they inherit.
    cache_dir:
        Cache directory; ``None`` uses the default
        (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) when caching is on.
    use_cache:
        Enable the persistent result cache.  Defaults to ``True`` iff
        ``cache_dir`` was given, so a bare ``ExperimentEngine()`` — what
        library callers and tests get — touches no global state.
    stats:
        Share an existing :class:`RunStats` collector (defaults to a
        fresh one, exposed as :attr:`stats`).
    batch:
        Route :meth:`submit_sweep` through :meth:`submit_batched_sweep`
        (the default): cache misses sharing a system/fleet/app execute
        as one vectorised pass instead of per-key loops.  Results are
        bit-identical either way; ``batch=False`` restores the per-key
        path (also the automatic fallback for keys that cannot batch).
    shard:
        Execution layout for batched groups, forwarded to
        :func:`~repro.core.runner.run_budgeted_batched`: ``"auto"``
        (the default) tiles the simulation plane when it outgrows the
        cache working-set budget, a
        :class:`~repro.simmpi.sharding.ShardSpec` pins the tiling (and
        its ``mode`` picks threads vs worker processes for row blocks),
        ``None`` forces the unsharded path.  Layout only — results and
        cache digests never depend on it.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache_dir: str | None = None,
        use_cache: bool | None = None,
        stats: RunStats | None = None,
        batch: bool = True,
        shard="auto",
        pin: bool | None = None,
    ):
        self.jobs = (
            effective_cpu_count() if not jobs else max(1, int(jobs))
        )
        self.pin = pin
        if use_cache is None:
            use_cache = cache_dir is not None
        self.cache: ResultCache | None = (
            ResultCache(cache_dir) if use_cache else None
        )
        self.stats = stats if stats is not None else RunStats()
        self.batch = bool(batch)
        self.shard = shard

    # -- pool construction ---------------------------------------------------

    def _resolve_pin(self, workers: int) -> bool:
        if not hasattr(os, "sched_setaffinity"):
            return False
        if self.pin is not None:
            return bool(self.pin)
        return workers > 1

    @contextmanager
    def _pool(self, workers: int):
        """A :class:`ProcessPoolExecutor` drawing on the CPU budget.

        Claims one node-aware CPU slice per worker from the
        process-wide ledger (released when the pool exits) and records
        the placement gauges the composition tests audit:
        ``engine.cpu_budget.total``, ``engine.pool.workers``, and
        ``engine.pool.cpus_granted`` (distinct CPUs granted — never
        above the budget total, by construction).
        """
        budget = cpu_budget()
        lease = None
        init = None
        initargs: tuple = ()
        kwargs: dict = {}
        if self._resolve_pin(workers):
            lease = budget.claim(workers, label="engine")
            ctx = multiprocessing.get_context()
            pin_q = ctx.Queue()
            for s in lease.slices:
                pin_q.put(tuple(s))
            init, initargs = _pin_worker, (pin_q,)
            kwargs["mp_context"] = ctx
        telemetry.gauge("engine.cpu_budget.total", budget.total)
        telemetry.gauge("engine.pool.workers", workers)
        telemetry.gauge(
            "engine.pool.cpus_granted",
            len(lease.cpus) if lease is not None
            else min(workers, budget.total),
        )
        pool = ProcessPoolExecutor(
            max_workers=workers, initializer=init, initargs=initargs, **kwargs
        )
        try:
            yield pool
        finally:
            pool.shutdown(wait=True)
            if lease is not None:
                budget.release(lease)

    # -- single runs ---------------------------------------------------------

    def run(self, key: RunKey) -> RunResult:
        """One run through the cache: hit, or execute-and-store."""
        t0 = perf_counter()
        if self.cache is not None:
            try:
                cached = self.cache.get(key)
            except InfeasibleBudgetError:
                self.stats.record(key.describe(), "hit", perf_counter() - t0)
                raise
            if cached is not None:
                self.stats.record(key.describe(), "hit", perf_counter() - t0)
                return cached
        try:
            result = execute_key(key)
        except InfeasibleBudgetError as exc:
            if self.cache is not None:
                self.cache.put_infeasible(key, exc)
            self.stats.record(
                key.describe(),
                "miss" if self.cache is not None else "exec",
                perf_counter() - t0,
            )
            raise
        if self.cache is not None:
            self.cache.put(key, result)
        self.stats.record(
            key.describe(),
            "miss" if self.cache is not None else "exec",
            perf_counter() - t0,
        )
        return result

    # -- sweeps --------------------------------------------------------------

    def submit_sweep(
        self,
        keys: Sequence[RunKey],
        *,
        skip_infeasible: bool = False,
    ) -> list[RunResult | None]:
        """Run every key, answering from the cache and fanning misses out
        over the process pool; results come back in input order.

        With ``skip_infeasible=True`` an infeasible budget yields ``None``
        in its slot instead of raising (sweeps over feasibility edges,
        e.g. the uncertainty study).
        """
        if self.batch:
            return self.submit_batched_sweep(keys, skip_infeasible=skip_infeasible)
        results: list[RunResult | None] = [None] * len(keys)
        pending = self._scan_cache(keys, results, skip_infeasible)
        if not pending:
            return results

        if self.jobs > 1 and len(pending) > 1:
            workers = min(self.jobs, len(pending))
            with self._pool(workers) as pool:
                outcomes = list(pool.map(_pool_run, [k for _, k in pending]))
        else:
            outcomes = [_pool_run(k) for _, k in pending]

        source = "miss" if self.cache is not None else "exec"
        for (i, key), (tag, payload, wall_s) in zip(pending, outcomes):
            self.stats.record(key.describe(), source, wall_s)
            if tag == "infeasible":
                budget_w, floor_w = payload
                exc = InfeasibleBudgetError(budget_w, floor_w)
                if self.cache is not None:
                    self.cache.put_infeasible(key, exc)
                if skip_infeasible:
                    continue
                raise exc
            assert isinstance(payload, RunResult)
            if self.cache is not None:
                self.cache.put(key, payload)
            results[i] = payload
        return results

    # -- batched sweeps ------------------------------------------------------

    def _scan_cache(
        self,
        keys: Sequence[RunKey],
        results: list,
        skip_infeasible: bool,
    ) -> list[tuple[int, RunKey]]:
        """The shared cache pass: fill ``results`` with hits, record
        their stats, and return the (index, key) list still to execute."""
        pending: list[tuple[int, RunKey]] = []
        for i, key in enumerate(keys):
            t0 = perf_counter()
            if self.cache is None:
                pending.append((i, key))
                continue
            try:
                cached = self.cache.get(key)
            except InfeasibleBudgetError:
                self.stats.record(key.describe(), "hit", perf_counter() - t0)
                if skip_infeasible:
                    continue
                raise
            if cached is not None:
                self.stats.record(key.describe(), "hit", perf_counter() - t0)
                results[i] = cached
            else:
                pending.append((i, key))
        return pending

    def submit_batched_sweep(
        self,
        keys: Sequence[RunKey],
        *,
        skip_infeasible: bool = False,
    ) -> list[RunResult | None]:
        """Run every key with cache misses batched per system/fleet/app.

        The cache pass is identical to :meth:`submit_sweep`.  Pending
        budgeted keys sharing a :func:`_group_signature` then execute as
        **one** vectorised :func:`~repro.core.runner.run_budgeted_batched`
        pass per group — one fleet build, one PMT + batched α-solve per
        scheme, one 2-D simulation.  Keys that cannot batch (uncapped
        runs, singleton groups) fall back to the per-key path.  With
        ``jobs > 1`` each distinct fleet ships to the worker pool once
        through :mod:`repro.exec.shared` (zero-copy shared-memory views)
        and each group is a single pool task.

        Results, cache payloads, key digests, and infeasible semantics
        are bit-identical to the sequential path; per-key stats record
        the group wall time amortised over its members.
        """
        results: list[RunResult | None] = [None] * len(keys)
        pending = self._scan_cache(keys, results, skip_infeasible)
        if not pending:
            return results

        # Partition: batched groups (>= 2 budgeted keys sharing a
        # signature) vs everything else on the per-key path.
        by_sig: dict[tuple, list[tuple[int, RunKey]]] = {}
        singles: list[tuple[int, RunKey]] = []
        for i, key in pending:
            if key.scheme is None:
                singles.append((i, key))
            else:
                by_sig.setdefault(_group_signature(key), []).append((i, key))
        groups: list[list[tuple[int, RunKey]]] = []
        for members in by_sig.values():
            if len(members) > 1:
                groups.append(members)
            else:
                singles.extend(members)
        singles.sort()

        #: index -> (tag, payload, amortised wall seconds)
        outcome: dict[int, tuple[str, object, float]] = {}

        def _fold_group(members, tagged, wall_s) -> None:
            per_key = wall_s / len(members)
            for (i, _key), (tag, payload) in zip(members, tagged):
                outcome[i] = (tag, payload, per_key)
            self.stats.record_batch(len(members), wall_s)

        n_tasks = len(groups) + len(singles)
        if self.jobs > 1 and n_tasks > 1:
            handles: dict[tuple, SharedFleet] = {}
            try:
                for members in groups:
                    spec = _spec(members[0][1])
                    if spec not in handles:
                        handles[spec] = export_fleet(_system_for(spec))
                workers = min(self.jobs, n_tasks)
                with self._pool(workers) as pool:
                    group_futs = [
                        pool.submit(
                            _pool_run_group,
                            handles[_spec(members[0][1])],
                            tuple(k for _, k in members),
                            self.shard,
                        )
                        for members in groups
                    ]
                    single_futs = [
                        pool.submit(_pool_run, key) for _, key in singles
                    ]
                    for members, fut in zip(groups, group_futs):
                        tagged, wall_s = fut.result()
                        _fold_group(members, tagged, wall_s)
                    for (i, _key), fut in zip(singles, single_futs):
                        tag, payload, wall_s = fut.result()
                        outcome[i] = (tag, payload, wall_s)
            finally:
                for handle in handles.values():
                    destroy_fleet(handle)
        else:
            for members in groups:
                t0 = perf_counter()
                tagged = _run_group([k for _, k in members], shard=self.shard)
                _fold_group(members, tagged, perf_counter() - t0)
            for i, key in singles:
                tag, payload, wall_s = _pool_run(key)
                outcome[i] = (tag, payload, wall_s)

        # Fold outcomes back in *pending* order so stats, cache writes,
        # and the first-infeasible raise match the sequential path.
        source = "miss" if self.cache is not None else "exec"
        for i, key in pending:
            tag, payload, wall_s = outcome[i]
            self.stats.record(key.describe(), source, wall_s)
            if tag == "infeasible":
                budget_w, floor_w = payload
                exc = InfeasibleBudgetError(budget_w, floor_w)
                if self.cache is not None:
                    self.cache.put_infeasible(key, exc)
                if skip_infeasible:
                    continue
                raise exc
            assert isinstance(payload, RunResult)
            if self.cache is not None:
                self.cache.put(key, payload)
            results[i] = payload
        return results

    # -- generic fan-out -----------------------------------------------------

    def map(self, fn: Callable, items: Iterable, *, label: str = "map") -> list:
        """Apply a picklable top-level function over ``items`` with the
        engine's pool (uncached — for experiment stages that do not
        produce :class:`RunResult`, e.g. Table 4 classification or the
        throughput schedulers)."""
        items = list(items)
        t0 = perf_counter()
        if self.jobs > 1 and len(items) > 1:
            workers = min(self.jobs, len(items))
            with self._pool(workers) as pool:
                out = list(pool.map(fn, items))
        else:
            out = [fn(item) for item in items]
        self.stats.record(f"{label}[{len(items)}]", "exec", perf_counter() - t0)
        return out


# -- process-global engine (configured by the CLI) ----------------------------

_engine: ExperimentEngine | None = None


def configure(
    *,
    jobs: int | None = 1,
    cache_dir: str | None = None,
    use_cache: bool | None = None,
    batch: bool = True,
    shard="auto",
    pin: bool | None = None,
) -> ExperimentEngine:
    """Install the process-global engine (called by the CLI front-end)."""
    global _engine
    _engine = ExperimentEngine(
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache, batch=batch,
        shard=shard, pin=pin,
    )
    return _engine


def get_engine() -> ExperimentEngine:
    """The process-global engine (a sequential, cacheless default until
    :func:`configure` is called)."""
    global _engine
    if _engine is None:
        _engine = ExperimentEngine()
    return _engine


def reset() -> None:
    """Drop the process-global engine (tests)."""
    global _engine
    _engine = None
