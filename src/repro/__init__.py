"""repro — variation-aware power budgeting for power-constrained HPC.

A from-scratch reproduction of *"Analyzing and Mitigating the Impact of
Manufacturing Variability in Power-Constrained Supercomputing"*
(Inadomi et al., SC '15), including every substrate the paper relies on:

* a manufacturing-variability and power model for four production
  microarchitectures (:mod:`repro.hardware`),
* emulated power measurement — RAPL on MSRs, BG/Q EMON, PowerInsight
  (:mod:`repro.measurement`) — and actuation — RAPL capping,
  cpufrequtils (:mod:`repro.control`),
* cluster configurations, topology and job scheduling
  (:mod:`repro.cluster`),
* a vectorised bulk-synchronous MPI application simulator
  (:mod:`repro.simmpi`) with the paper's seven benchmarks
  (:mod:`repro.apps`),
* the variation-aware budgeting framework itself — PVT, PMT
  calibration, the α-solve, six allocation schemes, and an end-to-end
  runner (:mod:`repro.core`),
* a caching, parallel experiment execution engine (:mod:`repro.exec`),
* a long-lived power-budget allocation service — daemon, typed
  versioned wire API, and client (:mod:`repro.service`),
* low-overhead structured tracing, metrics, and phase timelines
  (:mod:`repro.telemetry`),
* an experiment harness regenerating every table and figure
  (:mod:`repro.experiments`).

This module is the *stable public surface*: everything in ``__all__``
is covered by the API snapshot test (``tests/test_public_api.py``) and
the compatibility policy in ``docs/API.md``.  Reach into submodules for
internals at your own risk.

Quickstart::

    from repro import build_system, generate_pvt, get_app, run_budgeted

    system = build_system("ha8k", n_modules=256, seed=2015)
    pvt = generate_pvt(system)
    result = run_budgeted(system, get_app("mhd"), "vafs",
                          70.0 * system.n_modules, pvt=pvt)
    print(result.makespan_s, result.total_power_w, result.within_budget)

Schemes come from a registry — list them, derive variants, or register
your own::

    from repro import available_schemes, get_scheme
    fs_variant = get_scheme("vapc", actuation="fs")

Telemetry observes any of the above without changing results::

    from repro import telemetry
    telemetry.enable()
    run_budgeted(...)
    print(telemetry.report())
"""

import repro.telemetry as telemetry
from repro.apps import APPS, AppModel, get_app, list_apps
from repro.cluster import JobScheduler, System, build_hetero_system, build_system
from repro.core import (
    ALL_SCHEMES,
    BatchBudgetSolution,
    BudgetSolution,
    LinearPowerModel,
    PowerAllocation,
    PowerModelTable,
    PowerVariationTable,
    RunResult,
    Scheme,
    available_schemes,
    calibrate_pmt,
    classify_constraint,
    classify_constraint_batched,
    generate_pvt,
    get_scheme,
    instrument,
    list_schemes,
    naive_pmt,
    oracle_pmt,
    register_scheme,
    run_budgeted,
    run_budgeted_batched,
    run_uncapped,
    single_module_test_run,
    solve_alpha,
    solve_alpha_batched,
)
from repro.errors import (
    CappingUnsupportedError,
    ConfigurationError,
    InfeasibleBudgetError,
    MeasurementError,
    ReproError,
)
from repro.exec import ExperimentEngine, RunKey, configure, get_engine
from repro.service import ServiceClient, ServiceError, serve
from repro.hardware import (
    DeviceMap,
    DeviceType,
    Microarchitecture,
    Module,
    ModuleArray,
    OperatingPoint,
    PowerSignature,
    get_device_type,
    get_microarch,
    list_device_types,
    list_microarchs,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # apps
    "APPS",
    "AppModel",
    "get_app",
    "list_apps",
    # cluster
    "System",
    "build_system",
    "build_hetero_system",
    "JobScheduler",
    # core
    "ALL_SCHEMES",
    "BatchBudgetSolution",
    "BudgetSolution",
    "LinearPowerModel",
    "PowerAllocation",
    "PowerModelTable",
    "PowerVariationTable",
    "RunResult",
    "Scheme",
    "available_schemes",
    "calibrate_pmt",
    "classify_constraint",
    "classify_constraint_batched",
    "generate_pvt",
    "get_scheme",
    "instrument",
    "list_schemes",
    "naive_pmt",
    "oracle_pmt",
    "register_scheme",
    "run_budgeted",
    "run_budgeted_batched",
    "run_uncapped",
    "single_module_test_run",
    "solve_alpha",
    "solve_alpha_batched",
    # hardware
    "DeviceMap",
    "DeviceType",
    "Microarchitecture",
    "Module",
    "ModuleArray",
    "OperatingPoint",
    "PowerSignature",
    "get_device_type",
    "get_microarch",
    "list_device_types",
    "list_microarchs",
    # exec (experiment engine)
    "ExperimentEngine",
    "RunKey",
    "configure",
    "get_engine",
    # service (allocation daemon: repro serve + typed client)
    "ServiceClient",
    "ServiceError",
    "serve",
    # telemetry (submodule facade: telemetry.enable() / span() / report())
    "telemetry",
    # errors
    "ReproError",
    "ConfigurationError",
    "InfeasibleBudgetError",
    "MeasurementError",
    "CappingUnsupportedError",
]
