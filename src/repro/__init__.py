"""repro — variation-aware power budgeting for power-constrained HPC.

A from-scratch reproduction of *"Analyzing and Mitigating the Impact of
Manufacturing Variability in Power-Constrained Supercomputing"*
(Inadomi et al., SC '15), including every substrate the paper relies on:

* a manufacturing-variability and power model for four production
  microarchitectures (:mod:`repro.hardware`),
* emulated power measurement — RAPL on MSRs, BG/Q EMON, PowerInsight
  (:mod:`repro.measurement`) — and actuation — RAPL capping,
  cpufrequtils (:mod:`repro.control`),
* cluster configurations, topology and job scheduling
  (:mod:`repro.cluster`),
* a vectorised bulk-synchronous MPI application simulator
  (:mod:`repro.simmpi`) with the paper's seven benchmarks
  (:mod:`repro.apps`),
* the variation-aware budgeting framework itself — PVT, PMT
  calibration, the α-solve, six allocation schemes, and an end-to-end
  runner (:mod:`repro.core`),
* an experiment harness regenerating every table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import build_system, generate_pvt, get_app, run_budgeted

    system = build_system("ha8k", n_modules=256, seed=2015)
    pvt = generate_pvt(system)
    result = run_budgeted(system, get_app("mhd"), "vafs",
                          70.0 * system.n_modules, pvt=pvt)
    print(result.makespan_s, result.total_power_w, result.within_budget)
"""

from repro.apps import APPS, AppModel, get_app, list_apps
from repro.cluster import JobScheduler, System, build_system
from repro.core import (
    ALL_SCHEMES,
    BudgetSolution,
    LinearPowerModel,
    PowerAllocation,
    PowerModelTable,
    PowerVariationTable,
    RunResult,
    Scheme,
    calibrate_pmt,
    classify_constraint,
    generate_pvt,
    get_scheme,
    instrument,
    list_schemes,
    naive_pmt,
    oracle_pmt,
    run_budgeted,
    run_uncapped,
    single_module_test_run,
    solve_alpha,
)
from repro.errors import (
    CappingUnsupportedError,
    ConfigurationError,
    InfeasibleBudgetError,
    MeasurementError,
    ReproError,
)
from repro.hardware import (
    Microarchitecture,
    Module,
    ModuleArray,
    OperatingPoint,
    PowerSignature,
    get_microarch,
    list_microarchs,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # apps
    "APPS",
    "AppModel",
    "get_app",
    "list_apps",
    # cluster
    "System",
    "build_system",
    "JobScheduler",
    # core
    "ALL_SCHEMES",
    "BudgetSolution",
    "LinearPowerModel",
    "PowerAllocation",
    "PowerModelTable",
    "PowerVariationTable",
    "RunResult",
    "Scheme",
    "calibrate_pmt",
    "classify_constraint",
    "generate_pvt",
    "get_scheme",
    "instrument",
    "list_schemes",
    "naive_pmt",
    "oracle_pmt",
    "run_budgeted",
    "run_uncapped",
    "single_module_test_run",
    "solve_alpha",
    # hardware
    "Microarchitecture",
    "Module",
    "ModuleArray",
    "OperatingPoint",
    "PowerSignature",
    "get_microarch",
    "list_microarchs",
    # errors
    "ReproError",
    "ConfigurationError",
    "InfeasibleBudgetError",
    "MeasurementError",
    "CappingUnsupportedError",
]
