"""System-throughput study: power-aware vs worst-case resource management.

The paper's §7 end-state, measured: a job stream on a power-constrained,
overprovisioned machine, scheduled by (a) an RMAP-style power-aware
manager that admits jobs down to their fmin floors and re-partitions
power at every event, and (b) a worst-case-provisioned manager that
reserves each job's uncapped draw.  Both budget every running job with
the variation-aware machinery; only admission differs.

The gap widens with load: at low utilisation both admit everything; as
the queue builds, worst-case strands power and jobs wait.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.workloads import WorkloadSpec, generate_workload
from repro.core.resource_manager import PowerAwareRM
from repro.exec import (
    ExperimentEngine,
    SharedFleet,
    attach_fleet,
    destroy_fleet,
    export_fleet,
    fleet_pvt,
    get_engine,
)
from repro.experiments.common import ha8k, ha8k_pvt
from repro.util.tables import render_table

__all__ = ["ThroughputPoint", "run_throughput", "format_throughput", "main"]


@dataclass(frozen=True)
class ThroughputPoint:
    """Both managers' outcomes at one offered load.

    Power-aware admission runs *wider* (more concurrent jobs, each
    slower), so its win shows up in queue wait and mean turnaround —
    the user-facing metrics — while raw makespan can go either way.
    """

    mean_interarrival_s: float
    makespan_aware_s: float
    makespan_worst_s: float
    wait_aware_s: float
    wait_worst_s: float
    turnaround_aware_s: float
    turnaround_worst_s: float

    @property
    def makespan_gain(self) -> float:
        """Worst-case / power-aware makespan (>1 = overprovisioning wins)."""
        return self.makespan_worst_s / self.makespan_aware_s

    @property
    def turnaround_gain(self) -> float:
        """Worst-case / power-aware mean turnaround (>1 = wins)."""
        return self.turnaround_worst_s / self.turnaround_aware_s


def _run_schedule(
    args: tuple[int, int, float, float, str, SharedFleet | None],
) -> tuple[float, float, float]:
    """One (load, admission-policy) scheduling run (picklable fan-out
    unit).  With a :class:`SharedFleet` handle the worker attaches the
    parent-exported fleet (zero-copy views, PVT regenerated once per
    process — bit-identical); without one it rebuilds the cached
    system/PVT in-process."""
    n_modules, n_jobs, ia, cm_w, admission, handle = args
    if handle is not None:
        base, base_pvt = attach_fleet(handle), fleet_pvt(handle)
    else:
        base, base_pvt = ha8k(1920), ha8k_pvt(1920)
    system = base.subset(range(n_modules))
    pvt = base_pvt.take(range(n_modules))
    spec = WorkloadSpec(
        n_jobs=n_jobs,
        mean_interarrival_s=ia,
        min_modules=max(32, n_modules // 16),
        max_modules=n_modules // 3,
    )
    requests = generate_workload(spec, system.rng.rng(f"workload/{ia}"))
    res = PowerAwareRM(system, pvt, cm_w * n_modules, admission=admission).run(
        requests
    )
    return res.makespan_s, res.mean_wait_s, res.mean_turnaround_s


def run_throughput(
    n_modules: int = 512,
    n_jobs: int = 12,
    interarrivals: tuple[float, ...] = (30.0, 10.0, 3.0),
    cm_w: float = 62.0,
    engine: ExperimentEngine | None = None,
) -> list[ThroughputPoint]:
    """Sweep offered load and run both admission policies."""
    engine = engine if engine is not None else get_engine()
    # Worker fan-out ships the base fleet once via shared memory instead
    # of rebuilding 1,920 modules of variation in every worker.
    handle = (
        export_fleet(ha8k(1920))
        if engine.jobs > 1 and engine.batch
        else None
    )
    tasks = [
        (n_modules, n_jobs, ia, cm_w, admission, handle)
        for ia in interarrivals
        for admission in ("power-aware", "worst-case")
    ]
    try:
        outcomes = iter(
            engine.map(_run_schedule, tasks, label="throughput/schedule")
        )
    finally:
        if handle is not None:
            destroy_fleet(handle)
    points = []
    for ia in interarrivals:
        aware = next(outcomes)
        worst = next(outcomes)
        points.append(
            ThroughputPoint(
                mean_interarrival_s=ia,
                makespan_aware_s=aware[0],
                makespan_worst_s=worst[0],
                wait_aware_s=aware[1],
                wait_worst_s=worst[1],
                turnaround_aware_s=aware[2],
                turnaround_worst_s=worst[2],
            )
        )
    return points


def format_throughput(points: list[ThroughputPoint]) -> str:
    """Render the load sweep."""
    rows = [
        [
            f"{p.mean_interarrival_s:.0f}",
            f"{p.wait_aware_s:.0f} / {p.wait_worst_s:.0f}",
            f"{p.turnaround_aware_s:.0f} / {p.turnaround_worst_s:.0f}",
            f"{p.turnaround_gain:.2f}",
            f"{p.makespan_aware_s:.0f} / {p.makespan_worst_s:.0f}",
        ]
        for p in points
    ]
    table = render_table(
        [
            "interarrival [s]",
            "wait a/w [s]",
            "turnaround a/w [s]",
            "turnaround gain",
            "makespan a/w [s]",
        ],
        rows,
        title="Throughput under load: power-aware (a) vs worst-case (w) admission",
    )
    return (
        f"{table}\n-- power-aware admission cuts queue wait (and makespan "
        "under load); mean turnaround is roughly neutral — jobs start "
        "sooner but run wider and slower while sharing the budget"
    )


def main() -> None:  # pragma: no cover
    print(format_throughput(run_throughput()))


if __name__ == "__main__":  # pragma: no cover
    main()
