"""Fig 6 / Section 5.3 — accuracy of the PVT-based power model calibration.

For every benchmark, build the VaPc PMT (install-time *STREAM PVT + two
single-module test runs) and compare its per-module power predictions
against ground truth.  The paper reports prediction error "under 5 %"
for most benchmarks, with NPB-BT the exception at "about 10 %".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.registry import get_app, list_apps
from repro.core.pmt import prediction_error
from repro.core.schemes import get_scheme
from repro.experiments.common import ha8k, ha8k_pvt
from repro.util.tables import render_table

__all__ = ["CalibrationAccuracy", "run_fig6", "format_fig6", "main"]


@dataclass(frozen=True)
class CalibrationAccuracy:
    """Prediction-error statistics of one application's PMT."""

    app: str
    mean_error: float
    max_error: float
    mean_error_fmax: float
    mean_error_fmin: float


def run_fig6(
    n_modules: int = 1920, apps: tuple[str, ...] | None = None
) -> list[CalibrationAccuracy]:
    """Calibrate every app's PMT and score it against ground truth."""
    system = ha8k(n_modules)
    pvt = ha8k_pvt(n_modules)
    scheme = get_scheme("vapc")
    out: list[CalibrationAccuracy] = []
    for name in apps if apps is not None else tuple(list_apps()):
        app = get_app(name)
        pmt = scheme.build_pmt(system, app, pvt=pvt)
        truth = app.specialize(
            system.modules, system.rng.rng(f"app-residual/{app.name}")
        )
        err = prediction_error(pmt, truth, app)
        out.append(
            CalibrationAccuracy(
                app=name,
                mean_error=err["mean"],
                max_error=err["max"],
                mean_error_fmax=err["mean_fmax"],
                mean_error_fmin=err["mean_fmin"],
            )
        )
    return sorted(out, key=lambda a: a.max_error, reverse=True)


def format_fig6(rows: list[CalibrationAccuracy]) -> str:
    """Per-app error table, worst first."""
    table = render_table(
        ["App", "Mean error", "Max error", "Mean @fmax", "Mean @fmin"],
        [
            [
                r.app,
                f"{r.mean_error:.1%}",
                f"{r.max_error:.1%}",
                f"{r.mean_error_fmax:.1%}",
                f"{r.mean_error_fmin:.1%}",
            ]
            for r in rows
        ],
        title="Fig 6 / Sec 5.3: PMT prediction accuracy (PVT calibration)",
    )
    return f"{table}\n-- paper: under 5% for most benchmarks; NPB-BT about 10%"


def main() -> None:  # pragma: no cover
    print(format_fig6(run_fig6()))


if __name__ == "__main__":  # pragma: no cover
    main()
