"""Fig 3 — synchronisation overhead of MHD on 64 modules under uniform caps.

The paper plots, for Cm ∈ {No, 90, 80, 70, 60} W, each rank's cumulative
time in MPI_Sendrecv against its module power.  Two signatures:

* fast modules accumulate large wait time while the slowest rank waits
  almost nothing, so the worst-case variation of the *synchronisation*
  time is enormous (paper: Vt 16.4 @90 W up to 57.3 @60 W, vs only 1.55
  uncapped);
* total wait grows as the cap tightens (x-axis reaches ~40 s @60 W).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.registry import get_app
from repro.control.rapl_cap import RaplCapController

from repro.experiments.common import ha8k
from repro.experiments.fig2 import uniform_cap_ccpu
from repro.util.stats import worst_case_variation
from repro.util.tables import render_table

__all__ = ["Fig3Point", "run_fig3", "format_fig3", "main"]

#: Module power caps of the figure; None = unconstrained.
CM_GRID: tuple[int | None, ...] = (None, 90, 80, 70, 60)


@dataclass(frozen=True)
class Fig3Point:
    """One cap level of the figure."""

    cm_w: int | None
    sync_time_s: np.ndarray  # per-rank cumulative sendrecv wait
    module_power_w: np.ndarray
    sync_vt: float
    vp: float
    max_sync_s: float


#: Mean one-sided OS noise per compute phase.  Uncapped runs have no
#: frequency variation, so the residual synchronisation spread of the
#: paper's "Cm = No" series is operating-system noise.
OS_NOISE_FRAC = 0.004

#: Per-iteration oscillation of a RAPL-governed operating point (zero
#: when no cap is enforced).  This is what gives even the slowest rank a
#: small but non-zero MPI_Sendrecv time under a cap: when the fluctuation
#: occasionally pushes another module below it, the roles flip for an
#: iteration.  Sized to the slowest-vs-runner-up frequency gap (~7 % on
#: 64 modules), consistent with the multi-percent run-to-run performance
#: spread reported for RAPL-capped executions.
RAPL_ITER_JITTER = 0.08


def run_fig3(n_modules: int = 64, n_iters: int | None = 60) -> list[Fig3Point]:
    """Run 64-module MHD at each cap and collect per-rank sendrecv time."""
    system = ha8k(1920).subset(np.arange(n_modules))
    app = get_app("mhd")
    truth = app.specialize(system.modules, system.rng.rng("app-residual/mhd"))
    arch = system.arch
    out: list[Fig3Point] = []
    for cm in CM_GRID:
        if cm is None:
            rates = truth.work_rate(np.full(n_modules, arch.fmax))
            op_power = truth.module_power(arch.fmax, app.signature)
        else:
            ccpu = uniform_cap_ccpu(truth, app, cm)
            ctl = RaplCapController(truth, rng=system.rng.rng(f"fig3/{cm}"))
            enf = ctl.enforce(ccpu, app.signature)
            rates = truth.work_rate(enf.effective_freq_ghz)
            op_power = enf.cpu_power_w + truth.dram_power_at(enf.op)
        trace = app.run(
            rates,
            arch.fmax,
            n_iters=n_iters,
            noise_frac=OS_NOISE_FRAC,
            noise_rng=system.rng.rng(f"fig3/os-noise/{cm}"),
            rate_jitter_frac=0.0 if cm is None else RAPL_ITER_JITTER,
            jitter_rng=system.rng.rng(f"fig3/rapl-jitter/{cm}"),
        )
        wait = trace.wait_s
        out.append(
            Fig3Point(
                cm_w=cm,
                sync_time_s=wait,
                module_power_w=np.asarray(op_power),
                sync_vt=trace.wait_vt(floor_s=0.05),
                vp=worst_case_variation(op_power),
                max_sync_s=float(wait.max()),
            )
        )
    return out


def format_fig3(points: list[Fig3Point]) -> str:
    """Per-cap summary rows of the scatter."""
    rows = [
        [
            "No" if p.cm_w is None else p.cm_w,
            f"{p.max_sync_s:.1f}",
            f"{p.sync_vt:.2f}",
            f"{p.vp:.2f}",
        ]
        for p in points
    ]
    table = render_table(
        ["Cm [W]", "Max sync time [s]", "sync Vt", "Vp"],
        rows,
        title="Fig 3: MHD cumulative MPI_Sendrecv time, 64 modules",
    )
    paper = (
        "-- paper: Vt 1.55 (No), 16.37 (90W), 2.27 (80W), 22.37 (70W), 57.29 (60W);"
        " sync times up to ~40 s"
    )
    return f"{table}\n{paper}"


def plot_fig3(points: list[Fig3Point]) -> str:
    """ASCII rendition of the sync-time vs module-power scatter."""
    from repro.util.ascii_plot import scatter_plot

    return scatter_plot(
        {
            ("Cm=No" if p.cm_w is None else f"Cm={p.cm_w}W"): (
                p.sync_time_s,
                p.module_power_w,
            )
            for p in points
        },
        xlabel="total time in MPI_Sendrecv [s]",
        ylabel="module power [W]",
        title="Fig 3: MHD synchronisation time vs module power (64 modules)",
    )


def main() -> None:  # pragma: no cover
    points = run_fig3()
    print(format_fig3(points))
    print()
    print(plot_fig3(points))


if __name__ == "__main__":  # pragma: no cover
    main()
