"""Fig 4 — the variation-aware power budgeting workflow, executed.

Fig 4 is the paper's framework diagram; the faithful reproduction of a
diagram is the *running pipeline*.  This experiment walks one
application through all five steps of Section 5, printing each step's
inputs and outputs:

1. insert PMMDs;
2. two single-module test runs (fmax, fmin);
3. power model calibration (PVT → PMT);
4. the budgeting algorithm (α, module-level allocations);
5. the final application run under the allocations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.registry import get_app
from repro.core.budget import BudgetSolution, solve_alpha
from repro.core.pmmd import instrument
from repro.core.pmt import PowerModelTable, calibrate_pmt, prediction_error
from repro.core.runner import RunResult, run_budgeted
from repro.core.test_run import SingleModuleProfile, single_module_test_run
from repro.experiments.common import ha8k, ha8k_pvt

__all__ = ["Fig4Walkthrough", "run_fig4", "format_fig4", "main"]


@dataclass(frozen=True)
class Fig4Walkthrough:
    """Artifacts of one pass through the Fig 4 workflow."""

    app: str
    budget_w: float
    profile: SingleModuleProfile
    pmt: PowerModelTable
    pmt_mean_error: float
    solution: BudgetSolution
    result: RunResult
    region_energy_j: float


def run_fig4(
    app_name: str = "mhd",
    cm_w: float = 70.0,
    n_modules: int = 1920,
    n_iters: int | None = 30,
) -> Fig4Walkthrough:
    """Execute the five workflow steps for one (app, budget) pair."""
    system = ha8k(n_modules)
    pvt = ha8k_pvt(n_modules)
    arch = system.arch
    budget = float(cm_w) * n_modules

    # Step 1: instrument the application with PMMDs.
    inst = instrument(get_app(app_name))

    # Step 2: two low-cost single-module test runs.
    profile = single_module_test_run(system, inst.app, 0)

    # Step 3: power model calibration against the install-time PVT.
    pmt = calibrate_pmt(pvt, profile, fmin=arch.fmin, fmax=arch.fmax)
    truth = inst.app.specialize(
        system.modules, system.rng.rng(f"app-residual/{app_name}")
    )
    err = prediction_error(pmt, truth, inst.app)["mean"]

    # Step 4: the budgeting algorithm (α and per-module allocations).
    solution = solve_alpha(pmt.model, budget)

    # Step 5: the final run under the derived allocations (VaFs here).
    result = run_budgeted(system, inst, "vafs", budget, pvt=pvt, n_iters=n_iters)

    return Fig4Walkthrough(
        app=app_name,
        budget_w=budget,
        profile=profile,
        pmt=pmt,
        pmt_mean_error=err,
        solution=solution,
        result=result,
        region_energy_j=inst.records[-1].energy_j,
    )


def format_fig4(w: Fig4Walkthrough) -> str:
    """Narrate the five steps with their concrete numbers."""
    p = w.profile
    lines = [
        "Fig 4: variation-aware power budgeting workflow",
        "===============================================",
        f"application: {w.app}; power constraint {w.budget_w / 1e3:.1f} kW "
        f"over {w.pmt.n_modules} modules",
        "",
        "[1] PMMDs inserted after MPI_Init / before MPI_Finalize (region 'roi')",
        f"[2] single-module test runs on module {p.module_index}:",
        f"      fmax: CPU {p.p_cpu_max:.1f} W, DRAM {p.p_dram_max:.1f} W",
        f"      fmin: CPU {p.p_cpu_min:.1f} W, DRAM {p.p_dram_min:.1f} W",
        f"[3] PMT calibrated from the {w.pmt.n_modules}-entry PVT "
        f"(mean prediction error {w.pmt_mean_error:.1%})",
        f"[4] budgeting algorithm: alpha = {w.solution.alpha:.3f} -> common "
        f"frequency {w.solution.freq_ghz:.2f} GHz;",
        f"      module allocations {w.solution.pmodule_w.min():.1f}-"
        f"{w.solution.pmodule_w.max():.1f} W "
        f"(total {w.solution.total_allocated_w / 1e3:.1f} kW)",
        f"[5] final run (VaFs): {w.result.makespan_s:.1f} s, "
        f"{w.result.total_power_w / 1e3:.1f} kW, "
        f"within budget: {w.result.within_budget}; "
        f"region energy {w.region_energy_j / 1e6:.2f} MJ",
    ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_fig4(run_fig4()))


if __name__ == "__main__":  # pragma: no cover
    main()
