"""Fig 5 — power is linear in CPU frequency (the model's core assumption).

On 64 HA8K modules, sweep the DVFS ladder and fit module / CPU / DRAM
power (averaged across modules) against frequency.  The paper reports
R² = 0.999 (module), 0.999 (CPU) and 0.991–0.996 (DRAM) for *DGEMM and
MHD — this linearity is what licenses the two-point (fmax, fmin)
calibration of the PMT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.registry import get_app
from repro.experiments.common import ha8k
from repro.hardware.module import OperatingPoint
from repro.measurement.rapl import RaplMeter
from repro.util.stats import LinearFit, linear_fit
from repro.util.tables import render_table

__all__ = ["Fig5Fit", "run_fig5", "format_fig5", "main"]


@dataclass(frozen=True)
class Fig5Fit:
    """Linear fits of one application's power vs frequency sweep."""

    app: str
    freqs_ghz: np.ndarray
    cpu_w: np.ndarray  # mean across modules per frequency
    dram_w: np.ndarray
    module_w: np.ndarray
    cpu_fit: LinearFit
    dram_fit: LinearFit
    module_fit: LinearFit


def run_fig5(n_modules: int = 64, apps: tuple[str, ...] = ("dgemm", "mhd")) -> dict[str, Fig5Fit]:
    """Frequency sweep with RAPL measurement on 64 modules."""
    system = ha8k(1920).subset(np.arange(n_modules))
    arch = system.arch
    out: dict[str, Fig5Fit] = {}
    for name in apps:
        app = get_app(name)
        truth = app.specialize(system.modules, system.rng.rng(f"app-residual/{name}"))
        meter = RaplMeter(truth, rng=system.rng.rng(f"fig5/{name}"))
        freqs = np.asarray(arch.ladder.frequencies)
        cpu, dram = [], []
        for f in freqs:
            reading = meter.read(
                OperatingPoint.uniform(n_modules, float(f), app.signature),
                duration_s=1.0,
            )
            cpu.append(reading.cpu_w.mean())
            dram.append(reading.dram_w.mean())
        cpu = np.asarray(cpu)
        dram = np.asarray(dram)
        module = cpu + dram
        out[name] = Fig5Fit(
            app=name,
            freqs_ghz=freqs,
            cpu_w=cpu,
            dram_w=dram,
            module_w=module,
            cpu_fit=linear_fit(freqs, cpu),
            dram_fit=linear_fit(freqs, dram),
            module_fit=linear_fit(freqs, module),
        )
    return out


def format_fig5(fits: dict[str, Fig5Fit]) -> str:
    """R² per component, as annotated on the figure."""
    rows = []
    for f in fits.values():
        rows.append([f.app, "Module", f"{f.module_fit.r2:.4f}", f"{f.module_fit.slope:.1f}"])
        rows.append([f.app, "CPU", f"{f.cpu_fit.r2:.4f}", f"{f.cpu_fit.slope:.1f}"])
        rows.append([f.app, "DRAM", f"{f.dram_fit.r2:.4f}", f"{f.dram_fit.slope:.1f}"])
    table = render_table(
        ["App", "Component", "R^2", "Slope [W/GHz]"],
        rows,
        title="Fig 5: Power vs CPU frequency, 64 HA8K modules",
    )
    return f"{table}\n-- paper: R^2 >= 0.991 for every component of both apps"


def plot_fig5(fits: dict[str, Fig5Fit]) -> str:
    """ASCII rendition of the power-vs-frequency sweeps."""
    from repro.util.ascii_plot import series_plot

    panels = []
    for f in fits.values():
        panels.append(
            series_plot(
                f.freqs_ghz,
                {"module": f.module_w, "cpu": f.cpu_w, "dram": f.dram_w},
                xlabel="CPU frequency [GHz]",
                ylabel="power [W]",
                title=f"Fig 5 — {f.app} power vs frequency (64-module mean)",
                height=14,
            )
        )
    return "\n\n".join(panels)


def main() -> None:  # pragma: no cover
    fits = run_fig5()
    print(format_fig5(fits))
    print()
    print(plot_fig5(fits))


if __name__ == "__main__":  # pragma: no cover
    main()
