"""Shared constants and cached system builders for the experiment harness."""

from __future__ import annotations

from functools import lru_cache

from repro.cluster.configs import PAPER_STUDY_SIZES, build_system
from repro.cluster.system import System
from repro.core.pvt import PowerVariationTable, generate_pvt
from repro.exec import RunKey

__all__ = [
    "DEFAULT_SEED",
    "CS_GRID_KW",
    "CM_GRID_W",
    "PAPER_TABLE4",
    "ha8k",
    "ha8k_pvt",
    "ha8k_run_key",
    "paper_system",
]

#: Root seed of every published experiment in this repository.
DEFAULT_SEED = 2015

#: The paper's system-level constraints (Table 4 header), in kW.
CS_GRID_KW = (211, 192, 173, 154, 134, 115, 96)

#: The corresponding average module-level constraints (Table 4 row 2), W.
CM_GRID_W = (110, 100, 90, 80, 70, 60, 50)

#: Table 4, verbatim: which (app, Cm) cells the paper marks as meaningfully
#: constrained ("X"), insufficiently constrained ("•"), or inoperable ("--").
PAPER_TABLE4: dict[str, dict[int, str]] = {
    "dgemm": {110: "X", 100: "X", 90: "X", 80: "X", 70: "X", 60: "--", 50: "--"},
    "stream": {110: "•", 100: "X", 90: "X", 80: "X", 70: "--", 60: "--", 50: "--"},
    "mhd": {110: "•", 100: "•", 90: "X", 80: "X", 70: "X", 60: "X", 50: "--"},
    "bt": {110: "•", 100: "•", 90: "•", 80: "X", 70: "X", 60: "X", 50: "X"},
    "sp": {110: "•", 100: "•", 90: "•", 80: "X", 70: "X", 60: "X", 50: "X"},
    "mvmc": {110: "•", 100: "•", 90: "•", 80: "X", 70: "X", 60: "X", 50: "--"},
}


@lru_cache(maxsize=8)
def ha8k(n_modules: int = 1920, seed: int = DEFAULT_SEED) -> System:
    """The HA8K evaluation system (cached — variation is immutable)."""
    return build_system("ha8k", n_modules=n_modules, seed=seed)


@lru_cache(maxsize=8)
def ha8k_pvt(n_modules: int = 1920, seed: int = DEFAULT_SEED) -> PowerVariationTable:
    """The HA8K install-time PVT (cached alongside the system)."""
    return generate_pvt(ha8k(n_modules, seed))


def ha8k_run_key(
    app: str,
    scheme: str | None,
    budget_w: float | None,
    *,
    n_modules: int = 1920,
    n_iters: int | None = None,
    seed: int = DEFAULT_SEED,
) -> RunKey:
    """A :class:`RunKey` on the HA8K evaluation system (the sweeps'
    common case: default seed, default knobs)."""
    return RunKey(
        system="ha8k",
        n_modules=n_modules,
        seed=seed,
        app=app,
        scheme=scheme,
        budget_w=budget_w,
        n_iters=n_iters,
    )


@lru_cache(maxsize=8)
def paper_system(name: str, seed: int = DEFAULT_SEED) -> System:
    """One of the paper's systems at the size the study actually measured."""
    return build_system(name, n_modules=PAPER_STUDY_SIZES[name.lower()], seed=seed)
