"""Fig 1 — processor power and performance variation on Cab, Vulcan, Teller.

Single-socket NPB-EP, uncapped, measured with each site's native
technique (RAPL / EMON / PowerInsight).  For every socket (node board on
Vulcan) the figure plots

* slowdown [%] compared to the fastest unit, and
* power increase [%] compared to the most efficient unit,

with units sorted by performance.  Published headline spreads: up to
23 % power variation on Cab, 11 % on Vulcan, 21 % power + 17 %
performance on Teller — and essentially no performance variation on the
frequency-binned Intel/IBM parts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.registry import get_app
from repro.experiments.common import paper_system
from repro.hardware.module import OperatingPoint
from repro.util.tables import render_table

__all__ = ["Fig1Series", "run_fig1", "format_fig1", "main"]


@dataclass(frozen=True)
class Fig1Series:
    """One panel of Fig 1 (one system)."""

    system: str
    n_units: int
    unit: str  # "socket" or "node board"
    slowdown_pct: np.ndarray  # sorted by performance, best first
    power_increase_pct: np.ndarray  # same ordering
    max_power_variation_pct: float
    max_perf_variation_pct: float


def _run_system(name: str, unit: str) -> Fig1Series:
    system = paper_system(name)
    app = get_app("ep")
    truth = app.specialize(system.modules, system.rng.rng("app-residual/ep"))
    arch = system.arch
    n = system.n_modules

    # Performance: single-socket EP time ∝ 1 / (fmax · perf factor).
    rates = truth.work_rate(np.full(n, arch.fmax))
    times = 1.0 / rates

    # Power: each site's native meter, at the uncapped operating point.
    # On Cab only CPU power is available (DRAM blocked by the BIOS);
    # Fig 1 uses CPU power on every system anyway.
    op = OperatingPoint.uniform(n, arch.fmax, app.signature)
    meter = system.meter()
    duration = 1.0 if system.meter_kind == "rapl" else None
    reading = meter.read(op, duration_s=duration)
    power = reading.cpu_w
    if unit == "node board":
        # EMON reports per node board; aggregate times the same way.
        times = times.reshape(power.shape[0], -1).mean(axis=1)

    order = np.argsort(times)  # fastest first, as the paper sorts
    times = times[order]
    power = power[order]

    slowdown = (times / times.min() - 1.0) * 100.0
    increase = (power / power.min() - 1.0) * 100.0
    return Fig1Series(
        system=name,
        n_units=len(times),
        unit=unit,
        slowdown_pct=slowdown,
        power_increase_pct=increase,
        max_power_variation_pct=float(increase.max()),
        max_perf_variation_pct=float(slowdown.max()),
    )


def run_fig1() -> dict[str, Fig1Series]:
    """All three panels: Cab (A), Vulcan (B), Teller (C)."""
    return {
        "cab": _run_system("cab", "socket"),
        "vulcan": _run_system("vulcan", "node board"),
        "teller": _run_system("teller", "socket"),
    }


def format_fig1(series: dict[str, Fig1Series]) -> str:
    """Summary rows: the per-system headline variation percentages."""
    rows = [
        [
            s.system,
            f"{s.n_units} {s.unit}s",
            f"{s.max_power_variation_pct:.1f}%",
            f"{s.max_perf_variation_pct:.1f}%",
        ]
        for s in series.values()
    ]
    table = render_table(
        ["System", "Units", "Max power variation", "Max perf variation"],
        rows,
        title="Fig 1: CPU power & performance variation (single-socket EP)",
    )
    paper = "paper: cab 23%/~0%, vulcan 11%/~0%, teller 21%/17%"
    return f"{table}\n-- {paper}"


def plot_fig1(series: dict[str, Fig1Series]) -> str:
    """ASCII rendition: one panel per system, sorted by performance."""
    from repro.util.ascii_plot import scatter_plot

    panels = []
    for s in series.values():
        ids = np.arange(s.n_units, dtype=float)
        panels.append(
            scatter_plot(
                {
                    "slowdown %": (ids, s.slowdown_pct),
                    "power increase %": (ids, s.power_increase_pct),
                },
                xlabel=f"{s.unit} ids (sorted by performance)",
                ylabel="%",
                title=f"Fig 1 — {s.system}",
                height=14,
            )
        )
    return "\n\n".join(panels)


def main() -> None:  # pragma: no cover
    series = run_fig1()
    print(format_fig1(series))
    print()
    print(plot_fig1(series))


if __name__ == "__main__":  # pragma: no cover
    main()
