"""Export experiment results to CSV/JSON for external plotting.

Every figure/table runner returns structured dataclasses; this module
flattens them into records (lists of flat dicts) and writes them out.
Use from code or via the converters registry::

    from repro.experiments.export import to_records, write_csv
    from repro.experiments.fig7 import run_fig7

    write_csv(to_records(run_fig7()), "fig7.csv")
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["to_records", "write_csv", "write_json"]


def _flatten(record: dict) -> dict:
    """Expand dict-valued fields into dotted keys; drop array fields."""
    out: dict[str, object] = {}
    for key, value in record.items():
        if isinstance(value, dict):
            for sub, v in value.items():
                out[f"{key}.{sub}"] = v
        elif isinstance(value, np.ndarray):
            continue  # raw scatter arrays are not tabular
        elif isinstance(value, (np.floating, np.integer)):
            out[key] = value.item()
        else:
            out[key] = value
    return out


def to_records(result: object) -> list[dict]:
    """Flatten an experiment result into a list of plain-dict records.

    Accepts a dataclass, a list of dataclasses, or a dict of either;
    nested per-scheme dicts become dotted columns, numpy arrays are
    dropped (export the summary, not the raw scatter).
    """
    if is_dataclass(result) and not isinstance(result, type):
        return [_flatten(asdict(result))]
    if isinstance(result, (list, tuple)):
        records: list[dict] = []
        for item in result:
            records.extend(to_records(item))
        return records
    if isinstance(result, dict):
        records = []
        for key, item in result.items():
            for rec in to_records(item):
                records.append({"group": key, **rec})
        return records
    raise ConfigurationError(
        f"cannot export object of type {type(result).__name__}"
    )


def write_csv(records: list[dict], path: str | Path) -> Path:
    """Write records as CSV (union of keys as the header)."""
    if not records:
        raise ConfigurationError("no records to write")
    path = Path(path)
    fields: list[str] = []
    for rec in records:
        for key in rec:
            if key not in fields:
                fields.append(key)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(records)
    return path


def _jsonable(value: object) -> object:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def write_json(records: list[dict], path: str | Path) -> Path:
    """Write records as a JSON array."""
    if not records:
        raise ConfigurationError("no records to write")
    path = Path(path)
    path.write_text(json.dumps([_jsonable(r) for r in records], indent=1))
    return path
