"""Fig 8 — detailed behaviour of the VaFs scheme.

(i)  Power–performance scatter for *DGEMM and MHD at every evaluated
     constraint: VaFs *reduces* execution-time variation (Vt → ≈1.0) by
     *increasing* power variation (Vp grows with tightening budgets) —
     the mirror image of Fig 2(iii)'s uniform capping, where Vt grew and
     Vp shrank.  Paper: DGEMM @134 kW Vt 1.12 / Vp 1.41 (vs 1.64 / 1.21
     under uniform caps); MHD Vt ≈ 1.00–1.01 with Vp up to 1.47.

(ii) MHD on 64 modules: cumulative MPI synchronisation time per rank.
     With the common frequency pinned, the enormous sync-time variation
     of Fig 3 collapses (paper: Vt 1.63–1.76, similar to the uncapped
     1.55).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.registry import get_app
from repro.core.budget import solve_alpha
from repro.core.runner import run_budgeted, run_uncapped
from repro.core.schemes import get_scheme
from repro.experiments.common import ha8k, ha8k_pvt
from repro.experiments.fig3 import OS_NOISE_FRAC
from repro.util.stats import worst_case_variation
from repro.util.tables import render_table

__all__ = [
    "Fig8PowerPerfPoint",
    "Fig8SyncPoint",
    "Fig8Result",
    "run_fig8",
    "format_fig8",
    "main",
]

#: Constraint grids of panel (i) (module-average watts; Table 4 X cells).
CM_GRID_I: dict[str, tuple[int, ...]] = {
    "dgemm": (110, 100, 90, 80, 70),
    "mhd": (90, 80, 70, 60),
}

#: Cap levels of panel (ii); None = unconstrained.
CM_GRID_II: tuple[int | None, ...] = (None, 90, 80, 70, 60)


@dataclass(frozen=True)
class Fig8PowerPerfPoint:
    """Panel (i): one (app, Cs) point, with the raw per-module scatter."""

    app: str
    cm_w: int
    vt: float
    vp: float
    mean_norm_time: float
    norm_time: np.ndarray
    module_power_w: np.ndarray


@dataclass(frozen=True)
class Fig8SyncPoint:
    """Panel (ii): one cap level of the 64-module MHD study."""

    cm_w: int | None
    max_sync_s: float
    sync_vt: float
    vp: float


@dataclass(frozen=True)
class Fig8Result:
    """Both panels."""

    power_perf: dict[str, list[Fig8PowerPerfPoint]]
    sync: list[Fig8SyncPoint]


def _panel_i(n_modules: int, n_iters: int | None) -> dict[str, list[Fig8PowerPerfPoint]]:
    system = ha8k(n_modules)
    pvt = ha8k_pvt(n_modules)
    out: dict[str, list[Fig8PowerPerfPoint]] = {}
    for app_name, cms in CM_GRID_I.items():
        app = get_app(app_name)
        base = run_uncapped(system, app, n_iters=n_iters)
        pts = []
        for cm in cms:
            r = run_budgeted(
                system, app, "vafs", float(cm) * n_modules, pvt=pvt, n_iters=n_iters
            )
            norm = r.trace.total_s / base.makespan_s
            pts.append(
                Fig8PowerPerfPoint(
                    app=app_name,
                    cm_w=cm,
                    vt=r.vt,
                    vp=r.vp,
                    mean_norm_time=float(norm.mean()),
                    norm_time=norm,
                    module_power_w=r.module_power_w,
                )
            )
        out[app_name] = pts
    return out


def _panel_ii(n_iters: int) -> list[Fig8SyncPoint]:
    n = 64
    system = ha8k(1920).subset(np.arange(n))
    pvt = ha8k_pvt(1920).take(np.arange(n))
    app = get_app("mhd")
    truth = app.specialize(system.modules, system.rng.rng("app-residual/mhd"))
    arch = system.arch
    scheme = get_scheme("vafs")
    out: list[Fig8SyncPoint] = []
    for cm in CM_GRID_II:
        if cm is None:
            freq = arch.fmax
            op_freq = np.full(n, freq)
        else:
            pmt = scheme.build_pmt(system, app, pvt=pvt)
            sol = solve_alpha(pmt.model, float(cm) * n)
            freq = float(arch.ladder.quantize_down(sol.freq_ghz))
            op_freq = np.full(n, freq)
        rates = truth.work_rate(op_freq)
        trace = app.run(
            rates,
            arch.fmax,
            n_iters=n_iters,
            noise_frac=OS_NOISE_FRAC,
            noise_rng=system.rng.rng(f"fig8/os-noise/{cm}"),
        )
        from repro.hardware.module import OperatingPoint

        op = OperatingPoint(freq_ghz=op_freq, duty=np.ones(n), signature=app.signature)
        power = truth.module_power_at(op)
        out.append(
            Fig8SyncPoint(
                cm_w=cm,
                max_sync_s=float(trace.wait_s.max()),
                sync_vt=trace.wait_vt(floor_s=0.05),
                vp=worst_case_variation(power),
            )
        )
    return out


def run_fig8(
    n_modules: int = 1920,
    n_iters: int | None = None,
    sync_iters: int = 60,
) -> Fig8Result:
    """Run both panels."""
    return Fig8Result(
        power_perf=_panel_i(n_modules, n_iters),
        sync=_panel_ii(sync_iters),
    )


def format_fig8(result: Fig8Result) -> str:
    """Render both panels' summary statistics."""
    rows = [
        [p.app, p.cm_w, f"{p.vt:.2f}", f"{p.vp:.2f}", f"{p.mean_norm_time:.2f}"]
        for pts in result.power_perf.values()
        for p in pts
    ]
    t1 = render_table(
        ["App", "Cm [W]", "Vt", "Vp", "mean t/t0"],
        rows,
        title="Fig 8(i): VaFs power-performance characteristics",
    )
    rows = [
        [
            "No" if p.cm_w is None else p.cm_w,
            f"{p.max_sync_s:.1f}",
            f"{p.sync_vt:.2f}",
            f"{p.vp:.2f}",
        ]
        for p in result.sync
    ]
    t2 = render_table(
        ["Cm [W]", "Max sync [s]", "sync Vt", "Vp"],
        rows,
        title="Fig 8(ii): VaFs MHD synchronisation overhead, 64 modules",
    )
    notes = (
        "-- paper (i): VaFs turns (Vt 1.64, Vp 1.21) into (Vt 1.12, Vp 1.41)"
        " for DGEMM @134 kW; MHD Vt stays 1.00-1.01 while Vp grows to 1.47\n"
        "-- paper (ii): sync-time Vt collapses to 1.63-1.76 (uncapped: 1.55)"
    )
    return f"{t1}\n{t2}\n{notes}"


def plot_fig8(result: Fig8Result, app: str = "dgemm") -> str:
    """ASCII rendition of panel (i): under VaFs each cap's points stack
    into a vertical column (uniform time, spread power) — the mirror
    image of ``plot_fig2``'s panel (iii)."""
    from repro.util.ascii_plot import scatter_plot

    pts = result.power_perf[app]
    return scatter_plot(
        {f"Cm={p.cm_w}W": (p.norm_time, p.module_power_w) for p in pts},
        xlabel="normalised execution time",
        ylabel="module power [W]",
        title=f"Fig 8(i) {app}: VaFs per-rank time vs module power",
    )


def main() -> None:  # pragma: no cover
    result = run_fig8()
    print(format_fig8(result))
    for app in result.power_perf:
        print()
        print(plot_fig8(result, app))


if __name__ == "__main__":  # pragma: no cover
    main()
