"""Table 2 — architectures under consideration.

Regenerates the system-description table from the cluster registry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.configs import SYSTEM_FACTORIES, build_system
from repro.util.tables import render_table

__all__ = ["run_table2", "format_table2", "main"]

_SITES = {
    "cab": "Cab (LLNL)",
    "vulcan": "BG/Q Vulcan (LLNL)",
    "teller": "Teller (SNL)",
    "ha8k": "HA8K (Quartetto) Kyushu Univ.",
}

_METER_LABEL = {"rapl": "RAPL", "powerinsight": "PI", "emon": "EMON"}


@dataclass(frozen=True)
class Table2Row:
    """One system's specification row."""

    site: str
    microarchitecture: str
    total_nodes: int
    procs_per_node: int
    cores_per_proc: int
    cpu_frequency_ghz: float
    tdp_w: float
    power_measurement: str


def run_table2() -> list[Table2Row]:
    """Build every registered system (tiny instances) and read its specs."""
    rows = []
    for name in ("cab", "vulcan", "teller", "ha8k"):
        full = build_system(name, n_modules=SYSTEM_FACTORIES[name](None, 0).n_modules)
        rows.append(
            Table2Row(
                site=_SITES[name],
                microarchitecture=f"{full.arch.vendor} {full.arch.model}",
                total_nodes=full.n_nodes,
                procs_per_node=full.procs_per_node,
                cores_per_proc=full.arch.cores_per_proc,
                cpu_frequency_ghz=full.arch.fmax,
                tdp_w=full.arch.tdp_w,
                power_measurement=_METER_LABEL[full.meter_kind],
            )
        )
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    """Render Table 2."""
    return render_table(
        [
            "Site",
            "Microarchitecture",
            "Total Nodes",
            "Procs/Node",
            "Cores/Proc",
            "CPU Freq [GHz]",
            "TDP [W]",
            "Power Msrmt.",
        ],
        [
            [
                r.site,
                r.microarchitecture,
                r.total_nodes,
                r.procs_per_node,
                r.cores_per_proc,
                r.cpu_frequency_ghz,
                r.tdp_w,
                r.power_measurement,
            ]
            for r in rows
        ],
        title="Table 2: Architectures Under Consideration",
    )


def main() -> None:  # pragma: no cover
    print(format_table2(run_table2()))


if __name__ == "__main__":  # pragma: no cover
    main()
