"""Fleet-scale sweep — the paper's result at 5×–100× the evaluation system.

The HA8K evaluation covered 1,920 modules; exascale procurement plans
(the paper's motivation, Section 1) put *hundreds of thousands* of
modules under one power bound.  This experiment re-runs the core
comparison — Naïve TDP budgeting vs the variation-aware oracle schemes —
on synthetic HA8K fleets of 10k–200k modules and asks whether the
headline effects (frequency variation Vf under uniform caps, the
execution-time spread Vt it induces, and the speedup from
variation-aware allocation) persist, grow, or wash out with scale.

Scale is only tractable because everything in the loop is vectorised
over modules: the variation draw, the PMTs, the α-solve
(:func:`~repro.core.budget.solve_alpha` with its ``chunk_modules``
memory knob, so peak temporary memory stays bounded), RAPL cap
resolution, and the simulator's bulk-synchronous fast path
(:mod:`repro.simmpi.fastpath`), which executes the application as
whole-fleet array operations instead of per-rank Python.  Planning goes
through the uniform :meth:`Scheme.allocate
<repro.core.schemes.Scheme.allocate>` interface — each scheme's
:class:`~repro.core.schemes.PowerAllocation` is computed up front and
handed to :func:`~repro.core.runner.run_budgeted` for actuation.  A
100k-module run completes in seconds; ``benchmarks/test_fleet.py``
tracks the ranks/sec trajectory.

Only the oracle schemes (VaPcOr, VaFsOr) join Naïve here: they bound
what variation-awareness can buy without dragging PVT generation into
the scaling loop, keeping the sweep a pure test of the allocation
machinery at scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import repro.telemetry as telemetry
from repro.apps import get_app
from repro.cluster.configs import build_system
from repro.core.runner import run_budgeted, run_budgeted_batched
from repro.core.schemes import get_scheme
from repro.exec import get_engine
from repro.experiments.common import DEFAULT_SEED
from repro.service.api import AllocationRequest
from repro.util.tables import render_table

__all__ = [
    "FLEET_SIZES",
    "FLEET_SCHEMES",
    "FleetPoint",
    "run_fleet_point",
    "run_fleet",
    "format_fleet",
    "main",
]

#: Synthetic fleet sizes (modules).  1,920 is the real HA8K anchor.
FLEET_SIZES = (10_000, 50_000, 100_000, 200_000)

#: Naïve baseline plus the two oracle variation-aware schemes.
FLEET_SCHEMES = ("naive", "vapcor", "vafsor")

#: Module-level constraint for the sweep: Cm = 80 W, the tightest budget
#: where every paper benchmark is still meaningfully constrained
#: (Table 4 row "80" is all "X").
FLEET_CM_W = 80.0

#: Short runs — Vf/Vt/speedup are iteration-count invariant for the
#: synchronised codes once wait patterns converge.
FLEET_ITERS = 20

#: Default α-solve / power-evaluation chunk size (modules).
FLEET_CHUNK = 65536


@dataclass(frozen=True)
class FleetPoint:
    """One fleet size's outcome.

    ``vf`` / ``vt`` / ``speedup`` / ``within_budget`` are keyed by scheme
    name; ``speedup`` is relative to Naïve (so ``speedup["naive"]`` is
    1.0 by construction).
    """

    n_modules: int
    app: str
    budget_kw: float
    fleet_fmax_power_kw: float
    vf: dict[str, float]
    vt: dict[str, float]
    speedup: dict[str, float]
    within_budget: dict[str, bool]
    wall_s: float

    @property
    def ranks_per_sec(self) -> float:
        """Simulated ranks per wall-clock second (all scheme runs)."""
        return self.n_modules * len(self.speedup) / self.wall_s


def run_fleet_point(
    n_modules: int,
    *,
    app: str = "bt",
    cm_w: float = FLEET_CM_W,
    n_iters: int = FLEET_ITERS,
    seed: int = DEFAULT_SEED,
    chunk_modules: int = FLEET_CHUNK,
    batch: bool | None = None,
    shard="auto",
) -> FleetPoint:
    """Run the scheme comparison on one synthetic fleet size.

    Builds a fresh (uncached) HA8K-architecture system of ``n_modules``,
    runs each scheme in :data:`FLEET_SCHEMES` deterministically
    (``noisy=False`` — which also routes the simulation through the
    vectorised fast path), and collects the variation statistics.

    ``batch`` (default: the global engine's ``--batch`` setting) runs
    all three schemes as one config-batched pass — one truth view, one
    2-D simulation — instead of three sequential runs; results are
    bit-identical either way.

    ``shard`` forwards to :func:`~repro.core.runner.run_budgeted_batched`
    (batched path only): ``"auto"`` tiles the (schemes, modules)
    simulation plane once the fleet outgrows the cache working-set
    budget; a :class:`~repro.simmpi.sharding.ShardSpec` pins the tiling;
    ``None`` forces unsharded.  Layout only — results are bit-identical.
    """
    if batch is None:
        batch = get_engine().batch
    t0 = perf_counter()
    with telemetry.run_scope(
        f"fleet-{n_modules}", f"fleet {app} n={n_modules:,} Cm={cm_w:.0f}W"
    ), telemetry.span("fleet.point", modules=n_modules, app=app):
        # One typed request per scheme, through the exact builder the
        # allocation service applies to wire requests: app and scheme
        # names are registry-validated and normalised here, so a bad
        # name fails with the same typed ServiceError a service client
        # gets — CLI, wire, and experiment runs are one code path.
        requests = [
            AllocationRequest.build(
                fleet_id=f"fleet-{n_modules}",
                app=app,
                scheme=scheme,
                budgets_w=[cm_w * n_modules],
                noisy=False,
            )
            for scheme in FLEET_SCHEMES
        ]
        app = requests[0].app
        budget_w = requests[0].budgets_w[0]
        system = build_system("ha8k", n_modules=n_modules, seed=seed)
        model = get_app(app)

        if batch:
            # One vectorised pass over all schemes: planning is still one
            # (chunk-bounded) α-solve per scheme, but actuation feeds a
            # single (n_schemes, n_modules) simulation.
            outs = run_budgeted_batched(
                system,
                model,
                [(r.scheme, r.budgets_w[0]) for r in requests],
                n_iters=n_iters,
                noisy=False,
                chunk_modules=chunk_modules,
                shard=shard,
            )
            for out in outs:
                if isinstance(out, Exception):
                    raise out
            runs = dict(zip(FLEET_SCHEMES, outs))
        else:
            # Plan first, actuate second — both through the array-first
            # interfaces: each scheme's PowerAllocation is one vectorised
            # (chunk-bounded) pass over the fleet columns, then
            # run_budgeted consumes it without re-planning.
            plans = {
                scheme: get_scheme(scheme).allocate(
                    system,
                    model,
                    budget_w,
                    noisy=False,
                    chunk_modules=chunk_modules,
                )
                for scheme in FLEET_SCHEMES
            }
            runs = {
                scheme: run_budgeted(
                    system,
                    model,
                    scheme,
                    budget_w,
                    n_iters=n_iters,
                    noisy=False,
                    chunk_modules=chunk_modules,
                    allocation=plans[scheme],
                )
                for scheme in FLEET_SCHEMES
            }
        naive = runs["naive"]
        # Uncapped fleet draw at fmax — the headroom the budget cuts
        # into — accumulated chunk-wise so no fleet-sized temporary is
        # ever built.
        fmax_kw = (
            system.modules.total_module_power_w(
                system.arch.fmax, model.signature, chunk_modules=chunk_modules
            )
            / 1e3
        )
        wall = perf_counter() - t0
        point = FleetPoint(
            n_modules=n_modules,
            app=app,
            budget_kw=budget_w / 1e3,
            fleet_fmax_power_kw=fmax_kw,
            vf={s: r.vf for s, r in runs.items()},
            vt={s: r.vt for s, r in runs.items()},
            speedup={
                s: 1.0 if s == "naive" else r.speedup_over(naive)
                for s, r in runs.items()
            },
            within_budget={s: bool(r.within_budget) for s, r in runs.items()},
            wall_s=wall,
        )
        if telemetry.enabled():
            for s in FLEET_SCHEMES:
                telemetry.gauge(f"fleet.vf[{s}]", point.vf[s])
                telemetry.gauge(f"fleet.vt[{s}]", point.vt[s])
                telemetry.gauge(f"fleet.speedup[{s}]", point.speedup[s])
            telemetry.observe("fleet.ranks_per_sec", point.ranks_per_sec)
        return point


def run_fleet(
    sizes: tuple[int, ...] = FLEET_SIZES,
    *,
    app: str = "bt",
    cm_w: float = FLEET_CM_W,
    n_iters: int = FLEET_ITERS,
    seed: int = DEFAULT_SEED,
    chunk_modules: int = FLEET_CHUNK,
    batch: bool | None = None,
) -> list[FleetPoint]:
    """The full size sweep (one :class:`FleetPoint` per entry)."""
    return [
        run_fleet_point(
            n,
            app=app,
            cm_w=cm_w,
            n_iters=n_iters,
            seed=seed,
            chunk_modules=chunk_modules,
            batch=batch,
        )
        for n in sizes
    ]


def format_fleet(points: list[FleetPoint]) -> str:
    """Render the sweep plus the scale-trend takeaway."""
    rows = [
        [
            f"{p.n_modules:,}",
            f"{p.budget_kw:.0f}",
            f"{p.fleet_fmax_power_kw:.0f}",
            f"{p.vf['naive']:.3f}",
            f"{p.vt['naive']:.3f}",
            f"{p.speedup['vapcor']:.2f}",
            f"{p.speedup['vafsor']:.2f}",
            f"{p.ranks_per_sec / 1e3:.0f}k",
        ]
        for p in points
    ]
    table = render_table(
        [
            "Modules",
            "Cs [kW]",
            "fmax [kW]",
            "Vf naive",
            "Vt naive",
            "VaPcOr [x]",
            "VaFsOr [x]",
            "ranks/s",
        ],
        rows,
        title=(
            f"Fleet scaling: {points[0].app} @ Cm = {FLEET_CM_W:.0f} W "
            "(Naive Vf/Vt; oracle speedups over Naive)"
        ),
    )
    first, last = points[0], points[-1]
    trend = (
        f"-- Vf (naive) {first.vf['naive']:.3f} -> {last.vf['naive']:.3f} and "
        f"VaFsOr speedup {first.speedup['vafsor']:.2f}x -> "
        f"{last.speedup['vafsor']:.2f}x from {first.n_modules:,} to "
        f"{last.n_modules:,} modules: variation-aware budgeting matters "
        "*more* at exascale width, since the worst-case module governs "
        "the whole fleet's finish time."
    )
    return f"{table}\n{trend}"


def main() -> None:  # pragma: no cover
    print(format_fleet(run_fleet()))


if __name__ == "__main__":  # pragma: no cover
    main()
