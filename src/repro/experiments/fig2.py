"""Fig 2 — module power and performance variation on HA8K (1,920 modules).

Three panel groups, for *DGEMM and MHD:

(i)   Uncapped per-module power: CPU, DRAM and module power with their
      mean, standard deviation and worst-case variation Vp.
      Paper: *DGEMM module 112.8 W ± 4.5, Vp 1.30; CPU 100.8 W;
      DRAM 12.0 W, Vp 2.84.  MHD module 96.4 W, CPU 83.9 W.

(ii)  Under uniform module power caps Cm: average CPU frequency vs CPU
      power per module; Vf grows as Cm tightens (DGEMM: 1.20 @110 W →
      1.40 @70 W; MHD: up to 1.76 @60 W).

(iii) Under the same caps: per-rank execution time (normalised to the
      uncapped run) vs module power; Vt reaches 1.64 for *DGEMM
      (no synchronisation) but stays ≈1.0 for MHD (halo exchanges hide
      the variation as wait time).

The caps follow the paper's Section 4 methodology: Cm is uniform per
module and the CPU cap Ccpu is derived offline from the application's
average power characteristics (Ccpu = Cm − predicted DRAM power at the
target operating point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppModel
from repro.apps.registry import get_app
from repro.cluster.system import System
from repro.control.rapl_cap import RaplCapController
from repro.core.budget import solve_alpha
from repro.core.model import LinearPowerModel
from repro.core.runner import run_uncapped
from repro.experiments.common import ha8k
from repro.hardware.module import ModuleArray
from repro.util.stats import VariationSummary, variation_summary, worst_case_variation
from repro.util.tables import render_table

__all__ = [
    "Fig2PowerPanel",
    "Fig2CapPoint",
    "Fig2Result",
    "run_fig2",
    "format_fig2",
    "main",
    "uniform_cap_ccpu",
]

#: The per-app Cm grids the paper plots in panels (ii)/(iii).
CM_GRID: dict[str, tuple[int, ...]] = {
    "dgemm": (110, 100, 90, 80, 70),
    "mhd": (90, 80, 70, 60),
}


@dataclass(frozen=True)
class Fig2PowerPanel:
    """Panel (i): uncapped power characteristics of one application."""

    app: str
    cpu: VariationSummary
    dram: VariationSummary
    module: VariationSummary


@dataclass(frozen=True)
class Fig2CapPoint:
    """Panels (ii)+(iii) at one module power cap.

    The per-module arrays carry the raw scatter the paper plots:
    ``avg_freq_ghz`` vs ``cpu_power_w`` is panel (ii), ``norm_time`` vs
    ``module_power_w`` is panel (iii).
    """

    app: str
    cm_w: int
    ccpu_w: float
    vf: float
    vp_cpu: float
    vt: float
    vp_module: float
    mean_freq_ghz: float
    mean_norm_time: float
    avg_freq_ghz: np.ndarray
    cpu_power_w: np.ndarray
    norm_time: np.ndarray
    module_power_w: np.ndarray


@dataclass(frozen=True)
class Fig2Result:
    """All panels for both applications."""

    power_panels: dict[str, Fig2PowerPanel]
    cap_points: dict[str, list[Fig2CapPoint]]


def _truth(system: System, app: AppModel) -> ModuleArray:
    return app.specialize(system.modules, system.rng.rng(f"app-residual/{app.name}"))


def _average_model(truth: ModuleArray, app: AppModel) -> LinearPowerModel:
    """The app's average (variation-blind) power profile — the paper's
    offline characterisation used to split Cm into Ccpu + DRAM."""
    arch = truth.arch
    return LinearPowerModel(
        fmin=arch.fmin,
        fmax=arch.fmax,
        p_cpu_max=float(truth.cpu_power(arch.fmax, app.signature).mean()),
        p_cpu_min=float(truth.cpu_power(arch.fmin, app.signature).mean()),
        p_dram_max=float(truth.dram_power(arch.fmax, app.signature).mean()),
        p_dram_min=float(truth.dram_power(arch.fmin, app.signature).mean()),
    )


def uniform_cap_ccpu(truth: ModuleArray, app: AppModel, cm_w: float) -> float:
    """Derive the uniform CPU cap for a module-level constraint Cm.

    Solves the average power model for α at budget Cm per module, then
    Ccpu = Cm − predicted DRAM power at that α — reproducing the paper's
    published pairs (e.g. MHD Cm=90 W → Ccpu≈77.3 W).
    """
    avg = _average_model(truth, app)
    sol = solve_alpha(avg, cm_w)
    return float(cm_w - sol.pdram_w[0])


def _cap_point(
    system: System, app: AppModel, cm_w: int, uncapped_makespan: float,
    n_iters: int | None,
) -> Fig2CapPoint:
    truth = _truth(system, app)
    ccpu = uniform_cap_ccpu(truth, app, cm_w)
    controller = RaplCapController(
        truth, rng=system.rng.rng(f"fig2/{app.name}/{cm_w}")
    )
    enf = controller.enforce(ccpu, app.signature)

    rates = truth.work_rate(enf.effective_freq_ghz)
    trace = app.run(rates, system.arch.fmax, n_iters=n_iters)
    norm = trace.total_s / uncapped_makespan

    # The paper's x-axis is "the average CPU frequency for a module across
    # all RAPL time steps": clock-modulated windows average linearly into
    # the telemetry (freq x duty), even though their *performance* cost is
    # super-linear (captured separately in Vt).
    avg_freq = enf.op.freq_ghz * enf.op.duty
    dram = truth.dram_power_at(enf.op)
    module_power = enf.cpu_power_w + dram
    return Fig2CapPoint(
        app=app.name,
        cm_w=cm_w,
        ccpu_w=ccpu,
        vf=worst_case_variation(avg_freq),
        vp_cpu=worst_case_variation(enf.cpu_power_w),
        vt=worst_case_variation(trace.total_s),
        vp_module=worst_case_variation(module_power),
        mean_freq_ghz=float(avg_freq.mean()),
        mean_norm_time=float(norm.mean()),
        avg_freq_ghz=avg_freq,
        cpu_power_w=enf.cpu_power_w,
        norm_time=norm,
        module_power_w=module_power,
    )


def run_fig2(n_modules: int = 1920, n_iters: int | None = None) -> Fig2Result:
    """Run all three panel groups for *DGEMM and MHD."""
    system = ha8k(n_modules)
    panels: dict[str, Fig2PowerPanel] = {}
    points: dict[str, list[Fig2CapPoint]] = {}
    for name, cms in CM_GRID.items():
        app = get_app(name)
        base = run_uncapped(system, app, n_iters=n_iters)
        panels[name] = Fig2PowerPanel(
            app=name,
            cpu=variation_summary(base.cpu_power_w),
            dram=variation_summary(base.dram_power_w),
            module=variation_summary(base.module_power_w),
        )
        points[name] = [
            _cap_point(system, app, cm, base.makespan_s, n_iters) for cm in cms
        ]
    return Fig2Result(power_panels=panels, cap_points=points)


def format_fig2(result: Fig2Result) -> str:
    """Render the (i) summaries and the (ii)/(iii) per-cap statistics."""
    out: list[str] = []
    rows = []
    for p in result.power_panels.values():
        for comp, s in (("CPU", p.cpu), ("DRAM", p.dram), ("Module", p.module)):
            rows.append(
                [p.app, comp, f"{s.mean:.1f}", f"{s.std:.2f}", f"{s.worst_case:.2f}"]
            )
    out.append(
        render_table(
            ["App", "Component", "Avg [W]", "Std", "Vp"],
            rows,
            title="Fig 2(i): Uncapped power characteristics (1,920 modules)",
        )
    )
    out.append(
        "-- paper: DGEMM module 112.8/4.51/1.30, CPU 100.8, DRAM 12.0/1.50/2.84;"
        " MHD module 96.4/3.89/1.29, CPU 83.9"
    )
    rows = []
    for pts in result.cap_points.values():
        for p in pts:
            rows.append(
                [
                    p.app,
                    p.cm_w,
                    f"{p.ccpu_w:.1f}",
                    f"{p.vf:.2f}",
                    f"{p.vt:.2f}",
                    f"{p.vp_module:.2f}",
                    f"{p.mean_freq_ghz:.2f}",
                    f"{p.mean_norm_time:.2f}",
                ]
            )
    out.append(
        render_table(
            ["App", "Cm [W]", "Ccpu [W]", "Vf", "Vt", "Vp", "mean f", "mean t/t0"],
            rows,
            title="Fig 2(ii)+(iii): Variation under uniform power caps",
        )
    )
    out.append(
        "-- paper (ii): DGEMM Vf 1.20@110W → 1.40@70W; MHD Vf up to 1.76@60W"
    )
    out.append(
        "-- paper (iii): DGEMM Vt up to 1.64@70W; MHD Vt ≈ 1.00 at every cap"
    )
    return "\n".join(out)


def plot_fig2(result: Fig2Result, app: str = "dgemm") -> str:
    """ASCII renditions of panels (ii) and (iii) for one application."""
    from repro.util.ascii_plot import scatter_plot

    pts = result.cap_points[app]
    panel_ii = scatter_plot(
        {f"Cm={p.cm_w}W": (p.avg_freq_ghz, p.cpu_power_w) for p in pts},
        xlabel="avg CPU frequency [GHz]",
        ylabel="CPU power [W]",
        title=f"Fig 2(ii) {app}: frequency vs power under uniform caps",
    )
    panel_iii = scatter_plot(
        {f"Cm={p.cm_w}W": (p.norm_time, p.module_power_w) for p in pts},
        xlabel="normalised execution time",
        ylabel="module power [W]",
        title=f"Fig 2(iii) {app}: per-rank time vs module power",
    )
    return f"{panel_ii}\n\n{panel_iii}"


def main() -> None:  # pragma: no cover
    result = run_fig2()
    print(format_fig2(result))
    for app in result.cap_points:
        print()
        print(plot_fig2(result, app))


if __name__ == "__main__":  # pragma: no cover
    main()
