"""Table 1 — power measurement techniques.

Regenerates the capability matrix from the measurement layer's own
specs (so the table stays true to what the code implements).
"""

from __future__ import annotations

from repro.measurement.base import TABLE1_SPECS, MeterSpec
from repro.util.tables import render_table

__all__ = ["run_table1", "format_table1", "main"]


def run_table1() -> list[MeterSpec]:
    """The three techniques in the paper's order."""
    return [TABLE1_SPECS[k] for k in ("rapl", "powerinsight", "emon")]


def format_table1(specs: list[MeterSpec]) -> str:
    """Render Table 1."""
    return render_table(
        ["Technique", "Reported", "Granularity", "Power Capping"],
        [s.as_row() for s in specs],
        title="Table 1: Power Measurement Techniques",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table1(run_table1()))


if __name__ == "__main__":  # pragma: no cover
    main()
