"""Table 4 — which (application, power constraint) scenarios are meaningful.

For every benchmark and every system constraint Cs, classify the cell:

* ``X``  — the budget binds: 0 ≤ α < 1 (the evaluated scenarios);
* ``•``  — not sufficiently power constrained (α ≥ 1, no capping needed);
* ``--`` — so limited the modules cannot run even at fmin (α < 0).

Classification uses the application's *true* power profile on the
evaluation system (the paper knew feasibility from its offline power
characterisation), so the regenerated matrix is a genuine prediction of
the model — compare against :data:`repro.experiments.PAPER_TABLE4`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.registry import get_app
from repro.core.budget import classify_constraint_batched
from repro.core.model import LinearPowerModel
from repro.exec import ExperimentEngine, get_engine
from repro.experiments.common import CM_GRID_W, CS_GRID_KW, PAPER_TABLE4, ha8k
from repro.util.tables import render_table

__all__ = ["run_table4", "format_table4", "main", "Table4Result"]

_APP_ORDER = ("dgemm", "stream", "mhd", "bt", "sp", "mvmc")
_APP_LABEL = {
    "dgemm": "*DGEMM",
    "stream": "*STREAM",
    "mhd": "MHD",
    "bt": "NPB-BT",
    "sp": "NPB-SP",
    "mvmc": "mVMC",
}


@dataclass(frozen=True)
class Table4Result:
    """The regenerated matrix plus its agreement with the paper."""

    cells: dict[str, dict[int, str]]  # app -> Cm -> "X"/"•"/"--"
    matches_paper: bool
    mismatches: list[tuple[str, int, str, str]]  # (app, cm, ours, paper)


def _true_model(system, app) -> LinearPowerModel:
    """The app's actual endpoint powers on every module (no measurement)."""
    truth = app.specialize(system.modules, system.rng.rng(f"app-residual/{app.name}"))
    arch = system.arch
    return LinearPowerModel(
        fmin=arch.fmin,
        fmax=arch.fmax,
        p_cpu_max=truth.cpu_power(arch.fmax, app.signature),
        p_cpu_min=truth.cpu_power(arch.fmin, app.signature),
        p_dram_max=truth.dram_power(arch.fmax, app.signature),
        p_dram_min=truth.dram_power(arch.fmin, app.signature),
    )


def _classify_app(args: tuple[str, int]) -> tuple[str, dict[int, str]]:
    """Classify one application's whole row (picklable fan-out unit)."""
    name, n_modules = args
    model = _true_model(ha8k(n_modules), get_app(name))
    # One batched pass classifies the whole row: the model's floor and
    # ceiling are reduced once instead of once per grid point.
    marks = classify_constraint_batched(
        model, [cm * n_modules for cm in CM_GRID_W]
    )
    return name, dict(zip(CM_GRID_W, marks))


def run_table4(
    n_modules: int = 1920, engine: ExperimentEngine | None = None
) -> Table4Result:
    """Classify every (app, Cs) cell on the HA8K evaluation system."""
    engine = engine if engine is not None else get_engine()
    rows = engine.map(
        _classify_app,
        [(name, n_modules) for name in _APP_ORDER],
        label="table4/classify",
    )
    cells: dict[str, dict[int, str]] = dict(rows)
    mismatches: list[tuple[str, int, str, str]] = [
        (name, cm, cells[name][cm], PAPER_TABLE4[name][cm])
        for name in _APP_ORDER
        for cm in CM_GRID_W
        if cells[name][cm] != PAPER_TABLE4[name][cm]
    ]
    return Table4Result(
        cells=cells, matches_paper=not mismatches, mismatches=mismatches
    )


def format_table4(result: Table4Result) -> str:
    """Render the constraint matrix the way Table 4 lays it out."""
    headers = ["Cs [kW]"] + [str(cs) for cs in CS_GRID_KW]
    rows: list[list[object]] = [["Ave. Cm [W]"] + [str(cm) for cm in CM_GRID_W]]
    for name in _APP_ORDER:
        rows.append([_APP_LABEL[name]] + [result.cells[name][cm] for cm in CM_GRID_W])
    table = render_table(headers, rows, title="Table 4: Power constraints on HA8K")
    verdict = (
        "matrix matches the paper exactly"
        if result.matches_paper
        else f"MISMATCHES vs paper: {result.mismatches}"
    )
    return f"{table}\n-- {verdict}"


def main() -> None:  # pragma: no cover
    print(format_table4(run_table4()))


if __name__ == "__main__":  # pragma: no cover
    main()
