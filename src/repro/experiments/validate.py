"""One-shot validation report: every headline claim, paper vs measured.

Runs the full evaluation at published scale and scores each tracked
quantity against its band (the quantitative backbone of EXPERIMENTS.md).
``python -m repro validate`` prints the PASS/FAIL table; the function
returns the structured report for programmatic use.
"""

from __future__ import annotations

from dataclasses import dataclass



from repro.apps.registry import get_app
from repro.core.pmt import prediction_error
from repro.core.runner import run_budgeted, run_uncapped
from repro.core.schemes import get_scheme
from repro.experiments.common import ha8k, ha8k_pvt
from repro.experiments.fig7 import run_fig7, summarize_fig7
from repro.experiments.fig9 import run_fig9, violations
from repro.experiments.table4 import run_table4
from repro.util.tables import render_table

__all__ = ["Check", "run_validation", "format_validation", "main"]


@dataclass(frozen=True)
class Check:
    """One validated quantity."""

    name: str
    paper: str
    measured: float
    lo: float
    hi: float

    @property
    def passed(self) -> bool:
        """Whether the measured value lies inside its acceptance band."""
        return self.lo <= self.measured <= self.hi


def run_validation(n_modules: int = 1920, n_iters: int | None = 15) -> list[Check]:
    """Execute the headline experiments and score every tracked claim."""
    system = ha8k(n_modules)
    pvt = ha8k_pvt(n_modules)
    checks: list[Check] = []

    def add(name, paper, measured, lo, hi):
        checks.append(Check(name, paper, float(measured), lo, hi))

    # -- Fig 2(i): uncapped power statistics --------------------------------
    dgemm = run_uncapped(system, get_app("dgemm"), n_iters=2)
    add("DGEMM CPU mean [W]", "100.8", dgemm.cpu_power_w.mean(), 97.0, 104.0)
    add("DGEMM module mean [W]", "112.8", dgemm.module_power_w.mean(), 109.0, 117.0)
    add("DGEMM module Vp", "1.30", dgemm.vp, 1.18, 1.45)
    from repro.util.stats import worst_case_variation

    add(
        "DGEMM DRAM Vp",
        "2.84",
        worst_case_variation(dgemm.dram_power_w),
        2.2,
        3.4,
    )
    mhd = run_uncapped(system, get_app("mhd"), n_iters=2)
    add("MHD CPU mean [W]", "83.9", mhd.cpu_power_w.mean(), 81.0, 87.0)
    add("MHD module mean [W]", "96.4", mhd.module_power_w.mean(), 93.0, 100.0)

    # -- Table 4 -------------------------------------------------------------
    t4 = run_table4(n_modules)
    add("Table 4 mismatches", "0", len(t4.mismatches), 0, 0)

    # -- Fig 6 / §5.3: calibration accuracy ----------------------------------
    bt = get_app("bt")
    bt_pmt = get_scheme("vapc").build_pmt(system, bt, pvt=pvt)
    bt_truth = bt.specialize(system.modules, system.rng.rng("app-residual/bt"))
    add(
        "BT max prediction error",
        "~10%",
        prediction_error(bt_pmt, bt_truth, bt)["max"],
        0.06,
        0.14,
    )

    # -- Fig 7: speedups ------------------------------------------------------
    cells = run_fig7(n_modules, n_iters=n_iters)
    s = summarize_fig7(cells)
    add("VaFs max speedup", "5.40x", s.max["vafs"], 4.2, 6.8)
    add("VaFs mean speedup", "1.86x", s.mean["vafs"], 1.6, 2.6)
    add("VaPc max speedup", "4.03x", s.max["vapc"], 3.2, 5.6)
    add("VaPc mean speedup", "1.72x", s.mean["vapc"], 1.5, 2.4)
    n_vafs_wins = sum(
        1 for c in cells if c.speedup["vafs"] >= c.speedup["vapc"] - 1e-9
    )
    add("VaFs>=VaPc cells (of 23)", "21 of 23", n_vafs_wins, 18, 23)

    # -- Fig 9: adherence -------------------------------------------------------
    v = violations(run_fig9(n_modules, n_iters=3))
    only_naive_stream = all(
        app == "stream" and scheme == "naive" for app, _, scheme, _ in v
    )
    add("violations beyond Naive/*STREAM", "0", 0 if only_naive_stream else 1, 0, 0)
    add("Naive/*STREAM violations", "3 levels", len(v), 1, 3)

    # -- Fig 8(i): the Vt/Vp trade ------------------------------------------------
    vafs = run_budgeted(
        system, get_app("dgemm"), "vafs", 70.0 * n_modules, pvt=pvt, n_iters=5
    )
    add("DGEMM@70W VaFs Vt", "1.12", vafs.vt, 1.0, 1.15)
    add("DGEMM@70W VaFs Vp", "1.41", vafs.vp, 1.25, 1.55)

    return checks


def format_validation(checks: list[Check]) -> str:
    """Render the PASS/FAIL table."""
    rows = [
        [
            c.name,
            c.paper,
            f"{c.measured:.3f}",
            f"[{c.lo:g}, {c.hi:g}]",
            "PASS" if c.passed else "FAIL",
        ]
        for c in checks
    ]
    table = render_table(
        ["Check", "Paper", "Measured", "Band", "Verdict"],
        rows,
        title="Validation: paper headline claims vs this reproduction",
    )
    n_pass = sum(c.passed for c in checks)
    return f"{table}\n-- {n_pass}/{len(checks)} checks pass"


def main() -> None:  # pragma: no cover
    print(format_validation(run_validation()))


if __name__ == "__main__":  # pragma: no cover
    main()
