"""Hardware overprovisioning under a facility power bound (§2.2 context).

The paper situates itself in the overprovisioning literature (Patki et
al., Sarood et al.): buy more nodes than the facility can power at TDP,
then choose, per job, how many to run and how hard to power each.  This
experiment reproduces the canonical trade-off on our substrate: with a
*fixed facility power*, sweep the module count — more modules each get
less power (lower frequency) but share the work; fewer modules run
faster each but do more work apiece.

Strong scaling: total application work is fixed, so per-rank work
scales as ``n_ref / n``.  The optimum is interior whenever the
application is not perfectly CPU-bound: the frequency-insensitive
fraction favours wide-and-slow, the α floor caps how slow a module may
go, and communication pushes back against width.

Variation-awareness composes with overprovisioning: at every width the
per-module allocations come from the VaFs machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.registry import get_app
from repro.core.runner import run_budgeted
from repro.errors import InfeasibleBudgetError
from repro.experiments.common import ha8k, ha8k_pvt
from repro.util.tables import render_table

__all__ = ["OverprovisionPoint", "run_overprovisioning", "format_overprovisioning", "main"]


@dataclass(frozen=True)
class OverprovisionPoint:
    """Outcome at one module count under the fixed facility power."""

    n_modules: int
    cm_w: float  # facility power / modules
    feasible: bool
    makespan_s: float | None
    freq_ghz: float | None


def run_overprovisioning(
    app_name: str = "mhd",
    facility_kw: float = 60.0,
    module_grid: tuple[int, ...] = (512, 640, 768, 896, 1024, 1280, 1536, 1792, 1920),
    *,
    ref_modules: int = 1024,
    n_iters: int = 40,
) -> list[OverprovisionPoint]:
    """Sweep module count at fixed facility power with VaFs budgeting.

    ``ref_modules`` anchors the strong-scaling work: at any width n the
    per-rank work is scaled by ``ref_modules / n``.
    """
    app_base = get_app(app_name)
    budget_w = facility_kw * 1e3
    points: list[OverprovisionPoint] = []
    for n in module_grid:
        system = ha8k(1920).subset(np.arange(n))
        pvt = ha8k_pvt(1920).take(np.arange(n))
        # Strong scaling: fixed total work split across n ranks.
        app = app_base.with_(
            iter_seconds_fmax=app_base.iter_seconds_fmax * ref_modules / n
        )
        try:
            r = run_budgeted(system, app, "vafs", budget_w, pvt=pvt, n_iters=n_iters)
        except InfeasibleBudgetError:
            points.append(
                OverprovisionPoint(
                    n_modules=n,
                    cm_w=budget_w / n,
                    feasible=False,
                    makespan_s=None,
                    freq_ghz=None,
                )
            )
            continue
        points.append(
            OverprovisionPoint(
                n_modules=n,
                cm_w=budget_w / n,
                feasible=True,
                makespan_s=r.makespan_s,
                freq_ghz=r.solution.freq_ghz,
            )
        )
    return points


def best_point(points: list[OverprovisionPoint]) -> OverprovisionPoint:
    """The width with the smallest makespan."""
    feasible = [p for p in points if p.feasible]
    if not feasible:
        raise InfeasibleBudgetError(0.0, 0.0, message="no feasible width")
    return min(feasible, key=lambda p: p.makespan_s)


def format_overprovisioning(
    points: list[OverprovisionPoint], app_name: str = "mhd"
) -> str:
    """Render the trade-off curve."""
    rows = []
    for p in points:
        rows.append(
            [
                p.n_modules,
                f"{p.cm_w:.1f}",
                f"{p.freq_ghz:.2f}" if p.feasible else "--",
                f"{p.makespan_s:.1f}" if p.feasible else "infeasible",
            ]
        )
    table = render_table(
        ["Modules", "W/module", "freq [GHz]", "makespan [s]"],
        rows,
        title=f"Overprovisioning: {app_name} under a fixed facility budget",
    )
    best = best_point(points)
    note = (
        f"-- optimum at {best.n_modules} modules "
        f"({best.cm_w:.0f} W each, {best.freq_ghz:.2f} GHz)"
    )
    return f"{table}\n{note}"


def main() -> None:  # pragma: no cover
    points = run_overprovisioning()
    print(format_overprovisioning(points))


if __name__ == "__main__":  # pragma: no cover
    main()
