"""Fig 7 — speedup of every budgeting scheme over the Naïve baseline.

For each benchmark and each meaningfully constrained scenario (the "X"
cells of Table 4), run all six schemes on the 1,920-module HA8K and
report the speedup relative to Naïve.

Paper headlines: VaFs max 5.40X (NPB-BT @ 96 kW), VaFs mean 1.86X;
VaPc max 4.03X (NPB-SP @ 96 kW), VaPc mean 1.72X; VaFs ≥ VaPc except
*STREAM @154 kW and mVMC @115 kW; VaPc trails the oracle VaPcOr most
visibly for NPB-BT (worst calibration accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schemes import list_schemes
from repro.exec import ExperimentEngine, get_engine
from repro.experiments.common import PAPER_TABLE4, ha8k_run_key
from repro.util.tables import render_table

__all__ = ["Fig7Cell", "Fig7Summary", "run_fig7", "summarize_fig7", "format_fig7", "main"]

_APP_ORDER = ("dgemm", "stream", "mhd", "bt", "sp", "mvmc")


@dataclass(frozen=True)
class Fig7Cell:
    """One (application, constraint) group of bars."""

    app: str
    cm_w: int
    cs_kw: float
    speedup: dict[str, float]  # scheme -> speedup over naive
    within_budget: dict[str, bool]


@dataclass(frozen=True)
class Fig7Summary:
    """Aggregate speedup statistics across all evaluated cells."""

    mean: dict[str, float]
    max: dict[str, float]
    max_cell: dict[str, tuple[str, int]]  # scheme -> (app, cm) of its max


def evaluated_cells(apps: tuple[str, ...] = _APP_ORDER) -> list[tuple[str, int]]:
    """The (app, Cm) pairs the paper marks 'X' in Table 4."""
    return [
        (app, cm)
        for app in apps
        for cm, cell in PAPER_TABLE4[app].items()
        if cell == "X"
    ]


def run_fig7(
    n_modules: int = 1920,
    n_iters: int | None = None,
    apps: tuple[str, ...] = _APP_ORDER,
    engine: ExperimentEngine | None = None,
) -> list[Fig7Cell]:
    """Execute the full scheme-comparison sweep through the engine."""
    engine = engine if engine is not None else get_engine()
    cell_specs = evaluated_cells(apps)
    schemes = list_schemes()
    keys = [
        ha8k_run_key(
            app_name, scheme, float(cm) * n_modules,
            n_modules=n_modules, n_iters=n_iters,
        )
        for app_name, cm in cell_specs
        for scheme in schemes
    ]
    results = iter(engine.submit_sweep(keys))
    cells: list[Fig7Cell] = []
    for app_name, cm in cell_specs:
        by_scheme = {scheme: next(results) for scheme in schemes}
        naive = by_scheme["naive"]
        speedup = {
            s: 1.0 if s == "naive" else by_scheme[s].speedup_over(naive)
            for s in schemes
        }
        within = {s: bool(by_scheme[s].within_budget) for s in schemes}
        cells.append(
            Fig7Cell(
                app=app_name,
                cm_w=cm,
                cs_kw=float(cm) * n_modules / 1e3,
                speedup=speedup,
                within_budget=within,
            )
        )
    return cells


def summarize_fig7(cells: list[Fig7Cell]) -> Fig7Summary:
    """The headline aggregates the paper quotes."""
    schemes = [s for s in list_schemes() if s != "naive"]
    mean: dict[str, float] = {}
    mx: dict[str, float] = {}
    mx_cell: dict[str, tuple[str, int]] = {}
    for s in schemes:
        vals = np.array([c.speedup[s] for c in cells])
        mean[s] = float(vals.mean())
        best = int(vals.argmax())
        mx[s] = float(vals[best])
        mx_cell[s] = (cells[best].app, cells[best].cm_w)
    return Fig7Summary(mean=mean, max=mx, max_cell=mx_cell)


def format_fig7(cells: list[Fig7Cell]) -> str:
    """Render the bar groups plus the aggregate summary."""
    schemes = list_schemes()
    rows = [
        [c.app, f"{c.cs_kw:.0f}", c.cm_w]
        + [f"{c.speedup[s]:.2f}" for s in schemes]
        for c in cells
    ]
    table = render_table(
        ["App", "Cs [kW]", "Cm [W]"] + [s for s in schemes],
        rows,
        title="Fig 7: Speedup over the Naive budgeting scheme",
    )
    s = summarize_fig7(cells)
    summary = (
        f"-- VaFs: max {s.max['vafs']:.2f}X at {s.max_cell['vafs']}, "
        f"mean {s.mean['vafs']:.2f}X (paper: 5.40X, 1.86X)\n"
        f"-- VaPc: max {s.max['vapc']:.2f}X at {s.max_cell['vapc']}, "
        f"mean {s.mean['vapc']:.2f}X (paper: 4.03X, 1.72X)"
    )
    return f"{table}\n{summary}"


def plot_fig7(cells: list[Fig7Cell], apps: tuple[str, ...] = ("bt", "dgemm")) -> str:
    """ASCII bar groups for a subset of applications (Fig 7's shape)."""
    from repro.util.ascii_plot import bar_groups

    groups = {
        f"{c.app} @{c.cs_kw:.0f} kW": {s: c.speedup[s] for s in list_schemes()}
        for c in cells
        if c.app in apps
    }
    return bar_groups(
        groups, title="Fig 7: speedup over Naive", reference=1.0, unit="x"
    )


def main() -> None:  # pragma: no cover
    cells = run_fig7()
    print(format_fig7(cells))
    print()
    print(plot_fig7(cells))


if __name__ == "__main__":  # pragma: no cover
    main()
