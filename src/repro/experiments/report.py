"""One-command reproduction report.

``python -m repro report`` regenerates the headline experiments and
writes a self-contained markdown report (validation PASS/FAIL table,
Table 4, the Fig 7 speedup table, Fig 9 adherence, and the calibration
accuracy table) — the artifact to attach to a reproduction claim.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.fig6_calibration import format_fig6, run_fig6
from repro.experiments.fig7 import format_fig7, run_fig7
from repro.experiments.fig9 import format_fig9, run_fig9
from repro.experiments.table4 import format_table4, run_table4
from repro.experiments.validate import format_validation, run_validation

__all__ = ["build_report", "write_report", "main"]

DEFAULT_PATH = "reproduction_report.md"


def build_report(n_modules: int = 1920) -> str:
    """Regenerate the headline experiments and assemble the report."""
    sections = [
        "# Reproduction report\n",
        "Paper: *Analyzing and Mitigating the Impact of Manufacturing "
        "Variability in Power-Constrained Supercomputing* (SC '15).\n",
        f"Scale: {n_modules} modules; root seed 2015 (bit-reproducible).\n",
        "## Validation summary\n",
        "```\n" + format_validation(run_validation(n_modules)) + "\n```\n",
        "## Table 4 — constraint feasibility\n",
        "```\n" + format_table4(run_table4(n_modules)) + "\n```\n",
        "## Fig 7 — speedups over Naive\n",
        "```\n" + format_fig7(run_fig7(n_modules)) + "\n```\n",
        "## Fig 9 — budget adherence\n",
        "```\n" + format_fig9(run_fig9(n_modules)) + "\n```\n",
        "## Calibration accuracy (Fig 6 / Section 5.3)\n",
        "```\n" + format_fig6(run_fig6(n_modules)) + "\n```\n",
        "See EXPERIMENTS.md for the full per-figure comparison and "
        "docs/MODEL.md for the model derivations.\n",
    ]
    return "\n".join(sections)


def write_report(path: str | Path = DEFAULT_PATH, n_modules: int = 1920) -> Path:
    """Build and write the report; returns the path written."""
    path = Path(path)
    path.write_text(build_report(n_modules))
    return path


def main() -> None:  # pragma: no cover
    path = write_report()
    print(f"wrote {path} ({path.stat().st_size} bytes)")


if __name__ == "__main__":  # pragma: no cover
    main()
