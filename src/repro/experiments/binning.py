"""The §2.1 supply-chain story, simulated end to end.

1. A raw die population leaves the fab with correlated frequency
   capability and leakage.
2. Frequency binning (what vendors do) flattens performance within the
   sold bin but leaves the power spread intact — the inhomogeneity the
   paper measures on four production systems.
3. Power binning (what vendors do *not* do) would remove it — at a
   yield cost — and with it most of the variation-aware budgeting
   opportunity.
"""

from __future__ import annotations

from dataclasses import dataclass



from repro.apps.registry import get_app
from repro.cluster.system import System
from repro.core.pvt import generate_pvt
from repro.core.runner import run_budgeted
from repro.experiments.common import DEFAULT_SEED
from repro.hardware.binning import frequency_bin, power_bin, sample_die_population
from repro.hardware.microarch import IVY_BRIDGE_E5_2697V2
from repro.hardware.module import ModuleArray
from repro.util.rng import RngFactory, spawn_rng
from repro.util.stats import worst_case_variation
from repro.util.tables import render_table

__all__ = ["BinningStudy", "run_binning", "format_binning", "main"]


@dataclass(frozen=True)
class BinningStudy:
    """Outcomes of the binning counterfactual."""

    bin_yield: float
    power_bin_yield: float
    vp_frequency_binned: float
    vp_power_binned: float
    vafs_gain_frequency_binned: float
    vafs_gain_power_binned: float


def _speedup_on(variation, tag: str, n: int, n_iters: int) -> float:
    app = get_app("mhd")
    system = System(
        name=f"binning-{tag}",
        arch=IVY_BRIDGE_E5_2697V2,
        modules=ModuleArray(IVY_BRIDGE_E5_2697V2, variation.take(range(n))),
        procs_per_node=2,
        meter_kind="rapl",
        rng=RngFactory(DEFAULT_SEED).child(f"binning-{tag}"),
    )
    pvt = generate_pvt(system)
    budget = 65.0 * n
    pc = run_budgeted(system, app, "pc", budget, pvt=pvt, n_iters=n_iters)
    vafs = run_budgeted(system, app, "vafs", budget, pvt=pvt, n_iters=n_iters)
    return vafs.speedup_over(pc)


def run_binning(
    n_dies: int = 20000, n_modules: int = 256, n_iters: int = 20
) -> BinningStudy:
    """Run the full fab → bin → machine → budgeting pipeline."""
    population = sample_die_population(n_dies, spawn_rng(DEFAULT_SEED, "fab"))
    lot = frequency_bin(population, 2.7, next_bin_ghz=2.9)
    tight = power_bin(lot, max_power_spread=1.05)

    def vp(variation) -> float:
        power = variation.leak * 18.0 + variation.dyn * 88.0
        return worst_case_variation(power)

    return BinningStudy(
        bin_yield=lot.yield_fraction,
        power_bin_yield=tight.yield_fraction,
        vp_frequency_binned=vp(lot.variation),
        vp_power_binned=vp(tight.variation),
        vafs_gain_frequency_binned=_speedup_on(lot.variation, "freq", n_modules, n_iters),
        vafs_gain_power_binned=_speedup_on(tight.variation, "power", n_modules, n_iters),
    )


def format_binning(s: BinningStudy) -> str:
    """Render the counterfactual comparison."""
    table = render_table(
        ["Silicon", "Yield", "CPU power Vp", "VaFs gain over Pc"],
        [
            [
                "frequency-binned (reality)",
                f"{s.bin_yield:.0%}",
                f"{s.vp_frequency_binned:.2f}",
                f"{s.vafs_gain_frequency_binned:.2f}x",
            ],
            [
                "power-binned (counterfactual)",
                f"{s.power_bin_yield:.0%}",
                f"{s.vp_power_binned:.2f}",
                f"{s.vafs_gain_power_binned:.2f}x",
            ],
        ],
        title="Sec 2.1: frequency binning vs the power-binning counterfactual",
    )
    return (
        f"{table}\n-- power binning would erase the inhomogeneity (and the "
        "budgeting opportunity) at a yield cost — which is why it isn't done"
    )


def main() -> None:  # pragma: no cover
    print(format_binning(run_binning()))


if __name__ == "__main__":  # pragma: no cover
    main()
