"""Experiment harness: one module per table/figure of the paper.

Each ``repro.experiments.figN`` / ``tableN`` module exposes

* ``run_*`` — execute the experiment and return a structured result;
* ``format_*`` — render the result as the rows/series the paper reports;
* ``main()`` — run and print (each module is executable:
  ``python -m repro.experiments.fig7``).

The benchmark suite (``benchmarks/``) wraps these same entry points, so
``pytest benchmarks/ --benchmark-only`` regenerates every table and
figure.
"""

from repro.experiments.common import (
    CM_GRID_W,
    CS_GRID_KW,
    PAPER_TABLE4,
    ha8k,
    paper_system,
)

__all__ = ["ha8k", "paper_system", "CS_GRID_KW", "CM_GRID_W", "PAPER_TABLE4"]
