"""Ablation studies for the design decisions called out in DESIGN.md §5.

1. **Four-column PVT vs scalar PVT** — the PVT stores separate variation
   scales for CPU/DRAM at fmax/fmin because leakage is frequency
   independent.  Collapsing it to one scalar per module (fmax CPU scale
   reused everywhere) degrades fmin-side prediction and hence the
   α-solve at tight budgets.
2. **Sub-fmin clock-modulation model** — the super-linear duty penalty
   is what produces the Naïve scheme's cliff at tight budgets (the
   "rapid degradation below 40 W").  With a linear penalty the paper's
   headline speedups shrink dramatically.
3. **Calibration-module lottery** — the single-module test run is a
   gamble: calibrating on an unrepresentative module skews the whole
   PMT.  Sweeping the test module over the machine quantifies the
   spread (and motivates the designated-calibration-module convention
   and the §6.1 multi-PVT refinement).
4. **Variation-aware placement** — the scheduler-side complement the
   paper leaves to future resource managers: giving a job the most
   power-efficient modules raises the common frequency a fixed budget
   affords.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.registry import get_app
from repro.cluster.scheduler import JobScheduler
from repro.cluster.system import System
from repro.core.pmt import calibrate_pmt, prediction_error
from repro.core.pvt import PowerVariationTable
from repro.core.runner import run_budgeted
from repro.core.test_run import single_module_test_run
from repro.experiments.common import DEFAULT_SEED, ha8k, ha8k_pvt
from repro.hardware.microarch import IVY_BRIDGE_E5_2697V2
from repro.util.tables import render_table

__all__ = [
    "ablate_pvt_columns",
    "ablate_duty_model",
    "ablate_calibration_module",
    "ablate_placement",
    "ablate_thermal_drift",
    "main",
]


# ---------------------------------------------------------------------------
# 1. Four-column vs scalar PVT
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PvtColumnsAblation:
    """Prediction error of the full vs collapsed PVT, per app."""

    app: str
    four_column_mean_error: float
    scalar_mean_error: float
    four_column_fmin_error: float
    scalar_fmin_error: float


def _scalar_pvt(pvt: PowerVariationTable) -> PowerVariationTable:
    """Collapse the PVT to a single per-module scale (fmax CPU column)."""
    s = pvt.scale_cpu_max
    return PowerVariationTable(
        system_name=pvt.system_name,
        microbenchmark=pvt.microbenchmark + "-scalar",
        scale_cpu_max=s,
        scale_cpu_min=s,
        scale_dram_max=s,
        scale_dram_min=s,
    )


def ablate_pvt_columns(
    n_modules: int = 512, apps: tuple[str, ...] = ("dgemm", "mhd", "bt")
) -> list[PvtColumnsAblation]:
    """Score both PVT forms on per-module power prediction."""
    system = ha8k(n_modules)
    pvt4 = ha8k_pvt(n_modules)
    pvt1 = _scalar_pvt(pvt4)
    arch = system.arch
    out = []
    for name in apps:
        app = get_app(name)
        prof = single_module_test_run(system, app, 0)
        truth = app.specialize(
            system.modules, system.rng.rng(f"app-residual/{name}")
        )
        e4 = prediction_error(
            calibrate_pmt(pvt4, prof, fmin=arch.fmin, fmax=arch.fmax), truth, app
        )
        e1 = prediction_error(
            calibrate_pmt(pvt1, prof, fmin=arch.fmin, fmax=arch.fmax), truth, app
        )
        out.append(
            PvtColumnsAblation(
                app=name,
                four_column_mean_error=e4["mean"],
                scalar_mean_error=e1["mean"],
                four_column_fmin_error=e4["mean_fmin"],
                scalar_fmin_error=e1["mean_fmin"],
            )
        )
    return out


# ---------------------------------------------------------------------------
# 2. Sub-fmin duty model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DutyModelAblation:
    """VaFs-over-Naive speedup with and without the super-linear penalty."""

    app: str
    cm_w: int
    speedup_superlinear: float
    speedup_linear: float


def _system_with_exponent(exponent: float, n_modules: int, seed: int) -> System:
    arch = IVY_BRIDGE_E5_2697V2.with_(subfmin_exponent=exponent)
    return System.create(
        "ha8k", arch, n_modules, procs_per_node=2, meter_kind="rapl", seed=seed
    )


def ablate_duty_model(
    n_modules: int = 512, app_name: str = "bt", cm_w: int = 50
) -> DutyModelAblation:
    """Compare the Naive cliff with super-linear vs linear duty penalty."""
    from repro.core.pvt import generate_pvt

    app = get_app(app_name)
    budget = float(cm_w) * n_modules
    speedups = {}
    for label, exponent in (("superlinear", IVY_BRIDGE_E5_2697V2.subfmin_exponent), ("linear", 1.0)):
        system = _system_with_exponent(exponent, n_modules, DEFAULT_SEED)
        pvt = generate_pvt(system)
        naive = run_budgeted(system, app, "naive", budget, pvt=pvt, n_iters=30)
        vafs = run_budgeted(system, app, "vafs", budget, pvt=pvt, n_iters=30)
        speedups[label] = vafs.speedup_over(naive)
    return DutyModelAblation(
        app=app_name,
        cm_w=cm_w,
        speedup_superlinear=speedups["superlinear"],
        speedup_linear=speedups["linear"],
    )


# ---------------------------------------------------------------------------
# 3. Calibration-module lottery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CalibrationLottery:
    """Distribution of VaFs outcomes over calibration-module choices."""

    app: str
    cm_w: int
    n_samples: int
    speedup_min: float
    speedup_max: float
    overshoot_max: float  # worst realised power / budget - 1
    violation_fraction: float


def ablate_calibration_module(
    n_modules: int = 512,
    app_name: str = "bt",
    cm_w: int = 60,
    n_samples: int = 24,
) -> CalibrationLottery:
    """Sweep the test module and record the induced VaFs spread."""
    system = ha8k(n_modules)
    pvt = ha8k_pvt(n_modules)
    app = get_app(app_name)
    budget = float(cm_w) * n_modules
    rng = system.rng.rng("ablation/calibration-lottery")
    modules = rng.choice(n_modules, size=n_samples, replace=False)
    naive = run_budgeted(system, app, "naive", budget, pvt=pvt, n_iters=20)
    speedups, overshoots = [], []
    for k in modules:
        r = run_budgeted(
            system, app, "vafs", budget, pvt=pvt, n_iters=20, test_module=int(k)
        )
        speedups.append(r.speedup_over(naive))
        overshoots.append(r.total_power_w / budget - 1.0)
    overshoots = np.asarray(overshoots)
    return CalibrationLottery(
        app=app_name,
        cm_w=cm_w,
        n_samples=n_samples,
        speedup_min=float(np.min(speedups)),
        speedup_max=float(np.max(speedups)),
        overshoot_max=float(overshoots.max()),
        violation_fraction=float((overshoots > 0.0).mean()),
    )


# ---------------------------------------------------------------------------
# 4. Variation-aware placement
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlacementAblation:
    """Makespan of one job under different scheduler policies."""

    app: str
    cm_w: int
    makespan_s: dict[str, float]

    @property
    def best_policy(self) -> str:
        """Policy with the smallest makespan."""
        return min(self.makespan_s, key=self.makespan_s.get)


def ablate_placement(
    n_modules: int = 512,
    job_modules: int = 128,
    app_name: str = "sp",
    cm_w: int = 55,
) -> PlacementAblation:
    """Run one job under each placement policy at a fixed budget."""
    system = ha8k(n_modules)
    pvt = ha8k_pvt(n_modules)
    app = get_app(app_name)
    sched = JobScheduler(system)
    makespans: dict[str, float] = {}
    for policy in ("contiguous", "random", "efficient-first"):
        alloc = sched.allocate(f"job-{policy}", job_modules, policy=policy)
        job_system = system.subset(alloc.module_ids)
        job_pvt = pvt.take(alloc.module_ids)
        r = run_budgeted(
            job_system,
            app,
            "vafs",
            float(cm_w) * job_modules,
            pvt=job_pvt,
            n_iters=30,
        )
        makespans[policy] = r.makespan_s
        sched.release(f"job-{policy}")
    return PlacementAblation(app=app_name, cm_w=cm_w, makespan_s=makespans)


# ---------------------------------------------------------------------------
# 5. Thermal drift of the install-time PVT
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ThermalDriftAblation:
    """Calibration error when the runtime room is hotter than at install.

    The PVT is generated once "when the system is installed"; if the
    machine later runs hotter (seasonal, load, cooling degradation), the
    leakage everywhere rises and the PVT's scales are stale — a
    systematic error source on top of the per-app expression residual.
    """

    app: str
    delta_t_c: float
    error_at_reference: float  # mean prediction error, same temperature
    error_after_drift: float  # mean prediction error, hotter room


def ablate_thermal_drift(
    n_modules: int = 512, app_name: str = "dgemm", delta_t_c: float = 10.0
) -> ThermalDriftAblation:
    """Score the PVT-calibrated PMT against a thermally shifted truth."""
    from repro.hardware.module import ModuleArray
    from repro.hardware.thermal import ThermalEnvironment, apply_thermal

    system = ha8k(n_modules)
    pvt = ha8k_pvt(n_modules)
    arch = system.arch
    app = get_app(app_name)
    prof = single_module_test_run(system, app, 0)
    pmt = calibrate_pmt(pvt, prof, fmin=arch.fmin, fmax=arch.fmax)

    truth_ref = app.specialize(
        system.modules, system.rng.rng(f"app-residual/{app_name}")
    )
    env = ThermalEnvironment(
        temps_c=np.full(n_modules, 25.0 + delta_t_c), reference_c=25.0
    )
    truth_hot = ModuleArray(arch, apply_thermal(truth_ref.variation, env))

    e_ref = prediction_error(pmt, truth_ref, app)["mean"]
    e_hot = prediction_error(pmt, truth_hot, app)["mean"]
    return ThermalDriftAblation(
        app=app_name,
        delta_t_c=delta_t_c,
        error_at_reference=e_ref,
        error_after_drift=e_hot,
    )


def main() -> None:  # pragma: no cover
    cols = ablate_pvt_columns()
    print(
        render_table(
            ["App", "4-col mean err", "scalar mean err", "4-col @fmin", "scalar @fmin"],
            [
                [
                    c.app,
                    f"{c.four_column_mean_error:.1%}",
                    f"{c.scalar_mean_error:.1%}",
                    f"{c.four_column_fmin_error:.1%}",
                    f"{c.scalar_fmin_error:.1%}",
                ]
                for c in cols
            ],
            title="Ablation 1: four-column vs scalar PVT",
        )
    )
    duty = ablate_duty_model()
    print(
        f"\nAblation 2 (duty model, {duty.app}@{duty.cm_w}W): VaFs speedup "
        f"{duty.speedup_superlinear:.2f}x with the super-linear cliff vs "
        f"{duty.speedup_linear:.2f}x with a linear penalty"
    )
    lot = ablate_calibration_module()
    print(
        f"\nAblation 3 (calibration lottery, {lot.app}@{lot.cm_w}W, "
        f"{lot.n_samples} modules): speedup {lot.speedup_min:.2f}-"
        f"{lot.speedup_max:.2f}x, worst overshoot {lot.overshoot_max:+.1%}, "
        f"{lot.violation_fraction:.0%} of choices violate the budget"
    )
    place = ablate_placement()
    print(
        f"\nAblation 4 (placement, {place.app}@{place.cm_w}W): "
        + ", ".join(f"{k}={v:.1f}s" for k, v in place.makespan_s.items())
        + f" -> best: {place.best_policy}"
    )
    drift = ablate_thermal_drift()
    print(
        f"\nAblation 5 (thermal drift, {drift.app}, +{drift.delta_t_c:.0f} K): "
        f"PMT error {drift.error_at_reference:.1%} at install temperature vs "
        f"{drift.error_after_drift:.1%} after the room warms up"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
