"""Sensitivity of the headline results to the synthetic model's knobs.

A reproduction built on a calibrated simulator owes its readers an
answer to "how much do your conclusions depend on the knobs you chose?".
This experiment sweeps the four most influential model parameters
one-at-a-time and reports the two quantities the paper's story rests
on — the VaFs speedup over Naïve at a tight budget, and whether
variation-aware beats variation-unaware at all:

* ``sigma_leak`` — the leakage spread (drives Vp and straggler depth);
* ``subfmin_exponent`` — the clock-modulation performance penalty
  (drives the Naïve cliff);
* ``residual sigma`` — app-expression residual (drives the
  VaPc-vs-oracle gap);
* ``dither_loss`` — RAPL controller noise (drives the VaFs-vs-VaPc gap).

The qualitative conclusion (variation-aware budgeting wins, and wins
most under tight budgets) should hold across the whole swept range;
only the *magnitude* moves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace



from repro.apps.registry import get_app
from repro.cluster.system import System
from repro.core.pvt import generate_pvt
from repro.core.runner import run_budgeted
from repro.experiments.common import DEFAULT_SEED
from repro.hardware.microarch import IVY_BRIDGE_E5_2697V2
from repro.util.tables import render_table

__all__ = ["SensitivityPoint", "run_sensitivity", "format_sensitivity", "main"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Headline outcomes at one parameter setting."""

    parameter: str
    value: float
    vafs_speedup: float
    vapc_speedup: float
    vapc_over_pc: float


def _speedups(
    system: System, app_name: str, cm_w: float, n_iters: int
) -> tuple[float, float, float]:
    pvt = generate_pvt(system)
    app = get_app(app_name)
    budget = cm_w * system.n_modules
    naive = run_budgeted(system, app, "naive", budget, pvt=pvt, n_iters=n_iters)
    vafs = run_budgeted(system, app, "vafs", budget, pvt=pvt, n_iters=n_iters)
    vapc = run_budgeted(system, app, "vapc", budget, pvt=pvt, n_iters=n_iters)
    pc = run_budgeted(system, app, "pc", budget, pvt=pvt, n_iters=n_iters)
    return (
        vafs.speedup_over(naive),
        vapc.speedup_over(naive),
        pc.makespan_s / vapc.makespan_s,
    )


def _system_with(arch, n_modules: int) -> System:
    return System.create(
        "ha8k-sens", arch, n_modules, procs_per_node=2, meter_kind="rapl",
        seed=DEFAULT_SEED,
    )


def run_sensitivity(
    n_modules: int = 384,
    app_name: str = "bt",
    cm_w: float = 55.0,
    n_iters: int = 25,
) -> list[SensitivityPoint]:
    """One-at-a-time sweeps around the calibrated defaults."""
    base = IVY_BRIDGE_E5_2697V2
    points: list[SensitivityPoint] = []

    for sigma in (0.06, 0.09, 0.115, 0.14):
        arch = base.with_(
            variation=replace(base.variation, sigma_leak=sigma),
            name=f"sens-leak-{sigma}",
        )
        sp = _speedups(_system_with(arch, n_modules), app_name, cm_w, n_iters)
        points.append(SensitivityPoint("sigma_leak", sigma, *sp))

    for expo in (1.5, 2.0, 2.75, 3.5):
        arch = base.with_(subfmin_exponent=expo, name=f"sens-expo-{expo}")
        sp = _speedups(_system_with(arch, n_modules), app_name, cm_w, n_iters)
        points.append(SensitivityPoint("subfmin_exponent", expo, *sp))

    for resid in (0.02, 0.055, 0.09):
        # Residual is an app property; override on the app registry copy.
        system = _system_with(base.with_(name=f"sens-resid-{resid}"), n_modules)
        pvt = generate_pvt(system)
        app = get_app(app_name).with_(
            residual_sigma_dyn=resid, residual_sigma_dram=resid * 0.8
        )
        budget = cm_w * n_modules
        naive = run_budgeted(system, app, "naive", budget, pvt=pvt, n_iters=n_iters)
        vafs = run_budgeted(system, app, "vafs", budget, pvt=pvt, n_iters=n_iters)
        vapc = run_budgeted(system, app, "vapc", budget, pvt=pvt, n_iters=n_iters)
        pc = run_budgeted(system, app, "pc", budget, pvt=pvt, n_iters=n_iters)
        points.append(
            SensitivityPoint(
                "residual_sigma",
                resid,
                vafs.speedup_over(naive),
                vapc.speedup_over(naive),
                pc.makespan_s / vapc.makespan_s,
            )
        )

    return points


def format_sensitivity(points: list[SensitivityPoint]) -> str:
    """Render the sweep with the stability verdict."""
    rows = [
        [
            p.parameter,
            f"{p.value:g}",
            f"{p.vafs_speedup:.2f}",
            f"{p.vapc_speedup:.2f}",
            f"{p.vapc_over_pc:.2f}",
        ]
        for p in points
    ]
    table = render_table(
        ["Parameter", "Value", "VaFs/Naive", "VaPc/Naive", "VaPc/Pc"],
        rows,
        title="Sensitivity of headline speedups to model parameters",
    )
    stable = all(p.vafs_speedup > 1.0 and p.vapc_over_pc > 0.95 for p in points)
    verdict = (
        "variation-aware budgeting wins across the entire swept range"
        if stable
        else "WARNING: the qualitative conclusion flips somewhere in the range"
    )
    return f"{table}\n-- {verdict}"


def main() -> None:  # pragma: no cover
    print(format_sensitivity(run_sensitivity()))


if __name__ == "__main__":  # pragma: no cover
    main()
