"""Sensitivity of the headline results to the synthetic model's knobs.

A reproduction built on a calibrated simulator owes its readers an
answer to "how much do your conclusions depend on the knobs you chose?".
This experiment sweeps the four most influential model parameters
one-at-a-time and reports the two quantities the paper's story rests
on — the VaFs speedup over Naïve at a tight budget, and whether
variation-aware beats variation-unaware at all:

* ``sigma_leak`` — the leakage spread (drives Vp and straggler depth);
* ``subfmin_exponent`` — the clock-modulation performance penalty
  (drives the Naïve cliff);
* ``residual sigma`` — app-expression residual (drives the
  VaPc-vs-oracle gap);
* ``dither_loss`` — RAPL controller noise (drives the VaFs-vs-VaPc gap).

The qualitative conclusion (variation-aware budgeting wins, and wins
most under tight budgets) should hold across the whole swept range;
only the *magnitude* moves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec import ExperimentEngine, RunKey, get_engine
from repro.experiments.common import DEFAULT_SEED
from repro.hardware.microarch import IVY_BRIDGE_E5_2697V2
from repro.util.tables import render_table

__all__ = ["SensitivityPoint", "run_sensitivity", "format_sensitivity", "main"]

#: Scheme set each sensitivity point evaluates, in run order.
_POINT_SCHEMES = ("naive", "vafs", "vapc", "pc")


@dataclass(frozen=True)
class SensitivityPoint:
    """Headline outcomes at one parameter setting."""

    parameter: str
    value: float
    vafs_speedup: float
    vapc_speedup: float
    vapc_over_pc: float


def _point_keys(
    arch_overrides: tuple[tuple[str, object], ...],
    app_overrides: tuple[tuple[str, float], ...],
    app_name: str,
    cm_w: float,
    n_modules: int,
    n_iters: int,
) -> list[RunKey]:
    """The four runs (one per scheme) of one sensitivity point."""
    return [
        RunKey(
            system="ha8k-sens",
            n_modules=n_modules,
            seed=DEFAULT_SEED,
            app=app_name,
            scheme=scheme,
            budget_w=cm_w * n_modules,
            n_iters=n_iters,
            arch_base=IVY_BRIDGE_E5_2697V2.name,
            arch_overrides=arch_overrides,
            app_overrides=app_overrides,
        )
        for scheme in _POINT_SCHEMES
    ]


def run_sensitivity(
    n_modules: int = 384,
    app_name: str = "bt",
    cm_w: float = 55.0,
    n_iters: int = 25,
    engine: ExperimentEngine | None = None,
) -> list[SensitivityPoint]:
    """One-at-a-time sweeps around the calibrated defaults."""
    engine = engine if engine is not None else get_engine()

    # (parameter, value, arch overrides, app overrides) per point.
    specs: list[tuple[str, float, tuple, tuple]] = []
    for sigma in (0.06, 0.09, 0.115, 0.14):
        specs.append((
            "sigma_leak",
            sigma,
            (("name", f"sens-leak-{sigma}"), ("variation.sigma_leak", sigma)),
            (),
        ))
    for expo in (1.5, 2.0, 2.75, 3.5):
        specs.append((
            "subfmin_exponent",
            expo,
            (("name", f"sens-expo-{expo}"), ("subfmin_exponent", expo)),
            (),
        ))
    for resid in (0.02, 0.055, 0.09):
        # Residual is an app property; override on the app registry copy.
        specs.append((
            "residual_sigma",
            resid,
            (("name", f"sens-resid-{resid}"),),
            (("residual_sigma_dyn", resid), ("residual_sigma_dram", resid * 0.8)),
        ))

    keys = [
        key
        for _, _, arch_ov, app_ov in specs
        for key in _point_keys(arch_ov, app_ov, app_name, cm_w, n_modules, n_iters)
    ]
    results = iter(engine.submit_sweep(keys))
    points: list[SensitivityPoint] = []
    for parameter, value, _, _ in specs:
        by_scheme = {scheme: next(results) for scheme in _POINT_SCHEMES}
        naive, vafs, vapc, pc = (by_scheme[s] for s in _POINT_SCHEMES)
        points.append(
            SensitivityPoint(
                parameter,
                value,
                vafs.speedup_over(naive),
                vapc.speedup_over(naive),
                pc.makespan_s / vapc.makespan_s,
            )
        )
    return points


def format_sensitivity(points: list[SensitivityPoint]) -> str:
    """Render the sweep with the stability verdict."""
    rows = [
        [
            p.parameter,
            f"{p.value:g}",
            f"{p.vafs_speedup:.2f}",
            f"{p.vapc_speedup:.2f}",
            f"{p.vapc_over_pc:.2f}",
        ]
        for p in points
    ]
    table = render_table(
        ["Parameter", "Value", "VaFs/Naive", "VaPc/Naive", "VaPc/Pc"],
        rows,
        title="Sensitivity of headline speedups to model parameters",
    )
    stable = all(p.vafs_speedup > 1.0 and p.vapc_over_pc > 0.95 for p in points)
    verdict = (
        "variation-aware budgeting wins across the entire swept range"
        if stable
        else "WARNING: the qualitative conclusion flips somewhere in the range"
    )
    return f"{table}\n-- {verdict}"


def main() -> None:  # pragma: no cover
    print(format_sensitivity(run_sensitivity()))


if __name__ == "__main__":  # pragma: no cover
    main()
