"""Fig 9 — total power consumption of every scheme vs the constraint.

For every evaluated (application, Cs) scenario, measure the realised
total system power under each scheme and compare it with the enforced
constraint (Fig 9's red line).  The paper "confirmed that all schemes
adhere to the power constraint ... except the Naïve scheme for *STREAM":
Naïve's application-independent PMT underestimates *STREAM's DRAM power
— DRAM is uncapped hardware-wise, so the spare CPU allocation plus the
real DRAM draw pushes the total past the budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schemes import list_schemes
from repro.exec import ExperimentEngine, get_engine
from repro.experiments.common import ha8k_run_key
from repro.experiments.fig7 import evaluated_cells
from repro.util.tables import render_table

__all__ = ["Fig9Cell", "run_fig9", "format_fig9", "main", "violations"]


@dataclass(frozen=True)
class Fig9Cell:
    """Total power of all schemes for one (app, Cs)."""

    app: str
    cm_w: int
    budget_kw: float
    total_kw: dict[str, float]
    within_budget: dict[str, bool]


def run_fig9(
    n_modules: int = 1920,
    n_iters: int | None = 5,
    engine: ExperimentEngine | None = None,
) -> list[Fig9Cell]:
    """Measure realised total power for every scheme on every X cell.

    Power statistics converge in very few iterations (the operating
    point is stationary), so ``n_iters`` defaults low.
    """
    engine = engine if engine is not None else get_engine()
    cell_specs = evaluated_cells()
    schemes = list_schemes()
    keys = [
        ha8k_run_key(
            app_name, scheme, float(cm) * n_modules,
            n_modules=n_modules, n_iters=n_iters,
        )
        for app_name, cm in cell_specs
        for scheme in schemes
    ]
    results = iter(engine.submit_sweep(keys))
    cells: list[Fig9Cell] = []
    for app_name, cm in cell_specs:
        totals: dict[str, float] = {}
        within: dict[str, bool] = {}
        for scheme in schemes:
            r = next(results)
            totals[scheme] = r.total_power_w / 1e3
            within[scheme] = bool(r.within_budget)
        cells.append(
            Fig9Cell(
                app=app_name,
                cm_w=cm,
                budget_kw=float(cm) * n_modules / 1e3,
                total_kw=totals,
                within_budget=within,
            )
        )
    return cells


def violations(cells: list[Fig9Cell]) -> list[tuple[str, int, str, float]]:
    """All (app, Cm, scheme, overshoot-fraction) constraint violations."""
    out = []
    for c in cells:
        for scheme, ok in c.within_budget.items():
            if not ok:
                out.append(
                    (c.app, c.cm_w, scheme, c.total_kw[scheme] / c.budget_kw - 1.0)
                )
    return out


def format_fig9(cells: list[Fig9Cell]) -> str:
    """Render realised power per scheme, flagging violations with '!'."""
    schemes = list_schemes()

    def cell_str(c: Fig9Cell, s: str) -> str:
        mark = "" if c.within_budget[s] else "!"
        return f"{c.total_kw[s]:.0f}{mark}"

    rows = [
        [c.app, f"{c.budget_kw:.0f}"] + [cell_str(c, s) for s in schemes]
        for c in cells
    ]
    table = render_table(
        ["App", "Cs [kW]"] + schemes,
        rows,
        title="Fig 9: Total power consumption [kW] ('!' = over constraint)",
    )
    v = violations(cells)
    only_stream = all(app == "stream" and scheme == "naive" for app, _, scheme, _ in v)
    verdict = (
        "only Naive/*STREAM violates the constraint — matches the paper"
        if v and only_stream
        else ("no violations at all" if not v else f"unexpected violations: {v}")
    )
    return f"{table}\n-- {verdict}"


def plot_fig9(cells: list[Fig9Cell], app: str = "stream") -> str:
    """ASCII bars for one application, with the constraint as Fig 9's
    red line (rendered '|')."""
    from repro.util.ascii_plot import bar_groups

    mine = [c for c in cells if c.app == app]
    if not mine:
        raise ValueError(f"no cells for app {app!r}")
    # Normalise each group to its own constraint so one reference works.
    groups = {
        f"{c.app} @{c.budget_kw:.0f} kW (x budget)": {
            s: c.total_kw[s] / c.budget_kw for s in c.total_kw
        }
        for c in mine
    }
    return bar_groups(
        groups,
        title=f"Fig 9 ({app}): realised power relative to the constraint",
        reference=1.0,
        unit="x",
    )


def main() -> None:  # pragma: no cover
    cells = run_fig9()
    print(format_fig9(cells))
    print()
    print(plot_fig9(cells, "stream"))


if __name__ == "__main__":  # pragma: no cover
    main()
