"""Heterogeneous-fleet sweep — Fig 7 / Table 4 logic on mixed CPU+GPU pools.

The paper's evaluation is CPU-only, but its core argument — under a
power bound, manufacturing variability turns into performance
variability unless the allocator is variation-aware — is device-generic.
GPUs exhibit the *same* phenomenon, amplified: the Wisconsin study ("Not
All GPUs Are Created Equal") measured ~25 % fleet-wide power spread and,
because GPUs are not performance-binned, up to ~1.5x performance spread
once a power cap binds.

This experiment runs the scheme comparison (Naïve vs the
variation-aware oracle schemes) on fleets mixing the paper's Ivy Bridge
CPU with a V100-class GPU device under one *global* budget.  Everything
flows through the same machinery as the homogeneous sweeps — the typed
:class:`~repro.hardware.devices.DeviceMap` rides the
:class:`~repro.hardware.ModuleArray`, planning solves one shared α over
per-type power tables, actuation maps α onto each type's own frequency
ladder, and :func:`~repro.core.runner.run_budgeted_batched` executes all
schemes as one vectorised pass, unchanged.

Because a mixed fleet has no single fmax, the reported frequency
variation is *normalised*: ``Vf = worst_case(eff / fmax_by_module)``,
each module's realised frequency as a fraction of its own ladder top.
On a uniform fleet this reduces to the paper's Vf exactly (dividing by
a constant leaves the max/min ratio untouched).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

import repro.telemetry as telemetry
from repro.apps import get_app
from repro.cluster.configs import build_hetero_system
from repro.core.runner import run_budgeted_batched, run_uncapped
from repro.experiments.common import DEFAULT_SEED
from repro.service.api import AllocationRequest
from repro.util.stats import worst_case_variation
from repro.util.tables import render_table

__all__ = [
    "HETERO_SIZES",
    "HETERO_SCHEMES",
    "HETERO_GPU_FRACTION",
    "HETERO_BUDGET_FRAC",
    "HeteroFleetPoint",
    "run_hetero_point",
    "run_hetero",
    "format_hetero",
    "main",
]

#: Mixed-fleet sizes (total modules, CPU + GPU).
HETERO_SIZES = (1_024, 4_096, 16_384)

#: Naïve baseline plus the two oracle variation-aware schemes — the same
#: trio as the homogeneous fleet sweep, for a like-for-like takeaway.
HETERO_SCHEMES = ("naive", "vapcor", "vafsor")

#: Fraction of each fleet that is GPU modules.
HETERO_GPU_FRACTION = 0.5

#: Global budget as a fraction of the fleet's uncapped (all-fmax) draw —
#: deep enough that every scheme is meaningfully constrained on both
#: device types.
HETERO_BUDGET_FRAC = 0.75

#: Device types composing the fleet (CPU listed first = primary).
HETERO_CPU = "cpu-ivy-bridge-e5-2697v2"
HETERO_GPU = "gpu-v100-sxm2"

#: Short runs — the variation statistics are iteration-count invariant
#: for the synchronised codes once wait patterns converge.
HETERO_ITERS = 20


@dataclass(frozen=True)
class HeteroFleetPoint:
    """One mixed-fleet size's outcome.

    ``vf_norm`` / ``vt`` / ``speedup`` / ``within_budget`` are keyed by
    scheme name; ``speedup`` is relative to Naïve.  ``vf_norm`` is the
    ladder-normalised frequency variation (see module docstring).
    """

    n_modules: int
    n_gpu: int
    app: str
    budget_kw: float
    uncapped_kw: float
    vf_norm: dict[str, float]
    vt: dict[str, float]
    speedup: dict[str, float]
    within_budget: dict[str, bool]
    wall_s: float


def run_hetero_point(
    n_modules: int,
    *,
    app: str = "bt",
    gpu_fraction: float = HETERO_GPU_FRACTION,
    budget_frac: float = HETERO_BUDGET_FRAC,
    n_iters: int = HETERO_ITERS,
    seed: int = DEFAULT_SEED,
    shard="auto",
) -> HeteroFleetPoint:
    """Run the scheme comparison on one mixed CPU+GPU fleet.

    Builds a fresh fleet with ``gpu_fraction`` of its modules GPUs,
    budgets it at ``budget_frac`` of the uncapped draw, and runs every
    scheme in :data:`HETERO_SCHEMES` through
    :func:`~repro.core.runner.run_budgeted_batched` as one vectorised
    pass (``noisy=False`` for determinism — the point is the allocation
    physics, not the controller noise).
    """
    n_gpu = int(round(n_modules * gpu_fraction))
    n_cpu = n_modules - n_gpu
    t0 = perf_counter()
    with telemetry.run_scope(
        f"hetero-{n_modules}", f"hetero {app} n={n_modules:,} gpu={n_gpu:,}"
    ), telemetry.span("hetero.point", modules=n_modules, app=app):
        system = build_hetero_system(
            [(HETERO_CPU, n_cpu), (HETERO_GPU, n_gpu)], seed=seed
        )
        model = get_app(app)
        fmax_per_module = system.modules.fmax_by_module()

        base = run_uncapped(system, model, n_iters=n_iters)
        # The global budget is relative to the uncapped draw, so the
        # typed requests are built only now — same shared
        # AllocationRequest.build path as the CLI and the service wire
        # (registry-validated app/scheme, typed errors on bad names).
        requests = [
            AllocationRequest.build(
                fleet_id=f"hetero-{n_modules}",
                app=app,
                scheme=scheme,
                budgets_w=[budget_frac * base.total_power_w],
                noisy=False,
            )
            for scheme in HETERO_SCHEMES
        ]
        budget_w = requests[0].budgets_w[0]

        outs = run_budgeted_batched(
            system,
            model,
            [(r.scheme, r.budgets_w[0]) for r in requests],
            n_iters=n_iters,
            noisy=False,
            shard=shard,
        )
        for out in outs:
            if isinstance(out, Exception):
                raise out
        runs = dict(zip(HETERO_SCHEMES, outs))

        naive = runs["naive"]
        wall = perf_counter() - t0
        point = HeteroFleetPoint(
            n_modules=n_modules,
            n_gpu=n_gpu,
            app=app,
            budget_kw=budget_w / 1e3,
            uncapped_kw=base.total_power_w / 1e3,
            vf_norm={
                s: worst_case_variation(r.effective_freq_ghz / fmax_per_module)
                for s, r in runs.items()
            },
            vt={s: r.vt for s, r in runs.items()},
            speedup={
                s: 1.0 if s == "naive" else r.speedup_over(naive)
                for s, r in runs.items()
            },
            within_budget={s: bool(r.within_budget) for s, r in runs.items()},
            wall_s=wall,
        )
        if telemetry.enabled():
            for s in HETERO_SCHEMES:
                telemetry.gauge(f"hetero.vf_norm[{s}]", point.vf_norm[s])
                telemetry.gauge(f"hetero.speedup[{s}]", point.speedup[s])
        return point


def run_hetero(
    sizes: tuple[int, ...] = HETERO_SIZES,
    *,
    app: str = "bt",
    gpu_fraction: float = HETERO_GPU_FRACTION,
    budget_frac: float = HETERO_BUDGET_FRAC,
    n_iters: int = HETERO_ITERS,
    seed: int = DEFAULT_SEED,
) -> list[HeteroFleetPoint]:
    """The full mixed-fleet sweep (one :class:`HeteroFleetPoint` each)."""
    return [
        run_hetero_point(
            n,
            app=app,
            gpu_fraction=gpu_fraction,
            budget_frac=budget_frac,
            n_iters=n_iters,
            seed=seed,
        )
        for n in sizes
    ]


def format_hetero(points: list[HeteroFleetPoint]) -> str:
    """Render the sweep plus the cross-device takeaway."""
    rows = [
        [
            f"{p.n_modules:,}",
            f"{p.n_gpu:,}",
            f"{p.budget_kw:.0f}",
            f"{p.vf_norm['naive']:.3f}",
            f"{p.vt['naive']:.3f}",
            f"{p.speedup['vapcor']:.2f}",
            f"{p.speedup['vafsor']:.2f}",
            "yes" if all(p.within_budget.values()) else "NO",
        ]
        for p in points
    ]
    table = render_table(
        [
            "Modules",
            "GPUs",
            "Cs [kW]",
            "Vf naive",
            "Vt naive",
            "VaPcOr [x]",
            "VaFsOr [x]",
            "in budget",
        ],
        rows,
        title=(
            f"Mixed CPU+GPU fleets: {points[0].app} @ "
            f"{HETERO_BUDGET_FRAC:.0%} of uncapped power "
            "(ladder-normalised Vf; oracle speedups over Naive)"
        ),
    )
    last = points[-1]
    trend = (
        f"-- at {last.n_modules:,} modules ({last.n_gpu:,} GPUs) naive "
        f"budgeting shows Vf = {last.vf_norm['naive']:.3f} across the mixed "
        f"pool while VaPcOr holds {last.vf_norm['vapcor']:.3f} and runs "
        f"{last.speedup['vapcor']:.2f}x faster: one shared alpha over "
        "per-type power tables carries the paper's variation-aware result "
        "onto heterogeneous hardware unchanged."
    )
    return f"{table}\n{trend}"


def main() -> None:  # pragma: no cover
    print(format_hetero(run_hetero()))


if __name__ == "__main__":  # pragma: no cover
    main()
