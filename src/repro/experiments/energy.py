"""Energy-to-solution vs power budget — the efficiency angle (§2.2).

The paper optimises *time* under a power bound; the adjacent literature
it cites (Rountree, Cameron, Hsu & Feng) optimises *energy*.  This
sweep measures both and surfaces a consequence of the paper's own Fig 5
finding: with power *linear* in frequency (R² ≥ 0.99 across the
production ladder), energy per unit work is

    E/W ∝ (S + D·f) / f = S/f + D

— monotonically *decreasing* in frequency.  Race-to-fmax is therefore
both the time optimum and the energy optimum; slowing down only makes
the frequency-independent static power accrue longer.  The DVFS
energy-saving literature relies on the superlinear f·V² regime, which
production parts no longer expose within their ladder — capping on
these machines is purely a power-capacity instrument, never an energy
saver.  (Slack-based savings — slowing only ranks that would wait
anyway, à la Adagio/Jitter — remain possible and are visible in the
per-rank wait times of the synchronised apps.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.registry import get_app
from repro.core.runner import run_budgeted, run_uncapped
from repro.errors import InfeasibleBudgetError
from repro.experiments.common import ha8k, ha8k_pvt
from repro.util.tables import render_table

__all__ = ["EnergyPoint", "run_energy", "format_energy", "main"]


@dataclass(frozen=True)
class EnergyPoint:
    """One budget level of the sweep."""

    cm_w: float | None  # None = uncapped
    makespan_s: float
    avg_power_kw: float
    energy_mj: float
    edp: float  # energy-delay product (MJ·s)


def run_energy(
    app_name: str = "mhd",
    cm_grid: tuple[float, ...] = (95.0, 90.0, 85.0, 80.0, 75.0, 70.0, 65.0, 60.0),
    n_modules: int = 1920,
    n_iters: int | None = 30,
) -> list[EnergyPoint]:
    """Sweep the module-average budget and account energy under VaFs."""
    system = ha8k(1920).subset(range(n_modules))
    pvt = ha8k_pvt(1920).take(range(n_modules))
    app = get_app(app_name)

    points: list[EnergyPoint] = []
    base = run_uncapped(system, app, n_iters=n_iters)
    points.append(
        EnergyPoint(
            cm_w=None,
            makespan_s=base.makespan_s,
            avg_power_kw=base.total_power_w / 1e3,
            energy_mj=base.total_power_w * base.makespan_s / 1e6,
            edp=base.total_power_w * base.makespan_s**2 / 1e6,
        )
    )
    for cm in cm_grid:
        try:
            r = run_budgeted(
                system, app, "vafs", cm * n_modules, pvt=pvt, n_iters=n_iters
            )
        except InfeasibleBudgetError:
            continue
        points.append(
            EnergyPoint(
                cm_w=cm,
                makespan_s=r.makespan_s,
                avg_power_kw=r.total_power_w / 1e3,
                energy_mj=r.total_power_w * r.makespan_s / 1e6,
                edp=r.total_power_w * r.makespan_s**2 / 1e6,
            )
        )
    return points


def energy_optimal(points: list[EnergyPoint]) -> EnergyPoint:
    """The budget with the lowest energy-to-solution."""
    return min(points, key=lambda p: p.energy_mj)


def format_energy(points: list[EnergyPoint], app_name: str = "mhd") -> str:
    """Render the sweep with both optima marked."""
    best_e = energy_optimal(points)
    best_t = min(points, key=lambda p: p.makespan_s)
    rows = []
    for p in points:
        mark = ""
        if p is best_e:
            mark += " <- min energy"
        if p is best_t:
            mark += " <- min time"
        rows.append(
            [
                "No cap" if p.cm_w is None else f"{p.cm_w:.0f}",
                f"{p.makespan_s:.1f}",
                f"{p.avg_power_kw:.0f}",
                f"{p.energy_mj:.1f}{mark}",
                f"{p.edp:.0f}",
            ]
        )
    table = render_table(
        ["Cm [W]", "time [s]", "power [kW]", "energy [MJ]", "EDP [MJ*s]"],
        rows,
        title=f"Energy-to-solution vs budget ({app_name}, VaFs, 1920 modules)",
    )
    return (
        f"{table}\n-- with power linear in frequency (the paper's Fig 5), "
        "race-to-fmax is simultaneously the time AND energy optimum: "
        "capping on these parts manages capacity, it does not save energy"
    )


def main() -> None:  # pragma: no cover
    print(format_energy(run_energy()))


if __name__ == "__main__":  # pragma: no cover
    main()
