"""Uncertainty quantification: headline numbers across variation draws.

A single seed is one machine off the fab line.  This experiment re-runs
the headline speedups across several independently sampled systems and
reports mean ± spread — the error bars a reproduction should put on its
own claims.  (Complementary to ``sensitivity``, which varies the model
*parameters*; here the parameters are fixed and only the *draw* varies.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exec import ExperimentEngine, get_engine
from repro.experiments.common import ha8k_run_key
from repro.util.tables import render_table

__all__ = ["UncertaintyRow", "run_uncertainty", "format_uncertainty", "main"]


@dataclass(frozen=True)
class UncertaintyRow:
    """Speedup statistics for one (app, budget) cell across seeds."""

    app: str
    cm_w: float
    scheme: str
    n_seeds: int
    mean: float
    std: float
    vmin: float
    vmax: float


def run_uncertainty(
    cells: tuple[tuple[str, float], ...] = (("bt", 50.0), ("dgemm", 70.0), ("mhd", 60.0)),
    schemes: tuple[str, ...] = ("vapc", "vafs"),
    seeds: tuple[int, ...] = (2015, 7, 1234, 987654, 42),
    n_modules: int = 512,
    n_iters: int = 15,
    engine: ExperimentEngine | None = None,
) -> list[UncertaintyRow]:
    """Re-run the headline cells on independently drawn systems."""
    engine = engine if engine is not None else get_engine()
    rows: list[UncertaintyRow] = []
    samples: dict[tuple[str, float, str], list[float]] = {
        (app, cm, s): [] for app, cm in cells for s in schemes
    }
    run_schemes = ("naive",) + tuple(schemes)
    keys = [
        ha8k_run_key(
            app_name, s, cm * n_modules,
            n_modules=n_modules, n_iters=n_iters, seed=seed,
        )
        for seed in seeds
        for app_name, cm in cells
        for s in run_schemes
    ]
    # A draw can sit on the feasibility edge; infeasible runs come back
    # as None and truncate that cell exactly like the exception used to.
    results = iter(engine.submit_sweep(keys, skip_infeasible=True))
    for _seed in seeds:
        for app_name, cm in cells:
            by_scheme = {s: next(results) for s in run_schemes}
            naive = by_scheme["naive"]
            if naive is None:
                continue
            for s in schemes:
                r = by_scheme[s]
                if r is None:
                    break
                samples[(app_name, cm, s)].append(r.speedup_over(naive))
    for (app_name, cm, s), vals in samples.items():
        arr = np.asarray(vals)
        if arr.size == 0:
            continue
        rows.append(
            UncertaintyRow(
                app=app_name,
                cm_w=cm,
                scheme=s,
                n_seeds=int(arr.size),
                mean=float(arr.mean()),
                std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
                vmin=float(arr.min()),
                vmax=float(arr.max()),
            )
        )
    return rows


def format_uncertainty(rows: list[UncertaintyRow]) -> str:
    """Render mean ± std per cell."""
    table = render_table(
        ["App", "Cm [W]", "Scheme", "Seeds", "Speedup mean±std", "Range"],
        [
            [
                r.app,
                f"{r.cm_w:.0f}",
                r.scheme,
                r.n_seeds,
                f"{r.mean:.2f} ± {r.std:.2f}",
                f"{r.vmin:.2f}-{r.vmax:.2f}",
            ]
            for r in rows
        ],
        title="Headline speedups across independent variation draws",
    )
    return (
        f"{table}\n-- the variation-aware advantage is a property of the "
        "distribution, not of one lucky machine"
    )


def main() -> None:  # pragma: no cover
    print(format_uncertainty(run_uncertainty()))


if __name__ == "__main__":  # pragma: no cover
    main()
