"""Command-line entry point: ``python -m repro <experiment>``.

Lists and runs the paper's tables/figures and the ablation studies::

    python -m repro list
    python -m repro fig7
    python -m repro table4 --modules 512
    python -m repro all
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

__all__ = ["main", "EXPERIMENTS"]


def _lazy(module: str) -> Callable[[], None]:
    def runner() -> None:
        import importlib

        importlib.import_module(f"repro.experiments.{module}").main()

    return runner


#: Experiment name -> (description, runner).
EXPERIMENTS: dict[str, tuple[str, Callable[[], None]]] = {
    "table1": ("power measurement techniques", _lazy("table1")),
    "table2": ("architectures under consideration", _lazy("table2")),
    "table4": ("constraint feasibility matrix", _lazy("table4")),
    "fig1": ("power/perf variation on Cab, Vulcan, Teller", _lazy("fig1")),
    "fig2": ("HA8K module power & performance variation", _lazy("fig2")),
    "fig3": ("MHD synchronisation overhead under caps", _lazy("fig3")),
    "fig4": ("the budgeting workflow, executed end to end", _lazy("fig4")),
    "fig5": ("power vs frequency linearity", _lazy("fig5")),
    "fig6": ("PMT calibration accuracy", _lazy("fig6_calibration")),
    "fig7": ("speedup over the Naive scheme", _lazy("fig7")),
    "fig8": ("VaFs detailed behaviour", _lazy("fig8")),
    "fig9": ("total power vs constraint", _lazy("fig9")),
    "ablations": ("DESIGN.md §5 design-decision ablations", _lazy("ablations")),
    "validate": ("headline claims vs measured, PASS/FAIL", _lazy("validate")),
    "sensitivity": ("headline robustness to model knobs", _lazy("sensitivity")),
    "overprovisioning": (
        "width vs per-module power under a facility bound",
        _lazy("overprovisioning"),
    ),
    "throughput": (
        "job-stream throughput: power-aware vs worst-case admission",
        _lazy("throughput"),
    ),
    "binning": ("frequency vs power binning counterfactual", _lazy("binning")),
    "energy": ("energy-to-solution vs budget (race-to-fmax)", _lazy("energy")),
    "report": ("write reproduction_report.md", _lazy("report")),
    "uncertainty": ("headline speedups across variation draws", _lazy("uncertainty")),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the SC'15 "
        "manufacturing-variability paper.",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list' to enumerate, or 'all' to run everything",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    name = args.experiment.lower()

    if name == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for key, (desc, _) in EXPERIMENTS.items():
            print(f"{key.ljust(width)}  {desc}")
        return 0

    if name == "all":
        for key, (_, runner) in EXPERIMENTS.items():
            print(f"######## {key}")
            runner()
            print()
        return 0

    try:
        _, runner = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        print(f"unknown experiment {name!r}; known: list, all, {known}", file=sys.stderr)
        return 2
    runner()
    return 0
