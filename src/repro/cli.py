"""Command-line entry point: ``python -m repro <experiment>``.

Lists and runs the paper's tables/figures and the ablation studies::

    python -m repro list
    python -m repro schemes
    python -m repro fig7 --jobs 4
    python -m repro table4 --modules 512
    python -m repro all --stats
    python -m repro fleet --telemetry
    python -m repro fleet --modules 10000 --cm 80
    python -m repro hetero --modules 2000 --gpu-fraction 0.5
    python -m repro serve --fleet ha8k:100000 --socket /tmp/repro.sock
    python -m repro trace fig7
    python -m repro trace traces/fleet.jsonl

Sweep experiments route through the execution engine
(:mod:`repro.exec`): ``--jobs`` fans cache misses out over a process
pool, ``--cache-dir``/``--no-cache`` control the persistent run cache,
``--batch``/``--no-batch`` toggles config-batched execution (on by
default: misses sharing a system/fleet/app run as one vectorised pass,
with fleets handed to workers once via shared memory), and ``--stats``
prints per-run observability afterwards.  Engine results are
bit-identical regardless of ``--jobs``, ``--batch``, and cache state
(see ``tests/exec/``), so the flags trade time, never accuracy.
``repro stats <experiment>`` runs one experiment with telemetry on and
reports the batching/amortisation counters.

Telemetry: ``--telemetry`` records spans, metrics, and phase timelines
while an experiment runs and prints the session report afterwards
(results are unchanged — ``tests/exec/test_telemetry_determinism.py``);
``--telemetry-dir DIR`` additionally exports the JSONL + NPZ sink pair.
``repro trace <target>`` either re-renders a saved ``.jsonl`` sink or
runs an experiment with telemetry on — cheap on a warm cache, where the
trace shows the cache traffic itself.
"""

from __future__ import annotations

import argparse
import os
import sys
import traceback
from collections.abc import Callable
from pathlib import Path
from time import perf_counter

import repro.telemetry as telemetry
from repro import exec as engine_mod
from repro.errors import ConfigurationError
from repro.util.tables import render_table

__all__ = ["main", "build_parser", "EXPERIMENTS", "run_all", "format_schemes"]


def _lazy(module: str) -> Callable[[], None]:
    def runner() -> None:
        import importlib

        importlib.import_module(f"repro.experiments.{module}").main()

    return runner


#: Experiment name -> (description, runner).
EXPERIMENTS: dict[str, tuple[str, Callable[[], None]]] = {
    "table1": ("power measurement techniques", _lazy("table1")),
    "table2": ("architectures under consideration", _lazy("table2")),
    "table4": ("constraint feasibility matrix", _lazy("table4")),
    "fig1": ("power/perf variation on Cab, Vulcan, Teller", _lazy("fig1")),
    "fig2": ("HA8K module power & performance variation", _lazy("fig2")),
    "fig3": ("MHD synchronisation overhead under caps", _lazy("fig3")),
    "fig4": ("the budgeting workflow, executed end to end", _lazy("fig4")),
    "fig5": ("power vs frequency linearity", _lazy("fig5")),
    "fig6": ("PMT calibration accuracy", _lazy("fig6_calibration")),
    "fig7": ("speedup over the Naive scheme", _lazy("fig7")),
    "fig8": ("VaFs detailed behaviour", _lazy("fig8")),
    "fig9": ("total power vs constraint", _lazy("fig9")),
    "ablations": ("DESIGN.md §5 design-decision ablations", _lazy("ablations")),
    "validate": ("headline claims vs measured, PASS/FAIL", _lazy("validate")),
    "sensitivity": ("headline robustness to model knobs", _lazy("sensitivity")),
    "overprovisioning": (
        "width vs per-module power under a facility bound",
        _lazy("overprovisioning"),
    ),
    "throughput": (
        "job-stream throughput: power-aware vs worst-case admission",
        _lazy("throughput"),
    ),
    "binning": ("frequency vs power binning counterfactual", _lazy("binning")),
    "fleet": ("fleet-scale sweep: Vf/Vt/speedup at 10k-200k modules", _lazy("fleet")),
    "hetero": (
        "mixed CPU+GPU fleets under one global budget",
        _lazy("hetero_fleet"),
    ),
    "energy": ("energy-to-solution vs budget (race-to-fmax)", _lazy("energy")),
    "report": ("write reproduction_report.md", _lazy("report")),
    "uncertainty": ("headline speedups across variation draws", _lazy("uncertainty")),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the SC'15 "
        "manufacturing-variability paper.",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list' to enumerate, 'schemes' to show the "
        "power-allocation scheme registry, 'all' to run everything, "
        "'trace' to render telemetry, 'topo' to print the probed "
        "CPU/NUMA topology, or 'stats' to run an experiment "
        "and report batching/amortisation counters (see 'target')",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="for 'trace': a telemetry .jsonl sink to render, or an "
        "experiment name to run with telemetry enabled; for 'stats': "
        "the experiment to profile",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sweep fan-out (default: 1, sequential; "
        "results are bit-identical at any value)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent run-cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent run cache entirely",
    )
    parser.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="batch cache misses sharing a system/fleet/app into single "
        "vectorised passes (default: on; --no-batch restores per-key "
        "execution — results are bit-identical either way)",
    )
    parser.add_argument(
        "--shard-ranks",
        type=int,
        default=None,
        metavar="W",
        help="pin the sharded fast path's column-tile width to W ranks "
        "(default: auto-tuned from the cache working-set budget; "
        "sharding is execution layout only — results are bit-identical "
        "at any value)",
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        metavar="N",
        help="thread-pool workers executing shards (default: one per "
        "CPU core, capped at the shard count)",
    )
    parser.add_argument(
        "--shard-mode",
        choices=engine_mod.SHARD_MODES,
        default=None,
        help="sharded-executor backend: 'threads' tiles in-process "
        "(default), 'processes' spreads row blocks over a worker-process "
        "pool via shared memory — execution layout only, results are "
        "bit-identical either way",
    )
    parser.add_argument(
        "--pin",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="pin pool workers to CPU slices from the process-wide core "
        "budget (default: auto — pin whenever the platform supports "
        "affinity; placement only, results are bit-identical either way)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print engine run statistics (cache hits/misses, per-run "
        "wall times) after the experiment(s)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="record spans/metrics/phase timelines during the run and "
        "print the session report afterwards (results are unchanged)",
    )
    parser.add_argument(
        "--telemetry-dir",
        default=None,
        metavar="DIR",
        help="export the telemetry session as <DIR>/<experiment>.jsonl "
        "+ .npz (implies --telemetry)",
    )
    point = parser.add_argument_group(
        "single-point mode (fleet / hetero)",
        "run one fleet point instead of the full sweep; arguments are "
        "validated through the same typed AllocationRequest builder the "
        "allocation service uses on the wire",
    )
    point.add_argument(
        "--modules",
        type=int,
        default=None,
        metavar="N",
        help="fleet size in modules (enables single-point mode)",
    )
    point.add_argument(
        "--app", default="bt", metavar="NAME", help="benchmark (default: bt)"
    )
    point.add_argument(
        "--cm",
        type=float,
        default=None,
        metavar="W",
        help="fleet: per-module budget in watts (default: 80)",
    )
    point.add_argument(
        "--gpu-fraction",
        type=float,
        default=None,
        metavar="F",
        help="hetero: fraction of modules that are GPUs (default: 0.5)",
    )
    point.add_argument(
        "--budget-frac",
        type=float,
        default=None,
        metavar="F",
        help="hetero: budget as a fraction of the uncapped draw "
        "(default: 0.7)",
    )
    srv = parser.add_argument_group(
        "service mode (repro serve)",
        "run the power-budget allocation daemon (see docs/API.md)",
    )
    srv.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="unix-socket path to listen on (default: a per-process "
        "path under $TMPDIR when no listener is given)",
    )
    srv.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="N",
        help="also serve the NDJSON protocol on 127.0.0.1:N (0 = ephemeral)",
    )
    srv.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="N",
        help="also serve the HTTP adapter on 127.0.0.1:N (0 = ephemeral)",
    )
    srv.add_argument(
        "--fleet",
        action="append",
        default=None,
        metavar="SPEC",
        help="pre-open a fleet, e.g. 'ha8k:100000' or 'ha8k:10000:7' "
        "(repeatable)",
    )
    srv.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help="in-flight request bound before typed overload rejects "
        "(default: 64)",
    )
    return parser


def _configure_engine(args: argparse.Namespace):
    """Install the process-global engine from the parsed flags.

    An explicit ``--pin``/``--no-pin`` is also exported as
    ``REPRO_PROCSHARD_PIN`` so the process-sharded simulation executor
    (which resolves its own pinning default) follows the same choice.
    """
    if args.pin is not None:
        os.environ[engine_mod.PROCSHARD_PIN_ENV] = "1" if args.pin else "0"
    return engine_mod.configure(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        batch=args.batch,
        shard=_shard_arg(args),
        pin=args.pin,
    )


def _shard_arg(args: argparse.Namespace):
    """The engine ``shard`` value for the parsed flags: ``"auto"`` when
    no knob was given, else a pinned ShardSpec (auto geometry unless
    ``--shard-ranks``/``--shard-workers`` pin it; ``--shard-mode``
    picks the thread vs worker-process executor)."""
    if (
        args.shard_ranks is None
        and args.shard_workers is None
        and args.shard_mode is None
    ):
        return "auto"
    return engine_mod.ShardSpec(
        shard_ranks=args.shard_ranks,
        shard_workers=args.shard_workers,
        mode=args.shard_mode or "threads",
    )


def run_all(stats: bool = False) -> int:
    """Run every experiment, continuing past failures.

    Prints a per-experiment PASS/FAIL + timing summary at the end and
    returns 1 if any experiment failed, 0 otherwise.
    """
    rows: list[list[object]] = []
    failed: list[str] = []
    for key, (_, runner) in EXPERIMENTS.items():
        print(f"######## {key}")
        t0 = perf_counter()
        try:
            runner()
            status = "PASS"
        except Exception:
            status = "FAIL"
            failed.append(key)
            traceback.print_exc()
        rows.append([key, status, f"{perf_counter() - t0:.2f}"])
        print()
    print(render_table(["Experiment", "Status", "Time [s]"], rows,
                       title="repro all: per-experiment summary"))
    if failed:
        print(
            f"-- {len(failed)}/{len(EXPERIMENTS)} experiments FAILED: "
            f"{', '.join(failed)}",
            file=sys.stderr,
        )
    else:
        print(f"-- all {len(EXPERIMENTS)} experiments passed")
    if stats:
        print(engine_mod.get_engine().stats.format_summary())
    return 1 if failed else 0


def format_schemes() -> str:
    """Render the power-allocation scheme registry as a table."""
    from repro import available_schemes

    rows = [
        [
            s.name,
            s.label,
            s.pmt_kind,
            s.actuation,
            "yes" if s.variation_aware else "no",
            "yes" if s.app_dependent else "no",
        ]
        for s in available_schemes().values()
    ]
    return render_table(
        ["Name", "Label", "PMT", "Actuation", "Variation-aware", "App-dependent"],
        rows,
        title="power-allocation schemes (paper Fig 7 legend order)",
    )


def _finish_telemetry(name: str, telemetry_dir: str | None) -> None:
    """Print the session report, export the sinks, and switch back off."""
    print()
    print(telemetry.report(f"telemetry: {name}"))
    if telemetry_dir is not None:
        collector = telemetry.collector()
        if collector is not None:
            jsonl, npz = telemetry.write_sinks(collector, telemetry_dir, name)
            print(f"-- telemetry written to {jsonl} and {npz}")
    telemetry.disable()


def _run_trace(args: argparse.Namespace) -> int:
    """``repro trace <target>``: render a sink, or run traced."""
    target = args.target
    if target is None:
        print(
            "trace needs a target: a telemetry .jsonl file or an "
            "experiment name",
            file=sys.stderr,
        )
        return 2
    path = Path(target)
    if path.suffix == ".jsonl" or path.exists():
        try:
            collector = telemetry.read_jsonl(path)
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(telemetry.format_report(collector, f"telemetry: {path.name}"))
        return 0
    name = target.lower()
    if name not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        print(
            f"trace target {target!r} is neither a telemetry .jsonl file "
            f"nor an experiment; experiments: {known}",
            file=sys.stderr,
        )
        return 2
    _configure_engine(args)
    telemetry.enable()
    _, runner = EXPERIMENTS[name]
    runner()
    _finish_telemetry(name, args.telemetry_dir)
    return 0


def _format_batch_counters() -> str:
    """Render the batching/amortisation metrics of the live telemetry
    session (the ``repro stats`` payload)."""
    collector = telemetry.collector()
    if collector is None:
        return "-- batching: telemetry was not enabled"
    m = collector.metrics
    rows: list[list[object]] = []
    for cname, label in (
        ("engine.batched.groups", "batched groups dispatched"),
        ("engine.cache.hit", "cache hits"),
        ("engine.cache.miss", "cache misses"),
        ("engine.exec", "uncached executions"),
        ("run.budgeted_batched", "batched runner passes"),
        ("budget.solve_alpha_batched", "batched alpha-solves"),
    ):
        counter = m.counters.get(cname)
        if counter is not None and counter.value:
            rows.append([label, counter.value, "", ""])
    for hname, label, scale, unit in (
        ("engine.batch_size", "engine batch size [keys]", 1.0, ""),
        ("run.batch_size", "runner batch size [configs]", 1.0, ""),
        (
            "engine.batch_amortized_wall_s",
            "amortised wall per key [ms]",
            1e3,
            "",
        ),
        ("budget.batch_size", "alpha-solve batch size [budgets]", 1.0, ""),
    ):
        hist = m.histograms.get(hname)
        if hist is not None and hist.count:
            rows.append(
                [
                    label,
                    hist.count,
                    f"{hist.mean * scale:.1f}",
                    f"{hist.min * scale:.1f}..{hist.max * scale:.1f}",
                ]
            )
    if not rows:
        return "-- batching: no batched dispatches recorded (was --no-batch set?)"
    return render_table(
        ["Metric", "Count", "Mean", "Range"],
        rows,
        title="batching and amortisation",
    )


def _run_stats(args: argparse.Namespace) -> int:
    """``repro stats <experiment>``: run it and report batching counters."""
    target = args.target
    if target is None or target.lower() not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        print(
            f"stats needs an experiment to profile; experiments: {known}",
            file=sys.stderr,
        )
        return 2
    name = target.lower()
    eng = _configure_engine(args)
    telemetry.enable()
    _, runner = EXPERIMENTS[name]
    runner()
    print()
    print(eng.stats.format_summary())
    print(_format_batch_counters())
    telemetry.disable()
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the allocation-service daemon (blocks until a
    SIGTERM/SIGINT drain completes)."""
    from repro.service import ServiceError, serve

    try:
        serve(
            socket_path=args.socket,
            port=args.port,
            http_port=args.http_port,
            fleets=tuple(args.fleet or ()),
            jobs=args.jobs,
            max_pending=args.max_pending,
        )
    except ServiceError as exc:
        print(f"serve failed [{exc.code}]: {exc.message}", file=sys.stderr)
        return 2
    return 0


def _run_point(args: argparse.Namespace, name: str) -> int:
    """Single-point mode for ``repro fleet``/``repro hetero``.

    The knobs are normalised and validated through the typed
    :meth:`AllocationRequest.build
    <repro.service.api.AllocationRequest.build>` path — the exact
    builder the service applies to wire requests — so a bad app or
    scheme name fails here with the same typed error a client would
    get, and CLI runs and service runs are one code path.
    """
    from repro.service import ServiceError

    try:
        if name == "fleet":
            from repro.experiments.fleet import (
                FLEET_CM_W,
                format_fleet,
                run_fleet_point,
            )

            point = run_fleet_point(
                args.modules,
                app=args.app,
                cm_w=args.cm if args.cm is not None else FLEET_CM_W,
            )
            print(format_fleet([point]))
        else:
            from repro.experiments.hetero_fleet import (
                HETERO_BUDGET_FRAC,
                HETERO_GPU_FRACTION,
                format_hetero,
                run_hetero_point,
            )

            point = run_hetero_point(
                args.modules,
                app=args.app,
                gpu_fraction=(
                    args.gpu_fraction
                    if args.gpu_fraction is not None
                    else HETERO_GPU_FRACTION
                ),
                budget_frac=(
                    args.budget_frac
                    if args.budget_frac is not None
                    else HETERO_BUDGET_FRAC
                ),
            )
            print(format_hetero([point]))
    except ServiceError as exc:
        print(f"{name} point rejected [{exc.code}]: {exc.message}", file=sys.stderr)
        return 2
    return 0


def _format_cpulist(cpus: tuple[int, ...]) -> str:
    """Compact kernel-style cpulist (``"0-3,8"``) for a sorted tuple."""
    parts: list[str] = []
    i = 0
    while i < len(cpus):
        j = i
        while j + 1 < len(cpus) and cpus[j + 1] == cpus[j] + 1:
            j += 1
        parts.append(str(cpus[i]) if i == j else f"{cpus[i]}-{cpus[j]}")
        i = j + 1
    return ",".join(parts)


def _run_topo() -> int:
    """``repro topo``: print the probed CPU/NUMA topology and the
    process-wide core budget the pools draw on."""
    from repro.util.topology import cpu_budget, effective_cpu_count

    budget = cpu_budget()
    topo = budget.topology
    rows = [
        [f"node{n.node_id}", n.n_cpus, _format_cpulist(n.cpus)]
        for n in topo.nodes
    ]
    print(
        render_table(
            ["Node", "CPUs", "CPU list"],
            rows,
            title=f"topology (source: {topo.source})",
        )
    )
    llc = (
        "unknown"
        if topo.llc_bytes is None
        else f"{topo.llc_bytes // 1024} KiB"
    )
    try:
        pin = "on" if engine_mod.procshard_pin_default() else "off"
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"effective CPUs  : {effective_cpu_count()}")
    print(f"last-level cache: {llc}")
    print(
        f"core budget     : {budget.total} total, "
        f"{budget.claimed_cpus} claimed in {budget.n_leases} lease(s)"
    )
    print(f"worker pinning  : {pin} (override: {engine_mod.PROCSHARD_PIN_ENV})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    name = args.experiment.lower()

    if name == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for key, (desc, _) in EXPERIMENTS.items():
            print(f"{key.ljust(width)}  {desc}")
        return 0

    if name == "schemes":
        print(format_schemes())
        return 0

    if name == "topo":
        return _run_topo()

    if name == "trace":
        return _run_trace(args)

    if name == "stats":
        return _run_stats(args)

    if name == "serve":
        return _run_serve(args)

    if name in ("fleet", "hetero") and args.modules is not None:
        _configure_engine(args)
        return _run_point(args, name)

    if name != "all" and name not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        print(f"unknown experiment {name!r}; known: list, all, {known}", file=sys.stderr)
        return 2

    _configure_engine(args)
    with_telemetry = args.telemetry or args.telemetry_dir is not None
    if with_telemetry:
        telemetry.enable()

    if name == "all":
        code = run_all(stats=args.stats)
        if with_telemetry:
            _finish_telemetry("all", args.telemetry_dir)
        return code

    _, runner = EXPERIMENTS[name]
    runner()
    if args.stats:
        print(engine_mod.get_engine().stats.format_summary())
    if with_telemetry:
        _finish_telemetry(name, args.telemetry_dir)
    return 0
