"""Hardware substrate: microarchitectures, DVFS, manufacturing variability.

This subpackage models everything below the software stack:

* :mod:`repro.hardware.microarch` — the four microarchitectures of
  Table 2 (Sandy Bridge, BG/Q PowerPC A2, Piledriver, Ivy Bridge) with
  their frequency ranges, TDPs and variation parameters.
* :mod:`repro.hardware.dvfs` — discrete P-state frequency ladders.
* :mod:`repro.hardware.variability` — the manufacturing-variation model
  (die-to-die leakage, dynamic-power spread, DRAM spread, and the
  frequency-bin spread seen on Teller).
* :mod:`repro.hardware.power_model` — linear-in-frequency component power
  models (validated by the paper's Fig 5, R² ≥ 0.99).
* :mod:`repro.hardware.module` — the vectorised ``ModuleArray`` (the
  workhorse for 1,920-module experiments) and the scalar ``Module`` view.
* :mod:`repro.hardware.devices` — device types (CPU/GPU) and the
  per-module ``DeviceMap`` that makes a ``ModuleArray`` heterogeneous.
"""

from repro.hardware.devices import (
    CPU_IVY_BRIDGE,
    GPU_V100_SXM2,
    DeviceMap,
    DeviceType,
    get_device_type,
    list_device_types,
    register_device_type,
)
from repro.hardware.dvfs import FrequencyLadder
from repro.hardware.microarch import (
    Microarchitecture,
    get_microarch,
    list_microarchs,
    register_microarch,
)
from repro.hardware.module import CapResolution, Module, ModuleArray, OperatingPoint
from repro.hardware.power_model import PowerSignature
from repro.hardware.variability import ModuleVariation, VariationModel, sample_variation

__all__ = [
    "CPU_IVY_BRIDGE",
    "GPU_V100_SXM2",
    "DeviceMap",
    "DeviceType",
    "get_device_type",
    "list_device_types",
    "register_device_type",
    "FrequencyLadder",
    "Microarchitecture",
    "get_microarch",
    "list_microarchs",
    "register_microarch",
    "Module",
    "ModuleArray",
    "OperatingPoint",
    "CapResolution",
    "PowerSignature",
    "ModuleVariation",
    "VariationModel",
    "sample_variation",
]
