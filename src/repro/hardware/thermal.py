"""Temperature-dependent leakage (paper Section 2.1's "other factors").

"Other factors such as temperature and supply voltage can cause
additional variations."  Leakage current grows roughly exponentially
with junction temperature; across a machine room the inlet-air gradient
plus per-node cooling differences give every module its own thermal
operating point, which *shifts* its manufacturing-variation factors.

This module provides:

* :class:`ThermalEnvironment` — per-module ambient temperatures drawn
  as a rack-axis gradient plus local noise;
* :func:`leakage_at_temperature` — the leakage multiplier at a given
  temperature relative to the reference the variation was sampled at;
* :func:`apply_thermal` — a temperature-adjusted
  :class:`~repro.hardware.variability.ModuleVariation`.

The practical consequence for the budgeting framework (exercised in the
thermal-drift test/ablation): a PVT generated at install time in a cool
room under-predicts the leakage of modules that later run hot, adding a
systematic, spatially-correlated component to the calibration error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.variability import ModuleVariation

__all__ = ["ThermalEnvironment", "leakage_at_temperature", "apply_thermal"]

#: Default exponential leakage-temperature coefficient (per kelvin).
#: ~1.5 %/K is typical of planar CMOS in the paper's era.
DEFAULT_LEAK_COEFF_PER_K = 0.015


@dataclass(frozen=True)
class ThermalEnvironment:
    """Per-module ambient temperature field.

    Attributes
    ----------
    temps_c:
        Ambient temperature per module (°C).
    reference_c:
        The temperature the manufacturing variation was characterised at
        (i.e. the PVT's measurement conditions).
    """

    temps_c: np.ndarray
    reference_c: float = 25.0

    def __post_init__(self) -> None:
        t = np.asarray(self.temps_c, dtype=float)
        object.__setattr__(self, "temps_c", t)
        if t.ndim != 1 or t.size == 0:
            raise ConfigurationError("temps_c must be a non-empty 1-D array")
        if np.any(t < -50.0) or np.any(t > 150.0):
            raise ConfigurationError("temperatures out of physical range")

    @property
    def n_modules(self) -> int:
        """Number of modules covered."""
        return int(self.temps_c.size)

    @classmethod
    def sample(
        cls,
        n_modules: int,
        rng: np.random.Generator,
        *,
        reference_c: float = 25.0,
        mean_c: float = 30.0,
        gradient_c: float = 6.0,
        noise_c: float = 1.5,
    ) -> "ThermalEnvironment":
        """Draw a machine-room temperature field.

        A linear gradient of ``gradient_c`` across the module index axis
        (hot aisle to cold aisle) plus Gaussian per-module noise.
        """
        if n_modules <= 0:
            raise ConfigurationError("n_modules must be positive")
        if gradient_c < 0 or noise_c < 0:
            raise ConfigurationError("gradient and noise must be non-negative")
        axis = np.linspace(-0.5, 0.5, n_modules)
        temps = mean_c + gradient_c * axis + rng.normal(0.0, noise_c, n_modules)
        return cls(temps_c=temps, reference_c=reference_c)


def leakage_at_temperature(
    temps_c: np.ndarray | float,
    reference_c: float,
    coeff_per_k: float = DEFAULT_LEAK_COEFF_PER_K,
) -> np.ndarray | float:
    """Leakage multiplier at ``temps_c`` relative to ``reference_c``.

    Exponential in the temperature delta: ``exp(coeff · ΔT)``.
    """
    if coeff_per_k < 0:
        raise ConfigurationError("coeff_per_k must be non-negative")
    delta = np.asarray(temps_c, dtype=float) - reference_c
    out = np.exp(coeff_per_k * delta)
    return float(out) if out.ndim == 0 else out


def apply_thermal(
    variation: ModuleVariation,
    env: ThermalEnvironment,
    coeff_per_k: float = DEFAULT_LEAK_COEFF_PER_K,
) -> ModuleVariation:
    """Shift a variation sample to the given thermal environment.

    Only the leakage factor responds to temperature (dynamic power's
    temperature sensitivity is an order of magnitude smaller and is
    neglected, as is DRAM's).
    """
    if env.n_modules != variation.n_modules:
        raise ConfigurationError(
            f"thermal field covers {env.n_modules} modules, "
            f"variation covers {variation.n_modules}"
        )
    mult = leakage_at_temperature(env.temps_c, env.reference_c, coeff_per_k)
    return ModuleVariation(
        leak=variation.leak * mult,
        dyn=variation.dyn,
        dram=variation.dram,
        perf=variation.perf,
    )
