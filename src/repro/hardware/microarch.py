"""Microarchitecture registry (paper Table 2).

Each :class:`Microarchitecture` bundles the public specification of a
processor family (frequency range, core count, TDP) with the calibrated
constants of our component power model and manufacturing-variation model.

Power model
-----------
The paper validates (Fig 5, R² ≥ 0.99) that CPU, DRAM and module power
are linear in CPU frequency.  We therefore model, for module *i* with
variation factors ``leak_i`` (die-to-die leakage), ``dyn_i`` (dynamic
power spread) and ``dram_i`` (DRAM spread), and an application power
signature ``(a_cpu, a_dram, γ)``::

    P_cpu_i(f)  = leak_i · S_cpu + dyn_i · a_cpu · D_cpu · (f / fmax)
    P_dram_i(f) = dram_i · ( S_dram + a_dram · D_dram · ((1-γ) + γ · f / fmax) )

``S_cpu`` is idle/leakage power (frequency independent — this is why the
paper's PVT needs separate variation scales at fmax and fmin), ``D_cpu``
the dynamic power of a fully active core complex at fmax, and γ the
coupling between DRAM traffic and CPU frequency (≈1 for compute-bound
codes whose memory traffic is issue-limited, <1 for bandwidth-saturated
codes such as *STREAM).

Calibration
-----------
The HA8K (Ivy Bridge E5-2697v2) constants are calibrated so that the
published statistics fall out of the model: *DGEMM uncapped CPU power
≈ 100.8 W and module power ≈ 112.8 W, MHD CPU ≈ 83.9 W, module-power
worst-case variation Vp ≈ 1.3, DRAM Vp ≈ 2.8, and the exact ✓/•/–
feasibility pattern of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.hardware.dvfs import FrequencyLadder
from repro.hardware.variability import VariationModel

__all__ = [
    "Microarchitecture",
    "register_microarch",
    "get_microarch",
    "list_microarchs",
]


@dataclass(frozen=True)
class Microarchitecture:
    """Static description of a processor family plus calibrated model constants.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"ivy-bridge-e5-2697v2"``.
    vendor, model:
        Human-readable identification (Table 2 columns).
    ladder:
        DVFS frequency ladder (GHz).
    cores_per_proc:
        Physical cores per processor.
    tdp_w:
        CPU thermal design power in watts (the Naïve scheme's
        ``P_cpu_max`` input).
    dram_tdp_w:
        DRAM TDP per module in watts (Naïve's ``P_dram_max``; 62 W on
        HA8K per the paper).
    cpu_static_w:
        Nominal leakage/uncore power, frequency independent.
    cpu_dynamic_w:
        Nominal dynamic power at ``fmax`` with activity 1.0.
    dram_static_w / dram_dynamic_w:
        Same split for the DRAM subsystem.
    min_duty:
        Lowest clock-modulation duty cycle available below the bottom
        P-state (Intel T-states go down to 12.5 %).
    subfmin_exponent:
        Exponent of the performance penalty of clock modulation; >1
        models the super-linear "rapid degradation" below the ~40 W CPU
        threshold reported in Section 6 of the paper.
    variation:
        Manufacturing-variation distribution parameters.
    supports_capping:
        Whether the platform can enforce power caps (RAPL; Table 1).
    perf_binned:
        True when the vendor frequency-bins parts so performance is
        homogeneous (Intel, IBM).  False for the Teller/Piledriver parts,
        where the paper observed 17 % performance variation negatively
        correlated with power.
    """

    name: str
    vendor: str
    model: str
    ladder: FrequencyLadder
    cores_per_proc: int
    tdp_w: float
    dram_tdp_w: float
    cpu_static_w: float
    cpu_dynamic_w: float
    dram_static_w: float
    dram_dynamic_w: float
    variation: VariationModel
    min_duty: float = 0.125
    subfmin_exponent: float = 2.75
    supports_capping: bool = True
    perf_binned: bool = True
    #: All-core Turbo ceiling in GHz (= fmax when the part has no Turbo).
    #: Sustained turbo residency is TDP-limited per module, so leaky
    #: modules turbo lower — see ``ModuleArray.turbo_frequency``.
    turbo_ghz: float = 0.0

    def __post_init__(self) -> None:
        if self.cores_per_proc <= 0:
            raise ConfigurationError("cores_per_proc must be positive")
        for attr in (
            "tdp_w",
            "dram_tdp_w",
            "cpu_static_w",
            "cpu_dynamic_w",
            "dram_static_w",
            "dram_dynamic_w",
        ):
            if getattr(self, attr) < 0:
                raise ConfigurationError(f"{attr} must be non-negative")
        if not (0.0 < self.min_duty <= 1.0):
            raise ConfigurationError("min_duty must be in (0, 1]")
        if self.subfmin_exponent < 1.0:
            raise ConfigurationError("subfmin_exponent must be >= 1")
        if self.turbo_ghz and self.turbo_ghz < self.ladder.fmax:
            raise ConfigurationError("turbo_ghz must be >= fmax (or 0 for none)")

    @property
    def fmin(self) -> float:
        """Lowest P-state frequency in GHz."""
        return self.ladder.fmin

    @property
    def fmax(self) -> float:
        """Highest sustained frequency in GHz."""
        return self.ladder.fmax

    def with_(self, **changes) -> "Microarchitecture":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


_REGISTRY: dict[str, Microarchitecture] = {}


def register_microarch(arch: Microarchitecture, *, overwrite: bool = False) -> None:
    """Add ``arch`` to the global registry.

    Raises :class:`ConfigurationError` if the name is taken and
    ``overwrite`` is false.
    """
    if arch.name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"microarchitecture {arch.name!r} already registered")
    _REGISTRY[arch.name] = arch


def get_microarch(name: str) -> Microarchitecture:
    """Look up a registered microarchitecture by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown microarchitecture {name!r}; known: {known}"
        ) from None


def list_microarchs() -> list[str]:
    """Names of all registered microarchitectures, sorted."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Built-in definitions (Table 2 of the paper).
# ---------------------------------------------------------------------------

#: Intel Sandy Bridge E5-2670 (the Cab system at LLNL).  Frequency-binned,
#: so performance is homogeneous; CPU power varies by up to 23 % (Fig 1A).
SANDY_BRIDGE_E5_2670 = Microarchitecture(
    name="sandy-bridge-e5-2670",
    vendor="Intel",
    model="Xeon E5-2670",
    ladder=FrequencyLadder(fmin=1.2, fmax=2.6, step=0.1),
    cores_per_proc=8,
    tdp_w=115.0,
    dram_tdp_w=48.0,
    cpu_static_w=20.0,
    cpu_dynamic_w=78.0,
    dram_static_w=4.0,
    dram_dynamic_w=18.0,
    variation=VariationModel(
        sigma_leak=0.075, sigma_dyn=0.028, sigma_dram=0.13, sigma_perf=0.0
    ),
    turbo_ghz=3.1,
)

#: IBM PowerPC A2 (BG/Q Vulcan at LLNL).  "Module" granularity is the node
#: board (32 compute cards share the EMON measurement path); no capping.
BGQ_POWERPC_A2 = Microarchitecture(
    name="bgq-powerpc-a2",
    vendor="IBM",
    model="PowerPC A2",
    ladder=FrequencyLadder(fmin=1.6, fmax=1.6, step=0.1),
    cores_per_proc=16,
    tdp_w=55.0,
    dram_tdp_w=20.0,
    cpu_static_w=14.0,
    cpu_dynamic_w=38.0,
    dram_static_w=3.0,
    dram_dynamic_w=10.0,
    variation=VariationModel(
        sigma_leak=0.09,
        sigma_dyn=0.012,
        sigma_dram=0.10,
        sigma_perf=0.0,
        node_leak_share=0.9,
    ),
    supports_capping=False,
)

#: AMD A10-5800K Piledriver (Teller at SNL).  The paper observed both power
#: (21 %) and performance (17 %) variation with a small negative
#: correlation between slowdown and power — faster parts drew more power —
#: suggesting a different binning strategy.
PILEDRIVER_A10_5800K = Microarchitecture(
    name="piledriver-a10-5800k",
    vendor="AMD",
    model="A10-5800K",
    ladder=FrequencyLadder(fmin=1.4, fmax=3.8, step=0.1),
    cores_per_proc=4,
    tdp_w=100.0,
    dram_tdp_w=30.0,
    cpu_static_w=22.0,
    cpu_dynamic_w=70.0,
    dram_static_w=4.0,
    dram_dynamic_w=12.0,
    variation=VariationModel(
        sigma_leak=0.062,
        sigma_dyn=0.028,
        sigma_dram=0.12,
        sigma_perf=0.038,
        rho_perf_power=0.55,
    ),
    turbo_ghz=4.2,
    supports_capping=False,
    perf_binned=False,
)

#: Intel Ivy Bridge E5-2697v2 (the HA8K / QUARTETTO system at Kyushu).
#: All quantitative evaluation in Sections 4–6 of the paper runs here.
IVY_BRIDGE_E5_2697V2 = Microarchitecture(
    name="ivy-bridge-e5-2697v2",
    vendor="Intel",
    model="Xeon E5-2697 v2",
    ladder=FrequencyLadder(fmin=1.2, fmax=2.7, step=0.1),
    cores_per_proc=12,
    tdp_w=130.0,
    dram_tdp_w=62.0,
    cpu_static_w=18.0,
    cpu_dynamic_w=88.0,
    dram_static_w=5.0,
    dram_dynamic_w=28.0,
    variation=VariationModel(
        sigma_leak=0.115, sigma_dyn=0.035, sigma_dram=0.155, sigma_perf=0.0
    ),
    turbo_ghz=3.5,
)

for _arch in (
    SANDY_BRIDGE_E5_2670,
    BGQ_POWERPC_A2,
    PILEDRIVER_A10_5800K,
    IVY_BRIDGE_E5_2697V2,
):
    register_microarch(_arch)
