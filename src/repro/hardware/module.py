"""Modules: a processor (CPU socket) plus its associated DRAM.

The paper's unit of power management is the *module* — one CPU socket and
the DRAM attached to it.  :class:`ModuleArray` is the vectorised ground
truth of the simulator: given per-module variation factors and an
application power signature it evaluates true power draw, inverts the
power model, and resolves what happens when a power cap is pushed below
the lowest P-state (clock modulation).

:class:`Module` is a thin scalar view for single-module workflows such as
the paper's two single-module test runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware import power_model as pm
from repro.hardware.devices import DeviceMap
from repro.hardware.microarch import Microarchitecture
from repro.hardware.power_model import PowerSignature
from repro.hardware.variability import ModuleVariation

__all__ = ["ModuleArray", "Module", "CapResolution", "OperatingPoint"]


@dataclass(frozen=True)
class CapResolution:
    """Outcome of enforcing per-module CPU power caps.

    Attributes
    ----------
    freq_ghz:
        Realised DVFS frequency per module (ladder-clamped; equals fmin
        for modules driven into clock modulation).
    duty:
        Clock-modulation duty cycle per module (1.0 when DVFS alone met
        the cap).
    effective_freq_ghz:
        Work rate expressed as an equivalent frequency:
        ``freq · duty**subfmin_exponent``.  The exponent models the
        super-linear performance collapse of modulation ("rapid
        degradation below 40 W", paper Section 6).
    cpu_power_w:
        Realised average CPU power per module.
    cap_met:
        Whether the realised power is within the requested cap (False
        only when the cap lies below the static floor + minimum duty).
    """

    freq_ghz: np.ndarray
    duty: np.ndarray
    effective_freq_ghz: np.ndarray
    cpu_power_w: np.ndarray
    cap_met: np.ndarray


@dataclass(frozen=True)
class OperatingPoint:
    """Complete dynamic state of a set of modules running one workload.

    Meters read power from an operating point; controllers produce one.

    Attributes
    ----------
    freq_ghz:
        DVFS frequency per module (GHz).
    duty:
        Clock-modulation duty cycle per module (1.0 = none).
    signature:
        Power signature of the workload being executed.
    """

    freq_ghz: np.ndarray
    duty: np.ndarray
    signature: PowerSignature

    def __post_init__(self) -> None:
        f = np.asarray(self.freq_ghz, dtype=float)
        d = np.asarray(self.duty, dtype=float)
        object.__setattr__(self, "freq_ghz", f)
        object.__setattr__(self, "duty", d)
        if f.shape != d.shape:
            raise ConfigurationError("freq_ghz and duty must have the same shape")
        if np.any(f <= 0):
            raise ConfigurationError("frequencies must be positive")
        if np.any((d <= 0) | (d > 1.0)):
            raise ConfigurationError("duty cycles must be in (0, 1]")

    @property
    def n_modules(self) -> int:
        """Number of modules covered by this operating point."""
        return int(self.freq_ghz.shape[0])

    @classmethod
    def uniform(
        cls, n_modules: int, freq_ghz: float, signature: PowerSignature
    ) -> "OperatingPoint":
        """Every module at the same frequency, no clock modulation."""
        return cls(
            freq_ghz=np.full(n_modules, float(freq_ghz)),
            duty=np.ones(n_modules),
            signature=signature,
        )

    @classmethod
    def from_cap_resolution(
        cls, res: "CapResolution", signature: PowerSignature
    ) -> "OperatingPoint":
        """Operating point realised by a resolved set of power caps."""
        return cls(freq_ghz=res.freq_ghz, duty=res.duty, signature=signature)

    def effective_freq_ghz(self, subfmin_exponent: float) -> np.ndarray:
        """Work rate as an equivalent frequency (duty penalty applied)."""
        return self.freq_ghz * np.power(self.duty, subfmin_exponent)


class ModuleArray:
    """All modules of a system, vectorised.

    Parameters
    ----------
    arch:
        The microarchitecture shared by every module (a heterogeneous
        fleet passes its *primary* type's arch here; per-module types
        come from ``device_map``).
    variation:
        Sampled manufacturing-variation factors (one entry per module).
    device_map:
        Optional per-module :class:`~repro.hardware.devices.DeviceMap`.
        ``None`` (the default, and every homogeneous fleet) keeps the
        array on the exact single-arch code paths it always had; a
        single-type map routes through the same paths using that type's
        arch; only a genuinely mixed map engages per-type group
        dispatch.
    """

    def __init__(
        self,
        arch: Microarchitecture,
        variation: ModuleVariation,
        device_map: DeviceMap | None = None,
    ):
        self.arch = arch
        self.variation = variation
        self.device_map = device_map
        if device_map is None:
            self._mixed = False
            self._eff_arch: Microarchitecture | None = arch
        else:
            if device_map.n_modules != variation.n_modules:
                raise ConfigurationError(
                    f"device_map covers {device_map.n_modules} modules, "
                    f"variation covers {variation.n_modules}"
                )
            if device_map.is_single_type:
                self._mixed = False
                self._eff_arch = device_map.primary.arch
            else:
                self._mixed = True
                self._eff_arch = None

    # -- basic introspection ------------------------------------------------

    @property
    def n_modules(self) -> int:
        """Number of modules in the array."""
        return self.variation.n_modules

    def __len__(self) -> int:
        return self.n_modules

    @property
    def is_mixed(self) -> bool:
        """True when the array spans more than one device type."""
        return self._mixed

    def take(self, indices: np.ndarray | list[int]) -> "ModuleArray":
        """A new array restricted to the given module indices.

        Contiguous ascending index sets are returned as zero-copy views
        (see :meth:`~repro.hardware.variability.ModuleVariation.take`);
        scattered sets are fancy-index copies.
        """
        dm = None if self.device_map is None else self.device_map.take(indices)
        return ModuleArray(self.arch, self.variation.take(indices), dm)

    def take_slice(self, start: int, stop: int) -> "ModuleArray":
        """Zero-copy view of the contiguous module range ``[start, stop)``.

        The variation buffers are shared (numpy slices), so iterating a
        fleet-sized array in chunks costs no extra memory — the basis of
        the ``*_chunked`` evaluation methods.
        """
        dm = None if self.device_map is None else self.device_map.take_slice(start, stop)
        return ModuleArray(self.arch, self.variation.take_slice(start, stop), dm)

    def iter_chunks(self, chunk_modules: int):
        """Yield ``(start, stop, view)`` triples covering the array.

        ``view`` is the zero-copy :meth:`take_slice` of ``[start, stop)``;
        chunks are contiguous, ordered, and at most ``chunk_modules``
        long.
        """
        if chunk_modules <= 0:
            raise ConfigurationError("chunk_modules must be positive")
        for start in range(0, self.n_modules, chunk_modules):
            stop = min(start + chunk_modules, self.n_modules)
            yield start, stop, self.take_slice(start, stop)

    def module(self, index: int) -> "Module":
        """Zero-copy scalar view of one module (see :class:`Module`)."""
        return Module(self, index)

    # -- heterogeneity helpers ----------------------------------------------

    def fmax_by_module(self) -> np.ndarray:
        """Per-module top-of-ladder frequency (GHz)."""
        if self.device_map is not None:
            return self.device_map.fmax_by_module()
        return np.full(self.n_modules, self.arch.fmax)

    def fmin_by_module(self) -> np.ndarray:
        """Per-module bottom-of-ladder frequency (GHz)."""
        if self.device_map is not None:
            return self.device_map.fmin_by_module()
        return np.full(self.n_modules, self.arch.fmin)

    def device_arch(self, index: int) -> Microarchitecture:
        """The microarchitecture governing module ``index``."""
        if self.device_map is None:
            return self.arch
        return self.device_map.types[int(self.device_map.index[index])].arch

    def _scatter_groups(self, fn, arg: np.ndarray | float) -> np.ndarray:
        """Evaluate ``fn(group_view, group_arg)`` per device-type group.

        Each group is evaluated as a plain single-arch :class:`ModuleArray`
        over that type's own arch — the *same* vectorised body a uniform
        fleet of the type would run — and scattered back into one
        ``(n_modules,)`` result.  Contiguous groups ride zero-copy
        variation slices.
        """
        a = np.asarray(arg, dtype=float)
        out = np.empty(self.n_modules)
        for _pos, dt, sel in self.device_map.groups():
            if isinstance(sel, slice):
                var = self.variation.take_slice(sel.start, sel.stop)
            else:
                var = self.variation.take(sel)
            view = ModuleArray(dt.arch, var)
            out[sel] = fn(view, a if a.ndim == 0 else a[sel])
        return out

    # -- true power draw ----------------------------------------------------

    def cpu_power(
        self, freq_ghz: np.ndarray | float, sig: PowerSignature
    ) -> np.ndarray:
        """True per-module CPU power (W) at the given frequency/frequencies."""
        if self._mixed:
            return self._scatter_groups(lambda v, f: v.cpu_power(f, sig), freq_ghz)
        return np.asarray(
            pm.cpu_power(
                freq_ghz,
                fmax=self._eff_arch.fmax,
                static_w=self._eff_arch.cpu_static_w,
                dynamic_w=self._eff_arch.cpu_dynamic_w,
                cpu_activity=sig.cpu_activity,
                leak=self.variation.leak,
                dyn=self.variation.dyn,
            )
        )

    def dram_power(
        self, freq_ghz: np.ndarray | float, sig: PowerSignature
    ) -> np.ndarray:
        """True per-module DRAM power (W) at the given frequency/frequencies."""
        if self._mixed:
            return self._scatter_groups(lambda v, f: v.dram_power(f, sig), freq_ghz)
        return np.asarray(
            pm.dram_power(
                freq_ghz,
                fmax=self._eff_arch.fmax,
                static_w=self._eff_arch.dram_static_w,
                dynamic_w=self._eff_arch.dram_dynamic_w,
                dram_activity=sig.dram_activity,
                dram_freq_coupling=sig.dram_freq_coupling,
                dram=self.variation.dram,
            )
        )

    def module_power(
        self, freq_ghz: np.ndarray | float, sig: PowerSignature
    ) -> np.ndarray:
        """True per-module (CPU + DRAM) power in watts."""
        return self.cpu_power(freq_ghz, sig) + self.dram_power(freq_ghz, sig)

    def static_cpu_power(self) -> np.ndarray:
        """Frequency-independent CPU power floor per module (W)."""
        if self._mixed:
            static_w = self.device_map.per_module(lambda dt: dt.arch.cpu_static_w)
            return self.variation.leak * static_w
        return self.variation.leak * self._eff_arch.cpu_static_w

    def module_power_chunked(
        self,
        freq_ghz: np.ndarray | float,
        sig: PowerSignature,
        *,
        chunk_modules: int = 65536,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """:meth:`module_power` with O(``chunk_modules``) peak temporaries.

        The unchunked expression materialises several fleet-sized
        intermediates (leakage term, dynamic term, DRAM terms, their
        sums); at 200k modules that is tens of throwaway arrays per
        evaluation.  This variant walks the array in zero-copy slices
        and writes each chunk's result straight into ``out`` (allocated
        once if not supplied).  Bit-identical per element to
        :meth:`module_power` — chunking changes no arithmetic, only
        temporary lifetimes.
        """
        n = self.n_modules
        if out is None:
            out = np.empty(n)
        elif out.shape != (n,):
            raise ConfigurationError(
                f"out has shape {out.shape}, expected ({n},)"
            )
        f = np.asarray(freq_ghz, dtype=float)
        scalar_f = f.ndim == 0
        if not scalar_f and f.shape != (n,):
            raise ConfigurationError(
                f"freq_ghz has shape {f.shape}, expected () or ({n},)"
            )
        for start, stop, view in self.iter_chunks(chunk_modules):
            fc = f if scalar_f else f[start:stop]
            out[start:stop] = view.module_power(fc, sig)
        return out

    def total_module_power_w(
        self,
        freq_ghz: np.ndarray | float,
        sig: PowerSignature,
        *,
        chunk_modules: int = 65536,
    ) -> float:
        """Fleet-total power (W) at ``freq_ghz``, chunk-accumulated.

        Never materialises a full per-module power array: each chunk is
        reduced to a partial sum immediately, so peak memory is
        O(``chunk_modules``) even for a 200k-module fleet.
        """
        f = np.asarray(freq_ghz, dtype=float)
        scalar_f = f.ndim == 0
        if not scalar_f and f.shape != (self.n_modules,):
            raise ConfigurationError(
                f"freq_ghz has shape {f.shape}, expected () or ({self.n_modules},)"
            )
        parts: list[float] = []
        for start, stop, view in self.iter_chunks(chunk_modules):
            fc = f if scalar_f else f[start:stop]
            parts.append(float(view.module_power(fc, sig).sum()))
        return float(np.sum(parts))

    # -- power at an operating point (duty-aware) -----------------------------

    def cpu_power_at(self, op: OperatingPoint) -> np.ndarray:
        """True CPU power at an operating point.

        Clock modulation gates only the dynamic component; leakage burns
        regardless of duty — the physical reason power caps below the
        static floor are unenforceable.
        """
        static = self.static_cpu_power()
        full = self.cpu_power(op.freq_ghz, op.signature)
        return static + op.duty * (full - static)

    def dram_power_at(self, op: OperatingPoint) -> np.ndarray:
        """True DRAM power at an operating point.

        Memory traffic follows the *effective* compute rate, so the
        frequency-coupled portion of DRAM power scales with
        ``freq · duty``.
        """
        return self.dram_power(op.freq_ghz * op.duty, op.signature)

    def module_power_at(self, op: OperatingPoint) -> np.ndarray:
        """True module (CPU + DRAM) power at an operating point."""
        return self.cpu_power_at(op) + self.dram_power_at(op)

    # -- inversion / cap resolution ------------------------------------------

    def freq_for_cpu_power(
        self, cpu_power_w: np.ndarray | float, sig: PowerSignature
    ) -> np.ndarray:
        """Unclamped frequency at which each module draws ``cpu_power_w``.

        May return values outside the DVFS ladder; see
        :meth:`resolve_cpu_cap` for the physical behaviour.
        """
        if self._mixed:
            return self._scatter_groups(
                lambda v, p: v.freq_for_cpu_power(p, sig), cpu_power_w
            )
        return np.asarray(
            pm.cpu_freq_for_power(
                cpu_power_w,
                fmax=self._eff_arch.fmax,
                static_w=self._eff_arch.cpu_static_w,
                dynamic_w=self._eff_arch.cpu_dynamic_w,
                cpu_activity=sig.cpu_activity,
                leak=self.variation.leak,
                dyn=self.variation.dyn,
            )
        )

    def resolve_cpu_cap(
        self, cap_w: np.ndarray | float, sig: PowerSignature
    ) -> CapResolution:
        """Resolve per-module CPU power caps into operating points.

        Mirrors what RAPL's control loop converges to:

        1. If the cap exceeds the draw at fmax, run at fmax (cap not
           binding).
        2. Otherwise scale frequency down the ladder until average power
           meets the cap (RAPL dithers between P-states, so the effective
           frequency is continuous within [fmin, fmax]).
        3. If the cap is below the draw at fmin, engage clock modulation:
           duty ``d`` satisfies ``static + d·dynamic(fmin) = cap``.  Work
           rate falls as ``fmin · d**subfmin_exponent`` — faster than
           power — reproducing the paper's performance cliff below ~40 W.
        4. If the cap is below ``static + min_duty·dynamic(fmin)`` the
           hardware cannot meet it; the module pins at minimum duty and
           the cap is reported as not met.
        """
        cap = np.broadcast_to(np.asarray(cap_w, dtype=float), (self.n_modules,))
        if np.any(cap <= 0):
            raise ConfigurationError("power caps must be positive")

        if self._mixed:
            dm = self.device_map
            fmin: np.ndarray | float = dm.fmin_by_module()
            fmax: np.ndarray | float = dm.fmax_by_module()
            min_duty = dm.per_module(lambda dt: dt.arch.min_duty)
            sub_exp = dm.per_module(lambda dt: dt.arch.subfmin_exponent)
        else:
            arch = self._eff_arch
            fmin, fmax = arch.fmin, arch.fmax
            min_duty, sub_exp = arch.min_duty, arch.subfmin_exponent

        f_raw = self.freq_for_cpu_power(cap, sig)
        freq = np.clip(f_raw, fmin, fmax)

        static = self.static_cpu_power()
        dyn_at_fmin = self.cpu_power(fmin, sig) - static  # ≥ 0

        below_fmin = f_raw < fmin
        with np.errstate(divide="ignore", invalid="ignore"):
            duty_needed = np.where(
                dyn_at_fmin > 0.0,
                (cap - static) / np.where(dyn_at_fmin > 0.0, dyn_at_fmin, 1.0),
                np.where(cap >= static, 1.0, 0.0),
            )
        duty = np.where(below_fmin, np.clip(duty_needed, min_duty, 1.0), 1.0)
        cap_met = ~(below_fmin & (duty_needed < min_duty))

        cpu_power = np.where(
            below_fmin,
            static + duty * dyn_at_fmin,
            np.minimum(self.cpu_power(freq, sig), cap),
        )
        effective = freq * np.power(duty, sub_exp)
        return CapResolution(
            freq_ghz=freq,
            duty=duty,
            effective_freq_ghz=effective,
            cpu_power_w=cpu_power,
            cap_met=cap_met,
        )

    # -- turbo ------------------------------------------------------------------

    def turbo_frequency(self, sig: PowerSignature) -> np.ndarray:
        """Sustained all-core Turbo frequency per module.

        Turbo residency is TDP-limited: each module climbs above fmax
        until its package power hits TDP (or the turbo ceiling, whichever
        comes first).  Because leaky modules hit TDP sooner, a
        TDP-limited workload turboes *heterogeneously* — performance
        variation appears even without any power cap.  A light workload
        (EP-style, with head-room at the ceiling) turboes uniformly,
        which is why the paper's Fig 1 shows flat performance with Turbo
        enabled.  Parts without Turbo return fmax.
        """
        if self._mixed:
            return self._scatter_groups(lambda v, _: v.turbo_frequency(sig), 0.0)
        arch = self._eff_arch
        if not arch.turbo_ghz:
            return np.full(self.n_modules, arch.fmax)
        f_at_tdp = self.freq_for_cpu_power(arch.tdp_w, sig)
        return np.clip(f_at_tdp, arch.fmax, arch.turbo_ghz)

    # -- performance ----------------------------------------------------------

    def work_rate(self, effective_freq_ghz: np.ndarray | float) -> np.ndarray:
        """Per-module work rate (GHz-equivalents) including the performance
        bin factor (≠1 only on non-frequency-binned parts such as Teller)."""
        return self.variation.perf * np.asarray(effective_freq_ghz, dtype=float)


class Module:
    """Scalar view over one slot of a :class:`ModuleArray` — zero-copy.

    The view is backed by a length-1 *slice* of the parent's variation
    buffers (:meth:`ModuleArray.take_slice`), so constructing one costs
    no allocation and always reflects the canonical array state.  Every
    scalar it returns is a builtin :class:`float` computed by exactly
    the same vectorised arithmetic as the full-array path, so view
    results are bit-for-bit identical to indexing the array's output.
    """

    def __init__(self, array: ModuleArray, index: int):
        index = int(index)
        if not (0 <= index < array.n_modules):
            raise ConfigurationError(
                f"module index {index} out of range [0, {array.n_modules})"
            )
        self._array = array.take_slice(index, index + 1)
        self.index = index
        # A length-1 view is always single-type, so its effective arch is
        # this module's own device arch (== array.arch on uniform fleets).
        self.arch = self._array._eff_arch

    # -- backing-slot scalars ---------------------------------------------------

    @property
    def variation(self) -> ModuleVariation:
        """Length-1 view of this module's variation factors."""
        return self._array.variation

    @property
    def leak(self) -> float:
        """Leakage (static-power) variation factor."""
        return float(self._array.variation.leak[0])

    @property
    def dyn(self) -> float:
        """Dynamic-power variation factor."""
        return float(self._array.variation.dyn[0])

    @property
    def dram(self) -> float:
        """DRAM power variation factor."""
        return float(self._array.variation.dram[0])

    @property
    def perf(self) -> float:
        """Performance-bin factor."""
        return float(self._array.variation.perf[0])

    # -- scalar power model -----------------------------------------------------

    def cpu_power(self, freq_ghz: float, sig: PowerSignature) -> float:
        """True CPU power (W) of this module at ``freq_ghz``."""
        return float(self._array.cpu_power(freq_ghz, sig)[0])

    def dram_power(self, freq_ghz: float, sig: PowerSignature) -> float:
        """True DRAM power (W) of this module at ``freq_ghz``."""
        return float(self._array.dram_power(freq_ghz, sig)[0])

    def module_power(self, freq_ghz: float, sig: PowerSignature) -> float:
        """True module (CPU + DRAM) power (W) at ``freq_ghz``."""
        return float(self._array.module_power(freq_ghz, sig)[0])

    def static_cpu_power(self) -> float:
        """Frequency-independent CPU power floor (W)."""
        return float(self._array.static_cpu_power()[0])

    def freq_for_cpu_power(self, cpu_power_w: float, sig: PowerSignature) -> float:
        """Unclamped frequency at which this module draws ``cpu_power_w``."""
        return float(self._array.freq_for_cpu_power(cpu_power_w, sig)[0])

    def work_rate(self, effective_freq_ghz: float) -> float:
        """Work rate (GHz-equivalents) including the performance bin."""
        return float(self._array.work_rate(effective_freq_ghz)[0])

    def turbo_frequency(self, sig: PowerSignature) -> float:
        """Sustained all-core Turbo frequency (fmax on non-Turbo parts)."""
        return float(self._array.turbo_frequency(sig)[0])

    def resolve_cpu_cap(self, cap_w: float, sig: PowerSignature) -> CapResolution:
        """Scalar cap resolution; arrays in the result have length 1."""
        return self._array.resolve_cpu_cap(cap_w, sig)
