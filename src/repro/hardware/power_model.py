"""Application power signatures and the linear component power model.

A :class:`PowerSignature` captures how an application drives the two
power domains the paper manages (Package/CPU and DRAM).  It is a property
of the *application* (and its input), not of the hardware; the hardware
contributes the per-module variation factors and the architecture's
calibrated constants (see :mod:`repro.hardware.microarch`).

The model evaluated here is the one the paper validates in Fig 5
(power linear in CPU frequency, R² ≥ 0.99)::

    P_cpu_i(f)  = leak_i · S_cpu + dyn_i · a_cpu · D_cpu · (f / fmax)
    P_dram_i(f) = dram_i · ( S_dram + a_dram · D_dram · ((1-γ) + γ · f/fmax) )

All functions are vectorised over modules and accept either scalar or
per-module frequency arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PowerSignature"]


@dataclass(frozen=True)
class PowerSignature:
    """How an application exercises the CPU and DRAM power domains.

    Attributes
    ----------
    cpu_activity:
        Fraction of the architecture's peak dynamic CPU power the code
        sustains (0 = idle, 1 = power virus).  *DGEMM ≈ 0.94 on HA8K.
    dram_activity:
        Fraction of peak dynamic DRAM power at fmax.
    dram_freq_coupling:
        γ ∈ [0, 1] — how strongly DRAM traffic follows CPU frequency.
        Compute-bound codes are issue-limited (γ ≈ 1: halve the clock,
        halve the traffic); bandwidth-saturated codes like *STREAM keep
        DRAM busy even at low clocks (γ < 1).  This is what makes the
        Naïve scheme *underestimate* DRAM power for *STREAM and overshoot
        the global budget in Fig 9.
    """

    cpu_activity: float
    dram_activity: float
    dram_freq_coupling: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.cpu_activity <= 1.0):
            raise ConfigurationError("cpu_activity must be in [0, 1]")
        if not (0.0 <= self.dram_activity <= 1.0):
            raise ConfigurationError("dram_activity must be in [0, 1]")
        if not (0.0 <= self.dram_freq_coupling <= 1.0):
            raise ConfigurationError("dram_freq_coupling must be in [0, 1]")

    def scale(self, cpu: float = 1.0, dram: float = 1.0) -> "PowerSignature":
        """Return a signature with activities scaled (clipped to [0, 1]).

        Useful for modelling input-size effects without redefining an app.
        """
        return PowerSignature(
            cpu_activity=float(np.clip(self.cpu_activity * cpu, 0.0, 1.0)),
            dram_activity=float(np.clip(self.dram_activity * dram, 0.0, 1.0)),
            dram_freq_coupling=self.dram_freq_coupling,
        )


def cpu_power(
    freq_ghz: np.ndarray | float,
    *,
    fmax: float,
    static_w: float,
    dynamic_w: float,
    cpu_activity: float,
    leak: np.ndarray | float = 1.0,
    dyn: np.ndarray | float = 1.0,
) -> np.ndarray | float:
    """Evaluate the CPU (package) power model.  All inputs broadcast."""
    f = np.asarray(freq_ghz, dtype=float)
    return np.asarray(leak) * static_w + np.asarray(dyn) * cpu_activity * dynamic_w * (
        f / fmax
    )


def dram_power(
    freq_ghz: np.ndarray | float,
    *,
    fmax: float,
    static_w: float,
    dynamic_w: float,
    dram_activity: float,
    dram_freq_coupling: float,
    dram: np.ndarray | float = 1.0,
) -> np.ndarray | float:
    """Evaluate the DRAM power model.  All inputs broadcast."""
    f = np.asarray(freq_ghz, dtype=float)
    coupling = (1.0 - dram_freq_coupling) + dram_freq_coupling * (f / fmax)
    return np.asarray(dram) * (static_w + dram_activity * dynamic_w * coupling)


def cpu_freq_for_power(
    power_w: np.ndarray | float,
    *,
    fmax: float,
    static_w: float,
    dynamic_w: float,
    cpu_activity: float,
    leak: np.ndarray | float = 1.0,
    dyn: np.ndarray | float = 1.0,
) -> np.ndarray | float:
    """Invert the CPU power model: frequency at which the package draws
    ``power_w``.

    The result may fall outside the DVFS ladder (below fmin means the cap
    cannot be met by DVFS alone and clock modulation is required; above
    fmax means the cap is not binding).  Callers clamp as appropriate.
    For a zero-activity workload the dynamic term vanishes and the
    result is ``inf`` where the static power already satisfies the cap
    and ``-inf`` where it cannot.
    """
    p = np.asarray(power_w, dtype=float)
    dyn_term = np.asarray(dyn) * cpu_activity * dynamic_w
    static = np.asarray(leak) * static_w
    with np.errstate(divide="ignore", invalid="ignore"):
        f = np.where(
            dyn_term > 0.0,
            (p - static) / np.where(dyn_term > 0.0, dyn_term, 1.0) * fmax,
            np.where(p >= static, np.inf, -np.inf),
        )
    return f if f.ndim else float(f)
