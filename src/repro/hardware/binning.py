"""Die binning — why power varies on machines whose performance doesn't.

Paper §2.1: "Most vendors address variation in CPU frequency by using
frequency binning — processors with the same performance characteristics
are placed in the same bin (typically, HPC systems obtain all their
processors from the same bin).  Currently, vendors do not deploy power
binning, which is why we observe power inhomogeneity in existing
large-scale supercomputers."

This module simulates that supply chain: a raw die population with
correlated frequency capability and leakage, sorted into frequency bins.
Within one bin the *performance* spread collapses (every die runs the
bin frequency) while the *power* spread survives — the paper's Fig 1A/1B
pattern.  The what-if — vendors binning by **power** instead — is the
natural ablation: it would shrink within-bin power variation and with it
the head-room the variation-aware budgeting algorithm exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.variability import ModuleVariation

__all__ = ["DiePopulation", "sample_die_population", "frequency_bin", "power_bin", "BinnedLot"]


@dataclass(frozen=True)
class DiePopulation:
    """Raw fab output before binning.

    ``fmax_capability_ghz`` is the highest frequency each die validates
    at; ``leak``/``dyn``/``dram`` are the usual power variation factors.
    Capability and leakage are *negatively* correlated in the draw
    (fast silicon is leaky silicon — the classic speed/leakage trade).
    """

    fmax_capability_ghz: np.ndarray
    leak: np.ndarray
    dyn: np.ndarray
    dram: np.ndarray

    def __post_init__(self) -> None:
        n = self.fmax_capability_ghz.shape[0]
        for name in ("leak", "dyn", "dram"):
            if getattr(self, name).shape != (n,):
                raise ConfigurationError(f"{name} must match population size {n}")

    @property
    def n_dies(self) -> int:
        """Number of dies in the population."""
        return int(self.fmax_capability_ghz.size)


def sample_die_population(
    n_dies: int,
    rng: np.random.Generator,
    *,
    nominal_fmax_ghz: float = 2.7,
    sigma_fmax: float = 0.05,
    sigma_leak: float = 0.115,
    sigma_dyn: float = 0.035,
    sigma_dram: float = 0.155,
    speed_leak_rho: float = -0.6,
) -> DiePopulation:
    """Draw a raw die population with the speed/leakage correlation.

    ``speed_leak_rho`` < 0: dies that validate at higher frequency tend
    to have *higher* leakage (lower threshold voltage) — note the sign
    convention: the correlation couples the *capability* z-draw with the
    *leakage* z-draw as ``z_leak = -ρ·z_f + √(1-ρ²)·z'`` so ρ=-0.6 makes
    fast dies leaky.
    """
    if n_dies <= 0:
        raise ConfigurationError("n_dies must be positive")
    if not (-1.0 <= speed_leak_rho <= 1.0):
        raise ConfigurationError("speed_leak_rho must be in [-1, 1]")
    z_f = np.clip(rng.standard_normal(n_dies), -3.5, 3.5)
    z_ind = np.clip(rng.standard_normal(n_dies), -3.5, 3.5)
    z_leak = -speed_leak_rho * z_f + np.sqrt(1 - speed_leak_rho**2) * z_ind
    return DiePopulation(
        fmax_capability_ghz=nominal_fmax_ghz * np.exp(sigma_fmax * z_f),
        leak=np.exp(sigma_leak * z_leak),
        dyn=np.exp(sigma_dyn * np.clip(rng.standard_normal(n_dies), -3.5, 3.5)),
        dram=np.exp(sigma_dram * np.clip(rng.standard_normal(n_dies), -3.5, 3.5)),
    )


@dataclass(frozen=True)
class BinnedLot:
    """One bin's worth of dies, ready to populate a system."""

    bin_label: str
    bin_frequency_ghz: float
    variation: ModuleVariation
    yield_fraction: float

    @property
    def n_dies(self) -> int:
        """Dies in this lot."""
        return self.variation.n_modules


def frequency_bin(
    population: DiePopulation,
    bin_frequency_ghz: float,
    *,
    next_bin_ghz: float | None = None,
) -> BinnedLot:
    """Select the dies sold at ``bin_frequency_ghz``.

    A die lands in this bin if it validates at the bin frequency but not
    at the next bin up (dies above ``next_bin_ghz`` are sold as the
    faster, pricier part).  Performance within the lot is uniform — every
    die ships locked to the bin frequency — but leakage is whatever the
    silicon happened to be: the power spread survives binning.
    """
    ok = population.fmax_capability_ghz >= bin_frequency_ghz
    if next_bin_ghz is not None:
        if next_bin_ghz <= bin_frequency_ghz:
            raise ConfigurationError("next_bin_ghz must exceed bin_frequency_ghz")
        ok &= population.fmax_capability_ghz < next_bin_ghz
    idx = np.flatnonzero(ok)
    if idx.size == 0:
        raise ConfigurationError(
            f"no dies validate in the {bin_frequency_ghz} GHz bin"
        )
    return BinnedLot(
        bin_label=f"{bin_frequency_ghz:.1f}GHz",
        bin_frequency_ghz=float(bin_frequency_ghz),
        variation=ModuleVariation(
            leak=population.leak[idx],
            dyn=population.dyn[idx],
            dram=population.dram[idx],
            perf=np.ones(idx.size),  # locked to the bin frequency
        ),
        yield_fraction=idx.size / population.n_dies,
    )


def power_bin(
    lot: BinnedLot,
    max_power_spread: float,
    *,
    reference_static_w: float = 18.0,
    reference_dynamic_w: float = 88.0,
) -> BinnedLot:
    """The vendor practice that does *not* exist: bin by power too.

    Keeps only dies whose fmax power falls within ``max_power_spread``
    (max/min ratio) around the lot median — the counterfactual that
    would remove the inhomogeneity the paper measures.  The price is
    yield: the rejected tail must be sold elsewhere or scrapped.
    """
    if max_power_spread < 1.0:
        raise ConfigurationError("max_power_spread is a max/min ratio (>= 1)")
    power = (
        lot.variation.leak * reference_static_w
        + lot.variation.dyn * reference_dynamic_w
    )
    median = np.median(power)
    half = np.sqrt(max_power_spread)
    keep = (power >= median / half) & (power <= median * half)
    idx = np.flatnonzero(keep)
    if idx.size == 0:
        raise ConfigurationError("power bin rejected every die")
    return BinnedLot(
        bin_label=f"{lot.bin_label}/power-binned",
        bin_frequency_ghz=lot.bin_frequency_ghz,
        variation=lot.variation.take(idx),
        yield_fraction=lot.yield_fraction * idx.size / lot.n_dies,
    )
