"""Device types: the unit of heterogeneity in a mixed fleet.

The paper's study is CPU-only, so a single :class:`Microarchitecture`
implicitly *was* the device model: one Vp distribution, one frequency
ladder, one linear P(f) family, one cap mechanism.  A heterogeneous
fleet breaks that identification.  :class:`DeviceType` makes it
explicit — a named bundle of (variability distribution, frequency
ladder with its fmin/fmax, Pmax/Pmin power-model family, cap
mechanism) — and :class:`DeviceMap` assigns one to every slot of a
:class:`~repro.hardware.module.ModuleArray` via a compact per-module
index into a small tuple of types.

Everything above ``hardware/`` stays device-agnostic: the α-solve and
the schemes operate purely in the power domain (floors, spans, per-type
PVT/PMT columns) and only map α back to a frequency through each
type's own ladder at actuation time.  No module below this file may
branch on a concrete device *name* — that contract is invariant 10 in
``docs/ARCHITECTURE.md`` and is enforced by ``scripts/check_layering.py``.

Calibration of the built-in GPU type follows the Wisconsin study
("Not All GPUs Are Created Equal", Sinha et al., 2022): ~25 % spread in
per-GPU power draw at a fixed workload and up to ~1.5x performance
spread under power caps, with performance and power positively
correlated (unlike Intel's frequency-binned CPUs, GPUs are not binned
to homogeneous performance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.dvfs import FrequencyLadder
from repro.hardware.microarch import (
    IVY_BRIDGE_E5_2697V2,
    Microarchitecture,
    register_microarch,
)
from repro.hardware.variability import VariationModel
from repro.util.indexing import as_contiguous_slice

__all__ = [
    "DeviceType",
    "DeviceMap",
    "register_device_type",
    "get_device_type",
    "list_device_types",
    "CPU_IVY_BRIDGE",
    "GPU_V100_SXM2",
]

#: Cap mechanisms a device type may declare.  "rapl" = Intel RAPL MSRs,
#: "nvml" = NVIDIA power-limit API, "none" = no enforcement (schemes that
#: cap must refuse the fleet, mirroring ``supports_capping`` on CPUs).
CAP_MECHANISMS = ("rapl", "nvml", "none")


@dataclass(frozen=True)
class DeviceType:
    """One kind of device a fleet slot can hold.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"cpu-ivy-bridge-e5-2697v2"``.
    kind:
        Coarse family, ``"cpu"`` or ``"gpu"`` — descriptive only; no
        code below the experiment layer branches on it.
    arch:
        The :class:`Microarchitecture` carrying the type's frequency
        ladder (fmin/fmax), linear-power-model constants (the
        Pmax/Pmin family) and variability distribution.
    cap_mechanism:
        How caps are enforced on this device (``CAP_MECHANISMS``).
    naive_cpu_floor_w / naive_dram_floor_w:
        The Naïve scheme's assumed per-module power floor for this
        device class (the paper uses 40 W CPU / 10 W DRAM for Ivy
        Bridge; a GPU's floor sits elsewhere on its ladder).
    description:
        One-line human-readable provenance note.
    """

    name: str
    kind: str
    arch: Microarchitecture
    cap_mechanism: str = "rapl"
    naive_cpu_floor_w: float = 40.0
    naive_dram_floor_w: float = 10.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "gpu"):
            raise ConfigurationError(f"unknown device kind {self.kind!r}")
        if self.cap_mechanism not in CAP_MECHANISMS:
            raise ConfigurationError(
                f"unknown cap mechanism {self.cap_mechanism!r}; "
                f"known: {', '.join(CAP_MECHANISMS)}"
            )

    @property
    def supports_capping(self) -> bool:
        """Whether this device can enforce power caps at all."""
        return self.cap_mechanism != "none" and self.arch.supports_capping


_REGISTRY: dict[str, DeviceType] = {}


def register_device_type(device: DeviceType, *, overwrite: bool = False) -> None:
    """Add ``device`` to the global registry.

    Raises :class:`ConfigurationError` if the name is taken and
    ``overwrite`` is false.
    """
    if device.name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"device type {device.name!r} already registered")
    _REGISTRY[device.name] = device


def get_device_type(name: str) -> DeviceType:
    """Look up a registered device type by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown device type {name!r}; known: {known}"
        ) from None


def list_device_types() -> list[str]:
    """Names of all registered device types, sorted."""
    return sorted(_REGISTRY)


class DeviceMap:
    """Per-module device assignment: a small type table plus an index.

    The map is the only piece of per-module *type* state a mixed
    :class:`~repro.hardware.module.ModuleArray` carries: ``types`` is a
    tuple of distinct :class:`DeviceType` objects and ``index`` an
    ``(n_modules,)`` int8 array of positions into it.  Like every other
    fleet-shaped column it slices contiguity-aware — :meth:`take` on an
    ascending unit-stride index set returns a buffer-sharing view.
    """

    def __init__(self, types: tuple[DeviceType, ...], index: np.ndarray):
        if not types:
            raise ConfigurationError("DeviceMap needs at least one device type")
        idx = np.asarray(index, dtype=np.int8)
        if idx.ndim != 1:
            raise ConfigurationError("device index must be one-dimensional")
        if idx.size and (idx.min() < 0 or idx.max() >= len(types)):
            raise ConfigurationError(
                f"device indices must be in [0, {len(types)}); "
                f"got range [{idx.min()}, {idx.max()}]"
            )
        self.types = tuple(types)
        self.index = idx

    # -- introspection ------------------------------------------------------

    @property
    def n_modules(self) -> int:
        """Number of modules covered by the map."""
        return int(self.index.shape[0])

    def __len__(self) -> int:
        return self.n_modules

    @property
    def is_single_type(self) -> bool:
        """True when every module is the same device type."""
        if len(self.types) == 1:
            return True
        return bool((self.index == self.index[0]).all()) if self.index.size else True

    @property
    def primary(self) -> DeviceType:
        """The device type of module 0 (the calibration module)."""
        return self.types[int(self.index[0])] if self.index.size else self.types[0]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeviceMap):
            return NotImplemented
        return self.types == other.types and np.array_equal(self.index, other.index)

    @classmethod
    def uniform(cls, device_type: DeviceType, n_modules: int) -> "DeviceMap":
        """Every module the same type."""
        return cls((device_type,), np.zeros(n_modules, dtype=np.int8))

    # -- slicing (contiguity-aware, mirrors ModuleVariation) ----------------

    def take(self, indices: np.ndarray | list[int]) -> "DeviceMap":
        """Map restricted to the given module indices (view when contiguous)."""
        sl = as_contiguous_slice(indices)
        if sl is not None:
            return DeviceMap(self.types, self.index[sl])
        idx = np.asarray(indices)
        return DeviceMap(self.types, self.index[idx])

    def take_slice(self, start: int, stop: int) -> "DeviceMap":
        """Zero-copy view of the contiguous module range ``[start, stop)``."""
        return DeviceMap(self.types, self.index[start:stop])

    # -- per-type iteration and per-module parameter gather -----------------

    def groups(self):
        """Yield ``(type_position, device_type, selector)`` per present type.

        ``selector`` indexes the modules of that type: a :class:`slice`
        when they are contiguous (zero-copy downstream), else an index
        array.  Types absent from ``index`` are skipped; iteration is in
        type-table order, so results scattered back by selector are
        deterministic.
        """
        for pos, dt in enumerate(self.types):
            mask = self.index == pos
            if not mask.any():
                continue
            where = np.flatnonzero(mask)
            sl = as_contiguous_slice(where)
            yield pos, dt, (sl if sl is not None else where)

    def per_module(self, getter) -> np.ndarray:
        """Gather ``getter(device_type)`` into an ``(n_modules,)`` float array."""
        table = np.asarray([float(getter(dt)) for dt in self.types])
        return table[self.index]

    def fmax_by_module(self) -> np.ndarray:
        """Per-module top-of-ladder frequency (GHz)."""
        return self.per_module(lambda dt: dt.arch.fmax)

    def fmin_by_module(self) -> np.ndarray:
        """Per-module bottom-of-ladder frequency (GHz)."""
        return self.per_module(lambda dt: dt.arch.fmin)


# ---------------------------------------------------------------------------
# Built-in device types.
# ---------------------------------------------------------------------------

#: NVIDIA V100 SXM2 as a power-managed module.  The linear P(f) family is
#: reused unchanged — GPU power is likewise close to linear in SM clock
#: over the sustainable range — with constants placing the 300 W TDP at
#: the top of the 0.54–1.38 GHz SM-clock ladder.  Variability follows the
#: Wisconsin study: ~25 % fleet-wide power spread (σ_leak + σ_dyn below
#: reproduce it at 3.5σ clipping) and, because GPUs are not performance
#: binned, a real σ_perf with positive power–performance correlation that
#: widens to ~1.5x performance spread once a cap binds.
GPU_V100_MICROARCH = Microarchitecture(
    name="gpu-v100-sxm2",
    vendor="NVIDIA",
    model="Tesla V100 SXM2",
    ladder=FrequencyLadder(fmin=0.54, fmax=1.38, step=0.06),
    cores_per_proc=80,
    tdp_w=300.0,
    dram_tdp_w=50.0,
    cpu_static_w=45.0,
    cpu_dynamic_w=210.0,
    dram_static_w=8.0,
    dram_dynamic_w=45.0,
    variation=VariationModel(
        sigma_leak=0.10,
        sigma_dyn=0.05,
        sigma_dram=0.12,
        sigma_perf=0.06,
        rho_perf_power=0.5,
    ),
    perf_binned=False,
    turbo_ghz=0.0,
)

register_microarch(GPU_V100_MICROARCH)

#: The paper's Ivy Bridge (HA8K) part, wrapped as the canonical CPU device.
CPU_IVY_BRIDGE = DeviceType(
    name="cpu-ivy-bridge-e5-2697v2",
    kind="cpu",
    arch=IVY_BRIDGE_E5_2697V2,
    cap_mechanism="rapl",
    naive_cpu_floor_w=40.0,
    naive_dram_floor_w=10.0,
    description="paper-calibrated Ivy Bridge E5-2697v2 (HA8K, Table 2)",
)

#: The GPU device built on the V100 microarchitecture above.
GPU_V100_SXM2 = DeviceType(
    name="gpu-v100-sxm2",
    kind="gpu",
    arch=GPU_V100_MICROARCH,
    cap_mechanism="nvml",
    naive_cpu_floor_w=60.0,
    naive_dram_floor_w=8.0,
    description="V100 SXM2 calibrated from the Wisconsin GPU-variability study",
)

for _dt in (CPU_IVY_BRIDGE, GPU_V100_SXM2):
    register_device_type(_dt)
