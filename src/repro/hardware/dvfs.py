"""Discrete DVFS frequency ladders (P-states).

Real processors expose a ladder of discrete operating points; both of the
paper's actuation strategies quantise onto it:

* **FS** (frequency selection with cpufrequtils) can only request ladder
  frequencies, so the common frequency derived from the budgeting
  algorithm is rounded *down* to the next available P-state (rounding up
  could violate the power budget).
* **PC** (RAPL power capping) effectively dithers between two adjacent
  P-states so that the *average* power meets the cap, which is why RAPL
  realises a continuous effective frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["FrequencyLadder"]


@dataclass(frozen=True)
class FrequencyLadder:
    """An ordered set of available CPU frequencies in GHz.

    Parameters
    ----------
    fmin, fmax:
        Lowest / highest sustained operating frequency in GHz.  ``fmax``
        is the all-core sustained frequency (Turbo is modelled as power
        headroom on top of this, see ``Microarchitecture.turbo_headroom``).
    step:
        Spacing of the ladder in GHz (typically 0.1 on Intel parts).
    """

    fmin: float
    fmax: float
    step: float = 0.1
    _freqs: tuple[float, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.fmin <= 0 or self.fmax <= 0:
            raise ConfigurationError("frequencies must be positive")
        if self.fmin > self.fmax:
            raise ConfigurationError(
                f"fmin ({self.fmin}) must not exceed fmax ({self.fmax})"
            )
        if self.step <= 0:
            raise ConfigurationError("frequency step must be positive")
        n = int(round((self.fmax - self.fmin) / self.step)) + 1
        freqs = tuple(
            float(round(self.fmin + i * self.step, 6)) for i in range(max(n, 1))
        )
        # Guard against floating point drift past fmax.
        freqs = tuple(f for f in freqs if f <= self.fmax + 1e-9)
        if not freqs or abs(freqs[-1] - self.fmax) > self.step:
            freqs = freqs + (self.fmax,)
        object.__setattr__(self, "_freqs", freqs)

    @property
    def frequencies(self) -> tuple[float, ...]:
        """All available P-state frequencies, ascending, in GHz."""
        return self._freqs

    def __len__(self) -> int:
        return len(self._freqs)

    def __contains__(self, f: float) -> bool:
        return any(abs(f - g) < 1e-9 for g in self._freqs)

    def clamp(self, f: np.ndarray | float) -> np.ndarray | float:
        """Clip ``f`` (GHz) into ``[fmin, fmax]`` without quantising."""
        return np.clip(f, self.fmin, self.fmax)

    def quantize_down(self, f: np.ndarray | float) -> np.ndarray | float:
        """Round ``f`` down to the nearest ladder frequency.

        Values below ``fmin`` map to ``fmin`` (a processor cannot run
        slower than its lowest P-state without clock modulation).
        """
        arr = np.asarray(f, dtype=float)
        grid = np.asarray(self._freqs)
        idx = np.searchsorted(grid, arr + 1e-9, side="right") - 1
        idx = np.clip(idx, 0, len(grid) - 1)
        out = grid[idx]
        return float(out) if np.isscalar(f) or arr.ndim == 0 else out

    def quantize_nearest(self, f: np.ndarray | float) -> np.ndarray | float:
        """Round ``f`` to the closest ladder frequency."""
        arr = np.atleast_1d(np.asarray(f, dtype=float))
        grid = np.asarray(self._freqs)
        idx = np.abs(arr[:, None] - grid[None, :]).argmin(axis=1)
        out = grid[idx]
        return float(out[0]) if np.isscalar(f) or np.asarray(f).ndim == 0 else out

    def fraction(self, f: np.ndarray | float) -> np.ndarray | float:
        """Map a frequency to its normalised position α ∈ [0, 1] on the ladder.

        This is the inverse of the paper's Eq (1):
        ``f = α (fmax − fmin) + fmin``.
        """
        span = self.fmax - self.fmin
        if span == 0.0:
            return np.zeros_like(np.asarray(f, dtype=float)) if not np.isscalar(f) else 0.0
        return (np.asarray(f, dtype=float) - self.fmin) / span

    def at_fraction(self, alpha: np.ndarray | float) -> np.ndarray | float:
        """Paper Eq (1): ``f = α (fmax − fmin) + fmin`` (not quantised)."""
        return np.asarray(alpha, dtype=float) * (self.fmax - self.fmin) + self.fmin
