"""Manufacturing-variability model.

Section 2.1 of the paper attributes power variation across identically
specified processors to the fabrication process: threshold-voltage spread
from lithographic distortion and dopant variation manifests mostly as
*leakage* (static-power) differences, with a smaller spread in switching
(dynamic) power, and an independent, larger spread across DRAM chips.

We model each module *i* with four multiplicative factors, all with mean
≈ 1:

* ``leak[i]``  — die-to-die leakage factor, multiplies the static CPU term;
* ``dyn[i]``   — dynamic-power factor, multiplies the frequency-dependent
  CPU term;
* ``dram[i]``  — DRAM power factor (the paper measures DRAM Vp ≈ 2.8 on
  HA8K, far larger than the CPU spread);
* ``perf[i]``  — performance factor (work rate at a given frequency).
  1.0 for frequency-binned vendors (Intel, IBM — Fig 1A/1B show no
  performance variation); spread out on the Teller Piledriver parts,
  *positively correlated* with dynamic power so that faster parts draw
  more power (the paper's "small negative correlation between
  [slowdown] and power").

Factors are drawn as ``exp(clip(N(0, σ), ±clip_sigmas·σ))`` — lognormal
with clipped tails so a single pathological draw cannot dominate the
worst-case Vp statistic.  Optionally a fraction of the leakage variance
is shared among sockets of the same node (within-node correlation from a
shared voltage regulator / thermal environment).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.util.indexing import as_contiguous_slice

__all__ = ["VariationModel", "ModuleVariation", "sample_variation"]


@dataclass(frozen=True)
class VariationModel:
    """Distribution parameters for manufacturing variation.

    ``sigma_*`` are log-space standard deviations; ``clip_sigmas`` bounds
    each draw to ±``clip_sigmas``·σ before exponentiation.
    ``rho_perf_power`` correlates the performance factor with the dynamic
    power factor (Teller); ``node_leak_share`` puts that fraction of the
    leakage variance into a per-node common component.
    """

    sigma_leak: float
    sigma_dyn: float
    sigma_dram: float
    sigma_perf: float = 0.0
    rho_perf_power: float = 0.0
    node_leak_share: float = 0.0
    clip_sigmas: float = 3.5

    def __post_init__(self) -> None:
        for attr in ("sigma_leak", "sigma_dyn", "sigma_dram", "sigma_perf"):
            if getattr(self, attr) < 0:
                raise ConfigurationError(f"{attr} must be non-negative")
        if not (-1.0 <= self.rho_perf_power <= 1.0):
            raise ConfigurationError("rho_perf_power must be in [-1, 1]")
        if not (0.0 <= self.node_leak_share <= 1.0):
            raise ConfigurationError("node_leak_share must be in [0, 1]")
        if self.clip_sigmas <= 0:
            raise ConfigurationError("clip_sigmas must be positive")


@dataclass(frozen=True)
class ModuleVariation:
    """Sampled per-module variation factors (ground truth of the simulator).

    Arrays all have shape ``(n_modules,)``.  This object is what a real
    system keeps hidden: schemes may only learn it through measurement
    (the PVT) or oracle access (the *Or* scheme variants).
    """

    leak: np.ndarray
    dyn: np.ndarray
    dram: np.ndarray
    perf: np.ndarray

    def __post_init__(self) -> None:
        n = self.leak.shape[0]
        for name in ("dyn", "dram", "perf"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise ConfigurationError(
                    f"variation array {name!r} has shape {arr.shape}, expected ({n},)"
                )
        for name in ("leak", "dyn", "dram", "perf"):
            arr = getattr(self, name)
            if not np.all(np.isfinite(arr)) or np.any(arr <= 0):
                raise ConfigurationError(
                    f"variation array {name!r} must be finite and positive"
                )

    @property
    def n_modules(self) -> int:
        """Number of modules covered by these factors."""
        return int(self.leak.shape[0])

    def take(self, indices: np.ndarray | list[int]) -> "ModuleVariation":
        """Variation factors restricted to a subset of module indices.

        Contiguous ascending index sets (the common case: scheduler
        first-fit allocations, single-module views) are routed through
        :meth:`take_slice` and cost nothing — the returned object shares
        the parent's buffers.  Scattered index sets fall back to a
        fancy-index copy.
        """
        sl = as_contiguous_slice(indices)
        if sl is not None and sl.stop <= self.n_modules:
            return self.take_slice(sl.start, sl.stop)
        idx = np.asarray(indices, dtype=int)
        return ModuleVariation(
            leak=self.leak[idx],
            dyn=self.dyn[idx],
            dram=self.dram[idx],
            perf=self.perf[idx],
        )

    def take_slice(self, start: int, stop: int) -> "ModuleVariation":
        """Contiguous range ``[start, stop)`` of modules, as *views*.

        Unlike :meth:`take` (fancy indexing, which copies), slicing
        shares the underlying buffers — this is what lets fleet-scale
        code walk a 200k-module array chunk by chunk without duplicating
        it.
        """
        if not (0 <= start <= stop <= self.n_modules):
            raise ConfigurationError(
                f"slice [{start}, {stop}) out of range for "
                f"{self.n_modules} modules"
            )
        return ModuleVariation(
            leak=self.leak[start:stop],
            dyn=self.dyn[start:stop],
            dram=self.dram[start:stop],
            perf=self.perf[start:stop],
        )


def _lognormal(rng: np.random.Generator, sigma: float, n: int, clip: float) -> np.ndarray:
    if sigma == 0.0:
        return np.ones(n)
    z = rng.standard_normal(n)
    z = np.clip(z, -clip, clip)
    return np.exp(sigma * z)


def sample_variation(
    model: VariationModel,
    n_modules: int,
    rng: np.random.Generator,
    *,
    procs_per_node: int = 1,
) -> ModuleVariation:
    """Draw per-module variation factors from ``model``.

    Parameters
    ----------
    model:
        Distribution parameters (usually ``arch.variation``).
    n_modules:
        Number of modules (processor + DRAM pairs) in the system.
    rng:
        Generator; obtain from :class:`repro.util.RngFactory` for
        reproducibility.
    procs_per_node:
        When >1 and ``model.node_leak_share`` >0, sockets on the same
        node share part of their leakage draw.
    """
    if n_modules <= 0:
        raise ConfigurationError("n_modules must be positive")
    if procs_per_node <= 0:
        raise ConfigurationError("procs_per_node must be positive")
    clip = model.clip_sigmas

    if model.node_leak_share > 0.0 and procs_per_node > 1:
        n_nodes = -(-n_modules // procs_per_node)  # ceil division
        shared = np.clip(rng.standard_normal(n_nodes), -clip, clip)
        shared = np.repeat(shared, procs_per_node)[:n_modules]
        own = np.clip(rng.standard_normal(n_modules), -clip, clip)
        w = model.node_leak_share
        z = np.sqrt(w) * shared + np.sqrt(1.0 - w) * own
        leak = np.exp(model.sigma_leak * z)
    else:
        leak = _lognormal(rng, model.sigma_leak, n_modules, clip)

    z_dyn = np.clip(rng.standard_normal(n_modules), -clip, clip)
    dyn = np.exp(model.sigma_dyn * z_dyn)
    dram = _lognormal(rng, model.sigma_dram, n_modules, clip)

    if model.sigma_perf == 0.0:
        perf = np.ones(n_modules)
    else:
        # Correlate the performance factor with the dynamic-power draw:
        # perf = exp(σ_perf · (ρ·z_dyn + sqrt(1-ρ²)·z_indep)).
        rho = model.rho_perf_power
        z_ind = np.clip(rng.standard_normal(n_modules), -clip, clip)
        z_perf = rho * z_dyn + np.sqrt(max(0.0, 1.0 - rho * rho)) * z_ind
        perf = np.exp(model.sigma_perf * z_perf)

    return ModuleVariation(leak=leak, dyn=dyn, dram=dram, perf=perf)
