"""Shared utilities: deterministic RNG plumbing, statistics, table rendering."""

from repro.util.indexing import as_contiguous_slice
from repro.util.rng import RngFactory, spawn_rng
from repro.util.stats import (
    LinearFit,
    linear_fit,
    r_squared,
    worst_case_variation,
    variation_summary,
)
from repro.util.tables import render_table
from repro.util.topology import (
    CpuBudget,
    CpuLease,
    NumaNode,
    NumaTopology,
    cpu_budget,
    effective_cpu_count,
    probe_topology,
    reset_topology,
)

__all__ = [
    "as_contiguous_slice",
    "RngFactory",
    "spawn_rng",
    "CpuBudget",
    "CpuLease",
    "NumaNode",
    "NumaTopology",
    "cpu_budget",
    "effective_cpu_count",
    "probe_topology",
    "reset_topology",
    "LinearFit",
    "linear_fit",
    "r_squared",
    "worst_case_variation",
    "variation_summary",
    "render_table",
]
