"""Shared utilities: deterministic RNG plumbing, statistics, table rendering."""

from repro.util.indexing import as_contiguous_slice
from repro.util.rng import RngFactory, spawn_rng
from repro.util.stats import (
    LinearFit,
    linear_fit,
    r_squared,
    worst_case_variation,
    variation_summary,
)
from repro.util.tables import render_table

__all__ = [
    "as_contiguous_slice",
    "RngFactory",
    "spawn_rng",
    "LinearFit",
    "linear_fit",
    "r_squared",
    "worst_case_variation",
    "variation_summary",
    "render_table",
]
