"""POSIX shared-memory helpers shared by the exec and simmpi layers.

Both the fleet handoff (:mod:`repro.exec.shared`) and the cross-process
sharded executor (:mod:`repro.simmpi.procshard`) hand named segments to
pool workers whose lifetime the *parent* owns.  Attaching a segment the
normal way registers it with the worker's ``resource_tracker``, which
unlinks the parent-owned block when the worker exits — exactly the
teardown race both call sites must avoid.  This module holds the one
attach helper they share; it lives in ``util`` because ``simmpi`` may
not import ``exec`` (see ``scripts/check_layering.py``).
"""

from __future__ import annotations

from multiprocessing import shared_memory

__all__ = ["attach_block"]


def attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without registering it for cleanup.

    Python 3.13 grew ``track=False`` for exactly this; on older
    interpreters the ``resource_tracker`` registration is suppressed for
    the duration of the attach instead.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shm(rname: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original(rname, rtype)

    resource_tracker.register = _skip_shm  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]
