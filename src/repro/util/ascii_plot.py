"""Terminal scatter/series plots for the experiment harness.

The paper's figures are scatter plots (per-module power, frequency vs
power, time vs power).  These helpers render the same data as ASCII so
``python -m repro fig2`` can *show* the figure, not just its summary
statistics.  No plotting dependency required.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["scatter_plot", "series_plot", "bar_groups"]

_MARKERS = "ox+*#@%&"


def _scale(values: np.ndarray, lo: float, hi: float, cells: int) -> np.ndarray:
    span = hi - lo
    if span <= 0:
        return np.zeros(len(values), dtype=int)
    idx = ((values - lo) / span * (cells - 1)).round().astype(int)
    return np.clip(idx, 0, cells - 1)


def scatter_plot(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    *,
    width: int = 72,
    height: int = 20,
    xlabel: str = "",
    ylabel: str = "",
    title: str = "",
) -> str:
    """Render one or more (x, y) point sets on a shared-axes ASCII canvas.

    Each named series gets its own marker; later series overwrite earlier
    ones where they collide.  Returns the plot as a string.
    """
    if not series:
        raise ValueError("scatter_plot needs at least one series")
    if width < 16 or height < 4:
        raise ValueError("canvas too small")

    xs = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if xs.size == 0:
        raise ValueError("scatter_plot needs at least one point")
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for (name, (x, y)), marker in zip(series.items(), _MARKERS):
        xi = _scale(np.asarray(x, dtype=float), x_lo, x_hi, width)
        yi = _scale(np.asarray(y, dtype=float), y_lo, y_hi, height)
        for cx, cy in zip(xi, yi):
            grid[height - 1 - cy][cx] = marker
        legend.append(f"{marker}={name}")

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{y_hi:.6g}"
    y_lo_label = f"{y_lo:.6g}"
    pad = max(len(y_hi_label), len(y_lo_label), len(ylabel))
    for i, row in enumerate(grid):
        if i == 0:
            label = y_hi_label
        elif i == height - 1:
            label = y_lo_label
        elif i == height // 2 and ylabel:
            label = ylabel[:pad]
        else:
            label = ""
        lines.append(f"{label.rjust(pad)} |{''.join(row)}")
    axis = f"{'':>{pad}} +{'-' * width}"
    lines.append(axis)
    x_left = f"{x_lo:.6g}"
    x_right = f"{x_hi:.6g}"
    gap = width - len(x_left) - len(x_right)
    xline = f"{'':>{pad}}  {x_left}{xlabel.center(max(gap, 1))}{x_right}"
    lines.append(xline)
    lines.append(f"{'':>{pad}}  {'  '.join(legend)}")
    return "\n".join(lines)


def bar_groups(
    groups: dict[str, dict[str, float]],
    *,
    width: int = 40,
    title: str = "",
    reference: float | None = None,
    unit: str = "",
) -> str:
    """Horizontal grouped bars (the shape of the paper's Fig 7 and Fig 9).

    ``groups`` maps a group label (e.g. ``"dgemm @134 kW"``) to its
    series values (e.g. per-scheme speedups).  ``reference`` draws a
    marker column at that value (Fig 9's red constraint line).
    """
    if not groups:
        raise ValueError("bar_groups needs at least one group")
    all_vals = [v for series in groups.values() for v in series.values()]
    if not all_vals:
        raise ValueError("bar_groups needs at least one value")
    vmax = max(max(all_vals), reference or 0.0)
    if vmax <= 0:
        raise ValueError("bar values must include a positive maximum")
    label_w = max(
        len(name) for series in groups.values() for name in series
    )

    def bar(value: float) -> str:
        n = int(round(value / vmax * width))
        cells = ["#"] * n + [" "] * (width - n)
        if reference is not None:
            r = min(width - 1, int(round(reference / vmax * width)))
            if cells[r] == " ":
                cells[r] = "|"
        return "".join(cells)

    lines = []
    if title:
        lines.append(title)
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            lines.append(
                f"  {name.ljust(label_w)} {bar(value)} {value:.2f}{unit}"
            )
    if reference is not None:
        lines.append(f"  ('|' marks {reference:.2f}{unit})")
    return "\n".join(lines)


def series_plot(
    x: Sequence[float],
    named_ys: dict[str, Sequence[float]],
    **kwargs,
) -> str:
    """Convenience wrapper: several y-series over one shared x vector."""
    xa = np.asarray(x, dtype=float)
    return scatter_plot(
        {name: (xa, np.asarray(y, dtype=float)) for name, y in named_ys.items()},
        **kwargs,
    )
