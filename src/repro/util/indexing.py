"""Index-set helpers for the array-first core.

The canonical fleet representation is columnar numpy arrays, so "give a
job these modules" is an indexing operation.  Fancy indexing always
copies; contiguous slices are zero-copy views.  The scheduler's default
(contiguous first-fit) grants exactly the kind of index set that *can*
be a slice, so every take-path in the stack first asks
:func:`as_contiguous_slice` and only falls back to a fancy-index copy
for genuinely scattered allocations (a fragmented machine).
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_contiguous_slice"]


def as_contiguous_slice(indices: np.ndarray | list[int]) -> slice | None:
    """The ``slice`` equivalent of ``indices``, or ``None`` if scattered.

    Returns ``slice(start, stop)`` (unit stride, ascending) when the
    index set is a contiguous run ``start, start+1, ..., stop-1``; any
    other shape — gaps, repeats, descending order, empty — returns
    ``None`` and the caller must fancy-index.
    """
    idx = np.asarray(indices)
    if idx.ndim != 1 or idx.size == 0:
        return None
    if not np.issubdtype(idx.dtype, np.integer):
        idx = idx.astype(int)
    start = int(idx[0])
    stop = int(idx[-1]) + 1
    if start < 0 or stop - start != idx.size:
        return None
    if idx.size > 1 and not np.array_equal(idx, np.arange(start, stop)):
        return None
    return slice(start, stop)
