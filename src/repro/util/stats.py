"""Statistics used throughout the paper's analysis.

The paper defines three worst-case variation metrics (Table 3):

* ``Vp`` — worst-case power variation: max power / min power over a set
  of modules.
* ``Vf`` — worst-case CPU-frequency variation, same ratio over realised
  frequencies.
* ``Vt`` — worst-case execution-time variation, same ratio over per-rank
  execution (or synchronisation) times.

It also relies on the near-perfect linearity of power in CPU frequency
(Fig 5, R² ≥ 0.99), for which we provide a tiny least-squares helper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "worst_case_variation",
    "variation_summary",
    "VariationSummary",
    "LinearFit",
    "linear_fit",
    "r_squared",
]


def worst_case_variation(values: np.ndarray | list[float]) -> float:
    """Return ``max(values) / min(values)`` — the paper's Vp/Vf/Vt metric.

    Raises
    ------
    ValueError
        If ``values`` is empty, contains non-finite entries, or contains
        values <= 0 (a ratio of non-positive quantities is meaningless).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("variation of an empty set is undefined")
    if not np.all(np.isfinite(arr)):
        raise ValueError("variation requires finite values")
    lo = float(arr.min())
    if lo <= 0.0:
        raise ValueError(f"variation requires strictly positive values, got min={lo}")
    return float(arr.max()) / lo


@dataclass(frozen=True)
class VariationSummary:
    """Mean / standard deviation / worst-case ratio of a module-level metric.

    Matches the annotations of Fig 2(i): ``Average=112.8W, Standard
    Deviation=4.51, Vp=1.30``.
    """

    mean: float
    std: float
    vmin: float
    vmax: float
    worst_case: float
    n: int

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.1f} std={self.std:.2f} "
            f"min={self.vmin:.1f} max={self.vmax:.1f} "
            f"V={self.worst_case:.2f} (n={self.n})"
        )


def variation_summary(values: np.ndarray | list[float]) -> VariationSummary:
    """Summarise a per-module metric the way the paper annotates figures."""
    arr = np.asarray(values, dtype=float)
    return VariationSummary(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        vmin=float(arr.min()),
        vmax=float(arr.max()),
        worst_case=worst_case_variation(arr),
        n=int(arr.size),
    )


@dataclass(frozen=True)
class LinearFit:
    """Result of an ordinary least squares fit ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r2: float

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the fitted line at ``x``."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept


def linear_fit(x: np.ndarray | list[float], y: np.ndarray | list[float]) -> LinearFit:
    """Least-squares straight-line fit with the coefficient of determination.

    Used to reproduce Fig 5: power is linear in CPU frequency with
    R² ≥ 0.99 for CPU, DRAM and module power.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError("linear_fit expects 1-D arrays of equal length")
    if xa.size < 2:
        raise ValueError("linear_fit needs at least two points")
    xm = xa.mean()
    ym = ya.mean()
    sxx = float(np.sum((xa - xm) ** 2))
    if sxx == 0.0:
        raise ValueError("linear_fit needs at least two distinct x values")
    slope = float(np.sum((xa - xm) * (ya - ym)) / sxx)
    intercept = float(ym - slope * xm)
    return LinearFit(slope=slope, intercept=intercept, r2=r_squared(ya, slope * xa + intercept))


def r_squared(y: np.ndarray | list[float], y_pred: np.ndarray | list[float]) -> float:
    """Coefficient of determination of predictions ``y_pred`` against ``y``.

    Returns 1.0 for a perfect fit.  When ``y`` is constant the statistic is
    defined here as 1.0 if predictions are exact and 0.0 otherwise.
    """
    ya = np.asarray(y, dtype=float)
    pa = np.asarray(y_pred, dtype=float)
    ss_res = float(np.sum((ya - pa) ** 2))
    ss_tot = float(np.sum((ya - ya.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
