"""CPU/NUMA topology probing and the process-wide core ledger.

The sharded executors place work on cores; this module is the one place
that knows what the cores *are*.  Three pieces:

* :func:`probe_topology` parses the Linux sysfs NUMA layout
  (``/sys/devices/system/node/node*/cpulist``) and intersects it with
  the process's effective CPU set (:func:`os.sched_getaffinity` — which
  honours cgroup quotas and ``taskset`` restrictions, unlike
  :func:`os.cpu_count`).  Anything that stops the probe — a non-Linux
  host, a masked sysfs, a node whose CPUs are all outside the affinity
  mask — degrades to a single synthetic node holding the whole
  effective set, so dev boxes, containers, and multi-socket production
  hosts all see the same shape of answer.
* :func:`effective_cpu_count` is the affinity-aware replacement for
  ``os.cpu_count()`` that every default worker count in this package
  derives from.
* :class:`CpuBudget` is a process-wide ledger over the effective CPU
  set: pool builders claim node-aware, disjoint CPU slices for their
  workers instead of each sizing itself to "all cores", so composed
  pools (engine ``jobs>1`` × process-sharded execution × inner tile
  threads) partition the machine rather than oversubscribe it.

Placement is execution layout only — nothing here may influence a
result, a cache digest, or a plan's simulated semantics
(``docs/ARCHITECTURE.md`` invariant 11).  The module is a ``util`` leaf:
it imports nothing above :mod:`repro.errors`.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "NumaNode",
    "NumaTopology",
    "CpuBudget",
    "CpuLease",
    "probe_topology",
    "effective_cpu_count",
    "cpu_budget",
    "reset_topology",
]

#: Force the probe's behaviour: ``"flat"`` skips sysfs and returns the
#: single-node fallback (what CI uses to prove both paths agree);
#: ``"sysfs"`` (the default) probes normally.
_TOPOLOGY_ENV = "REPRO_TOPOLOGY"
_TOPOLOGY_MODES = ("sysfs", "flat")

_SYSFS_NODES = "devices/system/node"
_SYSFS_LLC_GLOB = "devices/system/cpu/cpu{cpu}/cache/index*"


def _parse_cpulist(text: str) -> tuple[int, ...]:
    """Parse the kernel's cpulist syntax (``"0-3,8,10-11"``) into a
    sorted CPU tuple.  Empty/whitespace input is an empty tuple."""
    cpus: set[int] = set()
    for part in text.strip().split(","):
        part = part.strip()
        if not part:
            continue
        lo, sep, hi = part.partition("-")
        try:
            if sep:
                cpus.update(range(int(lo), int(hi) + 1))
            else:
                cpus.add(int(lo))
        except ValueError:
            raise ConfigurationError(
                f"unparseable cpulist entry {part!r} in {text!r}"
            ) from None
    return tuple(sorted(cpus))


def _parse_size(text: str) -> int | None:
    """A sysfs cache size (``"266240K"``, ``"32M"``) in bytes."""
    text = text.strip()
    scale = 1
    if text[-1:].upper() == "K":
        scale, text = 1024, text[:-1]
    elif text[-1:].upper() == "M":
        scale, text = 1024 * 1024, text[:-1]
    try:
        return int(text) * scale
    except ValueError:
        return None


@dataclass(frozen=True)
class NumaNode:
    """One NUMA node: its id and the effective CPUs that live on it."""

    node_id: int
    cpus: tuple[int, ...]

    @property
    def n_cpus(self) -> int:
        return len(self.cpus)


@dataclass(frozen=True)
class NumaTopology:
    """The machine as the scheduler may use it.

    ``nodes`` hold only CPUs inside the effective affinity mask, every
    effective CPU appears in exactly one node, and ``source`` records
    how the answer was obtained (``"sysfs"`` or ``"flat"`` — the
    single-node fallback).  ``llc_bytes`` is the last-level cache size
    of one node's CPUs (``None`` when sysfs does not expose it).
    """

    nodes: tuple[NumaNode, ...]
    source: str
    llc_bytes: int | None = None

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConfigurationError("topology must have at least one node")
        seen: set[int] = set()
        for node in self.nodes:
            if not node.cpus:
                raise ConfigurationError(
                    f"node {node.node_id} has no effective CPUs"
                )
            overlap = seen.intersection(node.cpus)
            if overlap:
                raise ConfigurationError(
                    f"CPUs {sorted(overlap)} appear on more than one node"
                )
            seen.update(node.cpus)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_cpus(self) -> int:
        return sum(n.n_cpus for n in self.nodes)

    @property
    def cpus(self) -> tuple[int, ...]:
        """Every effective CPU, grouped by node (node-major order)."""
        return tuple(cpu for node in self.nodes for cpu in node.cpus)

    def node_of(self, cpu: int) -> int:
        """The node id owning ``cpu`` (-1 when outside the topology)."""
        for node in self.nodes:
            if cpu in node.cpus:
                return node.node_id
        return -1


def _effective_cpus() -> set[int]:
    try:
        return set(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return set(range(os.cpu_count() or 1))


def effective_cpu_count() -> int:
    """CPUs this process may actually run on.

    ``len(os.sched_getaffinity(0))`` — which reflects ``taskset``/cgroup
    restrictions — with an ``os.cpu_count()`` fallback on platforms
    without affinity support.  Never less than 1.
    """
    return max(1, len(_effective_cpus()))


def _topology_mode() -> str:
    raw = os.environ.get(_TOPOLOGY_ENV)
    if raw is None:
        return "sysfs"
    if raw not in _TOPOLOGY_MODES:
        raise ConfigurationError(
            f"{_TOPOLOGY_ENV} must be one of {_TOPOLOGY_MODES}; got {raw!r}"
        )
    return raw


def _probe_llc(sysfs: Path, cpu: int) -> int | None:
    """Largest (= last-level) cache size visible to ``cpu``."""
    best: tuple[int, int] | None = None  # (level, bytes)
    for index in sorted(sysfs.glob(_SYSFS_LLC_GLOB.format(cpu=cpu))):
        try:
            level = int((index / "level").read_text())
            size = _parse_size((index / "size").read_text())
        except (OSError, ValueError):
            continue
        if size is not None and (best is None or level > best[0]):
            best = (level, size)
    return best[1] if best else None


def _flat_topology(effective: set[int], llc: int | None) -> NumaTopology:
    return NumaTopology(
        nodes=(NumaNode(node_id=0, cpus=tuple(sorted(effective))),),
        source="flat",
        llc_bytes=llc,
    )


def probe_topology(
    sysfs_root: str | Path = "/sys",
    affinity: set[int] | None = None,
) -> NumaTopology:
    """Probe the NUMA layout, restricted to the effective CPU set.

    ``sysfs_root`` and ``affinity`` exist so tests can feed synthetic
    layouts and masks; production callers use the defaults.  Any probe
    failure — missing sysfs, non-Linux, a mask that intersects no node —
    returns the single-node ``"flat"`` fallback over the effective set,
    so callers never branch on probe success.  ``REPRO_TOPOLOGY=flat``
    forces the fallback (the CI smoke proves both paths place work
    identically).
    """
    effective = set(affinity) if affinity is not None else _effective_cpus()
    if not effective:
        effective = {0}
    sysfs = Path(sysfs_root)
    llc = _probe_llc(sysfs, min(effective))
    if _topology_mode() == "flat":
        return _flat_topology(effective, llc)
    nodes: list[NumaNode] = []
    try:
        node_dirs = sorted(
            (d for d in (sysfs / _SYSFS_NODES).iterdir()
             if d.name.startswith("node") and d.name[4:].isdigit()),
            key=lambda d: int(d.name[4:]),
        )
        for node_dir in node_dirs:
            cpus = _parse_cpulist((node_dir / "cpulist").read_text())
            local = tuple(c for c in cpus if c in effective)
            if local:
                nodes.append(NumaNode(node_id=int(node_dir.name[4:]), cpus=local))
    except (OSError, ConfigurationError):
        return _flat_topology(effective, llc)
    covered = {c for n in nodes for c in n.cpus}
    if not nodes or covered != effective:
        # A mask the node files cannot account for (offline nodes,
        # masked sysfs, empty intersection): fall back rather than
        # silently dropping CPUs.
        return _flat_topology(effective, llc)
    return NumaTopology(nodes=tuple(nodes), source="sysfs", llc_bytes=llc)


# -- the core ledger -----------------------------------------------------------


@dataclass(frozen=True)
class CpuLease:
    """One claim against the :class:`CpuBudget`: a tuple of node-aware
    CPU slices, one per pool worker.  Release via
    :meth:`CpuBudget.release` (or the budget's context helper)."""

    label: str
    slices: tuple[tuple[int, ...], ...]
    token: int = field(compare=False, default=0)

    @property
    def cpus(self) -> tuple[int, ...]:
        """Distinct CPUs granted across every slice."""
        return tuple(sorted({c for s in self.slices for c in s}))

    @property
    def n_workers(self) -> int:
        return len(self.slices)


class CpuBudget:
    """Process-wide ledger partitioning the effective CPU set.

    Pool builders :meth:`claim` slices for their workers; the ledger
    hands out node-aware contiguous runs and tracks what is outstanding
    so composed pools can be audited (``claimed_cpus`` vs ``total``).
    Claiming more workers than CPUs shares CPUs round-robin — the
    slices stay non-empty and placement stays deterministic, it simply
    stops being exclusive (which a 1-core container cannot avoid).
    """

    def __init__(self, topology: NumaTopology | None = None):
        self._topology = topology if topology is not None else probe_topology()
        self._lock = threading.Lock()
        self._leases: dict[int, CpuLease] = {}
        self._next_token = 1

    @property
    def topology(self) -> NumaTopology:
        return self._topology

    @property
    def total(self) -> int:
        """Cores in the budget (the effective CPU count)."""
        return self._topology.n_cpus

    @property
    def claimed_cpus(self) -> int:
        """Distinct CPUs currently granted across live leases."""
        with self._lock:
            return len({
                c for lease in self._leases.values() for c in lease.cpus
            })

    @property
    def n_leases(self) -> int:
        with self._lock:
            return len(self._leases)

    def slices(self, n_workers: int) -> tuple[tuple[int, ...], ...]:
        """``n_workers`` node-aware CPU slices covering the budget.

        CPUs are laid out node-major, so a slice's CPUs share a node
        whenever the arithmetic allows; with more workers than CPUs the
        assignment wraps (slices of one shared CPU each).
        """
        if n_workers <= 0:
            raise ConfigurationError(
                f"n_workers must be positive; got {n_workers}"
            )
        cpus = self._topology.cpus
        if n_workers >= len(cpus):
            return tuple((cpus[i % len(cpus)],) for i in range(n_workers))
        base, extra = divmod(len(cpus), n_workers)
        out: list[tuple[int, ...]] = []
        start = 0
        for w in range(n_workers):
            width = base + (1 if w < extra else 0)
            out.append(cpus[start:start + width])
            start += width
        return tuple(out)

    def claim(self, n_workers: int, label: str = "pool") -> CpuLease:
        """Claim slices for ``n_workers`` and record the lease."""
        slices = self.slices(n_workers)
        with self._lock:
            lease = CpuLease(label=label, slices=slices, token=self._next_token)
            self._leases[self._next_token] = lease
            self._next_token += 1
        return lease

    def release(self, lease: CpuLease) -> None:
        """Return a lease to the budget (idempotent)."""
        with self._lock:
            self._leases.pop(lease.token, None)


#: The process-wide budget, built lazily from the live topology.
_BUDGET: CpuBudget | None = None
_BUDGET_LOCK = threading.Lock()


def cpu_budget() -> CpuBudget:
    """The process-wide :class:`CpuBudget` (created on first use)."""
    global _BUDGET
    with _BUDGET_LOCK:
        if _BUDGET is None:
            _BUDGET = CpuBudget()
        return _BUDGET


def reset_topology() -> None:
    """Drop the cached process-wide budget (tests, or after the
    process's affinity mask changes)."""
    global _BUDGET
    with _BUDGET_LOCK:
        _BUDGET = None
