"""Deterministic random-number plumbing.

Every stochastic element of the simulator (manufacturing variation draws,
sensor noise, RAPL dither, application-specific calibration residuals)
obtains its generator from a single :class:`RngFactory`, which spawns
independent child streams keyed by a string path.  The same root seed and
key therefore always reproduce the same stream, regardless of the order
in which subsystems are constructed — a requirement for the
reproducibility claims in DESIGN.md section 6.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory", "spawn_rng"]


def _key_to_words(key: str) -> tuple[int, ...]:
    """Hash a string key into a stable tuple of 32-bit words.

    ``numpy.random.SeedSequence`` accepts arbitrary entropy in addition to
    the root seed; hashing the key (rather than e.g. Python's randomized
    ``hash``) keeps streams stable across interpreter runs.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return tuple(int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4))


class RngFactory:
    """Spawns named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed for the whole simulation.  Two factories created with
        the same seed hand out identical streams for identical keys.
    prefix:
        Optional namespace prepended to every key (used by :meth:`child`).

    Examples
    --------
    >>> f = RngFactory(1234)
    >>> a = f.rng("hardware/variability").standard_normal()
    >>> b = RngFactory(1234).rng("hardware/variability").standard_normal()
    >>> a == b
    True
    """

    def __init__(self, seed: int = 0, prefix: str = ""):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self._seed = int(seed)
        self._prefix = str(prefix)

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    @property
    def prefix(self) -> str:
        """Namespace prefix applied to every key."""
        return self._prefix

    def rng(self, key: str) -> np.random.Generator:
        """Return a fresh generator for ``key``.

        Calling twice with the same key returns generators that produce
        identical streams (each call restarts the stream).
        """
        seq = np.random.SeedSequence(
            entropy=self._seed, spawn_key=_key_to_words(self._prefix + key)
        )
        return np.random.default_rng(seq)

    def child(self, key: str) -> "RngFactory":
        """Return a factory whose streams are namespaced under ``key``."""
        return RngFactory(self._seed, prefix=self._prefix + key + "/")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(seed={self._seed!r}, prefix={self._prefix!r})"


def spawn_rng(seed: int, key: str) -> np.random.Generator:
    """One-shot convenience wrapper: ``RngFactory(seed).rng(key)``."""
    return RngFactory(seed).rng(key)
