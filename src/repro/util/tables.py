"""Minimal ASCII table rendering for experiment harness output.

The benchmark harness prints the same rows the paper reports; this module
keeps that presentation logic out of the experiment code.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["render_table"]


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Floats are formatted with two decimals; everything else via ``str``.
    Returns the table as a single string (no trailing newline).
    """
    str_rows = [[_fmt(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    out: list[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
