"""Typed metric instruments: counters, gauges, histograms.

The instruments are deliberately minimal — a flat name, a scalar state,
O(1) updates — because they sit on hot paths (the engine's cache lookups,
the fast path's routing decision, the α-solve).  Label dimensions are
encoded into the name by the caller (``"fleet.vf[vafsor]"``), which keeps
lookup a single dict probe.

All state lives in a :class:`MetricsRegistry` owned by one
:class:`~repro.telemetry.trace.TelemetryCollector`; instruments are
created on first use and never deleted, so a reference obtained once can
be updated forever.

Instruments are thread-safe: the sharded fast path updates them from
shard worker threads, and a read-modify-write count or histogram fold
would silently drop updates under the GIL's preemption points.  Each
instrument carries its own lock (update paths never take two locks, so
there is no ordering to get wrong), and the registry's get-or-create
probes share one registry lock so two threads can never race a distinct
instrument into the same name.
"""

from __future__ import annotations

import math
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count (cache hits, routing decisions)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the count."""
        if n < 0:
            raise ValueError("counters only go up; use a Gauge for levels")
        with self._lock:
            self.value += n


class Gauge:
    """Last-written level (the solved α, a fleet Vf, a queue depth)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current level (overwrites the previous one)."""
        v = float(value)
        with self._lock:
            self.value = v


class Histogram:
    """Streaming summary of an observed distribution.

    Keeps count / sum / min / max — enough for the mean and the range
    without retaining samples, so a histogram on a hot path costs four
    scalar updates per observation.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Fold one sample into the summary."""
        v = float(value)
        with self._lock:
            self.count += 1
            self.total += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Name → instrument maps with get-or-create access.

    One registry per collector; iteration order is creation order
    (plain dicts), which the renderer and sinks preserve.
    """

    __slots__ = ("counters", "gauges", "histograms", "_lock")

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        c = self.counters.get(name)
        if c is None:
            with self._lock:
                c = self.counters.get(name)
                if c is None:
                    c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        g = self.gauges.get(name)
        if g is None:
            with self._lock:
                g = self.gauges.get(name)
                if g is None:
                    g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        h = self.histograms.get(name)
        if h is None:
            with self._lock:
                h = self.histograms.get(name)
                if h is None:
                    h = self.histograms[name] = Histogram(name)
        return h

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)
