"""Low-overhead structured tracing + metrics for the reproduction.

The subsystem is a pure leaf: it may be imported from any layer but
imports none of core/exec/experiments (enforced by
``scripts/check_layering.py``), and it is *pure observation* — enabling
it never changes a numeric result (covered by the determinism test in
``tests/exec/``).

Instrumented code calls the module-level helpers unconditionally::

    from repro import telemetry

    with telemetry.span("solve_alpha", budget_w=budget_w) as sp:
        ...
        sp.set(iterations=n)
    telemetry.count("engine.cache.hit")

Telemetry is off by default.  Disabled, every helper is one global load
plus a ``None`` check returning a shared no-op — which is what lets the
instrumentation live permanently in hot paths and still clear the <5 %
fleet fast-path overhead gate.  Enabled (:func:`enable`, or the CLI's
``--telemetry`` flag), a per-process :class:`TelemetryCollector` records
spans, metric instruments, phase timelines, and run-constant arrays,
renderable with :func:`format_report` and exportable with
:func:`~repro.telemetry.sinks.write_sinks`.

The collector is per-process: engine pool workers (``jobs > 1``) start
fresh with telemetry disabled, so a traced session observes the parent
process — dispatch, cache traffic, and any runs executed in-process.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.render import format_metrics, format_report, format_span_tree
from repro.telemetry.sinks import read_jsonl, write_jsonl, write_npz, write_sinks
from repro.telemetry.timeline import PhaseTimeline, RunArrays, SyncEvent
from repro.telemetry.trace import Span, SpanRecord, TelemetryCollector

__all__ = [
    # control
    "enable",
    "disable",
    "enabled",
    "collector",
    # recording
    "span",
    "record_span",
    "count",
    "gauge",
    "observe",
    "snapshot",
    "timeline",
    "record_arrays",
    "run_scope",
    # reporting / persistence
    "report",
    "format_report",
    "format_span_tree",
    "format_metrics",
    "write_jsonl",
    "write_npz",
    "write_sinks",
    "read_jsonl",
    # data model
    "TelemetryCollector",
    "Span",
    "SpanRecord",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseTimeline",
    "SyncEvent",
    "RunArrays",
]


class _NullSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: The active collector, or ``None`` when telemetry is disabled.  Every
#: helper below branches on this exactly once.
_collector: TelemetryCollector | None = None


# -- control -------------------------------------------------------------------


def enable(fresh: bool = True) -> TelemetryCollector:
    """Turn telemetry on for this process and return the collector.

    With ``fresh=False`` an existing collector (from a previous enable
    in the same process) is kept, so sessions can be resumed across
    ``disable()`` gaps.
    """
    global _collector
    if fresh or _collector is None:
        _collector = TelemetryCollector()
    return _collector


def disable() -> TelemetryCollector | None:
    """Turn telemetry off; returns the final collector (if any)."""
    global _collector
    c = _collector
    _collector = None
    return c


def enabled() -> bool:
    """Whether a collector is currently active."""
    return _collector is not None


def collector() -> TelemetryCollector | None:
    """The active collector, or ``None`` when disabled."""
    return _collector


# -- recording -----------------------------------------------------------------


def span(name: str, **attrs):
    """A context manager timing one named region (no-op when disabled)."""
    c = _collector
    if c is None:
        return _NULL_SPAN
    return c.span(name, attrs or None)


def record_span(name: str, dur_s: float, **attrs) -> None:
    """Record an externally timed span — e.g. one shard worker's
    accumulated busy seconds, timed inside the worker and reported once
    the pass completes (no-op when disabled)."""
    c = _collector
    if c is not None:
        c.add_span(name, dur_s, attrs or None)


def count(name: str, n: int = 1) -> None:
    """Increment counter ``name`` by ``n`` (no-op when disabled)."""
    c = _collector
    if c is not None:
        c.metrics.counter(name).inc(n)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op when disabled)."""
    c = _collector
    if c is not None:
        c.metrics.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Fold ``value`` into histogram ``name`` (no-op when disabled)."""
    c = _collector
    if c is not None:
        c.metrics.histogram(name).observe(value)


def snapshot() -> dict[str, float] | None:
    """Point-in-time counter and gauge values, or ``None`` when disabled.

    A flat ``{name: value}`` copy safe to serialise and to read while
    recording continues — the allocation service's telemetry stream
    samples this each tick instead of reaching into live instruments.
    """
    c = _collector
    if c is None:
        return None
    out: dict[str, float] = {}
    for name, counter in c.metrics.counters.items():
        out[name] = float(counter.value)
    for name, g in c.metrics.gauges.items():
        out[name] = float(g.value)
    return out


def timeline(kind: str) -> PhaseTimeline | None:
    """A new phase timeline under the current run scope, or ``None``.

    The simulators attach the returned timeline as their observer; the
    ``None`` return when disabled is exactly the machines' "no observer"
    state, so the hot sync loop needs no telemetry-specific branch.
    """
    c = _collector
    if c is None:
        return None
    return c.new_timeline(kind)


def record_arrays(name: str, **arrays: np.ndarray) -> None:
    """Retain per-module arrays under the run scope (no-op when disabled)."""
    c = _collector
    if c is not None:
        c.record_arrays(name, **arrays)


def run_scope(run: str, label: str = ""):
    """Scope subsequent records to ``run`` (no-op context when disabled)."""
    c = _collector
    if c is None:
        return nullcontext()
    return c.run_scope(run, label)


# -- reporting -----------------------------------------------------------------


def report(title: str = "telemetry") -> str:
    """Render the active session (or note that telemetry is disabled)."""
    c = _collector
    if c is None:
        return "-- telemetry disabled (enable with --telemetry)"
    return format_report(c, title)
