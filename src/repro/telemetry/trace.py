"""Span-based structured tracing and the per-process collector.

A *span* is one named, timed region of work (``solve_alpha``, an
engine-dispatched run, a fleet point); spans nest, forming a tree that
shows where a run's wall-clock time went.  The design constraint is the
disabled path: instrumentation stays compiled into the hot code
permanently, so when telemetry is off a ``span(...)`` call must cost one
attribute load and a ``None`` check — the facade in
:mod:`repro.telemetry` returns a shared no-op context manager and never
touches this module.

When enabled, every span costs two :func:`~time.perf_counter` calls, a
list append, and a dict probe — microseconds, which is what keeps the
fleet fast-path overhead gate (<5 %) comfortable.

The collector is thread-safe: the sharded fast path opens spans and
records pre-timed per-shard spans from worker threads.  Id allocation
and the ``spans`` append share one collector lock; the *open-span stack*
(which determines each record's parent) is thread-local, so a worker's
spans nest under whatever that worker opened, never under another
thread's unrelated frame.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeline import PhaseTimeline, RunArrays

__all__ = ["SpanRecord", "Span", "TelemetryCollector"]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    ``parent`` is the id of the enclosing span (−1 for a root);
    ``t_start_s`` is relative to the collector's epoch (its creation),
    so records from one session share a timeline.
    """

    id: int
    parent: int
    run: str
    name: str
    t_start_s: float
    dur_s: float
    attrs: dict


class Span:
    """Live span handle — a reusable-once context manager.

    Attributes set before exit (via constructor kwargs or :meth:`set`)
    are frozen into the :class:`SpanRecord` on completion.
    """

    __slots__ = ("_collector", "_name", "_attrs", "_id", "_t0")

    def __init__(self, collector: "TelemetryCollector", name: str, attrs: dict):
        self._collector = collector
        self._name = name
        self._attrs = attrs
        self._id = -1
        self._t0 = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (chunk counts, sizes)."""
        self._attrs.update(attrs)

    def __enter__(self) -> "Span":
        c = self._collector
        with c._lock:
            self._id = c._next_id
            c._next_id += 1
        c._stack.append(self._id)
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = perf_counter()
        c = self._collector
        stack = c._stack
        stack.pop()
        parent = stack[-1] if stack else -1
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        record = SpanRecord(
            id=self._id,
            parent=parent,
            run=c.current_run,
            name=self._name,
            t_start_s=self._t0 - c._epoch,
            dur_s=t1 - self._t0,
            attrs=self._attrs,
        )
        with c._lock:
            c.spans.append(record)
        return False


@dataclass
class TelemetryCollector:
    """All telemetry of one enabled session, in memory.

    Holds the completed spans, the metric instruments, the phase
    timelines and run-constant arrays, plus the *run scope* — a label
    (under the engine: the :class:`~repro.exec.cache.RunKey` digest
    prefix) stamped onto every span, timeline, and array record created
    while the scope is active, which is what keys the exported sinks
    back to cached runs.
    """

    spans: list[SpanRecord] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    timelines: list[PhaseTimeline] = field(default_factory=list)
    run_arrays: list[RunArrays] = field(default_factory=list)
    run_labels: dict[str, str] = field(default_factory=dict)
    timeline_detail_events: int = 8
    current_run: str = ""
    _epoch: float = field(default_factory=perf_counter)
    _next_id: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _tls: threading.local = field(
        default_factory=threading.local, repr=False, compare=False
    )

    @property
    def _stack(self) -> list[int]:
        """The calling thread's open-span stack (created on first use)."""
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    # -- spans -----------------------------------------------------------------

    def span(self, name: str, attrs: dict | None = None) -> Span:
        """A new live span; use as ``with collector.span("name"):``."""
        return Span(self, name, {} if attrs is None else attrs)

    def add_span(
        self,
        name: str,
        dur_s: float,
        attrs: dict | None = None,
        *,
        started_at: float | None = None,
    ) -> None:
        """Record an externally timed span (e.g. one shard's accumulated
        busy time).  ``started_at`` is a :func:`~time.perf_counter`
        value; omitted, the span is backdated so it *ends* now.  The
        parent is the calling thread's innermost open span."""
        if started_at is None:
            started_at = perf_counter() - dur_s
        stack = self._stack
        parent = stack[-1] if stack else -1
        with self._lock:
            sid = self._next_id
            self._next_id += 1
            self.spans.append(
                SpanRecord(
                    id=sid,
                    parent=parent,
                    run=self.current_run,
                    name=name,
                    t_start_s=started_at - self._epoch,
                    dur_s=float(dur_s),
                    attrs={} if attrs is None else attrs,
                )
            )

    @contextmanager
    def run_scope(self, run: str, label: str = ""):
        """Stamp everything recorded inside the block with ``run``.

        Scopes nest (the inner run wins and the outer is restored), so
        an engine dispatch inside a fleet-point scope re-keys correctly.
        """
        prev = self.current_run
        self.current_run = run
        if label:
            self.run_labels[run] = label
        try:
            yield self
        finally:
            self.current_run = prev

    # -- timelines and arrays --------------------------------------------------

    def new_timeline(self, kind: str) -> PhaseTimeline:
        """Create (and retain) a phase timeline tagged with the run scope."""
        tl = PhaseTimeline(
            kind=kind, run=self.current_run,
            detail_events=self.timeline_detail_events,
        )
        self.timelines.append(tl)
        return tl

    def record_arrays(self, name: str, **arrays: np.ndarray) -> None:
        """Retain run-constant per-module arrays under the run scope."""
        self.run_arrays.append(
            RunArrays(
                run=self.current_run,
                name=name,
                arrays={k: np.asarray(v) for k, v in arrays.items()},
            )
        )

    # -- introspection ---------------------------------------------------------

    @property
    def n_spans(self) -> int:
        """Completed spans recorded so far."""
        return len(self.spans)

    def runs(self) -> list[str]:
        """Distinct run scopes, in first-seen order ("" = unscoped)."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.run, None)
        for t in self.timelines:
            seen.setdefault(t.run, None)
        for a in self.run_arrays:
            seen.setdefault(a.run, None)
        return list(seen)
