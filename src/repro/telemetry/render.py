"""Text rendering of a telemetry session: span tree + metrics tables.

Everything here is presentation over the collector's plain data
structures, so it renders live sessions and sessions re-loaded from a
JSONL sink (:func:`repro.telemetry.sinks.read_jsonl`) identically.
"""

from __future__ import annotations

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeline import PhaseTimeline
from repro.telemetry.trace import SpanRecord, TelemetryCollector
from repro.util.tables import render_table

__all__ = ["format_span_tree", "format_metrics", "format_report"]


def _fmt_dur(dur_s: float) -> str:
    if dur_s >= 1.0:
        return f"{dur_s:.2f} s"
    if dur_s >= 1e-3:
        return f"{dur_s * 1e3:.1f} ms"
    return f"{dur_s * 1e6:.0f} µs"


def _fmt_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in attrs.items())
    return f" ({inner})"


def format_span_tree(
    spans: list[SpanRecord], run_labels: dict[str, str] | None = None
) -> str:
    """Render completed spans as per-run trees, durations right-hand.

    Spans are grouped by run scope; within a run, the parent/child ids
    recorded at completion rebuild the nesting and siblings are ordered
    by start time.
    """
    if not spans:
        return "-- no spans recorded"
    run_labels = run_labels or {}
    by_run: dict[str, list[SpanRecord]] = {}
    for s in spans:
        by_run.setdefault(s.run, []).append(s)

    lines: list[str] = []
    for run, group in by_run.items():
        children: dict[int, list[SpanRecord]] = {}
        for s in group:
            children.setdefault(s.parent, []).append(s)
        for sibs in children.values():
            sibs.sort(key=lambda s: s.t_start_s)

        if run:
            label = run_labels.get(run, "")
            lines.append(f"run {run}" + (f"  [{label}]" if label else ""))
        else:
            lines.append("(unscoped)")

        rows: list[tuple[str, float]] = []

        def walk(parent: int, prefix: str) -> None:
            sibs = children.get(parent, [])
            for i, s in enumerate(sibs):
                last = i == len(sibs) - 1
                branch = "└─ " if last else "├─ "
                rows.append((f"{prefix}{branch}{s.name}{_fmt_attrs(s.attrs)}", s.dur_s))
                walk(s.id, prefix + ("   " if last else "│  "))

        walk(-1, "")
        width = max((len(text) for text, _ in rows), default=0)
        for text, dur_s in rows:
            pad = " " * (width - len(text) + 2)
            lines.append(f"{text}{pad}{_fmt_dur(dur_s):>10}")
    return "\n".join(lines)


def format_metrics(metrics: MetricsRegistry) -> str:
    """Render every instrument as one merged table."""
    if len(metrics) == 0:
        return "-- no metrics recorded"
    rows: list[list[object]] = []
    for c in metrics.counters.values():
        rows.append([c.name, "counter", str(c.value), "", "", ""])
    for g in metrics.gauges.values():
        value = "-" if g.value is None else f"{g.value:.6g}"
        rows.append([g.name, "gauge", value, "", "", ""])
    for h in metrics.histograms.values():
        rows.append(
            [
                h.name,
                "histogram",
                str(h.count),
                f"{h.mean:.6g}",
                f"{h.min:.6g}" if h.count else "",
                f"{h.max:.6g}" if h.count else "",
            ]
        )
    return render_table(
        ["Metric", "Type", "Count/Value", "Mean", "Min", "Max"],
        rows,
        title="metrics",
    )


def _format_timelines(timelines: list[PhaseTimeline]) -> str:
    rows = [
        [t.run or "-", t.kind, str(t.n_events), str(t.dropped), t.summary()]
        for t in timelines
    ]
    return render_table(
        ["Run", "Path", "Syncs", "Dropped", "Phases"],
        rows,
        title="phase timelines (barrier granularity)",
    )


def format_report(collector: TelemetryCollector, title: str = "telemetry") -> str:
    """The full human-readable session report (``repro trace`` output)."""
    head = (
        f"== {title}: {collector.n_spans} spans, {len(collector.metrics)} "
        f"metrics, {len(collector.timelines)} timelines, "
        f"{len(collector.run_arrays)} run-array records"
    )
    parts = [head, format_span_tree(collector.spans, collector.run_labels)]
    if collector.timelines:
        parts.append(_format_timelines(collector.timelines))
    parts.append(format_metrics(collector.metrics))
    return "\n".join(parts)
