"""Per-run phase timelines captured at barrier granularity.

The simulators call :meth:`PhaseTimeline.on_sync` at every *executed*
synchronisation point (barrier, allreduce, halo exchange) — the phase
boundaries of a bulk-synchronous run.  Each event always records the op
kind and the fleet-wide clock maximum (one reduction pass); the first
``detail_events`` events additionally snapshot the full per-module clock
and wait arrays, so a trace shows both the whole run's phase structure
and the per-module spread where it develops.  Full snapshots are capped
because the fast path's steady-state fast-forwarding makes executed
syncs rare, but an event-driven fallback run could execute thousands —
the cap keeps telemetry overhead bounded no matter which path ran.

:class:`RunArrays` carries run-constant per-module arrays (realised
power, effective frequency, final elapsed time) that the runner records
once per managed execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SyncEvent", "PhaseTimeline", "RunArrays"]

#: Full per-module snapshots retained per timeline (events beyond this
#: still record kind + clock max, just not the arrays).
DEFAULT_DETAIL_EVENTS = 8

#: Total snapshot *elements* retained per timeline.  The event budget
#: alone would make telemetry cost scale with fleet size (8 events × 2
#: arrays × 200k modules is real memory bandwidth); the element budget
#: keeps small runs fully detailed while fleet-scale timelines degrade
#: to summaries after the first event or two.
DEFAULT_DETAIL_ELEMS = 131_072

#: Hard cap on events per timeline; overflow increments ``dropped``.
DEFAULT_MAX_EVENTS = 4096


@dataclass(frozen=True)
class SyncEvent:
    """One executed synchronisation point.

    ``clock_s`` / ``wait_s`` are per-module snapshots (``None`` once the
    timeline's detail budget is spent).
    """

    op: str
    t_max_s: float
    clock_s: np.ndarray | None = None
    wait_s: np.ndarray | None = None


@dataclass
class PhaseTimeline:
    """Barrier-granularity record of one simulated execution.

    Attributes
    ----------
    kind:
        Which simulator produced it (``"fastpath"`` or ``"eventsim"``).
    run:
        The run scope active when the timeline was created (the
        :class:`~repro.exec.cache.RunKey` digest prefix under the
        engine, an experiment-chosen label otherwise).
    """

    kind: str
    run: str = ""
    detail_events: int = DEFAULT_DETAIL_EVENTS
    detail_elems: int = DEFAULT_DETAIL_ELEMS
    max_events: int = DEFAULT_MAX_EVENTS
    events: list[SyncEvent] = field(default_factory=list)
    dropped: int = 0
    detail_elems_used: int = 0

    def on_sync(self, op: str, clock_s: np.ndarray, wait_s: np.ndarray) -> None:
        """Record one synchronisation point (called by the machines).

        Pure observation: the arrays are copied (or only reduced), never
        mutated, so attaching a timeline cannot change a result.
        """
        n = len(self.events)
        if n >= self.max_events:
            self.dropped += 1
            return
        cost = 2 * int(clock_s.size)
        if n < self.detail_events and self.detail_elems_used + cost <= self.detail_elems:
            self.detail_elems_used += cost
            self.events.append(
                SyncEvent(
                    op=op,
                    t_max_s=float(clock_s.max()),
                    clock_s=np.array(clock_s, dtype=float),
                    wait_s=np.array(wait_s, dtype=float),
                )
            )
        else:
            self.events.append(SyncEvent(op=op, t_max_s=float(clock_s.max())))

    @property
    def n_events(self) -> int:
        """Synchronisation points recorded (excluding dropped ones)."""
        return len(self.events)

    def summary(self) -> str:
        """One-line description for the trace report."""
        kinds: dict[str, int] = {}
        for e in self.events:
            kinds[e.op] = kinds.get(e.op, 0) + 1
        ops = ", ".join(f"{k}×{v}" for k, v in kinds.items()) or "no syncs"
        tail = f" (+{self.dropped} dropped)" if self.dropped else ""
        last = f", t_max {self.events[-1].t_max_s:.4g} s" if self.events else ""
        return f"{self.kind}: {ops}{last}{tail}"


@dataclass(frozen=True)
class RunArrays:
    """Run-constant per-module arrays recorded once per managed run."""

    run: str
    name: str
    arrays: dict[str, np.ndarray]
