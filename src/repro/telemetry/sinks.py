"""Telemetry persistence: JSONL (structured records) + NPZ (arrays).

One session exports to a pair of files:

* ``<stem>.jsonl`` — one JSON object per line: a header, every span,
  every metric instrument, per-timeline event summaries, and the key
  index of the companion NPZ.  Self-contained for ``repro trace
  <file>``: :func:`read_jsonl` reconstructs a renderable collector.
* ``<stem>.npz`` — the per-module arrays (timeline snapshots, the
  runner's power/frequency/elapsed records), too large for JSON.  Keys
  are ``tl<i>/ev<j>/<field>`` and ``arr<i>/<field>``; every indexed
  object carries its ``run`` scope — under the engine, the
  :class:`~repro.exec.cache.RunKey` digest prefix — so arrays join back
  to cached results by key, not by position.

Both files are written atomically (temp file + ``os.replace``), matching
the result cache's torn-write guarantee.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.telemetry.timeline import PhaseTimeline, RunArrays, SyncEvent
from repro.telemetry.trace import SpanRecord, TelemetryCollector

__all__ = ["write_jsonl", "write_npz", "write_sinks", "read_jsonl"]

#: Bump when the sink layout changes incompatibly.
SINK_SCHEMA_VERSION = 1


def _atomic_write(path: Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _finite(v: float) -> float | None:
    return None if not math.isfinite(v) else v


def _records(collector: TelemetryCollector) -> list[dict]:
    recs: list[dict] = [
        {
            "kind": "header",
            "schema": SINK_SCHEMA_VERSION,
            "n_spans": collector.n_spans,
            "n_timelines": len(collector.timelines),
            "n_run_arrays": len(collector.run_arrays),
            "run_labels": dict(collector.run_labels),
        }
    ]
    for s in collector.spans:
        recs.append(
            {
                "kind": "span",
                "id": s.id,
                "parent": s.parent,
                "run": s.run,
                "name": s.name,
                "t_start_s": s.t_start_s,
                "dur_s": s.dur_s,
                "attrs": s.attrs,
            }
        )
    m = collector.metrics
    for c in m.counters.values():
        recs.append({"kind": "counter", "name": c.name, "value": c.value})
    for g in m.gauges.values():
        recs.append({"kind": "gauge", "name": g.name, "value": g.value})
    for h in m.histograms.values():
        recs.append(
            {
                "kind": "histogram",
                "name": h.name,
                "count": h.count,
                "total": h.total,
                "min": _finite(h.min),
                "max": _finite(h.max),
            }
        )
    for i, t in enumerate(collector.timelines):
        recs.append(
            {
                "kind": "timeline",
                "index": i,
                "run": t.run,
                "timeline_kind": t.kind,
                "dropped": t.dropped,
                "events": [
                    {
                        "op": e.op,
                        "t_max_s": e.t_max_s,
                        "detailed": e.clock_s is not None,
                    }
                    for e in t.events
                ],
            }
        )
    for i, a in enumerate(collector.run_arrays):
        recs.append(
            {
                "kind": "arrays",
                "index": i,
                "run": a.run,
                "name": a.name,
                "keys": sorted(a.arrays),
            }
        )
    return recs


def write_jsonl(collector: TelemetryCollector, path: str | Path) -> Path:
    """Export the structured records; returns the path written."""
    path = Path(path)
    body = "\n".join(
        json.dumps(r, sort_keys=True, separators=(",", ":"))
        for r in _records(collector)
    )
    _atomic_write(path, (body + "\n").encode("utf-8"))
    return path


def write_npz(collector: TelemetryCollector, path: str | Path) -> Path:
    """Export the per-module arrays; returns the path written.

    The ``meta`` entry is a JSON index mapping every array key to its
    run scope, so the file is interpretable on its own via
    :func:`numpy.load`.
    """
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    index: list[dict] = []
    for i, t in enumerate(collector.timelines):
        for j, e in enumerate(t.events):
            if e.clock_s is None:
                continue
            arrays[f"tl{i}/ev{j}/clock_s"] = e.clock_s
            arrays[f"tl{i}/ev{j}/wait_s"] = e.wait_s
            index.append(
                {"key": f"tl{i}/ev{j}", "run": t.run, "kind": t.kind, "op": e.op}
            )
    for i, a in enumerate(collector.run_arrays):
        for field, arr in a.arrays.items():
            arrays[f"arr{i}/{field}"] = arr
        index.append({"key": f"arr{i}", "run": a.run, "name": a.name})
    meta = {"schema": SINK_SCHEMA_VERSION, "index": index}
    import io

    buf = io.BytesIO()
    np.savez(buf, meta=np.array(json.dumps(meta)), **arrays)
    _atomic_write(path, buf.getvalue())
    return path


def write_sinks(
    collector: TelemetryCollector, directory: str | Path, stem: str
) -> tuple[Path, Path]:
    """Write the ``<stem>.jsonl`` / ``<stem>.npz`` pair into ``directory``."""
    directory = Path(directory)
    return (
        write_jsonl(collector, directory / f"{stem}.jsonl"),
        write_npz(collector, directory / f"{stem}.npz"),
    )


def read_jsonl(path: str | Path) -> TelemetryCollector:
    """Rebuild a renderable collector from a JSONL sink.

    Timeline events come back with their summaries only (the arrays
    live in the companion NPZ); everything the trace report shows —
    span tree, metrics, phase structure, run labels — round-trips.
    """
    path = Path(path)
    collector = TelemetryCollector()
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise ConfigurationError(f"cannot read telemetry sink {path}: {exc}") from None
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path}:{lineno}: not a telemetry JSONL record ({exc})"
            ) from None
        kind = rec.get("kind")
        if kind == "header":
            if rec.get("schema") != SINK_SCHEMA_VERSION:
                raise ConfigurationError(
                    f"{path}: sink schema {rec.get('schema')!r} != "
                    f"{SINK_SCHEMA_VERSION} (re-export the trace)"
                )
            collector.run_labels.update(rec.get("run_labels", {}))
        elif kind == "span":
            collector.spans.append(
                SpanRecord(
                    id=rec["id"],
                    parent=rec["parent"],
                    run=rec["run"],
                    name=rec["name"],
                    t_start_s=rec["t_start_s"],
                    dur_s=rec["dur_s"],
                    attrs=rec.get("attrs", {}),
                )
            )
        elif kind == "counter":
            collector.metrics.counter(rec["name"]).inc(rec["value"])
        elif kind == "gauge":
            if rec["value"] is not None:
                collector.metrics.gauge(rec["name"]).set(rec["value"])
            else:
                collector.metrics.gauge(rec["name"])
        elif kind == "histogram":
            h = collector.metrics.histogram(rec["name"])
            h.count = rec["count"]
            h.total = rec["total"]
            h.min = rec["min"] if rec["min"] is not None else math.inf
            h.max = rec["max"] if rec["max"] is not None else -math.inf
        elif kind == "timeline":
            t = PhaseTimeline(kind=rec["timeline_kind"], run=rec["run"])
            t.dropped = rec["dropped"]
            t.events = [
                SyncEvent(op=e["op"], t_max_s=e["t_max_s"]) for e in rec["events"]
            ]
            collector.timelines.append(t)
        elif kind == "arrays":
            # The payloads live in the companion NPZ; keep a stub so
            # the report's record counts round-trip.
            collector.run_arrays.append(
                RunArrays(run=rec["run"], name=rec["name"], arrays={})
            )
    return collector
