"""The paper's linear power model — Equations (1) through (4).

Both CPU and DRAM power are assumed (and in Fig 5, validated with
R² ≥ 0.99) to be linear in CPU frequency.  With the two endpoint
measurements ``P_max`` (at fmax) and ``P_min`` (at fmin), the model for a
control coefficient α ∈ [0, 1] is::

    f       = α (fmax − fmin) + fmin                     (1)
    P_cpu   = α (P_cpu_max  − P_cpu_min)  + P_cpu_min    (2)
    P_dram  = α (P_dram_max − P_dram_min) + P_dram_min   (3)
    P_module = P_cpu + P_dram                            (4)

α is the single knob trading power for performance, shared by every
module so all modules run the same frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LinearPowerModel"]


@dataclass(frozen=True)
class LinearPowerModel:
    """Per-module endpoint powers, vectorised over modules.

    All four arrays have shape ``(n_modules,)`` (scalars broadcast).
    ``fmin``/``fmax`` are the architecture's frequency range in GHz.
    """

    fmin: float
    fmax: float
    p_cpu_max: np.ndarray
    p_cpu_min: np.ndarray
    p_dram_max: np.ndarray
    p_dram_min: np.ndarray

    def __post_init__(self) -> None:
        if self.fmin > self.fmax:
            raise ConfigurationError("fmin must not exceed fmax")
        arrs = {}
        n = None
        for name in ("p_cpu_max", "p_cpu_min", "p_dram_max", "p_dram_min"):
            a = np.atleast_1d(np.asarray(getattr(self, name), dtype=float))
            arrs[name] = a
            n = a.shape[0] if n is None else n
        n = max(a.shape[0] for a in arrs.values())
        for name, a in arrs.items():
            if a.shape[0] == 1 and n > 1:
                a = np.full(n, a[0])
            if a.shape != (n,):
                raise ConfigurationError(
                    f"{name} has shape {a.shape}, expected ({n},)"
                )
            if np.any(a < 0) or not np.all(np.isfinite(a)):
                raise ConfigurationError(f"{name} must be finite and non-negative")
            object.__setattr__(self, name, a)
        if np.any(self.p_cpu_max < self.p_cpu_min) or np.any(
            self.p_dram_max < self.p_dram_min
        ):
            raise ConfigurationError(
                "endpoint powers must satisfy P_max >= P_min per component"
            )

    @property
    def n_modules(self) -> int:
        """Number of modules the model covers."""
        return int(self.p_cpu_max.shape[0])

    # -- Equations (1)-(4) -------------------------------------------------------

    def freq_at(self, alpha: float) -> float:
        """Eq (1): the common frequency realised by coefficient α."""
        return float(alpha * (self.fmax - self.fmin) + self.fmin)

    def alpha_for_freq(self, freq_ghz: float) -> float:
        """Inverse of Eq (1)."""
        span = self.fmax - self.fmin
        if span == 0.0:
            return 1.0
        return (float(freq_ghz) - self.fmin) / span

    def cpu_power_at(self, alpha: float) -> np.ndarray:
        """Eq (2): predicted per-module CPU power at α."""
        return alpha * (self.p_cpu_max - self.p_cpu_min) + self.p_cpu_min

    def dram_power_at(self, alpha: float) -> np.ndarray:
        """Eq (3): predicted per-module DRAM power at α."""
        return alpha * (self.p_dram_max - self.p_dram_min) + self.p_dram_min

    def module_power_at(self, alpha: float) -> np.ndarray:
        """Eq (4): predicted per-module total power at α."""
        return self.cpu_power_at(alpha) + self.dram_power_at(alpha)

    # -- aggregates used by the α-solve ----------------------------------------

    def total_min_w(self) -> float:
        """System power floor: Σᵢ P_module_min,i."""
        return float((self.p_cpu_min + self.p_dram_min).sum())

    def total_max_w(self) -> float:
        """System power ceiling: Σᵢ P_module_max,i."""
        return float((self.p_cpu_max + self.p_dram_max).sum())

    def total_span_w(self) -> float:
        """Σᵢ (P_module_max,i − P_module_min,i) — Eq (6)'s denominator."""
        return self.total_max_w() - self.total_min_w()
