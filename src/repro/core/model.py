"""The paper's linear power model — Equations (1) through (4).

Both CPU and DRAM power are assumed (and in Fig 5, validated with
R² ≥ 0.99) to be linear in CPU frequency.  With the two endpoint
measurements ``P_max`` (at fmax) and ``P_min`` (at fmin), the model for a
control coefficient α ∈ [0, 1] is::

    f       = α (fmax − fmin) + fmin                     (1)
    P_cpu   = α (P_cpu_max  − P_cpu_min)  + P_cpu_min    (2)
    P_dram  = α (P_dram_max − P_dram_min) + P_dram_min   (3)
    P_module = P_cpu + P_dram                            (4)

α is the single knob trading power for performance, shared by every
module so all modules run the same frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.devices import DeviceMap
from repro.util.indexing import as_contiguous_slice

__all__ = ["LinearPowerModel"]


@dataclass(frozen=True)
class LinearPowerModel:
    """Per-module endpoint powers, vectorised over modules.

    All four arrays have shape ``(n_modules,)`` (scalars broadcast).
    ``fmin``/``fmax`` are the architecture's frequency range in GHz — the
    *primary* device's range on a heterogeneous fleet, whose per-module
    ladders come from ``device_map``.  The α arithmetic below is purely
    power-domain and therefore device-agnostic: only the α→frequency
    mapping (:meth:`freq_at` / :meth:`freqs_at`) touches a ladder.
    """

    fmin: float
    fmax: float
    p_cpu_max: np.ndarray
    p_cpu_min: np.ndarray
    p_dram_max: np.ndarray
    p_dram_min: np.ndarray
    device_map: DeviceMap | None = None

    def __post_init__(self) -> None:
        if self.fmin > self.fmax:
            raise ConfigurationError("fmin must not exceed fmax")
        arrs = {}
        n = None
        for name in ("p_cpu_max", "p_cpu_min", "p_dram_max", "p_dram_min"):
            a = np.atleast_1d(np.asarray(getattr(self, name), dtype=float))
            arrs[name] = a
            n = a.shape[0] if n is None else n
        n = max(a.shape[0] for a in arrs.values())
        for name, a in arrs.items():
            if a.shape[0] == 1 and n > 1:
                a = np.full(n, a[0])
            if a.shape != (n,):
                raise ConfigurationError(
                    f"{name} has shape {a.shape}, expected ({n},)"
                )
            if np.any(a < 0) or not np.all(np.isfinite(a)):
                raise ConfigurationError(f"{name} must be finite and non-negative")
            object.__setattr__(self, name, a)
        if np.any(self.p_cpu_max < self.p_cpu_min) or np.any(
            self.p_dram_max < self.p_dram_min
        ):
            raise ConfigurationError(
                "endpoint powers must satisfy P_max >= P_min per component"
            )
        if (
            self.device_map is not None
            and self.device_map.n_modules != self.p_cpu_max.shape[0]
        ):
            raise ConfigurationError(
                f"device_map covers {self.device_map.n_modules} modules, "
                f"model covers {self.p_cpu_max.shape[0]}"
            )

    @property
    def n_modules(self) -> int:
        """Number of modules the model covers."""
        return int(self.p_cpu_max.shape[0])

    # -- partitioning (array-first: jobs are index ranges, not lists) ------------

    def take_slice(self, start: int, stop: int) -> "LinearPowerModel":
        """Zero-copy model over the contiguous module range ``[start, stop)``.

        The endpoint columns are numpy slices sharing the parent's
        buffers, so partitioning a fleet-sized model across jobs costs
        nothing per job.
        """
        if not (0 <= start <= stop <= self.n_modules):
            raise ConfigurationError(
                f"slice [{start}, {stop}) out of range for "
                f"{self.n_modules} modules"
            )
        return LinearPowerModel(
            fmin=self.fmin,
            fmax=self.fmax,
            p_cpu_max=self.p_cpu_max[start:stop],
            p_cpu_min=self.p_cpu_min[start:stop],
            p_dram_max=self.p_dram_max[start:stop],
            p_dram_min=self.p_dram_min[start:stop],
            device_map=(
                None
                if self.device_map is None
                else self.device_map.take_slice(start, stop)
            ),
        )

    def take(self, indices: np.ndarray | list[int]) -> "LinearPowerModel":
        """Model restricted to the given module indices.

        Contiguous ascending index sets come back as zero-copy
        :meth:`take_slice` views; scattered sets are copied.
        """
        sl = as_contiguous_slice(indices)
        if sl is not None and sl.stop <= self.n_modules:
            return self.take_slice(sl.start, sl.stop)
        idx = np.asarray(indices, dtype=int)
        return LinearPowerModel(
            fmin=self.fmin,
            fmax=self.fmax,
            p_cpu_max=self.p_cpu_max[idx],
            p_cpu_min=self.p_cpu_min[idx],
            p_dram_max=self.p_dram_max[idx],
            p_dram_min=self.p_dram_min[idx],
            device_map=(
                None if self.device_map is None else self.device_map.take(idx)
            ),
        )

    # -- Equations (1)-(4) -------------------------------------------------------

    def freq_at(self, alpha: float) -> float:
        """Eq (1): the common frequency realised by coefficient α."""
        return float(alpha * (self.fmax - self.fmin) + self.fmin)

    def alpha_for_freq(self, freq_ghz: float) -> float:
        """Inverse of Eq (1)."""
        span = self.fmax - self.fmin
        if span == 0.0:
            return 1.0
        return (float(freq_ghz) - self.fmin) / span

    def freqs_at(self, alpha: float) -> np.ndarray:
        """Eq (1) per module: α mapped through each module's own ladder.

        On a uniform fleet this is ``full(n, freq_at(alpha))``; on a
        mixed fleet each device type realises the shared α on its own
        frequency range — same power-domain knob, device-local clocks.
        """
        if self.device_map is None:
            return np.full(self.n_modules, self.freq_at(alpha))
        fmin = self.device_map.fmin_by_module()
        fmax = self.device_map.fmax_by_module()
        return alpha * (fmax - fmin) + fmin

    def cpu_power_at(self, alpha: float) -> np.ndarray:
        """Eq (2): predicted per-module CPU power at α."""
        return alpha * (self.p_cpu_max - self.p_cpu_min) + self.p_cpu_min

    def dram_power_at(self, alpha: float) -> np.ndarray:
        """Eq (3): predicted per-module DRAM power at α."""
        return alpha * (self.p_dram_max - self.p_dram_min) + self.p_dram_min

    def module_power_at(self, alpha: float) -> np.ndarray:
        """Eq (4): predicted per-module total power at α."""
        return self.cpu_power_at(alpha) + self.dram_power_at(alpha)

    # -- aggregates used by the α-solve ----------------------------------------

    def total_min_w(self) -> float:
        """System power floor: Σᵢ P_module_min,i."""
        return float((self.p_cpu_min + self.p_dram_min).sum())

    def total_max_w(self) -> float:
        """System power ceiling: Σᵢ P_module_max,i."""
        return float((self.p_cpu_max + self.p_dram_max).sum())

    def total_span_w(self) -> float:
        """Σᵢ (P_module_max,i − P_module_min,i) — Eq (6)'s denominator."""
        return self.total_max_w() - self.total_min_w()

    def floor_and_span_w(
        self, *, chunk_modules: int | None = None
    ) -> tuple[float, float]:
        """The Eq (5)/(6) aggregates ``(Σ P_min, Σ (P_max − P_min))``.

        ``chunk_modules=None`` is the fused whole-fleet reduction.  An
        integer bounds peak temporary memory to O(``chunk_modules``):
        chunk partial sums are accumulated and reduced at the end, so
        the result differs from the fused pass only by floating-point
        association.  This is the single aggregation routine behind
        :func:`repro.core.budget.solve_alpha` at every scale.
        """
        if chunk_modules is None:
            floor = self.total_min_w()
            return floor, self.total_max_w() - floor
        if chunk_modules <= 0:
            raise ConfigurationError("chunk_modules must be positive")
        n = self.n_modules
        min_parts: list[float] = []
        max_parts: list[float] = []
        for lo in range(0, n, chunk_modules):
            hi = min(lo + chunk_modules, n)
            min_parts.append(
                float(self.p_cpu_min[lo:hi].sum() + self.p_dram_min[lo:hi].sum())
            )
            max_parts.append(
                float(self.p_cpu_max[lo:hi].sum() + self.p_dram_max[lo:hi].sum())
            )
        floor = float(np.sum(min_parts))
        return floor, float(np.sum(max_parts)) - floor

    def allocations_at_batch(
        self, alphas: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eq (2)/(3) for a whole *batch* of coefficients at once.

        ``alphas`` has shape ``(n_configs,)``; the result arrays have
        shape ``(n_configs, n_modules)``.  Each row is elementwise
        bit-identical to :meth:`allocations_at` at that row's α — the
        broadcast performs the exact same scalar multiply-add per
        element, so batching changes memory layout, not arithmetic.
        """
        a = np.asarray(alphas, dtype=float)[:, None]
        pcpu = a * (self.p_cpu_max - self.p_cpu_min) + self.p_cpu_min
        pdram = a * (self.p_dram_max - self.p_dram_min) + self.p_dram_min
        return pcpu, pdram

    def allocations_at(
        self, alpha: float, *, chunk_modules: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Whole-fleet Eq (2)/(3) evaluation: ``(P_cpu, P_dram)`` at α.

        ``chunk_modules=None`` evaluates each equation as one fused
        array expression; an integer writes the result slice-by-slice
        into preallocated outputs so no fleet-sized temporary beyond the
        two results themselves is ever built.  Element values are
        bit-identical either way — chunking changes temporary lifetimes,
        not arithmetic.
        """
        if chunk_modules is None:
            return self.cpu_power_at(alpha), self.dram_power_at(alpha)
        if chunk_modules <= 0:
            raise ConfigurationError("chunk_modules must be positive")
        n = self.n_modules
        pcpu = np.empty(n)
        pdram = np.empty(n)
        for lo in range(0, n, chunk_modules):
            hi = min(lo + chunk_modules, n)
            pcpu[lo:hi] = (
                alpha * (self.p_cpu_max[lo:hi] - self.p_cpu_min[lo:hi])
                + self.p_cpu_min[lo:hi]
            )
            pdram[lo:hi] = (
                alpha * (self.p_dram_max[lo:hi] - self.p_dram_min[lo:hi])
                + self.p_dram_min[lo:hi]
            )
        return pcpu, pdram
