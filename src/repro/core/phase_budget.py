"""Phase-aware power budgeting — intra-application reallocation (§7).

A static planner sees one *aggregate* power profile: a single α, a
single frequency, held through compute-bound and memory-bound phases
alike.  For a phase-structured application that is wrong in one of two
ways:

* budgeting for the *time-averaged* profile ("aggregate" plan) violates
  the constraint *instantaneously* during the compute-heavy phases —
  average adherence is not what a hardware power limit means;
* budgeting for the *hungriest phase* ("conservative" plan) adheres,
  but then the memory-bound phases run needlessly slowly — their power
  headroom is wasted.

The phase-aware planner re-solves Eq (6) per phase with that phase's
calibrated PMT under the same budget: every phase adheres on its own,
and every phase runs as fast as its own power profile allows.  It is
never slower than the conservative plan and never violates like the
aggregate one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.phases import PhasedApp
from repro.cluster.system import System
from repro.core.budget import BudgetSolution, solve_alpha
from repro.core.pmt import calibrate_pmt
from repro.core.pvt import PowerVariationTable
from repro.core.test_run import single_module_test_run
from repro.errors import ConfigurationError
from repro.simmpi.tracing import RankTrace

__all__ = ["PhasePlan", "plan_phase_budgets", "PhaseAwareResult", "run_phase_aware"]


@dataclass(frozen=True)
class PhasePlan:
    """Per-phase α-solutions for one (app, budget) pair."""

    app_name: str
    budget_w: float
    static: BudgetSolution
    per_phase: dict[str, BudgetSolution]

    @property
    def phase_frequencies(self) -> dict[str, float]:
        """Target common frequency per phase."""
        return {name: sol.freq_ghz for name, sol in self.per_phase.items()}


def plan_phase_budgets(
    system: System,
    app: PhasedApp,
    budget_w: float,
    *,
    pvt: PowerVariationTable,
    test_module: int = 0,
    noisy: bool = True,
) -> PhasePlan:
    """Calibrate per-phase PMTs and solve α for each phase and statically.

    Calibration cost: two single-module test runs per phase (the phase
    boundaries are PMMD-instrumented in a real deployment), plus the
    usual two for the aggregate profile.
    """
    if budget_w <= 0:
        raise ConfigurationError("budget must be positive")
    arch = system.arch
    static_pmt_model = _calibrated_model(
        system, app.as_static_app(), pvt, test_module, noisy
    )
    static = solve_alpha(static_pmt_model, budget_w)
    per_phase = {}
    for phase in app.phases:
        model = _calibrated_model(
            system, app.phase_model(phase), pvt, test_module, noisy
        )
        per_phase[phase.name] = solve_alpha(model, budget_w)
    return PhasePlan(
        app_name=app.name, budget_w=float(budget_w), static=static, per_phase=per_phase
    )


def _calibrated_model(system, app_model, pvt, test_module, noisy):
    profile = single_module_test_run(system, app_model, test_module, noisy=noisy)
    arch = system.arch
    return calibrate_pmt(pvt, profile, fmin=arch.fmin, fmax=arch.fmax).model


@dataclass(frozen=True)
class PhaseAwareResult:
    """Aggregate / conservative / phase-aware execution of one phased app.

    * ``aggregate`` — one α solved on the time-averaged profile: fastest
      static plan but violates the budget during hungry phases;
    * ``conservative`` — one α solved on the hungriest phase: adheres
      but wastes memory-phase headroom;
    * ``phased`` — per-phase α: adheres instantaneously and reclaims the
      headroom.
    """

    plan: PhasePlan
    budget_w: float
    aggregate_trace: RankTrace
    conservative_trace: RankTrace
    phased_trace: RankTrace
    aggregate_peak_power_w: float
    conservative_peak_power_w: float
    phased_peak_power_w: float

    @property
    def speedup_vs_conservative(self) -> float:
        """Phase-aware speedup over the adhering static plan."""
        return self.conservative_trace.makespan_s / self.phased_trace.makespan_s

    @property
    def aggregate_violates(self) -> bool:
        """Whether the aggregate static plan breaks the instantaneous budget."""
        return self.aggregate_peak_power_w > self.budget_w * (1 + 1e-9)

    @property
    def phased_within_budget(self) -> bool:
        """Whether the phase-aware plan adheres in every phase."""
        return self.phased_peak_power_w <= self.budget_w * (1 + 1e-9)


def run_phase_aware(
    system: System,
    app: PhasedApp,
    budget_w: float,
    *,
    pvt: PowerVariationTable,
    test_module: int = 0,
    n_iters: int | None = None,
    noisy: bool = True,
    instrumentation=None,
) -> PhaseAwareResult:
    """Execute the aggregate, conservative, and phase-aware plans.

    All plans actuate with frequency selection (FS), quantised down; the
    phase-aware one re-pins the frequency at every phase boundary.  Peak
    power is the highest instantaneous (per-phase) total draw.

    ``instrumentation`` (a
    :class:`~repro.core.pmmd.PhasedInstrumentation`) receives one record
    per phase of the phase-aware run: duration, mean power, energy.
    """
    plan = plan_phase_budgets(
        system, app, budget_w, pvt=pvt, test_module=test_module, noisy=noisy
    )
    arch = system.arch
    n = system.n_modules
    rng = system.rng.rng(f"app-residual/{app.name}")
    truth = app.as_static_app().specialize(system.modules, rng)
    n_phases = len(app.phases)

    def run_at(freqs: list[float]) -> RankTrace:
        rates = np.stack([truth.work_rate(np.full(n, f)) for f in freqs])
        return app.run(rates, arch.fmax, n_iters=n_iters)

    def peak_power(freqs: list[float]) -> float:
        peaks = []
        for phase, f in zip(app.phases, freqs):
            cpu = truth.cpu_power(f, phase.signature)
            dram = truth.dram_power(f, phase.signature)
            peaks.append(float((cpu + dram).sum()))
        return max(peaks)

    f_aggregate = float(arch.ladder.quantize_down(plan.static.freq_ghz))
    f_conservative = float(
        arch.ladder.quantize_down(
            min(sol.freq_ghz for sol in plan.per_phase.values())
        )
    )
    phase_freqs = [
        float(arch.ladder.quantize_down(plan.per_phase[p.name].freq_ghz))
        for p in app.phases
    ]

    result = PhaseAwareResult(
        plan=plan,
        budget_w=float(budget_w),
        aggregate_trace=run_at([f_aggregate] * n_phases),
        conservative_trace=run_at([f_conservative] * n_phases),
        phased_trace=run_at(phase_freqs),
        aggregate_peak_power_w=peak_power([f_aggregate] * n_phases),
        conservative_peak_power_w=peak_power([f_conservative] * n_phases),
        phased_peak_power_w=peak_power(phase_freqs),
    )
    if instrumentation is not None:
        iters = app.default_iters if n_iters is None else int(n_iters)
        for phase, f in zip(app.phases, phase_freqs):
            t_phase = iters * phase.seconds_fmax * (
                phase.cpu_bound_fraction * arch.fmax / f
                + (1.0 - phase.cpu_bound_fraction)
            )
            p_phase = float(
                (
                    truth.cpu_power(f, phase.signature)
                    + truth.dram_power(f, phase.signature)
                ).sum()
            )
            instrumentation.record_phase(
                phase.name, t_phase, p_phase, plan="phase-aware-vafs"
            )
    return result
