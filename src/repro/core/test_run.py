"""Single-module application test runs (step 2 of the paper's workflow).

"We conduct two low-cost, single-module test runs of the application,
one at the maximum CPU frequency and the other at the minimum CPU
frequency, and measure the CPU and DRAM power."  The resulting four
numbers, combined with the PVT, calibrate the application's Power Model
Table for every module in the system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppModel
from repro.cluster.system import System
from repro.errors import ConfigurationError
from repro.hardware.module import OperatingPoint
from repro.measurement.rapl import RaplMeter

__all__ = ["SingleModuleProfile", "single_module_test_run"]


@dataclass(frozen=True)
class SingleModuleProfile:
    """Measured power of one application on one module at fmax and fmin."""

    app_name: str
    module_index: int
    p_cpu_max: float
    p_cpu_min: float
    p_dram_max: float
    p_dram_min: float

    def __post_init__(self) -> None:
        for name in ("p_cpu_max", "p_cpu_min", "p_dram_max", "p_dram_min"):
            v = getattr(self, name)
            if v <= 0:
                raise ConfigurationError(f"{name} must be positive, got {v}")

    @property
    def p_module_max(self) -> float:
        """Module power at fmax."""
        return self.p_cpu_max + self.p_dram_max

    @property
    def p_module_min(self) -> float:
        """Module power at fmin."""
        return self.p_cpu_min + self.p_dram_min


def single_module_test_run(
    system: System,
    app: AppModel,
    module_index: int = 0,
    *,
    noisy: bool = True,
    duration_s: float = 1.0,
) -> SingleModuleProfile:
    """Profile ``app`` on one module of ``system`` at fmax and fmin.

    Uses RAPL average-power measurement over ``duration_s`` per
    frequency.  The module's ground-truth power is the app-specialised
    view (the same silicon expresses variation differently per app), so
    the profile carries the app's calibration residual exactly as a real
    test run would.
    """
    if not (0 <= module_index < system.n_modules):
        raise ConfigurationError(
            f"module_index {module_index} out of range [0, {system.n_modules})"
        )
    specialized = app.specialize(
        system.modules, system.rng.rng(f"app-residual/{app.name}")
    )
    sub = specialized.take([module_index])
    meter_rng = (
        system.rng.rng(f"test-run/{app.name}/{module_index}") if noisy else None
    )
    meter = RaplMeter(sub, rng=meter_rng)
    # The test run sweeps the *module's own* ladder — on a heterogeneous
    # fleet a GPU test module is profiled at GPU fmax/fmin (== system.arch
    # on every uniform fleet).
    arch = specialized.device_arch(module_index)

    readings = {}
    for label, freq in (("max", arch.fmax), ("min", arch.fmin)):
        op = OperatingPoint.uniform(1, freq, app.signature)
        readings[label] = meter.read(op, duration_s=duration_s)

    return SingleModuleProfile(
        app_name=app.name,
        module_index=int(module_index),
        p_cpu_max=float(readings["max"].cpu_w[0]),
        p_cpu_min=float(readings["min"].cpu_w[0]),
        p_dram_max=float(readings["max"].dram_w[0]),
        p_dram_min=float(readings["min"].dram_w[0]),
    )
