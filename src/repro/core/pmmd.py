"""Power Measurement and Management Directives (paper step 1, Fig 4).

The paper inserts PMMDs via TAU's compiler instrumentation "just after
MPI_Init and just before MPI_Finalize", delimiting the region of
interest inside which power is measured and the derived allocations are
applied.  Here an :class:`InstrumentedApp` carries that region
definition; the runner executes the directives (apply plan on region
entry, measure, release on exit) and the instrumentation records what
happened per region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import AppModel
from repro.errors import ConfigurationError

__all__ = [
    "PMMDRegion",
    "RegionRecord",
    "InstrumentedApp",
    "instrument",
    "PhasedInstrumentation",
    "instrument_phases",
]


@dataclass(frozen=True)
class PMMDRegion:
    """A named measurement/management region.

    ``begin_marker`` / ``end_marker`` name the program points the
    directives were inserted at (the paper's defaults delimit the whole
    MPI execution).
    """

    name: str = "roi"
    begin_marker: str = "after:MPI_Init"
    end_marker: str = "before:MPI_Finalize"


@dataclass(frozen=True)
class RegionRecord:
    """What one execution of a region observed.

    ``duration_s`` is the region's wall-clock (slowest rank);
    ``mean_power_w`` the average total power across the region;
    ``energy_j`` their product; ``plan`` names the power plan applied on
    entry (``None`` when the region ran unmanaged).
    """

    region: str
    duration_s: float
    mean_power_w: float
    energy_j: float
    plan: str | None

    def __post_init__(self) -> None:
        if self.duration_s < 0 or self.mean_power_w < 0:
            raise ConfigurationError("region records require non-negative values")


@dataclass
class InstrumentedApp:
    """An application annotated with one PMMD region.

    The runner calls :meth:`record` when the region completes; the
    accumulated :attr:`records` are the data a production deployment
    would ship to its monitoring backend.
    """

    app: AppModel
    region: PMMDRegion = field(default_factory=PMMDRegion)
    records: list[RegionRecord] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Name of the wrapped application."""
        return self.app.name

    def record(
        self, duration_s: float, mean_power_w: float, plan: str | None
    ) -> RegionRecord:
        """Append and return the record of one region execution."""
        rec = RegionRecord(
            region=self.region.name,
            duration_s=float(duration_s),
            mean_power_w=float(mean_power_w),
            energy_j=float(duration_s) * float(mean_power_w),
            plan=plan,
        )
        self.records.append(rec)
        return rec


def instrument(app: AppModel, region_name: str = "roi") -> InstrumentedApp:
    """Insert the paper's default PMMDs around an application."""
    return InstrumentedApp(app=app, region=PMMDRegion(name=region_name))


@dataclass
class PhasedInstrumentation:
    """Per-phase PMMD regions for a phase-structured application.

    The phase-aware planner (paper §7 direction) needs power measured
    *per phase*; a real deployment gets that by inserting one PMMD
    region around each phase's kernel.  This wrapper carries those
    regions and collects their records.
    """

    app: "object"  # PhasedApp (kept loose to avoid a circular import)
    regions: dict[str, PMMDRegion] = field(default_factory=dict)
    records: list[RegionRecord] = field(default_factory=list)

    def record_phase(
        self, phase: str, duration_s: float, mean_power_w: float, plan: str | None
    ) -> RegionRecord:
        """Append one phase execution record."""
        if phase not in self.regions:
            raise ConfigurationError(f"unknown phase region {phase!r}")
        rec = RegionRecord(
            region=phase,
            duration_s=float(duration_s),
            mean_power_w=float(mean_power_w),
            energy_j=float(duration_s) * float(mean_power_w),
            plan=plan,
        )
        self.records.append(rec)
        return rec

    def phase_energy_j(self, phase: str) -> float:
        """Total recorded energy of one phase across executions."""
        return sum(r.energy_j for r in self.records if r.region == phase)


def instrument_phases(phased_app) -> PhasedInstrumentation:
    """One PMMD region per phase of a :class:`~repro.apps.phases.PhasedApp`.

    Markers delimit each phase kernel rather than the whole MPI region.
    """
    regions = {
        p.name: PMMDRegion(
            name=p.name,
            begin_marker=f"before:{p.name}",
            end_marker=f"after:{p.name}",
        )
        for p in phased_app.phases
    }
    return PhasedInstrumentation(app=phased_app, regions=regions)
