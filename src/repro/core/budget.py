"""The α-solve and module-level power allocation — Equations (5)–(9).

Objective (paper Section 5.1.2): find the *maximum* application-specific
coefficient α, common to all modules, such that total predicted power
stays within the application-level budget::

    Σᵢ ( α (P_module_max,i − P_module_min,i) + P_module_min,i ) ≤ P_budget   (5)

    α ≤ (P_budget − Σᵢ P_module_min,i) / Σᵢ (P_module_max,i − P_module_min,i)  (6)

Each module then receives its own allocation (Eq 7) and CPU cap
(Eq 8/9)::

    P_module_i = α (P_module_max,i − P_module_min,i) + P_module_min,i   (7)
    P_cpu_i    = P_module_i − P_dram_i                                  (8,9)

α is clamped to 1.0 when the budget is not binding ("α is set to 1.0
when we do not have any power constraints"); a negative α means the
modules cannot be operated even at fmin (Table 4's "–" entries).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import LinearPowerModel
from repro.errors import ConfigurationError, InfeasibleBudgetError

__all__ = [
    "BudgetSolution",
    "solve_alpha",
    "solve_alpha_chunked",
    "classify_constraint",
]


@dataclass(frozen=True)
class BudgetSolution:
    """Result of the α-solve for one (application, budget) pair.

    Attributes
    ----------
    alpha:
        The clamped control coefficient ∈ [0, 1].
    raw_alpha:
        Eq (6)'s right-hand side before clamping (>1 means the budget is
        not binding; <0 would mean infeasible).
    constrained:
        Whether the budget actually binds (raw_alpha < 1) — Table 4's
        "X" vs "•" distinction.
    freq_ghz:
        The common target frequency, Eq (1).
    pmodule_w / pcpu_w / pdram_w:
        Per-module allocations, Eq (7)–(9).
    budget_w:
        The application-level power constraint this solves for.
    """

    alpha: float
    raw_alpha: float
    constrained: bool
    freq_ghz: float
    pmodule_w: np.ndarray
    pcpu_w: np.ndarray
    pdram_w: np.ndarray
    budget_w: float

    @property
    def total_allocated_w(self) -> float:
        """Σᵢ P_module_i — must not exceed the budget (Eq 5)."""
        return float(self.pmodule_w.sum())


def _raw_alpha(floor: float, span: float, budget_w: float) -> float:
    """Eq (6)'s right-hand side, unclamped.

    ``span <= 0`` is the degenerate single-frequency case (e.g. BG/Q):
    power is fixed; the budget either accommodates it or nothing runs.
    """
    if span <= 0.0:
        return 1.0 if budget_w >= floor else -1.0
    return (budget_w - floor) / span


def solve_alpha(model: LinearPowerModel, budget_w: float) -> BudgetSolution:
    """Solve Eq (6) and derive the per-module allocations (Eq 7–9).

    Raises
    ------
    InfeasibleBudgetError
        If the budget lies below the fmin power floor (Table 4 "–").
    """
    if not np.isfinite(budget_w) or budget_w <= 0:
        raise InfeasibleBudgetError(budget_w, model.total_min_w())
    floor = model.total_min_w()
    span = model.total_span_w()

    raw = _raw_alpha(floor, span, budget_w)
    if raw < 0.0:
        raise InfeasibleBudgetError(budget_w, floor)
    alpha = min(raw, 1.0)

    pcpu = model.cpu_power_at(alpha)
    pdram = model.dram_power_at(alpha)
    return BudgetSolution(
        alpha=alpha,
        raw_alpha=raw,
        constrained=raw < 1.0,
        freq_ghz=model.freq_at(alpha),
        pmodule_w=pcpu + pdram,
        pcpu_w=pcpu,
        pdram_w=pdram,
        budget_w=float(budget_w),
    )


def solve_alpha_chunked(
    model: LinearPowerModel, budget_w: float, *, chunk_modules: int = 65536
) -> BudgetSolution:
    """:func:`solve_alpha` evaluated in module chunks of bounded size.

    Semantically identical to :func:`solve_alpha` (``allclose`` to within
    summation reordering, i.e. a few ULP), but peak *temporary* memory is
    O(``chunk_modules``) instead of O(n): the Eq (5)/(6) aggregates are
    accumulated chunk-wise and the Eq (7)–(9) allocations are written
    slice-by-slice into preallocated outputs.  The returned per-module
    allocation arrays are still O(n) — they are the *result*.  Used by
    the fleet-scale sweeps (10k–200k modules), where a single fused
    numpy expression over six full-length operands would otherwise
    allocate several intermediate fleet-sized temporaries per solve.
    """
    if chunk_modules <= 0:
        raise ConfigurationError("chunk_modules must be positive")
    n = model.n_modules
    if not np.isfinite(budget_w) or budget_w <= 0:
        raise InfeasibleBudgetError(budget_w, model.total_min_w())

    # Aggregates: one pass, chunk-sized temporaries only.  Per-chunk
    # partial sums are reduced at the end so the result differs from the
    # unchunked np.sum only by floating-point association.
    min_parts: list[float] = []
    max_parts: list[float] = []
    for lo in range(0, n, chunk_modules):
        hi = min(lo + chunk_modules, n)
        min_parts.append(
            float(model.p_cpu_min[lo:hi].sum() + model.p_dram_min[lo:hi].sum())
        )
        max_parts.append(
            float(model.p_cpu_max[lo:hi].sum() + model.p_dram_max[lo:hi].sum())
        )
    floor = float(np.sum(min_parts))
    span = float(np.sum(max_parts)) - floor

    raw = _raw_alpha(floor, span, budget_w)
    if raw < 0.0:
        raise InfeasibleBudgetError(budget_w, floor)
    alpha = min(raw, 1.0)

    pcpu = np.empty(n)
    pdram = np.empty(n)
    pmodule = np.empty(n)
    for lo in range(0, n, chunk_modules):
        hi = min(lo + chunk_modules, n)
        pcpu[lo:hi] = (
            alpha * (model.p_cpu_max[lo:hi] - model.p_cpu_min[lo:hi])
            + model.p_cpu_min[lo:hi]
        )
        pdram[lo:hi] = (
            alpha * (model.p_dram_max[lo:hi] - model.p_dram_min[lo:hi])
            + model.p_dram_min[lo:hi]
        )
        pmodule[lo:hi] = pcpu[lo:hi] + pdram[lo:hi]
    return BudgetSolution(
        alpha=alpha,
        raw_alpha=raw,
        constrained=raw < 1.0,
        freq_ghz=model.freq_at(alpha),
        pmodule_w=pmodule,
        pcpu_w=pcpu,
        pdram_w=pdram,
        budget_w=float(budget_w),
    )


def classify_constraint(model: LinearPowerModel, budget_w: float) -> str:
    """Table 4 cell for one (application, budget) pair.

    Returns ``"X"`` (meaningfully constrained), ``"•"`` (not sufficiently
    power constrained — no capping required), or ``"--"`` (too limited to
    operate even at fmin).
    """
    if budget_w < model.total_min_w():
        return "--"
    if budget_w >= model.total_max_w():
        return "•"
    return "X"
