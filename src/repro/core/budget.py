"""The α-solve and module-level power allocation — Equations (5)–(9).

Objective (paper Section 5.1.2): find the *maximum* application-specific
coefficient α, common to all modules, such that total predicted power
stays within the application-level budget::

    Σᵢ ( α (P_module_max,i − P_module_min,i) + P_module_min,i ) ≤ P_budget   (5)

    α ≤ (P_budget − Σᵢ P_module_min,i) / Σᵢ (P_module_max,i − P_module_min,i)  (6)

Each module then receives its own allocation (Eq 7) and CPU cap
(Eq 8/9)::

    P_module_i = α (P_module_max,i − P_module_min,i) + P_module_min,i   (7)
    P_cpu_i    = P_module_i − P_dram_i                                  (8,9)

α is clamped to 1.0 when the budget is not binding ("α is set to 1.0
when we do not have any power constraints"); a negative α means the
modules cannot be operated even at fmin (Table 4's "–" entries).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.telemetry as telemetry
from repro.core.model import LinearPowerModel
from repro.errors import InfeasibleBudgetError

__all__ = [
    "BudgetSolution",
    "BatchBudgetSolution",
    "solve_alpha",
    "solve_alpha_batched",
    "classify_constraint",
    "classify_constraint_batched",
]


@dataclass(frozen=True)
class BudgetSolution:
    """Result of the α-solve for one (application, budget) pair.

    Attributes
    ----------
    alpha:
        The clamped control coefficient ∈ [0, 1].
    raw_alpha:
        Eq (6)'s right-hand side before clamping (>1 means the budget is
        not binding; <0 would mean infeasible).
    constrained:
        Whether the budget actually binds (raw_alpha < 1) — Table 4's
        "X" vs "•" distinction.
    freq_ghz:
        The common target frequency, Eq (1).
    pmodule_w / pcpu_w / pdram_w:
        Per-module allocations, Eq (7)–(9).
    budget_w:
        The application-level power constraint this solves for.
    """

    alpha: float
    raw_alpha: float
    constrained: bool
    freq_ghz: float
    pmodule_w: np.ndarray
    pcpu_w: np.ndarray
    pdram_w: np.ndarray
    budget_w: float

    @property
    def total_allocated_w(self) -> float:
        """Σᵢ P_module_i — must not exceed the budget (Eq 5)."""
        return float(self.pmodule_w.sum())


def _raw_alpha(floor: float, span: float, budget_w: float) -> float:
    """Eq (6)'s right-hand side, unclamped.

    ``span <= 0`` is the degenerate single-frequency case (e.g. BG/Q):
    power is fixed; the budget either accommodates it or nothing runs.
    """
    if span <= 0.0:
        return 1.0 if budget_w >= floor else -1.0
    return (budget_w - floor) / span


def solve_alpha(
    model: LinearPowerModel,
    budget_w: float,
    *,
    chunk_modules: int | None = None,
) -> BudgetSolution:
    """Solve Eq (6) and derive the per-module allocations (Eq 7–9).

    This is the single α-solve for every scale.  The whole fleet is
    evaluated as array operations; ``chunk_modules`` is purely a memory
    knob: ``None`` (the default) uses fused whole-fleet expressions,
    while an integer bounds peak *temporary* memory to
    O(``chunk_modules``) by accumulating the Eq (5)/(6) aggregates
    chunk-wise and writing the Eq (7)–(9) allocations slice-by-slice
    into preallocated outputs (the returned per-module arrays are still
    O(n) — they are the *result*).  The fleet-scale sweeps (10k–200k
    modules) set it so a solve never materialises several fleet-sized
    temporaries at once; per-element allocation values are bit-identical
    either way, and the aggregates differ only by summation association.

    Raises
    ------
    InfeasibleBudgetError
        If the budget lies below the fmin power floor (Table 4 "–").
    """
    with telemetry.span("solve_alpha", budget_w=float(budget_w)) as sp:
        if not np.isfinite(budget_w) or budget_w <= 0:
            raise InfeasibleBudgetError(budget_w, model.total_min_w())
        floor, span = model.floor_and_span_w(chunk_modules=chunk_modules)

        raw = _raw_alpha(floor, span, budget_w)
        if raw < 0.0:
            raise InfeasibleBudgetError(budget_w, floor)
        alpha = min(raw, 1.0)

        pcpu, pdram = model.allocations_at(alpha, chunk_modules=chunk_modules)
        telemetry.count("budget.solve_alpha")
        telemetry.gauge("budget.alpha", alpha)
        telemetry.observe("budget.modules", pcpu.size)
        if chunk_modules is not None:
            telemetry.observe(
                "budget.chunks", -(-pcpu.size // max(int(chunk_modules), 1))
            )
        sp.set(alpha=round(alpha, 6), constrained=raw < 1.0, modules=int(pcpu.size))
        return BudgetSolution(
            alpha=alpha,
            raw_alpha=raw,
            constrained=raw < 1.0,
            freq_ghz=model.freq_at(alpha),
            pmodule_w=pcpu + pdram,
            pcpu_w=pcpu,
            pdram_w=pdram,
            budget_w=float(budget_w),
        )


@dataclass(frozen=True)
class BatchBudgetSolution:
    """Result of one batched α-solve over many budgets.

    All per-budget fields are aligned with the ``budgets_w`` the batch
    was solved for; the allocation matrices have shape
    ``(n_budgets, n_modules)``.  Rows whose ``feasible`` flag is False
    carry undefined allocation values — :meth:`solution` raises the
    same :class:`~repro.errors.InfeasibleBudgetError` the scalar
    :func:`solve_alpha` would for that budget.
    """

    budgets_w: np.ndarray
    raw_alphas: np.ndarray
    alphas: np.ndarray
    feasible: np.ndarray
    freq_ghz: np.ndarray
    pcpu_w: np.ndarray
    pdram_w: np.ndarray
    floor_w: np.ndarray

    @property
    def n_budgets(self) -> int:
        """Number of budgets the batch covers."""
        return int(self.budgets_w.shape[0])

    @property
    def n_modules(self) -> int:
        """Number of modules each allocation row covers."""
        return int(self.pcpu_w.shape[1])

    def solution(self, i: int) -> BudgetSolution:
        """The i-th budget's :class:`BudgetSolution` (allocation rows
        are views into the batch matrices).

        Raises
        ------
        InfeasibleBudgetError
            If budget *i* was infeasible, with the same (budget, floor)
            payload the scalar solve would have raised.
        """
        if not bool(self.feasible[i]):
            raise InfeasibleBudgetError(
                float(self.budgets_w[i]), float(self.floor_w[i])
            )
        pcpu = self.pcpu_w[i]
        pdram = self.pdram_w[i]
        return BudgetSolution(
            alpha=float(self.alphas[i]),
            raw_alpha=float(self.raw_alphas[i]),
            constrained=bool(self.raw_alphas[i] < 1.0),
            freq_ghz=float(self.freq_ghz[i]),
            pmodule_w=pcpu + pdram,
            pcpu_w=pcpu,
            pdram_w=pdram,
            budget_w=float(self.budgets_w[i]),
        )

    def solutions(self) -> list[BudgetSolution]:
        """All feasible solutions, in batch order (raises on the first
        infeasible budget — use :attr:`feasible` to pre-filter)."""
        return [self.solution(i) for i in range(self.n_budgets)]


def solve_alpha_batched(
    model: LinearPowerModel,
    budgets_w,
    *,
    chunk_modules: int | None = None,
) -> BatchBudgetSolution:
    """Solve Eq (6)–(9) for *all* budgets in one broadcasted pass.

    The Eq (5)/(6) aggregates are reduced once and shared by every
    budget; the Eq (7)–(9) allocations are produced as one
    ``(n_budgets, n_modules)`` broadcast.  Every value is bit-identical
    to the per-budget :func:`solve_alpha` at the same ``chunk_modules``
    — the broadcast performs the exact same elementwise multiply-add
    the scalar path does, and ``raw = (budget − floor) / span`` is the
    same scalar arithmetic per budget.

    Infeasible budgets do **not** raise here: the corresponding
    ``feasible`` entries are False and :meth:`BatchBudgetSolution.solution`
    raises lazily with the exact error payload the scalar solve uses
    (the fused power floor for invalid budgets, the possibly-chunked
    Eq (5) floor for budgets below it).
    """
    budgets = np.atleast_1d(np.asarray(budgets_w, dtype=float))
    with telemetry.span("solve_alpha_batched", n_budgets=int(budgets.size)) as sp:
        valid = np.isfinite(budgets) & (budgets > 0.0)
        floor, span = model.floor_and_span_w(chunk_modules=chunk_modules)
        if span <= 0.0:
            raws = np.where(budgets >= floor, 1.0, -1.0)
        else:
            raws = (budgets - floor) / span
        feasible = valid & (raws >= 0.0)
        alphas = np.minimum(raws, 1.0)
        # The scalar solve reports the *fused* floor for invalid budgets
        # (it raises before the chunked aggregation) and the chunked
        # floor for sub-floor ones; mirror both raise sites exactly.
        floor_err = np.where(valid, floor, model.total_min_w())
        pcpu, pdram = model.allocations_at_batch(alphas)
        telemetry.count("budget.solve_alpha_batched")
        telemetry.observe("budget.batch_size", budgets.size)
        telemetry.observe("budget.modules", model.n_modules)
        sp.set(
            feasible=int(feasible.sum()),
            modules=model.n_modules,
        )
        return BatchBudgetSolution(
            budgets_w=budgets,
            raw_alphas=raws,
            alphas=alphas,
            feasible=feasible,
            freq_ghz=alphas * (model.fmax - model.fmin) + model.fmin,
            pcpu_w=pcpu,
            pdram_w=pdram,
            floor_w=floor_err,
        )


def classify_constraint(model: LinearPowerModel, budget_w: float) -> str:
    """Table 4 cell for one (application, budget) pair.

    Returns ``"X"`` (meaningfully constrained), ``"•"`` (not sufficiently
    power constrained — no capping required), or ``"--"`` (too limited to
    operate even at fmin).
    """
    if budget_w < model.total_min_w():
        return "--"
    if budget_w >= model.total_max_w():
        return "•"
    return "X"


def classify_constraint_batched(
    model: LinearPowerModel, budgets_w
) -> list[str]:
    """Table 4 cells for many budgets against one model.

    The floor/ceiling aggregates are reduced once; each cell is the
    same comparison :func:`classify_constraint` performs, so the
    results are identical entry-by-entry.
    """
    budgets = np.atleast_1d(np.asarray(budgets_w, dtype=float))
    floor = model.total_min_w()
    ceiling = model.total_max_w()
    return [
        "--" if b < floor else ("•" if b >= ceiling else "X") for b in budgets
    ]
