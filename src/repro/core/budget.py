"""The α-solve and module-level power allocation — Equations (5)–(9).

Objective (paper Section 5.1.2): find the *maximum* application-specific
coefficient α, common to all modules, such that total predicted power
stays within the application-level budget::

    Σᵢ ( α (P_module_max,i − P_module_min,i) + P_module_min,i ) ≤ P_budget   (5)

    α ≤ (P_budget − Σᵢ P_module_min,i) / Σᵢ (P_module_max,i − P_module_min,i)  (6)

Each module then receives its own allocation (Eq 7) and CPU cap
(Eq 8/9)::

    P_module_i = α (P_module_max,i − P_module_min,i) + P_module_min,i   (7)
    P_cpu_i    = P_module_i − P_dram_i                                  (8,9)

α is clamped to 1.0 when the budget is not binding ("α is set to 1.0
when we do not have any power constraints"); a negative α means the
modules cannot be operated even at fmin (Table 4's "–" entries).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

import repro.telemetry as telemetry
from repro.core.model import LinearPowerModel
from repro.errors import InfeasibleBudgetError

__all__ = [
    "BudgetSolution",
    "solve_alpha",
    "solve_alpha_chunked",
    "classify_constraint",
]


@dataclass(frozen=True)
class BudgetSolution:
    """Result of the α-solve for one (application, budget) pair.

    Attributes
    ----------
    alpha:
        The clamped control coefficient ∈ [0, 1].
    raw_alpha:
        Eq (6)'s right-hand side before clamping (>1 means the budget is
        not binding; <0 would mean infeasible).
    constrained:
        Whether the budget actually binds (raw_alpha < 1) — Table 4's
        "X" vs "•" distinction.
    freq_ghz:
        The common target frequency, Eq (1).
    pmodule_w / pcpu_w / pdram_w:
        Per-module allocations, Eq (7)–(9).
    budget_w:
        The application-level power constraint this solves for.
    """

    alpha: float
    raw_alpha: float
    constrained: bool
    freq_ghz: float
    pmodule_w: np.ndarray
    pcpu_w: np.ndarray
    pdram_w: np.ndarray
    budget_w: float

    @property
    def total_allocated_w(self) -> float:
        """Σᵢ P_module_i — must not exceed the budget (Eq 5)."""
        return float(self.pmodule_w.sum())


def _raw_alpha(floor: float, span: float, budget_w: float) -> float:
    """Eq (6)'s right-hand side, unclamped.

    ``span <= 0`` is the degenerate single-frequency case (e.g. BG/Q):
    power is fixed; the budget either accommodates it or nothing runs.
    """
    if span <= 0.0:
        return 1.0 if budget_w >= floor else -1.0
    return (budget_w - floor) / span


def solve_alpha(
    model: LinearPowerModel,
    budget_w: float,
    *,
    chunk_modules: int | None = None,
) -> BudgetSolution:
    """Solve Eq (6) and derive the per-module allocations (Eq 7–9).

    This is the single α-solve for every scale.  The whole fleet is
    evaluated as array operations; ``chunk_modules`` is purely a memory
    knob: ``None`` (the default) uses fused whole-fleet expressions,
    while an integer bounds peak *temporary* memory to
    O(``chunk_modules``) by accumulating the Eq (5)/(6) aggregates
    chunk-wise and writing the Eq (7)–(9) allocations slice-by-slice
    into preallocated outputs (the returned per-module arrays are still
    O(n) — they are the *result*).  The fleet-scale sweeps (10k–200k
    modules) set it so a solve never materialises several fleet-sized
    temporaries at once; per-element allocation values are bit-identical
    either way, and the aggregates differ only by summation association.

    Raises
    ------
    InfeasibleBudgetError
        If the budget lies below the fmin power floor (Table 4 "–").
    """
    with telemetry.span("solve_alpha", budget_w=float(budget_w)) as sp:
        if not np.isfinite(budget_w) or budget_w <= 0:
            raise InfeasibleBudgetError(budget_w, model.total_min_w())
        floor, span = model.floor_and_span_w(chunk_modules=chunk_modules)

        raw = _raw_alpha(floor, span, budget_w)
        if raw < 0.0:
            raise InfeasibleBudgetError(budget_w, floor)
        alpha = min(raw, 1.0)

        pcpu, pdram = model.allocations_at(alpha, chunk_modules=chunk_modules)
        telemetry.count("budget.solve_alpha")
        telemetry.gauge("budget.alpha", alpha)
        telemetry.observe("budget.modules", pcpu.size)
        if chunk_modules is not None:
            telemetry.observe(
                "budget.chunks", -(-pcpu.size // max(int(chunk_modules), 1))
            )
        sp.set(alpha=round(alpha, 6), constrained=raw < 1.0, modules=int(pcpu.size))
        return BudgetSolution(
            alpha=alpha,
            raw_alpha=raw,
            constrained=raw < 1.0,
            freq_ghz=model.freq_at(alpha),
            pmodule_w=pcpu + pdram,
            pcpu_w=pcpu,
            pdram_w=pdram,
            budget_w=float(budget_w),
        )


_CHUNKED_DEPRECATION_WARNED = False


def solve_alpha_chunked(
    model: LinearPowerModel, budget_w: float, *, chunk_modules: int = 65536
) -> BudgetSolution:
    """Deprecated alias for ``solve_alpha(..., chunk_modules=...)``."""
    global _CHUNKED_DEPRECATION_WARNED
    if not _CHUNKED_DEPRECATION_WARNED:
        _CHUNKED_DEPRECATION_WARNED = True
        warnings.warn(
            "solve_alpha_chunked is deprecated; call "
            "solve_alpha(model, budget_w, chunk_modules=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    return solve_alpha(model, budget_w, chunk_modules=chunk_modules)


def classify_constraint(model: LinearPowerModel, budget_w: float) -> str:
    """Table 4 cell for one (application, budget) pair.

    Returns ``"X"`` (meaningfully constrained), ``"•"`` (not sufficiently
    power constrained — no capping required), or ``"--"`` (too limited to
    operate even at fmin).
    """
    if budget_w < model.total_min_w():
        return "--"
    if budget_w >= model.total_max_w():
        return "•"
    return "X"
