"""The α-solve and module-level power allocation — Equations (5)–(9).

Objective (paper Section 5.1.2): find the *maximum* application-specific
coefficient α, common to all modules, such that total predicted power
stays within the application-level budget::

    Σᵢ ( α (P_module_max,i − P_module_min,i) + P_module_min,i ) ≤ P_budget   (5)

    α ≤ (P_budget − Σᵢ P_module_min,i) / Σᵢ (P_module_max,i − P_module_min,i)  (6)

Each module then receives its own allocation (Eq 7) and CPU cap
(Eq 8/9)::

    P_module_i = α (P_module_max,i − P_module_min,i) + P_module_min,i   (7)
    P_cpu_i    = P_module_i − P_dram_i                                  (8,9)

α is clamped to 1.0 when the budget is not binding ("α is set to 1.0
when we do not have any power constraints"); a negative α means the
modules cannot be operated even at fmin (Table 4's "–" entries).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import LinearPowerModel
from repro.errors import InfeasibleBudgetError

__all__ = ["BudgetSolution", "solve_alpha", "classify_constraint"]


@dataclass(frozen=True)
class BudgetSolution:
    """Result of the α-solve for one (application, budget) pair.

    Attributes
    ----------
    alpha:
        The clamped control coefficient ∈ [0, 1].
    raw_alpha:
        Eq (6)'s right-hand side before clamping (>1 means the budget is
        not binding; <0 would mean infeasible).
    constrained:
        Whether the budget actually binds (raw_alpha < 1) — Table 4's
        "X" vs "•" distinction.
    freq_ghz:
        The common target frequency, Eq (1).
    pmodule_w / pcpu_w / pdram_w:
        Per-module allocations, Eq (7)–(9).
    budget_w:
        The application-level power constraint this solves for.
    """

    alpha: float
    raw_alpha: float
    constrained: bool
    freq_ghz: float
    pmodule_w: np.ndarray
    pcpu_w: np.ndarray
    pdram_w: np.ndarray
    budget_w: float

    @property
    def total_allocated_w(self) -> float:
        """Σᵢ P_module_i — must not exceed the budget (Eq 5)."""
        return float(self.pmodule_w.sum())


def solve_alpha(model: LinearPowerModel, budget_w: float) -> BudgetSolution:
    """Solve Eq (6) and derive the per-module allocations (Eq 7–9).

    Raises
    ------
    InfeasibleBudgetError
        If the budget lies below the fmin power floor (Table 4 "–").
    """
    if not np.isfinite(budget_w) or budget_w <= 0:
        raise InfeasibleBudgetError(budget_w, model.total_min_w())
    floor = model.total_min_w()
    span = model.total_span_w()

    if span <= 0.0:
        # Degenerate model (single-frequency parts, e.g. BG/Q): power is
        # fixed; the budget either accommodates it or nothing runs.
        raw = 1.0 if budget_w >= floor else -1.0
    else:
        raw = (budget_w - floor) / span

    if raw < 0.0:
        raise InfeasibleBudgetError(budget_w, floor)
    alpha = min(raw, 1.0)

    pcpu = model.cpu_power_at(alpha)
    pdram = model.dram_power_at(alpha)
    return BudgetSolution(
        alpha=alpha,
        raw_alpha=raw,
        constrained=raw < 1.0,
        freq_ghz=model.freq_at(alpha),
        pmodule_w=pcpu + pdram,
        pcpu_w=pcpu,
        pdram_w=pdram,
        budget_w=float(budget_w),
    )


def classify_constraint(model: LinearPowerModel, budget_w: float) -> str:
    """Table 4 cell for one (application, budget) pair.

    Returns ``"X"`` (meaningfully constrained), ``"•"`` (not sufficiently
    power constrained — no capping required), or ``"--"`` (too limited to
    operate even at fmin).
    """
    if budget_w < model.total_min_w():
        return "--"
    if budget_w >= model.total_max_w():
        return "•"
    return "X"
