"""Heterogeneous frequency assignment — the Totoni-style alternative.

The paper's related work (§2.2) discusses Totoni et al.'s
variation-aware scheduling, which solves an ILP to give every chip its
*own* frequency and relies on the runtime (Charm++ object migration) to
rebalance work onto the heterogeneous speeds.  The paper argues its
common-frequency approach is cheaper and deployment-friendly; this
module implements the heterogeneous alternative so the trade-off can be
measured instead of argued.

Formulation: with the PMT's linear per-module power model
``P_i(f) = a_i + b_i f``, choosing frequencies to maximise total work
rate under the budget is a *linear program*::

    maximise   Σ f_i
    subject to Σ (a_i + b_i f_i) ≤ P_budget,  fmin ≤ f_i ≤ fmax

(Totoni's ILP is integral over P-states; the LP relaxation is the
natural upper bound and is what we solve.)  With one coupling
constraint and box bounds the LP is a fractional knapsack, so the
optimum is closed-form bang-bang: raise modules from fmin to fmax in
ascending order of marginal cost ``b_i`` (W per GHz) until the budget
is spent, with at most one module landing in between.  The solve is a
sort plus a cumulative sum over fleet-shaped arrays — no LP solver, no
scalar loop — and handles per-module ladder endpoints, so it works
unchanged on mixed device fleets.

Two execution models are compared against VaFs:

* **no rebalancing** — a bulk-synchronous app keeps uniform work, so
  the slowest (fmin) module drags the makespan: heterogeneous
  frequencies are a *disaster* without runtime support;
* **rebalanced** — work redistributed proportionally to speed
  (Charm++-style), discounted by a migration-efficiency factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppModel
from repro.cluster.system import System
from repro.core.budget import solve_alpha
from repro.core.pvt import PowerVariationTable
from repro.core.schemes import get_scheme
from repro.errors import ConfigurationError, InfeasibleBudgetError
from repro.core.model import LinearPowerModel

__all__ = ["HeteroAssignment", "solve_hetero_frequencies", "HeteroComparison", "compare_hetero_vs_common"]


@dataclass(frozen=True)
class HeteroAssignment:
    """LP-optimal per-module frequencies under a power budget."""

    freq_ghz: np.ndarray
    predicted_power_w: np.ndarray
    total_rate_ghz: float
    budget_w: float

    @property
    def n_modules(self) -> int:
        """Number of modules assigned."""
        return int(self.freq_ghz.size)


def solve_hetero_frequencies(
    model: LinearPowerModel, budget_w: float
) -> HeteroAssignment:
    """Solve the throughput-maximising frequency LP in closed form.

    The LP is a fractional knapsack: starting from all-fmin, lifting
    module *i* to its fmax buys ``span_i`` GHz of rate at ``b_i`` W per
    GHz, so the optimum lifts modules in ascending-``b`` order until the
    budget headroom is exhausted (one module may stop partway).  A sort
    and a cumulative sum over fleet-shaped arrays — per-module ladder
    endpoints come from the model's device map when present, so mixed
    fleets solve identically.

    Raises :class:`InfeasibleBudgetError` when even all-fmin exceeds the
    budget (same feasibility boundary as the common-frequency solve).
    """
    floor = model.total_min_w()
    if budget_w < floor:
        raise InfeasibleBudgetError(budget_w, floor)
    n = model.n_modules
    fmin_m = model.freqs_at(0.0)
    fmax_m = model.freqs_at(1.0)
    span = fmax_m - fmin_m
    if np.any(span <= 0):
        raise ConfigurationError("heterogeneous assignment needs a DVFS range")

    # P_i(f) = a_i + b_i f from the endpoint parameters.
    p_min = model.module_power_at(0.0)
    p_max = model.module_power_at(1.0)
    b = (p_max - p_min) / span
    a = p_min - b * fmin_m

    # Greedy fill in ascending W/GHz order; csum[k] is the power spent
    # lifting the k+1 cheapest modules all the way to fmax.
    order = np.argsort(b, kind="stable")
    csum = np.cumsum((b * span)[order])
    headroom = budget_w - p_min.sum()
    k = int(np.searchsorted(csum, headroom * (1.0 + 1e-12), side="right"))
    freqs = fmin_m.copy()
    freqs[order[:k]] = fmax_m[order[:k]]
    if k < n:
        j = order[k]
        spent = csum[k - 1] if k > 0 else 0.0
        freqs[j] += np.clip((headroom - spent) / b[j], 0.0, span[j])
    power = a + b * freqs
    return HeteroAssignment(
        freq_ghz=freqs,
        predicted_power_w=power,
        total_rate_ghz=float(freqs.sum()),
        budget_w=float(budget_w),
    )


@dataclass(frozen=True)
class HeteroComparison:
    """VaFs common frequency vs LP heterogeneous frequencies."""

    budget_w: float
    vafs_freq_ghz: float
    vafs_makespan_s: float
    hetero_rate_gain: float  # Σf_hetero / Σf_common (the LP's upside)
    hetero_makespan_no_rebalance_s: float
    hetero_makespan_rebalanced_s: float
    rebalance_efficiency: float

    @property
    def rebalanced_speedup_over_vafs(self) -> float:
        """Speedup of hetero + perfect-runtime rebalancing over VaFs."""
        return self.vafs_makespan_s / self.hetero_makespan_rebalanced_s

    @property
    def no_rebalance_slowdown_vs_vafs(self) -> float:
        """How much heterogeneous frequencies *hurt* a BSP app without
        runtime support (>1 = slower than VaFs)."""
        return self.hetero_makespan_no_rebalance_s / self.vafs_makespan_s


def compare_hetero_vs_common(
    system: System,
    app: AppModel,
    budget_w: float,
    *,
    pvt: PowerVariationTable,
    test_module: int = 0,
    n_iters: int | None = None,
    rebalance_efficiency: float = 0.95,
    noisy: bool = True,
) -> HeteroComparison:
    """Measure the common-vs-heterogeneous frequency trade-off.

    ``rebalance_efficiency`` discounts the rebalanced execution for
    migration/imbalance overhead (1.0 = the Charm++ ideal).
    """
    if not (0.0 < rebalance_efficiency <= 1.0):
        raise ConfigurationError("rebalance_efficiency must be in (0, 1]")
    scheme = get_scheme("vafs")
    pmt = scheme.build_pmt(system, app, pvt=pvt, test_module=test_module, noisy=noisy)
    arch = system.arch
    truth = app.specialize(system.modules, system.rng.rng(f"app-residual/{app.name}"))
    n = system.n_modules

    # Common frequency (VaFs, no guardband for an apples-to-apples LP bound).
    common = solve_alpha(pmt.model, budget_w)
    f_common = float(arch.ladder.quantize_down(common.freq_ghz))
    rates_common = truth.work_rate(np.full(n, f_common))
    vafs_trace = app.run(rates_common, arch.fmax, n_iters=n_iters)

    # Heterogeneous LP assignment.
    hetero = solve_hetero_frequencies(pmt.model, budget_w)
    f_het = np.asarray(arch.ladder.quantize_down(hetero.freq_ghz))
    rates_het = truth.work_rate(f_het)

    # Without rebalancing: uniform work on heterogeneous speeds.
    no_rebal = app.run(rates_het, arch.fmax, n_iters=n_iters)

    # With rebalancing: work proportional to speed (equalised finish);
    # the migration-efficiency factor inflates every rank's effective
    # work (object migration and residual imbalance are overhead).
    weights = rates_het / rates_het.mean()
    rebal = app.run(
        rates_het,
        arch.fmax,
        n_iters=n_iters,
        work_imbalance=weights / rebalance_efficiency,
    )

    return HeteroComparison(
        budget_w=float(budget_w),
        vafs_freq_ghz=f_common,
        vafs_makespan_s=vafs_trace.makespan_s,
        hetero_rate_gain=float(f_het.sum() / (f_common * n)),
        hetero_makespan_no_rebalance_s=no_rebal.makespan_s,
        hetero_makespan_rebalanced_s=rebal.makespan_s,
        rebalance_efficiency=rebalance_efficiency,
    )
