"""The six power-allocation schemes of the paper's evaluation (Section 6).

==========  ================  ===============  ===========
Scheme      App-dependent?    Variation-aware  Actuation
==========  ================  ===============  ===========
Naïve       no (TDP-based)    no               PC (RAPL)
Pc          yes               no               PC (RAPL)
VaPc        yes               yes (PVT)        PC (RAPL)
VaPcOr      yes               oracle           PC (RAPL)
VaFs        yes               yes (PVT)        FS (cpufreq)
VaFsOr      yes               oracle           FS (cpufreq)
==========  ================  ===============  ===========

A scheme is *how the PMT is obtained* plus *how the allocation is
actuated*; everything downstream (α-solve, allocation, run) is shared.

Every scheme exposes one uniform planning interface,
:meth:`Scheme.allocate`: given the fleet (a :class:`System` or a bare
:class:`~repro.hardware.ModuleArray`) and an application-level budget,
it returns a :class:`PowerAllocation` — the scheme's PMT plus the
α-solve — which :func:`repro.core.runner.run_budgeted` and the fleet
experiments consume for actuation.  Planning is pure array work: the
PMT is columnar, the α-solve vectorised, and ``chunk_modules`` bounds
peak temporary memory at fleet scale.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

import numpy as np

import repro.telemetry as telemetry
from repro.apps.base import AppModel
from repro.cluster.system import System
from repro.core.budget import BudgetSolution, solve_alpha, solve_alpha_batched
from repro.core.pmt import (
    PowerModelTable,
    calibrate_pmt,
    calibrate_pmt_mixed,
    naive_pmt,
    oracle_pmt,
    uniform_pmt,
)
from repro.core.pvt import PowerVariationTable
from repro.core.test_run import single_module_test_run
from repro.errors import ConfigurationError, InfeasibleBudgetError
from repro.hardware.module import ModuleArray
from repro.util.rng import RngFactory

__all__ = [
    "Scheme",
    "PowerAllocation",
    "ALL_SCHEMES",
    "get_scheme",
    "list_schemes",
    "available_schemes",
    "register_scheme",
]

_PMT_KINDS = ("naive", "uniform", "calibrated", "oracle")
_ACTUATIONS = ("pc", "fs")


@dataclass(frozen=True)
class Scheme:
    """One evaluated power-allocation scheme.

    Attributes
    ----------
    name:
        Registry key ("naive", "pc", "vapc", "vapcor", "vafs", "vafsor").
    label:
        Display name matching the paper's figures.
    pmt_kind:
        How the Power Model Table is obtained.
    actuation:
        "pc" (RAPL power capping) or "fs" (frequency selection).
    """

    name: str
    label: str
    pmt_kind: str
    actuation: str

    def __post_init__(self) -> None:
        if self.pmt_kind not in _PMT_KINDS:
            raise ConfigurationError(f"pmt_kind must be one of {_PMT_KINDS}")
        if self.actuation not in _ACTUATIONS:
            raise ConfigurationError(f"actuation must be one of {_ACTUATIONS}")

    @property
    def variation_aware(self) -> bool:
        """Whether per-module variation informs the allocation."""
        return self.pmt_kind in ("calibrated", "oracle")

    @property
    def app_dependent(self) -> bool:
        """Whether the application's power profile informs the allocation."""
        return self.pmt_kind != "naive"

    def build_pmt(
        self,
        system: System,
        app: AppModel,
        *,
        pvt: PowerVariationTable | None = None,
        test_module: int = 0,
        noisy: bool = True,
    ) -> PowerModelTable:
        """Produce this scheme's PMT for (system, app).

        ``pvt`` is required for the PVT-calibrated kinds ("uniform" and
        "calibrated"); generate it once per system with
        :func:`repro.core.generate_pvt` and reuse it across apps.
        """
        with telemetry.span("scheme.build_pmt", kind=self.pmt_kind):
            arch = system.arch
            device_map = system.modules.device_map
            if self.pmt_kind == "naive":
                return naive_pmt(arch, system.n_modules, device_map)
            if self.pmt_kind == "oracle":
                return oracle_pmt(system, app, noisy=False)
            if pvt is None:
                raise ConfigurationError(
                    f"scheme {self.name!r} needs a PowerVariationTable"
                )
            if pvt.n_modules != system.n_modules:
                raise ConfigurationError(
                    f"PVT covers {pvt.n_modules} modules, system has "
                    f"{system.n_modules}"
                )
            if device_map is not None and not device_map.is_single_type:
                # Mixed fleet: one single-module test run per device type
                # (the caller's test module for its own type, each other
                # type's first module), assembled into one per-type PMT.
                profiles = []
                for pos, _dt, sel in device_map.groups():
                    k = sel.start if isinstance(sel, slice) else int(sel[0])
                    if int(device_map.index[test_module]) == pos:
                        k = int(test_module)
                    profiles.append(
                        single_module_test_run(system, app, k, noisy=noisy)
                    )
                return calibrate_pmt_mixed(
                    pvt,
                    profiles,
                    device_map,
                    fmin=arch.fmin,
                    fmax=arch.fmax,
                    uniform=self.pmt_kind == "uniform",
                )
            profile = single_module_test_run(system, app, test_module, noisy=noisy)
            builder = calibrate_pmt if self.pmt_kind == "calibrated" else uniform_pmt
            return builder(
                pvt, profile, fmin=arch.fmin, fmax=arch.fmax, device_map=device_map
            )

    def allocate(
        self,
        fleet: System | ModuleArray,
        app: AppModel,
        budget_w: float,
        *,
        pvt: PowerVariationTable | None = None,
        test_module: int = 0,
        noisy: bool = True,
        fs_guardband_frac: float = 0.02,
        chunk_modules: int | None = None,
    ) -> "PowerAllocation":
        """Plan this scheme's power allocation for (fleet, app, budget).

        The uniform planning interface shared by every scheme: build the
        scheme's PMT, apply the FS planning guardband where the
        actuation cannot enforce power in hardware, and solve Eq (5)–(9)
        for the per-module allocations.  ``fleet`` may be a full
        :class:`System` or a bare
        :class:`~repro.hardware.ModuleArray` (wrapped in a deterministic
        system — useful for synthetic fleet studies).  ``chunk_modules``
        bounds peak temporary memory of the α-solve at fleet scale.

        Raises
        ------
        InfeasibleBudgetError
            If the scheme's PMT says the budget cannot be met at fmin.
        """
        with telemetry.span("scheme.allocate", scheme=self.name):
            telemetry.count(f"scheme.allocate[{self.name}]")
            system = _as_system(fleet)
            pmt = self.build_pmt(
                system, app, pvt=pvt, test_module=test_module, noisy=noisy
            )
            if self.actuation == "fs" and fs_guardband_frac > 0.0:
                # Derate the planning budget, but never below the fmin
                # floor: the guardband must not turn a feasible budget
                # infeasible (it would just mean "run at fmin").  A
                # genuinely infeasible budget still raises from the solve.
                derated = budget_w * (1.0 - fs_guardband_frac)
                floor = pmt.model.total_min_w()
                if budget_w >= floor:
                    derated = max(derated, floor)
                sol = solve_alpha(pmt.model, derated, chunk_modules=chunk_modules)
                sol = BudgetSolution(
                    alpha=sol.alpha,
                    raw_alpha=sol.raw_alpha,
                    constrained=sol.constrained,
                    freq_ghz=sol.freq_ghz,
                    pmodule_w=sol.pmodule_w,
                    pcpu_w=sol.pcpu_w,
                    pdram_w=sol.pdram_w,
                    budget_w=float(budget_w),
                )
            else:
                sol = solve_alpha(pmt.model, budget_w, chunk_modules=chunk_modules)
            return PowerAllocation(scheme=self, pmt=pmt, solution=sol)

    def allocate_batched(
        self,
        fleet: System | ModuleArray,
        app: AppModel,
        budgets_w,
        *,
        pvt: PowerVariationTable | None = None,
        test_module: int = 0,
        noisy: bool = True,
        fs_guardband_frac: float = 0.02,
        chunk_modules: int | None = None,
    ) -> list["PowerAllocation | InfeasibleBudgetError"]:
        """Plan this scheme for *many* budgets: one PMT build, one
        batched α-solve.

        Entry *i* is either the :class:`PowerAllocation` the per-budget
        :meth:`allocate` would return for ``budgets_w[i]`` — bit-identical,
        because the PMT build is deterministic (every RNG stream restarts
        per call) and the batched solve performs the same elementwise
        arithmetic — or the :class:`~repro.errors.InfeasibleBudgetError`
        it would raise (same (budget, floor) payload), so callers decide
        per budget instead of losing the whole sweep to one infeasible
        point.
        """
        budgets = np.atleast_1d(np.asarray(budgets_w, dtype=float))
        with telemetry.span(
            "scheme.allocate_batched",
            scheme=self.name,
            n_budgets=int(budgets.size),
        ):
            telemetry.count(f"scheme.allocate[{self.name}]", int(budgets.size))
            system = _as_system(fleet)
            pmt = self.build_pmt(
                system, app, pvt=pvt, test_module=test_module, noisy=noisy
            )
            fs_derated = self.actuation == "fs" and fs_guardband_frac > 0.0
            if fs_derated:
                # Same per-budget derating as allocate(): never below
                # the fmin floor for feasible budgets, and infeasible
                # ones carry the *derated* budget in their error.
                derated = budgets * (1.0 - fs_guardband_frac)
                floor = pmt.model.total_min_w()
                derated = np.where(
                    budgets >= floor, np.maximum(derated, floor), derated
                )
                batch = solve_alpha_batched(
                    pmt.model, derated, chunk_modules=chunk_modules
                )
            else:
                batch = solve_alpha_batched(
                    pmt.model, budgets, chunk_modules=chunk_modules
                )
            out: list[PowerAllocation | InfeasibleBudgetError] = []
            for i in range(budgets.size):
                try:
                    sol = batch.solution(i)
                except InfeasibleBudgetError as err:
                    out.append(err)
                    continue
                if fs_derated:
                    sol = BudgetSolution(
                        alpha=sol.alpha,
                        raw_alpha=sol.raw_alpha,
                        constrained=sol.constrained,
                        freq_ghz=sol.freq_ghz,
                        pmodule_w=sol.pmodule_w,
                        pcpu_w=sol.pcpu_w,
                        pdram_w=sol.pdram_w,
                        budget_w=float(budgets[i]),
                    )
                out.append(PowerAllocation(scheme=self, pmt=pmt, solution=sol))
            return out


def _as_system(fleet: System | ModuleArray) -> System:
    """Wrap a bare module array in a deterministic single-use system."""
    if isinstance(fleet, System):
        return fleet
    return System(
        name="fleet",
        arch=fleet.arch,
        modules=fleet,
        procs_per_node=1,
        meter_kind="rapl",
        rng=RngFactory(0).child("system/fleet"),
    )


@dataclass(frozen=True)
class PowerAllocation:
    """A scheme's planned power allocation for one (fleet, app, budget).

    The uniform currency between planning and actuation: produced by
    :meth:`Scheme.allocate`, consumed by
    :func:`repro.core.runner.run_budgeted` (RAPL caps or a pinned
    common frequency) and by the fleet experiments.  All per-module
    state is columnar (the PMT's endpoint arrays, the solution's
    allocation arrays).
    """

    scheme: Scheme
    pmt: PowerModelTable
    solution: BudgetSolution

    @property
    def n_modules(self) -> int:
        """Number of modules the allocation covers."""
        return self.pmt.n_modules

    @property
    def alpha(self) -> float:
        """The solved control coefficient."""
        return self.solution.alpha

    @property
    def freq_ghz(self) -> float:
        """The common planned frequency, Eq (1)."""
        return self.solution.freq_ghz

    @property
    def budget_w(self) -> float:
        """The application-level constraint this allocation honours."""
        return self.solution.budget_w

    @property
    def pcpu_w(self) -> np.ndarray:
        """Per-module CPU power caps, Eq (8)/(9)."""
        return self.solution.pcpu_w

    @property
    def pmodule_w(self) -> np.ndarray:
        """Per-module total allocations, Eq (7)."""
        return self.solution.pmodule_w


#: Schemes in the paper's Fig 7 legend order.
ALL_SCHEMES: dict[str, Scheme] = {
    s.name: s
    for s in (
        Scheme("naive", "Naive", "naive", "pc"),
        Scheme("pc", "Pc", "uniform", "pc"),
        Scheme("vapcor", "VaPcOr", "oracle", "pc"),
        Scheme("vapc", "VaPc", "calibrated", "pc"),
        Scheme("vafsor", "VaFsOr", "oracle", "fs"),
        Scheme("vafs", "VaFs", "calibrated", "fs"),
    )
}


_SCHEME_FIELDS = frozenset(f.name for f in fields(Scheme))


def get_scheme(name: str, **opts) -> Scheme:
    """Look up a scheme by name (case-insensitive), optionally deriving
    a variant.

    ``opts`` override :class:`Scheme` fields on the registered entry —
    e.g. ``get_scheme("vapc", actuation="fs")`` is the PVT-calibrated
    scheme actuated by frequency selection instead of RAPL.  Overrides
    are validated (unknown fields and invalid values raise
    :class:`~repro.errors.ConfigurationError`) and never mutate the
    registry: the result is a derived frozen :class:`Scheme`.
    """
    try:
        scheme = ALL_SCHEMES[name.lower()]
    except KeyError:
        known = ", ".join(ALL_SCHEMES)
        raise ConfigurationError(f"unknown scheme {name!r}; known: {known}") from None
    if opts:
        unknown = sorted(set(opts) - _SCHEME_FIELDS)
        if unknown:
            raise ConfigurationError(
                f"unknown scheme option(s) {unknown}; "
                f"Scheme fields are {sorted(_SCHEME_FIELDS)}"
            )
        scheme = replace(scheme, **opts)  # __post_init__ re-validates
    return scheme


def available_schemes() -> dict[str, Scheme]:
    """Snapshot of the registry, in the paper's Fig 7 legend order.

    Returns a copy: mutating it does not affect the registry (use
    :func:`register_scheme` for that).
    """
    return dict(ALL_SCHEMES)


def register_scheme(scheme: Scheme, *, replace_existing: bool = False) -> Scheme:
    """Add a scheme to the registry (e.g. a derived variant under its
    own name), making it reachable by name from the CLI, the fleet
    experiment, and multi-app scheduling.

    Raises :class:`~repro.errors.ConfigurationError` if the name is
    already taken and ``replace_existing`` is not set — the six paper
    schemes should be shadowed deliberately, never by accident.
    """
    key = scheme.name.lower()
    if key != scheme.name:
        raise ConfigurationError(
            f"scheme names are lower-case registry keys; got {scheme.name!r}"
        )
    if key in ALL_SCHEMES and not replace_existing:
        raise ConfigurationError(
            f"scheme {key!r} is already registered; pass "
            "replace_existing=True to shadow it"
        )
    ALL_SCHEMES[key] = scheme
    return scheme


def list_schemes() -> list[str]:
    """Scheme names in the paper's legend order."""
    return list(ALL_SCHEMES)
