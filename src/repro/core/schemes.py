"""The six power-allocation schemes of the paper's evaluation (Section 6).

==========  ================  ===============  ===========
Scheme      App-dependent?    Variation-aware  Actuation
==========  ================  ===============  ===========
Naïve       no (TDP-based)    no               PC (RAPL)
Pc          yes               no               PC (RAPL)
VaPc        yes               yes (PVT)        PC (RAPL)
VaPcOr      yes               oracle           PC (RAPL)
VaFs        yes               yes (PVT)        FS (cpufreq)
VaFsOr      yes               oracle           FS (cpufreq)
==========  ================  ===============  ===========

A scheme is *how the PMT is obtained* plus *how the allocation is
actuated*; everything downstream (α-solve, allocation, run) is shared.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppModel
from repro.cluster.system import System
from repro.core.pmt import (
    PowerModelTable,
    calibrate_pmt,
    naive_pmt,
    oracle_pmt,
    uniform_pmt,
)
from repro.core.pvt import PowerVariationTable
from repro.core.test_run import single_module_test_run
from repro.errors import ConfigurationError

__all__ = ["Scheme", "ALL_SCHEMES", "get_scheme", "list_schemes"]

_PMT_KINDS = ("naive", "uniform", "calibrated", "oracle")
_ACTUATIONS = ("pc", "fs")


@dataclass(frozen=True)
class Scheme:
    """One evaluated power-allocation scheme.

    Attributes
    ----------
    name:
        Registry key ("naive", "pc", "vapc", "vapcor", "vafs", "vafsor").
    label:
        Display name matching the paper's figures.
    pmt_kind:
        How the Power Model Table is obtained.
    actuation:
        "pc" (RAPL power capping) or "fs" (frequency selection).
    """

    name: str
    label: str
    pmt_kind: str
    actuation: str

    def __post_init__(self) -> None:
        if self.pmt_kind not in _PMT_KINDS:
            raise ConfigurationError(f"pmt_kind must be one of {_PMT_KINDS}")
        if self.actuation not in _ACTUATIONS:
            raise ConfigurationError(f"actuation must be one of {_ACTUATIONS}")

    @property
    def variation_aware(self) -> bool:
        """Whether per-module variation informs the allocation."""
        return self.pmt_kind in ("calibrated", "oracle")

    @property
    def app_dependent(self) -> bool:
        """Whether the application's power profile informs the allocation."""
        return self.pmt_kind != "naive"

    def build_pmt(
        self,
        system: System,
        app: AppModel,
        *,
        pvt: PowerVariationTable | None = None,
        test_module: int = 0,
        noisy: bool = True,
    ) -> PowerModelTable:
        """Produce this scheme's PMT for (system, app).

        ``pvt`` is required for the PVT-calibrated kinds ("uniform" and
        "calibrated"); generate it once per system with
        :func:`repro.core.generate_pvt` and reuse it across apps.
        """
        arch = system.arch
        if self.pmt_kind == "naive":
            return naive_pmt(arch, system.n_modules)
        if self.pmt_kind == "oracle":
            return oracle_pmt(system, app, noisy=False)
        if pvt is None:
            raise ConfigurationError(
                f"scheme {self.name!r} needs a PowerVariationTable"
            )
        if pvt.n_modules != system.n_modules:
            raise ConfigurationError(
                f"PVT covers {pvt.n_modules} modules, system has {system.n_modules}"
            )
        profile = single_module_test_run(system, app, test_module, noisy=noisy)
        builder = calibrate_pmt if self.pmt_kind == "calibrated" else uniform_pmt
        return builder(pvt, profile, fmin=arch.fmin, fmax=arch.fmax)


#: Schemes in the paper's Fig 7 legend order.
ALL_SCHEMES: dict[str, Scheme] = {
    s.name: s
    for s in (
        Scheme("naive", "Naive", "naive", "pc"),
        Scheme("pc", "Pc", "uniform", "pc"),
        Scheme("vapcor", "VaPcOr", "oracle", "pc"),
        Scheme("vapc", "VaPc", "calibrated", "pc"),
        Scheme("vafsor", "VaFsOr", "oracle", "fs"),
        Scheme("vafs", "VaFs", "calibrated", "fs"),
    )
}


def get_scheme(name: str) -> Scheme:
    """Look up a scheme by name (case-insensitive)."""
    try:
        return ALL_SCHEMES[name.lower()]
    except KeyError:
        known = ", ".join(ALL_SCHEMES)
        raise ConfigurationError(f"unknown scheme {name!r}; known: {known}") from None


def list_schemes() -> list[str]:
    """Scheme names in the paper's legend order."""
    return list(ALL_SCHEMES)
