"""Dynamic power reallocation between applications (paper Section 7).

"We also want [to] explore dynamic reallocation of power within and
between HPC applications ... in order to improve system throughput and
power efficiency further."

The simplest realisable form of that idea, built here: when a job
*finishes*, the power it was holding returns to the pool and the
surviving jobs are re-budgeted (a fresh α-solve each), letting them run
the remainder of their work at a higher common frequency.  The
event-driven simulation below compares that against the static
partition keeping every job at its initial budget for its entire life.

The machinery is deliberately conservative: re-budgeting happens only
at job-completion events (no mid-iteration phase tracking), uses the
same PMT each time, and never exceeds the system budget at any instant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.system import System
from repro.core.multiapp import Job, job_progress_rate, partition_power
from repro.core.pvt import PowerVariationTable
from repro.core.schemes import Scheme, get_scheme
from repro.errors import ConfigurationError

__all__ = ["JobTimeline", "DynamicResult", "run_dynamic"]


@dataclass(frozen=True)
class JobTimeline:
    """How one job progressed through re-budgeting epochs.

    ``epochs`` is a list of ``(start_s, budget_w, rate)`` tuples: during
    each epoch the job held ``budget_w`` and progressed at ``rate``
    (fraction of its total work per second).
    """

    name: str
    finish_s: float
    epochs: list[tuple[float, float, float]]


@dataclass(frozen=True)
class DynamicResult:
    """Static vs dynamic makespans for one workload mix."""

    static_finish_s: dict[str, float]
    dynamic: dict[str, JobTimeline]

    @property
    def static_makespan_s(self) -> float:
        """Completion of the last job under static budgets."""
        return max(self.static_finish_s.values())

    @property
    def dynamic_makespan_s(self) -> float:
        """Completion of the last job with reallocation at finish events."""
        return max(t.finish_s for t in self.dynamic.values())

    @property
    def makespan_speedup(self) -> float:
        """Static / dynamic makespan (≥ 1: reallocation never hurts)."""
        return self.static_makespan_s / self.dynamic_makespan_s


def _job_rate(system: System, job: Job, scheme: Scheme, pvt, budget_w: float) -> float:
    """Work progress rate (fraction of the job's total work per second)."""
    return job_progress_rate(system, job, scheme, pvt, budget_w)


def run_dynamic(
    system: System,
    jobs: list[Job],
    total_budget_w: float,
    *,
    policy: str = "uniform",
    scheme: Scheme | str = "vafs",
    pvt: PowerVariationTable | None = None,
) -> DynamicResult:
    """Simulate static vs finish-event power reallocation.

    Work is fluid (rate × time); rates come from each job's α-solve at
    its current budget.  At every job completion the remaining jobs'
    budgets are re-partitioned over the full system budget.
    """
    if not jobs:
        raise ConfigurationError("run_dynamic needs at least one job")
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)

    initial = partition_power(
        system, jobs, total_budget_w, policy=policy, scheme=scheme, pvt=pvt
    )

    # Static: every job keeps its initial budget until it finishes.
    static_finish = {
        j.name: 1.0 / _job_rate(system, j, scheme, pvt, initial.job_budget_w[j.name])
        for j in jobs
    }

    # Dynamic: event loop over completions with re-partitioning.
    remaining = {j.name: 1.0 for j in jobs}  # fraction of work left
    alive = {j.name: j for j in jobs}
    budgets = dict(initial.job_budget_w)
    epochs: dict[str, list[tuple[float, float, float]]] = {j.name: [] for j in jobs}
    finish: dict[str, float] = {}
    now = 0.0

    while alive:
        rates = {
            name: _job_rate(system, job, scheme, pvt, budgets[name])
            for name, job in alive.items()
        }
        for name in alive:
            epochs[name].append((now, budgets[name], rates[name]))
        # Time until the next completion at current rates.
        dt, first = min(
            ((remaining[name] / rates[name], name) for name in alive),
        )
        now += dt
        for name in list(alive):
            remaining[name] -= rates[name] * dt
            if remaining[name] <= 1e-12 or name == first:
                remaining[name] = 0.0
                finish[name] = now
                del alive[name]
        if alive:
            budgets = partition_power(
                system,
                list(alive.values()),
                total_budget_w,
                policy=policy,
                scheme=scheme,
                pvt=pvt,
            ).job_budget_w

    return DynamicResult(
        static_finish_s=static_finish,
        dynamic={
            name: JobTimeline(name=name, finish_s=finish[name], epochs=epochs[name])
            for name in finish
        },
    )
