"""The application-dependent Power Model Table and its calibrations.

A PMT holds, for every module a job will run on, the four endpoint
powers of the linear model (P_cpu and P_dram at fmax and fmin).  Four
ways to obtain one, matching the paper's evaluated schemes:

``calibrate_pmt``
    The paper's contribution (VaPc/VaFs): two single-module test runs +
    the install-time PVT.  The test module's measurements are divided by
    its own PVT scales to recover system averages, then multiplied by
    each module's scales (Fig 6).
``uniform_pmt``
    Application-dependent but variation-*unaware* (the Pc scheme): the
    calibrated system averages are used for every module.
``oracle_pmt``
    Perfect calibration (VaPcOr/VaFsOr): the application is actually
    executed on *all* modules and measured — expensive, used only as the
    upper bound.
``naive_pmt``
    Application-independent and variation-unaware (the Naïve baseline):
    TDP values for P_max (130 W CPU / 62 W DRAM on HA8K) and the
    empirical floors for P_min (40 W CPU — below which "rapid
    degradation" occurs — and 10 W DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppModel
from repro.cluster.system import System
from repro.core.model import LinearPowerModel
from repro.core.pvt import PowerVariationTable
from repro.core.test_run import SingleModuleProfile
from repro.errors import ConfigurationError
from repro.hardware.devices import DeviceMap
from repro.hardware.microarch import Microarchitecture
from repro.hardware.module import ModuleArray, OperatingPoint
from repro.measurement.rapl import RaplMeter

__all__ = [
    "PowerModelTable",
    "calibrate_pmt",
    "calibrate_pmt_mixed",
    "uniform_pmt",
    "oracle_pmt",
    "naive_pmt",
    "prediction_error",
    "NAIVE_CPU_FLOOR_W",
    "NAIVE_DRAM_FLOOR_W",
]

#: "Rapid degradation in performance occurs when the power allocated to
#: the CPU goes below the threshold of 40 W" (paper Section 6).
NAIVE_CPU_FLOOR_W = 40.0
#: DRAM power measured at the CPU floor, averaged (paper Section 6).
NAIVE_DRAM_FLOOR_W = 10.0


@dataclass(frozen=True)
class PowerModelTable:
    """A calibrated linear power model plus its provenance."""

    model: LinearPowerModel
    kind: str  # "calibrated" | "uniform" | "oracle" | "naive"
    app_name: str
    test_module: int | None = None

    @property
    def n_modules(self) -> int:
        """Number of modules covered."""
        return self.model.n_modules

    def take(self, indices) -> "PowerModelTable":
        """PMT restricted to the given module indices (provenance kept).

        Contiguous ascending index sets return zero-copy views of the
        endpoint columns (see
        :meth:`~repro.core.model.LinearPowerModel.take`).
        """
        return PowerModelTable(
            model=self.model.take(indices),
            kind=self.kind,
            app_name=self.app_name,
            test_module=self.test_module,
        )

    def take_slice(self, start: int, stop: int) -> "PowerModelTable":
        """Zero-copy PMT view of the contiguous range ``[start, stop)``."""
        return PowerModelTable(
            model=self.model.take_slice(start, stop),
            kind=self.kind,
            app_name=self.app_name,
            test_module=self.test_module,
        )


def calibrate_pmt(
    pvt: PowerVariationTable,
    profile: SingleModuleProfile,
    *,
    fmin: float,
    fmax: float,
    device_map: DeviceMap | None = None,
) -> PowerModelTable:
    """Power model calibration (paper Section 5.2, Fig 6).

    The test module's measured power divided by its variation scale gives
    the system-level average; multiplying the averages by every module's
    scales predicts all four parameters everywhere.
    """
    k = profile.module_index
    if not (0 <= k < pvt.n_modules):
        raise ConfigurationError(
            f"test module {k} not covered by the PVT ({pvt.n_modules} modules)"
        )
    avg_cpu_max = profile.p_cpu_max / pvt.scale_cpu_max[k]
    avg_cpu_min = profile.p_cpu_min / pvt.scale_cpu_min[k]
    avg_dram_max = profile.p_dram_max / pvt.scale_dram_max[k]
    avg_dram_min = profile.p_dram_min / pvt.scale_dram_min[k]
    model = LinearPowerModel(
        fmin=fmin,
        fmax=fmax,
        p_cpu_max=avg_cpu_max * pvt.scale_cpu_max,
        p_cpu_min=avg_cpu_min * pvt.scale_cpu_min,
        p_dram_max=avg_dram_max * pvt.scale_dram_max,
        p_dram_min=avg_dram_min * pvt.scale_dram_min,
        device_map=device_map,
    )
    return PowerModelTable(
        model=model, kind="calibrated", app_name=profile.app_name, test_module=k
    )


def calibrate_pmt_mixed(
    pvt: PowerVariationTable,
    profiles: list[SingleModuleProfile],
    device_map: DeviceMap,
    *,
    fmin: float,
    fmax: float,
    uniform: bool = False,
) -> PowerModelTable:
    """Per-type PMT calibration over a heterogeneous fleet.

    One single-module test run per device type: each profile's
    measurements are divided by its test module's PVT scales to recover
    the *type* average (the mixed PVT normalises per type), then spread
    back over that type's modules — per-module scales when
    ``uniform=False`` (VaPc/VaFs), the bare average otherwise (Pc).
    ``fmin``/``fmax`` are the primary device's range; the per-module
    ladders travel with ``device_map``.
    """
    groups = list(device_map.groups())
    if len(groups) != len(profiles):
        raise ConfigurationError(
            f"need one profile per device type: got {len(profiles)} profiles "
            f"for {len(groups)} types"
        )
    n = pvt.n_modules
    scales = {
        "p_cpu_max": pvt.scale_cpu_max,
        "p_cpu_min": pvt.scale_cpu_min,
        "p_dram_max": pvt.scale_dram_max,
        "p_dram_min": pvt.scale_dram_min,
    }
    cols = {name: np.empty(n) for name in scales}
    for (pos, dt, sel), profile in zip(groups, profiles):
        k = profile.module_index
        if not (0 <= k < n) or int(device_map.index[k]) != pos:
            raise ConfigurationError(
                f"test module {k} is not a {dt.name!r} module"
            )
        avg = {
            "p_cpu_max": profile.p_cpu_max / pvt.scale_cpu_max[k],
            "p_cpu_min": profile.p_cpu_min / pvt.scale_cpu_min[k],
            "p_dram_max": profile.p_dram_max / pvt.scale_dram_max[k],
            "p_dram_min": profile.p_dram_min / pvt.scale_dram_min[k],
        }
        for name in cols:
            cols[name][sel] = avg[name] if uniform else avg[name] * scales[name][sel]
    model = LinearPowerModel(fmin=fmin, fmax=fmax, device_map=device_map, **cols)
    return PowerModelTable(
        model=model,
        kind="uniform" if uniform else "calibrated",
        app_name=profiles[0].app_name,
        test_module=profiles[0].module_index,
    )


def uniform_pmt(
    pvt: PowerVariationTable,
    profile: SingleModuleProfile,
    *,
    fmin: float,
    fmax: float,
    device_map: DeviceMap | None = None,
) -> PowerModelTable:
    """Application-dependent, variation-unaware PMT (the Pc scheme).

    Same calibration of the system averages as :func:`calibrate_pmt`,
    but every module gets the average — power is distributed uniformly.
    """
    k = profile.module_index
    if not (0 <= k < pvt.n_modules):
        raise ConfigurationError(
            f"test module {k} not covered by the PVT ({pvt.n_modules} modules)"
        )
    n = pvt.n_modules
    model = LinearPowerModel(
        fmin=fmin,
        fmax=fmax,
        p_cpu_max=np.full(n, profile.p_cpu_max / pvt.scale_cpu_max[k]),
        p_cpu_min=np.full(n, profile.p_cpu_min / pvt.scale_cpu_min[k]),
        p_dram_max=np.full(n, profile.p_dram_max / pvt.scale_dram_max[k]),
        p_dram_min=np.full(n, profile.p_dram_min / pvt.scale_dram_min[k]),
        device_map=device_map,
    )
    return PowerModelTable(
        model=model, kind="uniform", app_name=profile.app_name, test_module=k
    )


def oracle_pmt(
    system: System, app: AppModel, *, noisy: bool = False, duration_s: float = 1.0
) -> PowerModelTable:
    """Perfect calibration: execute the app on *all* modules and measure.

    This is the VaPcOr/VaFsOr upper bound — "we obtain the PMT based on
    a complete execution of the HPC application on all modules".
    """
    truth = app.specialize(system.modules, system.rng.rng(f"app-residual/{app.name}"))
    rng = system.rng.rng(f"oracle/{app.name}") if noisy else None
    meter = RaplMeter(truth, rng=rng)
    arch = system.arch
    n = system.n_modules
    cols = {}
    for label, freq in (("max", arch.fmax), ("min", arch.fmin)):
        if truth.is_mixed:
            # Measure every module at its own ladder endpoint.
            freqs = (
                truth.fmax_by_module() if label == "max" else truth.fmin_by_module()
            )
            op = OperatingPoint(
                freq_ghz=freqs, duty=np.ones(n), signature=app.signature
            )
        else:
            op = OperatingPoint.uniform(n, freq, app.signature)
        reading = meter.read(op, duration_s=duration_s)
        cols[f"cpu_{label}"] = reading.cpu_w
        cols[f"dram_{label}"] = reading.dram_w
    model = LinearPowerModel(
        fmin=arch.fmin,
        fmax=arch.fmax,
        p_cpu_max=cols["cpu_max"],
        p_cpu_min=cols["cpu_min"],
        p_dram_max=cols["dram_max"],
        p_dram_min=cols["dram_min"],
        device_map=truth.device_map,
    )
    return PowerModelTable(model=model, kind="oracle", app_name=app.name)


def naive_pmt(
    arch: Microarchitecture,
    n_modules: int,
    device_map: DeviceMap | None = None,
) -> PowerModelTable:
    """Application-independent, variation-unaware PMT (the Naïve baseline).

    P_max entries are the architecture TDPs; P_min entries are the
    empirical 40 W CPU / 10 W DRAM floors (paper Section 6).  On a
    heterogeneous fleet each device type contributes its own TDPs and
    declared naive floors.
    """
    if n_modules <= 0:
        raise ConfigurationError("n_modules must be positive")
    if device_map is not None and not device_map.is_single_type:
        p_cpu_max = device_map.per_module(lambda dt: dt.arch.tdp_w)
        p_cpu_min = device_map.per_module(lambda dt: dt.naive_cpu_floor_w)
        p_dram_max = device_map.per_module(lambda dt: dt.arch.dram_tdp_w)
        p_dram_min = device_map.per_module(lambda dt: dt.naive_dram_floor_w)
    else:
        p_cpu_max = np.full(n_modules, arch.tdp_w)
        p_cpu_min = np.full(n_modules, NAIVE_CPU_FLOOR_W)
        p_dram_max = np.full(n_modules, arch.dram_tdp_w)
        p_dram_min = np.full(n_modules, NAIVE_DRAM_FLOOR_W)
    model = LinearPowerModel(
        fmin=arch.fmin,
        fmax=arch.fmax,
        p_cpu_max=p_cpu_max,
        p_cpu_min=p_cpu_min,
        p_dram_max=p_dram_max,
        p_dram_min=p_dram_min,
        device_map=device_map,
    )
    return PowerModelTable(model=model, kind="naive", app_name="*")


def prediction_error(
    pmt: PowerModelTable, truth: ModuleArray, app: AppModel
) -> dict[str, float]:
    """Module-power prediction error of a PMT against ground truth.

    Returns mean and max relative error at fmax and fmin across modules
    — the accuracy statistic of Section 5.3 ("under 5 %", NPB-BT
    "about 10 %").
    """
    if pmt.n_modules != truth.n_modules:
        raise ConfigurationError(
            f"PMT covers {pmt.n_modules} modules, truth covers {truth.n_modules}"
        )
    out: dict[str, float] = {}
    errs_all = []
    for label, freq, alpha in (
        ("fmax", truth.fmax_by_module() if truth.is_mixed else truth.arch.fmax, 1.0),
        ("fmin", truth.fmin_by_module() if truth.is_mixed else truth.arch.fmin, 0.0),
    ):
        actual = truth.module_power(freq, app.signature)
        predicted = pmt.model.module_power_at(alpha)
        rel = np.abs(predicted - actual) / actual
        out[f"mean_{label}"] = float(rel.mean())
        out[f"max_{label}"] = float(rel.max())
        errs_all.append(rel)
    both = np.concatenate(errs_all)
    out["mean"] = float(both.mean())
    out["max"] = float(both.max())
    return out
