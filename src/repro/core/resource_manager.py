"""A power-aware resource manager — the paper's §7 integration target.

"Future research includes ... integrating our work with a power-aware
resource manager such as RMAP, which can determine application-level
power constraints and physical node allocations in a fair yet
intelligent manner by using hardware overprovisioning."

:class:`PowerAwareRM` is that manager, built on the pieces this library
already has: the job scheduler hands out modules, the multi-application
partitioner assigns each running job an application-level power
constraint, the variation-aware α-solve turns constraints into rates,
and power is re-partitioned at every arrival/completion event.

Two admission policies capture the overprovisioning argument:

``power-aware`` (overprovisioned)
    Admit a queued job whenever its modules are free **and** its fmin
    power floor fits in the remaining system budget — running wide and
    slow when the machine is busy.
``worst-case``
    Admit only if the job's modules can be powered at the *uncapped*
    application draw (TDP-era worst-case provisioning) — leaving power
    stranded and jobs queued.

The simulation is fluid (rates from the α-solve; work fractions
integrate between events) — the same model as
:mod:`repro.core.dynamic`, generalised to arrivals and queues.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppModel
from repro.cluster.scheduler import JobScheduler
from repro.cluster.system import System
from repro.core.multiapp import Job, job_progress_rate, partition_power
from repro.core.pvt import PowerVariationTable
from repro.core.schemes import Scheme, get_scheme
from repro.errors import ConfigurationError, SchedulerError

__all__ = ["JobRequest", "JobOutcome", "ScheduleResult", "PowerAwareRM"]

_ADMISSION = ("power-aware", "worst-case")


@dataclass(frozen=True)
class JobRequest:
    """One job submission."""

    name: str
    app: AppModel
    n_modules: int
    arrival_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_modules <= 0:
            raise ConfigurationError("n_modules must be positive")
        if self.arrival_s < 0:
            raise ConfigurationError("arrival_s must be non-negative")


@dataclass(frozen=True)
class JobOutcome:
    """Scheduling record of one completed job."""

    name: str
    arrival_s: float
    start_s: float
    finish_s: float

    @property
    def wait_s(self) -> float:
        """Queue wait before the job started."""
        return self.start_s - self.arrival_s

    @property
    def turnaround_s(self) -> float:
        """Arrival to completion."""
        return self.finish_s - self.arrival_s


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one workload under one admission policy."""

    admission: str
    outcomes: dict[str, JobOutcome]

    @property
    def makespan_s(self) -> float:
        """Completion time of the last job."""
        return max(o.finish_s for o in self.outcomes.values())

    @property
    def mean_turnaround_s(self) -> float:
        """Average turnaround across jobs."""
        return float(np.mean([o.turnaround_s for o in self.outcomes.values()]))

    @property
    def mean_wait_s(self) -> float:
        """Average queue wait across jobs."""
        return float(np.mean([o.wait_s for o in self.outcomes.values()]))


@dataclass
class _Running:
    job: Job
    start_s: float
    remaining: float = 1.0
    rate: float = 0.0
    budget_w: float = 0.0


class PowerAwareRM:
    """Event-driven job manager under a system-level power constraint.

    Parameters
    ----------
    system / pvt:
        The machine and its install-time PVT.
    total_power_w:
        The facility/system power budget shared by all running jobs.
    scheme:
        Budgeting scheme applied inside each job's allocation.
    partition_policy:
        How the running jobs share the budget ("uniform" / "demand" /
        "throughput"), re-evaluated at every event.
    admission:
        "power-aware" (overprovisioned) or "worst-case" (TDP-style).
    """

    def __init__(
        self,
        system: System,
        pvt: PowerVariationTable,
        total_power_w: float,
        *,
        scheme: Scheme | str = "vafs",
        partition_policy: str = "uniform",
        admission: str = "power-aware",
    ):
        if total_power_w <= 0:
            raise ConfigurationError("total_power_w must be positive")
        if admission not in _ADMISSION:
            raise ConfigurationError(
                f"admission must be one of {_ADMISSION}, got {admission!r}"
            )
        self.system = system
        self.pvt = pvt
        self.total_power_w = float(total_power_w)
        self.scheme = get_scheme(scheme) if isinstance(scheme, str) else scheme
        self.partition_policy = partition_policy
        self.admission = admission

    # -- admission predicates ---------------------------------------------------

    def _job_truth(self, job: Job):
        """The job's ground-truth module view — a zero-copy array slice
        of the fleet state for contiguous allocations."""
        return job.app.specialize(
            self.system.modules, self.system.rng.rng(f"app-residual/{job.app.name}")
        ).take(job.allocation.module_ids)

    def _power_floor(self, job: Job) -> float:
        """The job's fmin module-power floor (what admission must cover)."""
        truth = self._job_truth(job)
        return truth.total_module_power_w(
            self.system.arch.fmin, job.app.signature
        )

    def _power_worst_case(self, job: Job) -> float:
        """Uncapped draw of the job's allocation (worst-case admission)."""
        truth = self._job_truth(job)
        return truth.total_module_power_w(
            self.system.arch.fmax, job.app.signature
        )

    def _power_need(self, job: Job) -> float:
        """What admission must reserve for this job under the policy."""
        if self.admission == "worst-case":
            return self._power_worst_case(job)
        return self._power_floor(job)

    def _admissible(self, job: Job, committed_w: float) -> bool:
        return committed_w + self._power_need(job) <= self.total_power_w * (1 + 1e-9)

    # -- the event loop -----------------------------------------------------------

    def run(self, requests: list[JobRequest]) -> ScheduleResult:
        """Simulate the workload to completion (FCFS queue)."""
        if not requests:
            raise ConfigurationError("run needs at least one job request")
        names = [r.name for r in requests]
        if len(set(names)) != len(names):
            raise ConfigurationError("job names must be unique")

        sched = JobScheduler(self.system)
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.name))
        arrivals = list(pending)
        queue: list[JobRequest] = []
        running: dict[str, _Running] = {}
        outcomes: dict[str, JobOutcome] = {}
        now = 0.0

        def committed_floor() -> float:
            return sum(self._power_need(st.job) for st in running.values())

        def try_start() -> bool:
            started = False
            still_queued: list[JobRequest] = []
            for req in queue:
                if req.n_modules > sched.n_free:
                    still_queued.append(req)
                    continue
                alloc = sched.allocate(req.name, req.n_modules)
                job = Job(req.name, req.app, alloc)
                if not self._admissible(job, committed_floor()):
                    sched.release(req.name)
                    still_queued.append(req)
                    continue
                running[req.name] = _Running(job=job, start_s=now)
                started = True
            queue[:] = still_queued
            return started

        def rebudget() -> None:
            if not running:
                return
            jobs = [st.job for st in running.values()]
            partition = partition_power(
                self.system,
                jobs,
                self.total_power_w,
                policy=self.partition_policy,
                scheme=self.scheme,
                pvt=self.pvt,
            )
            for name, st in running.items():
                st.budget_w = partition.job_budget_w[name]
                st.rate = job_progress_rate(
                    self.system, st.job, self.scheme, self.pvt, st.budget_w
                )

        while pending or queue or running:
            # Admit anything that arrived by now.
            while pending and pending[0].arrival_s <= now + 1e-12:
                queue.append(pending.pop(0))
            try_start()
            rebudget()

            # Next event: the earliest of (next arrival, next completion).
            t_arrival = pending[0].arrival_s if pending else np.inf
            t_complete = np.inf
            first_done: str | None = None
            for name, st in running.items():
                if st.rate <= 0:
                    raise SchedulerError(f"job {name!r} has zero progress rate")
                t = now + st.remaining / st.rate
                if t < t_complete:
                    t_complete, first_done = t, name
            t_next = min(t_arrival, t_complete)
            if t_arrival < t_complete:
                first_done = None  # the event is an arrival, not a finish
            if not np.isfinite(t_next):
                stuck = [r.name for r in queue]
                raise SchedulerError(
                    f"jobs {stuck} can never be admitted under "
                    f"{self.total_power_w:.0f} W / {self.system.n_modules} modules"
                )

            # Integrate progress to the event.
            dt = t_next - now
            for st in running.values():
                st.remaining = max(0.0, st.remaining - st.rate * dt)
            now = t_next

            # Completions (the chosen one plus any that hit zero together).
            for name in list(running):
                st = running[name]
                if name == first_done or st.remaining <= 1e-12:
                    outcomes[name] = JobOutcome(
                        name=name,
                        arrival_s=next(
                            r.arrival_s for r in requests if r.name == name
                        ),
                        start_s=st.start_s,
                        finish_s=now,
                    )
                    sched.release(name)
                    del running[name]

        return ScheduleResult(admission=self.admission, outcomes=outcomes)
