"""Multi-point power-model fitting — a robustness refinement of the
paper's two-point calibration.

The paper measures each application at exactly fmax and fmin (Eq 1–4
interpolate linearly between).  That is optimal when measurements are
noise-free; with real sensor noise, each endpoint error propagates
straight into the α-solve.  Fitting the same linear model through a
*sweep* of frequencies (least squares per component) averages the noise
down by √n, and the fit's R² doubles as a health check of the linearity
assumption Fig 5 validates (R² ≥ 0.99 on real hardware).

:func:`sweep_module` collects an n-point single-module sweep;
:func:`fit_power_model` turns sweeps into the endpoint parameters the
rest of the framework consumes (so everything downstream — PVT
calibration, α-solve, schemes — is unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppModel
from repro.cluster.system import System
from repro.core.test_run import SingleModuleProfile
from repro.errors import ConfigurationError, MeasurementError
from repro.hardware.module import OperatingPoint
from repro.measurement.rapl import RaplMeter
from repro.util.stats import LinearFit, linear_fit

__all__ = ["ModuleSweep", "sweep_module", "fit_power_model", "FittedProfile"]


@dataclass(frozen=True)
class ModuleSweep:
    """RAPL measurements of one app on one module across frequencies."""

    app_name: str
    module_index: int
    freqs_ghz: np.ndarray
    cpu_w: np.ndarray
    dram_w: np.ndarray

    def __post_init__(self) -> None:
        if not (
            self.freqs_ghz.shape == self.cpu_w.shape == self.dram_w.shape
        ) or self.freqs_ghz.ndim != 1:
            raise ConfigurationError("sweep arrays must be 1-D and congruent")
        if self.freqs_ghz.size < 2:
            raise ConfigurationError("a sweep needs at least two frequencies")


def sweep_module(
    system: System,
    app: AppModel,
    module_index: int = 0,
    *,
    n_points: int | None = None,
    noisy: bool = True,
    duration_s: float = 0.2,
) -> ModuleSweep:
    """Measure one module at ``n_points`` ladder frequencies (default: all).

    Cost: proportional to ``n_points × duration_s`` of test-run time,
    still a single module — negligible next to a production run.
    """
    if not (0 <= module_index < system.n_modules):
        raise ConfigurationError(
            f"module_index {module_index} out of range [0, {system.n_modules})"
        )
    ladder = np.asarray(system.arch.ladder.frequencies)
    if n_points is not None:
        if n_points < 2:
            raise ConfigurationError("n_points must be at least 2")
        idx = np.linspace(0, len(ladder) - 1, min(n_points, len(ladder)))
        ladder = ladder[np.unique(idx.round().astype(int))]
    truth = app.specialize(
        system.modules, system.rng.rng(f"app-residual/{app.name}")
    ).take([module_index])
    rng = (
        system.rng.rng(f"sweep/{app.name}/{module_index}") if noisy else None
    )
    meter = RaplMeter(truth, rng=rng)
    cpu, dram = [], []
    for f in ladder:
        reading = meter.read(
            OperatingPoint.uniform(1, float(f), app.signature),
            duration_s=duration_s,
        )
        cpu.append(float(reading.cpu_w[0]))
        dram.append(float(reading.dram_w[0]))
    return ModuleSweep(
        app_name=app.name,
        module_index=int(module_index),
        freqs_ghz=ladder.astype(float),
        cpu_w=np.asarray(cpu),
        dram_w=np.asarray(dram),
    )


@dataclass(frozen=True)
class FittedProfile:
    """A fitted single-module profile plus linearity diagnostics."""

    profile: SingleModuleProfile
    cpu_fit: LinearFit
    dram_fit: LinearFit

    @property
    def min_r2(self) -> float:
        """Worst component R² — the linearity health check."""
        return min(self.cpu_fit.r2, self.dram_fit.r2)


def fit_power_model(
    sweep: ModuleSweep,
    *,
    fmin: float,
    fmax: float,
    min_r2: float = 0.97,
) -> FittedProfile:
    """Least-squares fit of the linear model through a frequency sweep.

    Returns the endpoint profile the standard calibration consumes, with
    per-component fits.  Raises :class:`MeasurementError` when the data
    are not linear enough (``min_r2``) — the guard the two-point method
    cannot provide.
    """
    cpu_fit = linear_fit(sweep.freqs_ghz, sweep.cpu_w)
    dram_fit = linear_fit(sweep.freqs_ghz, sweep.dram_w)
    worst = min(cpu_fit.r2, dram_fit.r2)
    if worst < min_r2:
        raise MeasurementError(
            f"power not linear in frequency (R^2={worst:.3f} < {min_r2}); "
            "the Eq 1-4 model does not apply to this sweep"
        )
    profile = SingleModuleProfile(
        app_name=sweep.app_name,
        module_index=sweep.module_index,
        p_cpu_max=float(cpu_fit.predict(fmax)),
        p_cpu_min=float(cpu_fit.predict(fmin)),
        p_dram_max=float(dram_fit.predict(fmax)),
        p_dram_min=float(dram_fit.predict(fmin)),
    )
    return FittedProfile(profile=profile, cpu_fit=cpu_fit, dram_fit=dram_fit)
