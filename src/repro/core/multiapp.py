"""Multi-application power partitioning (paper Section 7, future work).

"Future research includes analyzing multiple applications under a
system-level power constraint and optimizing for overall system
throughput" — integrating the budgeting algorithm with an RMAP-style
power-aware resource manager that "can determine application-level
power constraints ... in a fair yet intelligent manner".

This module implements that integration layer: given several jobs (an
application plus its scheduler-granted module allocation) and one
system-level power budget, split the budget into per-application
constraints, then run each application under its constraint with the
variation-aware machinery.

Partitioning policies
---------------------
``uniform``
    Power proportional to module count — the fair baseline.
``demand``
    Power proportional to each job's *unconstrained demand* (predicted
    power of its allocation at fmax), so power-hungry codes are not
    starved relative to frugal ones.
``throughput``
    Greedy marginal-speedup water-filling: starting from every job's
    fmin floor, hand out power in small increments to whichever job
    currently buys the most *relative speedup per watt*.  Maximises
    aggregate normalised throughput rather than fairness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.telemetry as telemetry
from repro.apps.base import AppModel
from repro.cluster.scheduler import Allocation
from repro.cluster.system import System
from repro.core.budget import solve_alpha
from repro.core.pmt import PowerModelTable
from repro.core.pvt import PowerVariationTable
from repro.core.runner import RunResult, run_budgeted
from repro.core.schemes import Scheme, get_scheme
from repro.errors import ConfigurationError, InfeasibleBudgetError

__all__ = [
    "Job",
    "PowerPartition",
    "partition_power",
    "run_multiapp",
    "MultiAppResult",
    "job_progress_rate",
]

_POLICIES = ("uniform", "demand", "throughput")


@dataclass(frozen=True)
class Job:
    """One application bound to a scheduler allocation."""

    name: str
    app: AppModel
    allocation: Allocation

    @property
    def n_modules(self) -> int:
        """Modules granted to this job."""
        return self.allocation.n_modules


@dataclass(frozen=True)
class PowerPartition:
    """A system budget split into per-job application-level constraints."""

    policy: str
    total_budget_w: float
    job_budget_w: dict[str, float]

    def __post_init__(self) -> None:
        allocated = sum(self.job_budget_w.values())
        if allocated > self.total_budget_w * (1.0 + 1e-9):
            raise ConfigurationError(
                f"partition allocates {allocated:.1f} W out of "
                f"{self.total_budget_w:.1f} W"
            )


def _job_view(
    system: System, pvt: PowerVariationTable | None, job: Job
) -> tuple[System, PowerVariationTable | None]:
    """Per-job system and PVT restricted to the job's allocation.

    Partitioning is array slicing: contiguous allocations (the
    scheduler's first-fit default) produce zero-copy views of the fleet
    state — the job's :class:`~repro.hardware.ModuleArray` and PVT
    columns share the system-wide buffers.  Scattered allocations fall
    back to fancy-index copies.
    """
    job_system = system.subset(job.allocation.module_ids)
    job_pvt = pvt.take(job.allocation.module_ids) if pvt is not None else None
    return job_system, job_pvt


def _job_pmt(system: System, job: Job, scheme: Scheme, pvt: PowerVariationTable | None) -> PowerModelTable:
    job_system, job_pvt = _job_view(system, pvt, job)
    return scheme.build_pmt(job_system, job.app, pvt=job_pvt)


def partition_power(
    system: System,
    jobs: list[Job],
    total_budget_w: float,
    *,
    policy: str = "uniform",
    scheme: Scheme | str = "vafs",
    pvt: PowerVariationTable | None = None,
    increment_w: float | None = None,
) -> PowerPartition:
    """Split a system power budget across jobs under the given policy.

    The ``demand`` and ``throughput`` policies need each job's power
    model, obtained through the same scheme machinery the budgeting run
    will use (so the resource manager never needs oracle knowledge).

    Raises
    ------
    InfeasibleBudgetError
        If the budget cannot cover every job's fmin floor.
    """
    if not jobs:
        raise ConfigurationError("partition_power needs at least one job")
    names = [j.name for j in jobs]
    if len(set(names)) != len(names):
        raise ConfigurationError("job names must be unique")
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    if policy not in _POLICIES:
        raise ConfigurationError(
            f"unknown policy {policy!r}; available: {', '.join(_POLICIES)}"
        )

    with telemetry.span(
        "multiapp.partition", policy=policy, jobs=len(jobs)
    ):
        telemetry.count(f"multiapp.partition[{policy}]")
        pmts = {j.name: _job_pmt(system, j, scheme, pvt) for j in jobs}
        floors = {name: pmt.model.total_min_w() for name, pmt in pmts.items()}
        ceilings = {name: pmt.model.total_max_w() for name, pmt in pmts.items()}
        floor_total = sum(floors.values())
        if total_budget_w < floor_total:
            raise InfeasibleBudgetError(total_budget_w, floor_total)

        if policy == "uniform":
            weights = {j.name: float(j.n_modules) for j in jobs}
            budgets = _proportional(total_budget_w, weights, floors, ceilings)
        elif policy == "demand":
            weights = dict(ceilings)
            budgets = _proportional(total_budget_w, weights, floors, ceilings)
        else:  # throughput
            budgets = _waterfill(
                total_budget_w, jobs, pmts, floors, ceilings, increment_w
            )
        return PowerPartition(
            policy=policy,
            total_budget_w=float(total_budget_w),
            job_budget_w=budgets,
        )


def _proportional(
    total: float,
    weights: dict[str, float],
    floors: dict[str, float],
    ceilings: dict[str, float],
) -> dict[str, float]:
    """Weighted split, clamped to [floor, ceiling] with surplus recycling."""
    names = list(weights)
    remaining = set(names)
    budgets = {n: 0.0 for n in names}
    pool = total
    # Iteratively fix jobs that hit a bound, re-share the rest.
    while remaining:
        wsum = sum(weights[n] for n in remaining)
        share = {n: pool * weights[n] / wsum for n in remaining}
        bounded = {
            n
            for n in remaining
            if share[n] < floors[n] or share[n] > ceilings[n]
        }
        if not bounded:
            for n in remaining:
                budgets[n] = share[n]
            break
        for n in bounded:
            budgets[n] = float(np.clip(share[n], floors[n], ceilings[n]))
            pool -= budgets[n]
            remaining.discard(n)
    return budgets


def _relative_rate(job: Job, pmt: PowerModelTable, budget: float) -> float:
    """Normalised work rate of a job at a given budget (1.0 at fmax)."""
    sol = solve_alpha(pmt.model, budget)
    arch_fmax = pmt.model.fmax
    kappa = job.app.cpu_bound_fraction
    # time/iter ∝ κ·fmax/f + (1-κ); rate = 1/time (1.0 at f = fmax).
    return 1.0 / (kappa * arch_fmax / sol.freq_ghz + (1.0 - kappa))


def _waterfill(
    total: float,
    jobs: list[Job],
    pmts: dict[str, PowerModelTable],
    floors: dict[str, float],
    ceilings: dict[str, float],
    increment_w: float | None,
) -> dict[str, float]:
    """Greedy marginal-throughput allocation above the fmin floors."""
    budgets = dict(floors)
    pool = total - sum(floors.values())
    if increment_w is None:
        increment_w = max(total / 400.0, 1.0)
    by_name = {j.name: j for j in jobs}
    while pool > 1e-9:
        step = min(increment_w, pool)
        best_name, best_gain = None, 0.0
        for name, budget in budgets.items():
            headroom = ceilings[name] - budget
            if headroom <= 1e-9:
                continue
            add = min(step, headroom)
            gain = (
                _relative_rate(by_name[name], pmts[name], budget + add)
                - _relative_rate(by_name[name], pmts[name], budget)
            ) * by_name[name].n_modules / add
            if gain > best_gain:
                best_name, best_gain = name, gain
        if best_name is None:
            break  # every job saturated at fmax
        add = min(step, ceilings[best_name] - budgets[best_name])
        budgets[best_name] += add
        pool -= add
    return budgets


def job_progress_rate(
    system: System,
    job: Job,
    scheme: Scheme | str,
    pvt: PowerVariationTable | None,
    budget_w: float,
) -> float:
    """Fluid work rate: fraction of the job's total work done per second.

    Derived from the job's α-solve at ``budget_w``: one iteration takes
    ``T₀·(κ·fmax/f(α) + (1−κ))`` and the job has ``default_iters``
    iterations.  Used by the event-driven schedulers
    (:mod:`repro.core.dynamic`, :mod:`repro.core.resource_manager`).
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    pmt = _job_pmt(system, job, scheme, pvt)
    sol = solve_alpha(pmt.model, budget_w)
    app = job.app
    arch = system.arch
    t_iter = app.iter_seconds_fmax * (
        app.cpu_bound_fraction * arch.fmax / sol.freq_ghz
        + (1.0 - app.cpu_bound_fraction)
    )
    return 1.0 / (t_iter * app.default_iters)


@dataclass(frozen=True)
class MultiAppResult:
    """Outcome of a partitioned multi-application run."""

    partition: PowerPartition
    results: dict[str, RunResult]

    @property
    def total_power_w(self) -> float:
        """Realised power across all jobs."""
        return sum(r.total_power_w for r in self.results.values())

    @property
    def within_budget(self) -> bool:
        """Whether the realised total honours the system budget."""
        return self.total_power_w <= self.partition.total_budget_w * (1 + 1e-9)

    @property
    def throughput(self) -> float:
        """Aggregate normalised throughput: Σ modules / normalised time."""
        return sum(
            r.trace.n_ranks / r.makespan_s for r in self.results.values()
        )


def run_multiapp(
    system: System,
    jobs: list[Job],
    total_budget_w: float,
    *,
    policy: str = "uniform",
    scheme: Scheme | str = "vafs",
    pvt: PowerVariationTable | None = None,
    n_iters: int | None = None,
) -> MultiAppResult:
    """Partition the system budget and run every job under its share."""
    partition = partition_power(
        system, jobs, total_budget_w, policy=policy, scheme=scheme, pvt=pvt
    )
    results: dict[str, RunResult] = {}
    for job in jobs:
        job_system, job_pvt = _job_view(system, pvt, job)
        results[job.name] = run_budgeted(
            job_system,
            job.app,
            scheme,
            partition.job_budget_w[job.name],
            pvt=job_pvt,
            n_iters=n_iters,
        )
    return MultiAppResult(partition=partition, results=results)
