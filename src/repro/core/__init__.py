"""The paper's primary contribution: variation-aware power budgeting.

Workflow (paper Fig 4):

1. :mod:`repro.core.pmmd` — instrument the application with Power
   Measurement & Management Directives (region of interest between
   MPI_Init and MPI_Finalize).
2. :mod:`repro.core.pvt` — the once-per-system Power Variation Table,
   generated from a microbenchmark (*STREAM) run on every module.
3. :mod:`repro.core.pmt` — two single-module test runs (fmax, fmin)
   calibrate an application-dependent Power Model Table covering *all*
   modules.
4. :mod:`repro.core.model` / :mod:`repro.core.budget` — the linear power
   model (Eq 1–4) and the α-solve (Eq 5–9) that yields module-level
   power allocations maximising the common frequency under the budget.
5. :mod:`repro.core.schemes` / :mod:`repro.core.runner` — the six
   evaluated allocation schemes (Naïve, Pc, VaPc, VaPcOr, VaFs, VaFsOr)
   and the end-to-end run orchestration.
"""

from repro.core.budget import (
    BatchBudgetSolution,
    BudgetSolution,
    classify_constraint,
    classify_constraint_batched,
    solve_alpha,
    solve_alpha_batched,
)
from repro.core.dynamic import DynamicResult, run_dynamic
from repro.core.hetero import (
    HeteroAssignment,
    HeteroComparison,
    compare_hetero_vs_common,
    solve_hetero_frequencies,
)
from repro.core.model_fit import fit_power_model, sweep_module
from repro.core.multiapp import (
    Job,
    MultiAppResult,
    PowerPartition,
    partition_power,
    run_multiapp,
)
from repro.core.model import LinearPowerModel
from repro.core.phase_budget import (
    PhaseAwareResult,
    PhasePlan,
    plan_phase_budgets,
    run_phase_aware,
)
from repro.core.pmmd import PMMDRegion, instrument
from repro.core.pmt import PowerModelTable, calibrate_pmt, naive_pmt, oracle_pmt
from repro.core.pvt import PowerVariationTable, generate_pvt
from repro.core.resource_manager import (
    JobOutcome,
    JobRequest,
    PowerAwareRM,
    ScheduleResult,
)
from repro.core.pvt_selection import (
    PVTSuite,
    SelectionResult,
    calibrate_with_selection,
    generate_pvt_suite,
    select_pvt,
)
from repro.core.runner import (
    RunResult,
    run_budgeted,
    run_budgeted_batched,
    run_uncapped,
)
from repro.core.schemes import (
    ALL_SCHEMES,
    PowerAllocation,
    Scheme,
    available_schemes,
    get_scheme,
    list_schemes,
    register_scheme,
)
from repro.core.test_run import SingleModuleProfile, single_module_test_run

__all__ = [
    "LinearPowerModel",
    "PowerVariationTable",
    "generate_pvt",
    "PowerModelTable",
    "calibrate_pmt",
    "oracle_pmt",
    "naive_pmt",
    "SingleModuleProfile",
    "single_module_test_run",
    "BatchBudgetSolution",
    "BudgetSolution",
    "solve_alpha",
    "solve_alpha_batched",
    "classify_constraint",
    "classify_constraint_batched",
    "Scheme",
    "PowerAllocation",
    "ALL_SCHEMES",
    "available_schemes",
    "get_scheme",
    "list_schemes",
    "register_scheme",
    "PMMDRegion",
    "instrument",
    "RunResult",
    "run_budgeted",
    "run_budgeted_batched",
    "run_uncapped",
    # extensions (paper Sections 6.1 and 7)
    "Job",
    "MultiAppResult",
    "PowerPartition",
    "partition_power",
    "run_multiapp",
    "DynamicResult",
    "run_dynamic",
    "PVTSuite",
    "SelectionResult",
    "generate_pvt_suite",
    "select_pvt",
    "calibrate_with_selection",
    "PhasePlan",
    "PhaseAwareResult",
    "plan_phase_budgets",
    "run_phase_aware",
    "HeteroAssignment",
    "HeteroComparison",
    "solve_hetero_frequencies",
    "compare_hetero_vs_common",
    "fit_power_model",
    "sweep_module",
    "JobRequest",
    "JobOutcome",
    "PowerAwareRM",
    "ScheduleResult",
]
