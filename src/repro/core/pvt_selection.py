"""Multi-PVT calibration (the improvement the paper proposes in §6.1).

"In this paper we used only one microbenchmark (*STREAM) to generate
the application-independent PVT.  An approach to improve the prediction
accuracy is to use micro-benchmarks with different characteristics to
generate several PVTs, and then choose a suitable PVT based on the test
runs."

Implementation: generate one PVT per microbenchmark in a small suite
spanning the CPU-bound ↔ memory-bound spectrum.  At calibration time,
profile the target application on *two* modules instead of one; for
each candidate PVT, calibrate from the first module and score the
prediction of the second (held-out) module.  The PVT with the smallest
held-out error wins.  The extra cost is one more single-module test run
— still negligible next to a production execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppModel
from repro.apps.dgemm import DGEMM
from repro.apps.ep import EP
from repro.apps.stream import STREAM
from repro.cluster.system import System
from repro.core.pmt import PowerModelTable, calibrate_pmt
from repro.core.pvt import PowerVariationTable, generate_pvt
from repro.core.test_run import SingleModuleProfile, single_module_test_run
from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_MICROBENCHMARKS",
    "PVTSuite",
    "generate_pvt_suite",
    "select_pvt",
    "calibrate_with_selection",
    "SelectionResult",
]

#: Microbenchmarks spanning the boundedness spectrum: memory-saturated,
#: balanced compute, and cache-resident CPU-only.
DEFAULT_MICROBENCHMARKS: tuple[AppModel, ...] = (STREAM, DGEMM, EP)


@dataclass(frozen=True)
class PVTSuite:
    """Several PVTs of one system, keyed by microbenchmark name."""

    system_name: str
    tables: dict[str, PowerVariationTable]

    def __post_init__(self) -> None:
        if not self.tables:
            raise ConfigurationError("a PVT suite needs at least one table")

    def names(self) -> list[str]:
        """Microbenchmark names, sorted."""
        return sorted(self.tables)


def generate_pvt_suite(
    system: System,
    microbenchmarks: tuple[AppModel, ...] = DEFAULT_MICROBENCHMARKS,
    *,
    noisy: bool = True,
) -> PVTSuite:
    """Build one PVT per microbenchmark (install-time, once per system)."""
    tables = {
        mb.name: generate_pvt(system, mb, noisy=noisy) for mb in microbenchmarks
    }
    return PVTSuite(system_name=system.name, tables=tables)


def _holdout_error(
    pvt: PowerVariationTable,
    calib: SingleModuleProfile,
    holdout: SingleModuleProfile,
    *,
    fmin: float,
    fmax: float,
) -> float:
    """Relative error predicting the held-out module from the calibration
    module through one PVT (averaged over the four endpoint powers)."""
    pmt = calibrate_pmt(pvt, calib, fmin=fmin, fmax=fmax)
    k = holdout.module_index
    pairs = (
        (pmt.model.p_cpu_max[k], holdout.p_cpu_max),
        (pmt.model.p_cpu_min[k], holdout.p_cpu_min),
        (pmt.model.p_dram_max[k], holdout.p_dram_max),
        (pmt.model.p_dram_min[k], holdout.p_dram_min),
    )
    return sum(abs(pred - meas) / meas for pred, meas in pairs) / len(pairs)


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a multi-PVT calibration."""

    chosen: str
    scores: dict[str, float]  # microbenchmark -> held-out error
    pmt: PowerModelTable


def select_pvt(
    suite: PVTSuite,
    system: System,
    app: AppModel,
    *,
    calib_module: int = 0,
    holdout_module: int | None = None,
    noisy: bool = True,
) -> SelectionResult:
    """Pick the PVT that best predicts a held-out module for this app.

    ``holdout_module`` defaults to a module distinct from the
    calibration module (the next index).
    """
    if holdout_module is None:
        holdout_module = (calib_module + 1) % system.n_modules
    if holdout_module == calib_module:
        raise ConfigurationError("hold-out module must differ from the calibration module")
    arch = system.arch
    calib = single_module_test_run(system, app, calib_module, noisy=noisy)
    holdout = single_module_test_run(system, app, holdout_module, noisy=noisy)
    scores = {
        name: _holdout_error(pvt, calib, holdout, fmin=arch.fmin, fmax=arch.fmax)
        for name, pvt in suite.tables.items()
    }
    chosen = min(scores, key=scores.get)
    pmt = calibrate_pmt(
        suite.tables[chosen], calib, fmin=arch.fmin, fmax=arch.fmax
    )
    return SelectionResult(chosen=chosen, scores=scores, pmt=pmt)


def calibrate_with_selection(
    system: System,
    app: AppModel,
    suite: PVTSuite | None = None,
    **kwargs,
) -> PowerModelTable:
    """One-call variant: build (or accept) a suite, select, calibrate."""
    if suite is None:
        suite = generate_pvt_suite(system)
    return select_pvt(suite, system, app, **kwargs).pmt
