"""End-to-end orchestration: plan → actuate → run → measure.

:func:`run_budgeted` executes the paper's full workflow (Fig 4) for one
(system, application, scheme, budget) combination:

1. plan — :meth:`Scheme.allocate <repro.core.schemes.Scheme.allocate>`
   builds the scheme's PMT (PVT + single-module test runs, oracle, or
   TDP defaults) and solves for α and the module-level allocations
   (Eq 5–9), returning a
   :class:`~repro.core.schemes.PowerAllocation`;
2. actuate — RAPL caps (PC) or a pinned common frequency (FS);
3. simulate the application on the realised per-module work rates;
4. measure realised power and collect the Vp/Vf/Vt statistics.

:func:`run_uncapped` provides the unconstrained reference execution the
paper normalises against ("Cm = No" in Fig 2/3/8).

Simulation routing: every managed execution goes through
:func:`repro.simmpi.fastpath.simulate_app` — BSP-expressible
applications (all of the paper's benchmarks) run as whole-fleet
vectorised array operations with steady-state fast-forwarding, which is
what makes the 10k–200k-module fleet sweeps tractable; any non-BSP
communication pattern falls back, explicitly and automatically, to the
event-driven :class:`~repro.simmpi.EventDrivenMachine`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.telemetry as telemetry
from repro.apps.base import AppModel
from repro.cluster.system import System
from repro.control.rapl_cap import RaplCapController
from repro.core.budget import BudgetSolution
from repro.core.pmmd import InstrumentedApp
from repro.core.pvt import PowerVariationTable
from repro.core.schemes import PowerAllocation, Scheme, get_scheme
from repro.errors import ConfigurationError, InfeasibleBudgetError
from repro.hardware.module import ModuleArray, OperatingPoint
from repro.simmpi.fastpath import simulate_app, simulate_app_batched
from repro.simmpi.tracing import RankTrace
from repro.util.stats import worst_case_variation

__all__ = [
    "RunResult",
    "WITHIN_BUDGET_RTOL",
    "UNIFORM_BUDGET_RTOL",
    "run_budgeted",
    "run_budgeted_batched",
    "run_uncapped",
]

#: Relative tolerance for the :attr:`RunResult.within_budget` check.
#:
#: An oracle PC plan lands *exactly* on the budget, and RAPL pins each
#: module's realised CPU power onto its cap bit-for-bit (the controller
#: clamps, so that sum reproduces the planned one identically).  What
#: the realised total adds on top is the DRAM re-evaluation: actuation
#: inverts each cap back to a frequency (a divide by the module's
#: dynamic-power term, condition number ~p/(p − p_static)), and the DRAM
#: curve re-read at that inverted frequency does not reproduce the
#: planned per-module pdram exactly.  The per-module error is a
#: few-hundred-ulp affair (~6e-7 relative) with a coherent sign, so it
#: does *not* average out with fleet size: measured ≈8e-8 of the budget
#: at 2048 modules and roughly size-independent.  1e-7 covers that
#: mechanism while staying ≥4 decades below any real violation (FS
#: calibration error and Naïve's DRAM underestimate are >= 1e-3).
#: ``tests/core/test_within_budget.py`` pins the measured drift so the
#: margin cannot erode silently.
WITHIN_BUDGET_RTOL = 1e-7

#: The genuinely tight bound, valid for the quantities that *don't* go
#: through the DRAM re-evaluation above: on a uniform fleet the planned
#: Eq (7) aggregate of a binding oracle plan sits exactly on the budget
#: (measured error 0.0 at 2048 modules — the solver allocates the
#: residual explicitly), and the realised CPU sum reproduces the planned
#: cap sum bit-for-bit.  1e-9 bounds both with room for benign
#: reduction-order changes.  ``tests/core`` asserts this tight path
#: separately from :data:`WITHIN_BUDGET_RTOL`, so a future widening of
#: the wire tolerance cannot paper over a planning-side regression.
UNIFORM_BUDGET_RTOL = 1e-9


@dataclass(frozen=True)
class RunResult:
    """Everything observed from one managed application execution.

    Power arrays are per-module, realised (not predicted) values.
    """

    app_name: str
    scheme_name: str | None
    budget_w: float | None
    solution: BudgetSolution | None
    effective_freq_ghz: np.ndarray
    cpu_power_w: np.ndarray
    dram_power_w: np.ndarray
    cap_met: np.ndarray
    trace: RankTrace

    @property
    def module_power_w(self) -> np.ndarray:
        """Realised per-module (CPU + DRAM) power."""
        return self.cpu_power_w + self.dram_power_w

    @property
    def total_power_w(self) -> float:
        """Realised system power during the run."""
        return float(self.module_power_w.sum())

    @property
    def makespan_s(self) -> float:
        """Application completion time (slowest rank)."""
        return self.trace.makespan_s

    @property
    def vp(self) -> float:
        """Worst-case module power variation."""
        return worst_case_variation(self.module_power_w)

    @property
    def vf(self) -> float:
        """Worst-case effective-frequency variation."""
        return worst_case_variation(self.effective_freq_ghz)

    @property
    def vt(self) -> float:
        """Worst-case per-rank execution-time variation."""
        return self.trace.vt

    @property
    def within_budget(self) -> bool | None:
        """Whether realised total power stayed within the budget
        (None for uncapped runs).

        The tolerance (:data:`WITHIN_BUDGET_RTOL`, derivation at its
        definition) absorbs actuation round-trip noise only: an oracle
        PC plan lands *exactly* on the budget and RAPL reproduces the
        CPU caps bit-for-bit, but DRAM power is re-evaluated at the
        cap-inverted frequencies and drifts ~1e-7 of the budget.  Real
        violations — FS calibration error, Naïve's DRAM underestimate —
        are orders of magnitude larger.
        """
        if self.budget_w is None:
            return None
        return self.total_power_w <= self.budget_w * (1.0 + WITHIN_BUDGET_RTOL)

    def speedup_over(self, baseline: "RunResult") -> float:
        """Speedup of this run relative to ``baseline`` (>1 = faster)."""
        return baseline.makespan_s / self.makespan_s


def _truth_view(system: System, app: AppModel) -> ModuleArray:
    return app.specialize(system.modules, system.rng.rng(f"app-residual/{app.name}"))


def _work_rates(truth: ModuleArray, eff: np.ndarray | float) -> np.ndarray:
    """Simulation work rates from realised effective frequencies.

    Uniform fleets keep the exact historical expression
    (``perf · eff``).  On a mixed fleet the raw clocks live in different
    domains (a GPU's 1.38 GHz fmax is not "half" a CPU's 2.7 GHz), so
    each module's effective frequency is first expressed as a fraction
    of its *own* fmax and rescaled onto the primary clock — an uncapped
    mixed fleet then shows Vt from manufacturing variation only, not
    from comparing unlike clock domains.
    """
    if not truth.is_mixed:
        return truth.work_rate(eff)
    eff = np.asarray(eff, dtype=float)
    return truth.work_rate(eff * (truth.arch.fmax / truth.fmax_by_module()))


def _unwrap(app: AppModel | InstrumentedApp) -> tuple[AppModel, InstrumentedApp | None]:
    if isinstance(app, InstrumentedApp):
        return app.app, app
    return app, None


def _record_run(result: RunResult) -> None:
    """Retain the run's per-module arrays under the active run scope.

    The ``enabled()`` guard avoids materialising ``module_power_w``
    (a fleet-sized sum) when telemetry is off.
    """
    if not telemetry.enabled():
        return
    telemetry.record_arrays(
        "run",
        module_power_w=result.module_power_w,
        effective_freq_ghz=result.effective_freq_ghz,
        elapsed_s=result.trace.total_s,
    )


def run_uncapped(
    system: System,
    app: AppModel | InstrumentedApp,
    *,
    n_iters: int | None = None,
    turbo: bool = False,
) -> RunResult:
    """Reference execution with no power management.

    ``turbo=False`` (the default everywhere the evaluation normalises
    against) pins every module at fmax.  ``turbo=True`` lets each module
    climb to its TDP-limited Turbo point — heterogeneous for
    power-hungry workloads, uniform for light ones (see
    :meth:`~repro.hardware.ModuleArray.turbo_frequency`).
    """
    model, pmmd = _unwrap(app)
    with telemetry.span("run.uncapped", app=model.name, turbo=turbo):
        telemetry.count("run.uncapped")
        truth = _truth_view(system, model)
        n = truth.n_modules
        if turbo:
            eff = truth.turbo_frequency(model.signature)
            op = OperatingPoint(
                freq_ghz=eff, duty=np.ones(n), signature=model.signature
            )
        elif truth.is_mixed:
            # Each device type pins at its own fmax — there is no single
            # fleet-wide clock on a mixed fleet.
            eff = truth.fmax_by_module()
            op = OperatingPoint(
                freq_ghz=eff, duty=np.ones(n), signature=model.signature
            )
        else:
            op = OperatingPoint.uniform(n, system.arch.fmax, model.signature)
            eff = np.full(n, system.arch.fmax)
        rates = _work_rates(truth, eff)
        with telemetry.span("run.simulate"):
            trace = simulate_app(model, rates, system.arch.fmax, n_iters=n_iters)
        result = RunResult(
            app_name=model.name,
            scheme_name=None,
            budget_w=None,
            solution=None,
            effective_freq_ghz=eff,
            cpu_power_w=truth.cpu_power_at(op),
            dram_power_w=truth.dram_power_at(op),
            cap_met=np.ones(n, dtype=bool),
            trace=trace,
        )
        _record_run(result)
        if pmmd is not None:
            pmmd.record(result.makespan_s, result.total_power_w, plan=None)
        return result


def _fs_operating_point(
    truth: ModuleArray, model: AppModel, f_common: float
) -> tuple[OperatingPoint, np.ndarray, np.ndarray]:
    """Realised operating point at one common (ladder) frequency.

    Budget-independent — configs of a batched sweep that quantize onto
    the same ladder step share ``(op, eff, cpu_power)`` exactly, which
    is what lets :func:`run_budgeted_batched` deduplicate them.
    """
    n = truth.n_modules
    op = OperatingPoint.uniform(n, f_common, model.signature)
    eff = np.full(n, f_common)
    return op, eff, truth.cpu_power_at(op)


def _fs_mixed_freqs(
    truth: ModuleArray, alpha: float
) -> tuple[np.ndarray, tuple[float, ...]]:
    """Per-module FS frequencies for a mixed fleet at a shared α.

    Each device type realises the common α on *its own* ladder —
    ``f_t = α·(fmax_t − fmin_t) + fmin_t`` quantized down — so one
    planned α yields one pinned frequency per type.  Returns the
    per-module frequency array and the hashable per-type tuple used to
    deduplicate actuation points across a budget sweep.
    """
    freqs = np.empty(truth.n_modules)
    per_type = []
    for _pos, dt, sel in truth.device_map.groups():
        a = dt.arch
        f_t = float(a.ladder.quantize_down(alpha * (a.fmax - a.fmin) + a.fmin))
        freqs[sel] = f_t
        per_type.append(f_t)
    return freqs, tuple(per_type)


def _fs_operating_point_mixed(
    truth: ModuleArray, model: AppModel, freqs: np.ndarray
) -> tuple[OperatingPoint, np.ndarray, np.ndarray]:
    """Mixed-fleet analogue of :func:`_fs_operating_point`."""
    op = OperatingPoint(
        freq_ghz=freqs, duty=np.ones(truth.n_modules), signature=model.signature
    )
    return op, freqs, truth.cpu_power_at(op)


def _actuate(
    system: System,
    truth: ModuleArray,
    model: AppModel,
    scheme: Scheme,
    sol: BudgetSolution,
    budget_w: float,
    noisy: bool,
) -> tuple[OperatingPoint, np.ndarray, np.ndarray, np.ndarray]:
    """Turn a planned allocation into realised operating points.

    Returns ``(op, effective_freq_ghz, cpu_power_w, cap_met)``.  The
    RAPL dither stream is keyed by (app, scheme, budget), so actuation
    is config-local — identical whether the config runs alone or inside
    a batch.
    """
    arch = system.arch
    if scheme.actuation == "pc":
        rng = (
            system.rng.rng(f"rapl/{model.name}/{scheme.name}/{budget_w:.0f}")
            if noisy
            else None
        )
        controller = RaplCapController(
            truth,
            rng=rng,
            dither_loss_frac=0.02 if noisy else 0.0,
            guardband_frac=0.01 if noisy else 0.0,
        )
        enf = controller.enforce(sol.pcpu_w, model.signature)
        return enf.op, enf.effective_freq_ghz, enf.cpu_power_w, enf.cap_met
    # fs: round the common frequency *down* onto the ladder — requesting
    # the next P-state up could push total power past the budget.  Mixed
    # fleets realise the shared α per type, on each type's own ladder.
    if truth.is_mixed:
        freqs, _key = _fs_mixed_freqs(truth, sol.alpha)
        op, eff, cpu_power = _fs_operating_point_mixed(truth, model, freqs)
    else:
        f_common = float(arch.ladder.quantize_down(sol.freq_ghz))
        op, eff, cpu_power = _fs_operating_point(truth, model, f_common)
    # FS never throttles, so the *derived* CPU cap may be exceeded on
    # leaky modules (paper Section 5.3) — report it honestly.
    cap_met = cpu_power <= sol.pcpu_w + 1e-9
    return op, eff, cpu_power, cap_met


def run_budgeted(
    system: System,
    app: AppModel | InstrumentedApp,
    scheme: Scheme | str,
    budget_w: float,
    *,
    pvt: PowerVariationTable | None = None,
    test_module: int = 0,
    n_iters: int | None = None,
    noisy: bool = True,
    fs_guardband_frac: float = 0.02,
    chunk_modules: int | None = None,
    allocation: PowerAllocation | None = None,
) -> RunResult:
    """Run ``app`` on ``system`` under ``budget_w`` with one scheme.

    Parameters
    ----------
    pvt:
        The system's Power Variation Table (required by the Pc / VaPc /
        VaFs schemes; generate once and share across calls).
    test_module:
        Which module hosts the single-module calibration runs.
    n_iters:
        Override the app's standard iteration count (shorter runs for
        sweeps; timing statistics are iteration-count invariant for the
        synchronised codes after convergence).
    noisy:
        Disable to remove all measurement/controller noise (pure
        algorithmic behaviour — useful for tests and ablations).
    fs_guardband_frac:
        Planning margin applied by the FS schemes: because frequency
        selection cannot *enforce* power (Section 5.3), the α-solve runs
        against a slightly derated budget so calibration error does not
        push realised power past the constraint.  PC schemes need no
        planning margin — RAPL enforces the caps in hardware.
    chunk_modules:
        Memory knob forwarded to the α-solve
        (:func:`~repro.core.budget.solve_alpha`): when set, aggregates
        and allocations are evaluated in chunks of this many modules,
        bounding peak temporary memory at fleet scale (the 10k–200k
        module sweeps).  ``None`` (the default) uses fused whole-fleet
        expressions.
    allocation:
        A precomputed :class:`~repro.core.schemes.PowerAllocation` (from
        :meth:`Scheme.allocate <repro.core.schemes.Scheme.allocate>`).
        When given, the planning step is skipped and this allocation is
        actuated directly — callers that plan once and run many times
        (or inspect the plan before committing) pass it here.  It must
        have been planned for this scheme and budget.

    Raises
    ------
    InfeasibleBudgetError
        If the scheme's PMT says the budget cannot be met at fmin
        (Table 4's "–" cells).
    """
    model, pmmd = _unwrap(app)
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    with telemetry.span(
        "run.budgeted",
        app=model.name,
        scheme=scheme.name,
        budget_w=float(budget_w),
    ):
        telemetry.count("run.budgeted")
        telemetry.count(f"run.scheme[{scheme.name}]")
        truth = _truth_view(system, model)
        arch = system.arch
        n = truth.n_modules

        if allocation is None:
            with telemetry.span("run.plan", scheme=scheme.name):
                allocation = scheme.allocate(
                    system,
                    model,
                    budget_w,
                    pvt=pvt,
                    test_module=test_module,
                    noisy=noisy,
                    fs_guardband_frac=fs_guardband_frac,
                    chunk_modules=chunk_modules,
                )
        elif allocation.scheme.name != scheme.name or allocation.n_modules != n:
            raise ConfigurationError(
                f"allocation was planned for scheme "
                f"{allocation.scheme.name!r} over {allocation.n_modules} "
                f"modules; run requested {scheme.name!r} over {n}"
            )
        sol = allocation.solution

        with telemetry.span("run.actuate", actuation=scheme.actuation):
            op, eff, cpu_power, cap_met = _actuate(
                system, truth, model, scheme, sol, budget_w, noisy
            )

        rates = _work_rates(truth, eff)
        with telemetry.span("run.simulate"):
            trace = simulate_app(model, rates, arch.fmax, n_iters=n_iters)
        result = RunResult(
            app_name=model.name,
            scheme_name=scheme.name,
            budget_w=float(budget_w),
            solution=sol,
            effective_freq_ghz=np.asarray(eff, dtype=float),
            cpu_power_w=cpu_power,
            dram_power_w=truth.dram_power_at(op),
            cap_met=np.asarray(cap_met, dtype=bool),
            trace=trace,
        )
        _record_run(result)
        if pmmd is not None:
            pmmd.record(result.makespan_s, result.total_power_w, plan=scheme.name)
        return result


def run_budgeted_batched(
    system: System,
    app: AppModel | InstrumentedApp,
    configs,
    *,
    pvt: PowerVariationTable | None = None,
    test_module: int = 0,
    n_iters: int | None = None,
    noisy: bool = True,
    fs_guardband_frac: float = 0.02,
    chunk_modules: int | None = None,
    shard="auto",
) -> list["RunResult | InfeasibleBudgetError"]:
    """Run many (scheme, budget) configs of one app in a single batched pass.

    ``configs`` is a sequence of ``(scheme_or_name, budget_w)`` pairs.
    Planning is grouped per scheme (one PMT build + one batched α-solve
    each, :meth:`Scheme.allocate_batched`), actuation stays per config
    (the RAPL dither stream is keyed by app/scheme/budget), and all
    simulations execute as one 2-D vectorised pass
    (:func:`~repro.simmpi.fastpath.simulate_app_batched`).

    ``shard`` controls the memory layout of that pass — ``"auto"``
    (default) tiles the (configs, ranks) plane once it outgrows the
    cache working-set budget, a
    :class:`~repro.simmpi.sharding.ShardSpec`/:class:`~repro.simmpi.sharding.ShardPlan`
    pins the tiling, ``None`` forces the unsharded path.  A spec's
    ``mode`` additionally picks the executor — ``"threads"`` (default)
    or ``"processes"`` (row blocks on a worker-process pool over a
    shared-memory state plane).  Sharding is pure execution layout:
    results are bit-identical either way.

    Entry *i* is the :class:`RunResult` a per-config
    :func:`run_budgeted` call would return — bit-identical, every stage
    performs the same elementwise arithmetic on the same deterministic
    RNG streams — or the :class:`~repro.errors.InfeasibleBudgetError` it
    would raise.
    """
    model, pmmd = _unwrap(app)
    resolved = [
        ((get_scheme(s) if isinstance(s, str) else s), float(b))
        for s, b in configs
    ]
    n_configs = len(resolved)
    if n_configs == 0:
        return []
    with telemetry.span(
        "run.budgeted_batched", app=model.name, n_configs=n_configs
    ):
        telemetry.count("run.budgeted_batched")
        telemetry.observe("run.batch_size", n_configs)
        truth = _truth_view(system, model)
        arch = system.arch

        # One batched plan per distinct scheme in the batch.
        allocations: list = [None] * n_configs
        by_scheme: dict[str, list[int]] = {}
        schemes: dict[str, Scheme] = {}
        for i, (scheme, _b) in enumerate(resolved):
            by_scheme.setdefault(scheme.name, []).append(i)
            schemes[scheme.name] = scheme
        for name, idxs in by_scheme.items():
            plans = schemes[name].allocate_batched(
                system,
                model,
                [resolved[i][1] for i in idxs],
                pvt=pvt,
                test_module=test_module,
                noisy=noisy,
                fs_guardband_frac=fs_guardband_frac,
                chunk_modules=chunk_modules,
            )
            for i, plan in zip(idxs, plans):
                allocations[i] = plan

        acts: list = [None] * n_configs
        fs_points: dict[object, tuple] = {}
        fs_key: list[object | None] = [None] * n_configs
        for i, (scheme, budget_w) in enumerate(resolved):
            plan = allocations[i]
            if isinstance(plan, InfeasibleBudgetError):
                continue
            telemetry.count(f"run.scheme[{scheme.name}]")
            with telemetry.span("run.actuate", actuation=scheme.actuation):
                if scheme.actuation == "fs":
                    # The ladder is discrete, so many budgets of a sweep
                    # quantize onto the same frequency; their realised
                    # operating points are identical and shared.  Only
                    # cap_met depends on the budget's derived caps.  On a
                    # mixed fleet the dedup key is the per-type frequency
                    # tuple — one pinned frequency per device type.
                    sol = plan.solution
                    if truth.is_mixed:
                        freqs, key = _fs_mixed_freqs(truth, sol.alpha)
                        shared = fs_points.get(key)
                        if shared is None:
                            shared = fs_points[key] = _fs_operating_point_mixed(
                                truth, model, freqs
                            )
                    else:
                        key = float(arch.ladder.quantize_down(sol.freq_ghz))
                        shared = fs_points.get(key)
                        if shared is None:
                            shared = fs_points[key] = _fs_operating_point(
                                truth, model, key
                            )
                    op, eff, cpu_power = shared
                    acts[i] = (op, eff, cpu_power, cpu_power <= sol.pcpu_w + 1e-9)
                    fs_key[i] = key
                else:
                    acts[i] = _actuate(
                        system, truth, model, scheme, plan.solution, budget_w, noisy
                    )

        results: list = list(allocations)  # infeasible errors stay in place
        live = [i for i in range(n_configs) if acts[i] is not None]
        if live:
            # Configs on the same operating point are indistinguishable
            # downstream: simulate and measure each distinct point once
            # and fan the arrays back out (row-independence makes the
            # subset execution bit-identical to the full stack).
            row_of: dict[object, int] = {}
            row: list[int] = []
            unique_rates: list[np.ndarray] = []
            for i in live:
                key = fs_key[i] if fs_key[i] is not None else ("cfg", i)
                r = row_of.get(key)
                if r is None:
                    r = row_of[key] = len(unique_rates)
                    unique_rates.append(_work_rates(truth, acts[i][1]))
                row.append(r)
            rates = np.stack(unique_rates)
            telemetry.observe("run.unique_rows", rates.shape[0])
            with telemetry.span(
                "run.simulate_batched",
                n_configs=len(live),
                n_unique=rates.shape[0],
            ):
                traces = simulate_app_batched(
                    model, rates, arch.fmax, n_iters=n_iters, shard=shard
                )
            dram_of: dict[int, np.ndarray] = {}
            taken = [False] * rates.shape[0]
            for c, i in zip(row, live):
                scheme, budget_w = resolved[i]
                op, eff, cpu_power, cap_met = acts[i]
                dram_power = dram_of.get(c)
                if dram_power is None:
                    dram_power = dram_of[c] = truth.dram_power_at(op)
                trace = traces[c]
                if taken[c]:
                    # Later consumers of a shared row copy, so every
                    # result owns its arrays exactly as per-config runs
                    # would have.
                    trace = RankTrace(
                        total_s=trace.total_s.copy(),
                        compute_s=trace.compute_s.copy(),
                        wait_s=trace.wait_s.copy(),
                        comm_s=trace.comm_s.copy(),
                    )
                    eff = eff.copy()
                    cpu_power = cpu_power.copy()
                    dram_power = dram_power.copy()
                taken[c] = True
                result = RunResult(
                    app_name=model.name,
                    scheme_name=scheme.name,
                    budget_w=budget_w,
                    solution=allocations[i].solution,
                    effective_freq_ghz=np.asarray(eff, dtype=float),
                    cpu_power_w=cpu_power,
                    dram_power_w=dram_power,
                    cap_met=np.asarray(cap_met, dtype=bool),
                    trace=trace,
                )
                _record_run(result)
                if pmmd is not None:
                    pmmd.record(
                        result.makespan_s, result.total_power_w, plan=scheme.name
                    )
                results[i] = result
        return results
