"""The Power Variation Table (paper Section 5.2, Fig 6 left).

The PVT is the application-*independent* description of a system's
manufacturing variability: for every module, four variation scales —
CPU and DRAM power at fmax and fmin, each divided by the system-wide
average.  "The PVT is generated when the system is installed by
executing representative microbenchmarks on each module" — the paper
uses *STREAM because it exercises CPU and DRAM simultaneously.

The four separate columns matter: leakage is frequency-independent, so a
leaky module's scale is larger at fmin than fmax (Fig 6's module-k: 1.2
at max vs 1.4 at min).  A single scalar scale could not capture that.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.apps.base import AppModel
from repro.apps.stream import STREAM
from repro.cluster.system import System
from repro.errors import ConfigurationError
from repro.hardware.module import OperatingPoint
from repro.measurement.rapl import RaplMeter
from repro.util.indexing import as_contiguous_slice

__all__ = ["PowerVariationTable", "generate_pvt"]


@dataclass(frozen=True)
class PowerVariationTable:
    """Per-module variation scales (mean ≈ 1 per column by construction)."""

    system_name: str
    microbenchmark: str
    scale_cpu_max: np.ndarray
    scale_cpu_min: np.ndarray
    scale_dram_max: np.ndarray
    scale_dram_min: np.ndarray

    def __post_init__(self) -> None:
        n = self.scale_cpu_max.shape[0]
        for name in ("scale_cpu_min", "scale_dram_max", "scale_dram_min"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise ConfigurationError(
                    f"PVT column {name!r} has shape {arr.shape}, expected ({n},)"
                )
        for name in (
            "scale_cpu_max",
            "scale_cpu_min",
            "scale_dram_max",
            "scale_dram_min",
        ):
            arr = getattr(self, name)
            if np.any(arr <= 0) or not np.all(np.isfinite(arr)):
                raise ConfigurationError(f"PVT column {name!r} must be positive")

    @property
    def n_modules(self) -> int:
        """Number of modules the table covers."""
        return int(self.scale_cpu_max.shape[0])

    def take(self, indices: np.ndarray | list[int]) -> "PowerVariationTable":
        """PVT restricted to a job's module allocation.

        Contiguous ascending allocations (the scheduler's first-fit
        default) come back as zero-copy :meth:`take_slice` views;
        scattered allocations are fancy-index copies.
        """
        sl = as_contiguous_slice(indices)
        if sl is not None and sl.stop <= self.n_modules:
            return self.take_slice(sl.start, sl.stop)
        idx = np.asarray(indices, dtype=int)
        return PowerVariationTable(
            system_name=self.system_name,
            microbenchmark=self.microbenchmark,
            scale_cpu_max=self.scale_cpu_max[idx],
            scale_cpu_min=self.scale_cpu_min[idx],
            scale_dram_max=self.scale_dram_max[idx],
            scale_dram_min=self.scale_dram_min[idx],
        )

    def take_slice(self, start: int, stop: int) -> "PowerVariationTable":
        """Zero-copy PVT view of the contiguous module range ``[start, stop)``.

        The four scale columns are numpy slices sharing the parent's
        buffers — partitioning a fleet PVT across jobs allocates
        nothing.
        """
        if not (0 <= start <= stop <= self.n_modules):
            raise ConfigurationError(
                f"slice [{start}, {stop}) out of range for "
                f"{self.n_modules} modules"
            )
        return PowerVariationTable(
            system_name=self.system_name,
            microbenchmark=self.microbenchmark,
            scale_cpu_max=self.scale_cpu_max[start:stop],
            scale_cpu_min=self.scale_cpu_min[start:stop],
            scale_dram_max=self.scale_dram_max[start:stop],
            scale_dram_min=self.scale_dram_min[start:stop],
        )

    # -- persistence (the PVT is generated once at install time) -----------------

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "system_name": self.system_name,
            "microbenchmark": self.microbenchmark,
            "scale_cpu_max": self.scale_cpu_max.tolist(),
            "scale_cpu_min": self.scale_cpu_min.tolist(),
            "scale_dram_max": self.scale_dram_max.tolist(),
            "scale_dram_min": self.scale_dram_min.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PowerVariationTable":
        """Inverse of :meth:`to_dict`."""
        return cls(
            system_name=data["system_name"],
            microbenchmark=data["microbenchmark"],
            scale_cpu_max=np.asarray(data["scale_cpu_max"], dtype=float),
            scale_cpu_min=np.asarray(data["scale_cpu_min"], dtype=float),
            scale_dram_max=np.asarray(data["scale_dram_max"], dtype=float),
            scale_dram_min=np.asarray(data["scale_dram_min"], dtype=float),
        )

    def save(self, path: str | Path) -> None:
        """Write the table as JSON."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "PowerVariationTable":
        """Read a table written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def generate_pvt(
    system: System,
    microbenchmark: AppModel = STREAM,
    *,
    noisy: bool = True,
    duration_s: float = 1.0,
) -> PowerVariationTable:
    """Build the system's PVT by running a microbenchmark on every module.

    Measures CPU and DRAM power at fmax and fmin on each module via RAPL
    and normalises each column by its mean.  This is the once-per-system
    install-time step; it costs nothing at budgeting time.
    """
    truth = microbenchmark.specialize(
        system.modules, system.rng.rng(f"app-residual/{microbenchmark.name}")
    )
    rng = system.rng.rng(f"pvt/{microbenchmark.name}") if noisy else None
    meter = RaplMeter(truth, rng=rng)
    arch = system.arch
    n = system.n_modules
    mixed = truth.is_mixed

    columns: dict[str, np.ndarray] = {}
    for label, freq in (("max", arch.fmax), ("min", arch.fmin)):
        if mixed:
            # Each device type is characterised at its *own* ladder
            # endpoints — a GPU's "fmax column" is measured at the GPU
            # fmax, not the primary CPU's.
            freqs = (
                truth.fmax_by_module() if label == "max" else truth.fmin_by_module()
            )
            op = OperatingPoint(
                freq_ghz=freqs,
                duty=np.ones(n),
                signature=microbenchmark.signature,
            )
        else:
            op = OperatingPoint.uniform(n, freq, microbenchmark.signature)
        reading = meter.read(op, duration_s=duration_s)
        columns[f"cpu_{label}"] = reading.cpu_w
        columns[f"dram_{label}"] = reading.dram_w

    def normalise(col: np.ndarray) -> np.ndarray:
        if not mixed:
            return col / col.mean()
        # Scales are relative to the *type* average: a 300 W GPU next to
        # a 100 W CPU is not "3x variation", it is a different device.
        out = np.empty(n)
        for _pos, _dt, sel in truth.device_map.groups():
            out[sel] = col[sel] / col[sel].mean()
        return out

    return PowerVariationTable(
        system_name=system.name,
        microbenchmark=microbenchmark.name,
        scale_cpu_max=normalise(columns["cpu_max"]),
        scale_cpu_min=normalise(columns["cpu_min"]),
        scale_dram_max=normalise(columns["dram_max"]),
        scale_dram_min=normalise(columns["dram_min"]),
    )
