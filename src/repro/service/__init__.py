"""The power-budget allocation service.

The paper's variation-aware schemes started here as one-shot batch
sweeps; this package turns them into a long-lived, multi-tenant
*service* in the mold of production node-resource managers: a daemon
(``repro serve``) holds hot fleets in POSIX shared memory, answers
allocation queries from cached power-model tables at thousands of
queries/sec, runs full digest-addressed sweeps through the experiment
engine, re-solves the global α on every job admit/depart or budget
change, and degrades under overload into typed, retryable rejects
rather than queueing collapse.

Layer map (all requests are the typed dataclasses of
:mod:`repro.service.api`, versioned with ``schema_version``):

===========================  ====================================================
:mod:`repro.service.api`     wire schema: requests, results, :class:`ServiceError`
:mod:`repro.service.engine`  :class:`AllocationService` — hosted fleets + solvers
:mod:`repro.service.daemon`  asyncio NDJSON/HTTP front-end, :func:`serve`
:mod:`repro.service.client`  :class:`ServiceClient` — typed sync client
:mod:`repro.service.loadgen` closed-loop load generator + CI smoke
===========================  ====================================================
"""

from repro.service.api import (
    SCHEMA_VERSION,
    Ack,
    AllocationRequest,
    AllocationResult,
    BudgetAllocation,
    BudgetUpdateRequest,
    FleetHandle,
    FleetSpec,
    JobAdmitRequest,
    JobDepartRequest,
    JobStateResult,
    SchemeInfo,
    SchemesResult,
    ServiceError,
    SweepRequest,
    SweepResult,
    SweepRun,
    TelemetryRequest,
    TelemetrySample,
)
from repro.service.client import ServiceClient
from repro.service.daemon import BackgroundServer, ServiceDaemon, serve
from repro.service.engine import AllocationService
from repro.service.loadgen import LoadReport, run_load

__all__ = [
    "SCHEMA_VERSION",
    "Ack",
    "AllocationRequest",
    "AllocationResult",
    "AllocationService",
    "BackgroundServer",
    "BudgetAllocation",
    "BudgetUpdateRequest",
    "FleetHandle",
    "FleetSpec",
    "JobAdmitRequest",
    "JobDepartRequest",
    "JobStateResult",
    "LoadReport",
    "SchemeInfo",
    "SchemesResult",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "SweepRequest",
    "SweepResult",
    "SweepRun",
    "TelemetryRequest",
    "TelemetrySample",
    "run_load",
    "serve",
]
