"""The in-process allocation engine behind the service daemon.

:class:`AllocationService` hosts *hot fleets*: each opened fleet is
built once, exported to POSIX shared memory via
:func:`repro.exec.shared.export_fleet` (so engine pool workers attach it
zero-copy instead of re-sampling variation per request), and kept warm
together with its per-(app, scheme) power-model tables.  Against those
tables, the three request families cost very different amounts:

``allocate``
    The fast path — answers from the cached Eq (5)/(6) aggregates with
    scalar arithmetic per budget, never materialising a fleet-sized
    temporary.  The arithmetic replicates
    :func:`repro.core.budget.solve_alpha_batched` (including the FS
    planning guardband of :meth:`Scheme.allocate_batched
    <repro.core.schemes.Scheme.allocate_batched>`) exactly, so the
    ``alpha``/``raw_alpha``/``feasible``/``freq_ghz`` values are
    bit-identical to what a full solve at the same ``chunk_modules``
    would produce; ``tests/service`` pins the parity.  This is what
    sustains thousands of queries/sec against a 100k-module fleet.

``sweep``
    Full simulation through :meth:`ExperimentEngine.submit_batched_sweep
    <repro.exec.engine.ExperimentEngine.submit_batched_sweep>` over
    :class:`~repro.exec.cache.RunKey` rows — digest-addressed and
    therefore bit-identical to direct engine use (the digest-proof test
    compares payload digests, not floats).

``admit``/``depart``/``set-budget``
    Membership changes.  The fleet carries a global budget and a set of
    admitted jobs (contiguous module ranges, first-fit); every change
    re-solves the shared α over the *active* sub-model — a zero-copy
    :meth:`LinearPowerModel.take_slice
    <repro.core.model.LinearPowerModel.take_slice>` where membership is
    contiguous — with :func:`~repro.core.budget.solve_alpha_batched`.

All public methods raise :class:`~repro.service.api.ServiceError` only
(the daemon maps them onto the wire), and the whole object is guarded by
one re-entrant lock so a daemon thread pool can drive it directly.
"""

from __future__ import annotations

import threading
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

import repro.telemetry as telemetry
from repro.apps import get_app
from repro.cluster.configs import build_hetero_system, build_system
from repro.core.budget import solve_alpha_batched
from repro.core.model import LinearPowerModel
from repro.core.pvt import PowerVariationTable, generate_pvt
from repro.core.schemes import available_schemes, get_scheme
from repro.errors import ReproError
from repro.exec import ExperimentEngine, RunKey
from repro.exec.shared import SharedFleet, destroy_fleet, export_fleet
from repro.service.api import (
    AllocationRequest,
    AllocationResult,
    BudgetAllocation,
    BudgetUpdateRequest,
    FleetHandle,
    FleetSpec,
    JobAdmitRequest,
    JobDepartRequest,
    JobStateResult,
    SchemeInfo,
    SchemesResult,
    ServiceError,
    SweepRequest,
    SweepResult,
    SweepRun,
)

__all__ = ["AllocationService"]

#: Default α-solve chunk size (modules) — the fleet experiments' knob.
SERVICE_CHUNK = 65536

#: Default per-fleet budget when none has been set: the fleet-sweep
#: module constraint, Cm = 80 W/module (Table 4's tightest all-"X" row).
DEFAULT_CM_W = 80.0


@dataclass(frozen=True)
class _PlanTable:
    """One (app, scheme)'s cached solve aggregates for a hosted fleet.

    ``floor_w``/``span_w`` are the chunk-accumulated Eq (5)/(6)
    aggregates; ``floor_fused_w`` is the fused ``total_min_w()`` the
    scalar solve reports for invalid budgets and the FS guardband
    clamps against — both kept so the fast path mirrors
    :func:`solve_alpha_batched`'s two raise sites exactly.
    """

    model: LinearPowerModel
    floor_w: float
    span_w: float
    floor_fused_w: float
    fs_actuated: bool


@dataclass
class _Job:
    job_id: str
    start: int
    stop: int

    @property
    def n_modules(self) -> int:
        return self.stop - self.start


@dataclass
class _FleetState:
    """Everything the service keeps warm for one opened fleet."""

    fleet_id: str
    spec: FleetSpec
    system: object
    handle: SharedFleet | None
    budget_w: float
    app: str = "bt"
    scheme: str = "vafsor"
    fs_guardband_frac: float = 0.02
    pvt: PowerVariationTable | None = None
    tables: dict[tuple, _PlanTable] = field(default_factory=dict)
    jobs: list[_Job] = field(default_factory=list)

    @property
    def active_modules(self) -> int:
        return sum(j.n_modules for j in self.jobs)


class AllocationService:
    """Hosted fleets + the typed request handlers (see module docstring).

    Parameters
    ----------
    jobs:
        Worker processes for sweep fan-out (forwarded to the
        :class:`~repro.exec.engine.ExperimentEngine` when ``engine`` is
        not supplied); ``1`` executes sweeps in-process.
    engine:
        Share an existing engine (and its cache) instead of building a
        private uncached one.
    chunk_modules:
        α-solve memory knob for table builds and membership re-solves.
    export_shm:
        Export opened fleets to shared memory (the daemon's default).
        ``False`` keeps everything private to the process — used by
        in-process callers that never fan out.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        engine: ExperimentEngine | None = None,
        chunk_modules: int = SERVICE_CHUNK,
        export_shm: bool = True,
    ):
        self._lock = threading.RLock()
        self._engine = engine if engine is not None else ExperimentEngine(jobs=jobs)
        self._chunk = int(chunk_modules)
        self._export = bool(export_shm)
        self._fleets: dict[str, _FleetState] = {}
        self._next_id = 0
        self._closed = False

    # -- fleet lifecycle -------------------------------------------------------

    def open_fleet(self, spec: FleetSpec) -> FleetHandle:
        """Build the fleet, export it hot, and return its handle."""
        with self._lock:
            self._check_open()
            fleet_id = spec.fleet_id or f"fleet-{self._next_id}"
            self._next_id += 1
            if fleet_id in self._fleets:
                raise ServiceError(
                    "duplicate", f"fleet {fleet_id!r} is already open"
                )
            try:
                if spec.is_hetero:
                    system = build_hetero_system(
                        list(spec.device_counts),
                        name=spec.system,
                        seed=spec.seed,
                    )
                else:
                    system = build_system(
                        spec.system, n_modules=spec.n_modules, seed=spec.seed
                    )
            except ServiceError:
                raise
            except ReproError as exc:
                raise ServiceError("bad-request", str(exc))
            handle = export_fleet(system) if self._export else None
            self._fleets[fleet_id] = _FleetState(
                fleet_id=fleet_id,
                spec=spec,
                system=system,
                handle=handle,
                budget_w=DEFAULT_CM_W * spec.n_modules,
            )
            telemetry.count("service.fleets_opened")
            return FleetHandle(
                fleet_id=fleet_id,
                system=spec.system,
                n_modules=spec.n_modules,
                seed=spec.seed,
                shm_name=handle.shm_name if handle is not None else "",
            )

    def close_fleet(self, fleet_id: str) -> None:
        """Destroy the fleet's shared-memory block and forget it."""
        with self._lock:
            state = self._fleets.pop(fleet_id, None)
            if state is None:
                raise ServiceError("unknown-fleet", f"no open fleet {fleet_id!r}")
            if state.handle is not None:
                destroy_fleet(state.handle)

    def close_all(self) -> None:
        """Drain path: destroy every hosted fleet (idempotent)."""
        with self._lock:
            self._closed = True
            while self._fleets:
                _fid, state = self._fleets.popitem()
                if state.handle is not None:
                    destroy_fleet(state.handle)

    @property
    def n_fleets(self) -> int:
        with self._lock:
            return len(self._fleets)

    @property
    def n_jobs(self) -> int:
        with self._lock:
            return sum(len(s.jobs) for s in self._fleets.values())

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError(
                "draining", "the service is draining", retryable=True
            )

    def _fleet(self, fleet_id: str) -> _FleetState:
        state = self._fleets.get(fleet_id)
        if state is None:
            raise ServiceError("unknown-fleet", f"no open fleet {fleet_id!r}")
        return state

    # -- plan tables -------------------------------------------------------------

    def _table(
        self, state: _FleetState, app: str, scheme_name: str, test_module: int,
        noisy: bool,
    ) -> _PlanTable:
        key = (app, scheme_name, int(test_module), bool(noisy))
        table = state.tables.get(key)
        if table is not None:
            return table
        scheme = get_scheme(scheme_name)
        if scheme.pmt_kind in ("uniform", "calibrated") and state.pvt is None:
            state.pvt = generate_pvt(state.system)
        try:
            pmt = scheme.build_pmt(
                state.system,
                get_app(app),
                pvt=state.pvt,
                test_module=test_module,
                noisy=noisy,
            )
        except ReproError as exc:
            raise ServiceError("bad-request", str(exc))
        model = pmt.model
        floor, span = model.floor_and_span_w(chunk_modules=self._chunk)
        table = _PlanTable(
            model=model,
            floor_w=floor,
            span_w=span,
            floor_fused_w=model.total_min_w(),
            fs_actuated=scheme.actuation == "fs",
        )
        state.tables[key] = table
        return table

    # -- allocate: the fast path -------------------------------------------------

    def allocate(self, req: AllocationRequest) -> AllocationResult:
        """Solve Eq (6) for every requested budget from cached aggregates.

        Scalar work per budget — exactly :func:`solve_alpha_batched`'s
        arithmetic on the precomputed (floor, span), with
        :meth:`Scheme.allocate_batched`'s FS guardband derating in
        front — so the answers are bit-identical to a full solve while
        touching nothing fleet-sized.
        """
        with self._lock:
            self._check_open()
            state = self._fleet(req.fleet_id)
            table = self._table(
                state, req.app, req.scheme, req.test_module, req.noisy
            )
        budgets = np.asarray(req.budgets_w, dtype=float)
        solve_on = budgets
        if table.fs_actuated and req.fs_guardband_frac > 0.0:
            # Scheme.allocate_batched's derating: never below the fused
            # fmin floor for feasible budgets, infeasible ones keep the
            # plain derated value.
            derated = budgets * (1.0 - req.fs_guardband_frac)
            solve_on = np.where(
                budgets >= table.floor_fused_w,
                np.maximum(derated, table.floor_fused_w),
                derated,
            )
        valid = np.isfinite(solve_on) & (solve_on > 0.0)
        if table.span_w <= 0.0:
            raws = np.where(solve_on >= table.floor_w, 1.0, -1.0)
        else:
            raws = (solve_on - table.floor_w) / table.span_w
        feasible = valid & (raws >= 0.0)
        alphas = np.minimum(raws, 1.0)
        freqs = alphas * (table.model.fmax - table.model.fmin) + table.model.fmin
        # Eq (5) aggregate at the solved α; the floor reported for
        # infeasible budgets mirrors the solve's two raise sites.
        totals = np.where(feasible, alphas * table.span_w + table.floor_w, 0.0)
        floors = np.where(valid, table.floor_w, table.floor_fused_w)
        telemetry.count("service.allocate")
        telemetry.count("service.allocate_budgets", int(budgets.size))
        return AllocationResult(
            fleet_id=req.fleet_id,
            app=req.app,
            scheme=req.scheme,
            n_modules=table.model.n_modules,
            allocations=tuple(
                BudgetAllocation(
                    budget_w=float(budgets[i]),
                    feasible=bool(feasible[i]),
                    alpha=float(alphas[i]) if feasible[i] else 0.0,
                    raw_alpha=float(raws[i]),
                    constrained=bool(raws[i] < 1.0),
                    freq_ghz=float(freqs[i]) if feasible[i] else 0.0,
                    total_allocated_w=float(totals[i]),
                    floor_w=float(floors[i]),
                )
                for i in range(budgets.size)
            ),
        )

    # -- sweeps: full engine-backed simulation -------------------------------------

    def sweep(self, req: SweepRequest) -> SweepResult:
        """Run the apps × schemes × budgets cross product as cached
        engine runs; results are the engine's own, digest-addressed."""
        with self._lock:
            self._check_open()
            state = self._fleet(req.fleet_id)
            if state.spec.is_hetero:
                raise ServiceError(
                    "bad-request",
                    "sweeps require a named homogeneous system "
                    "(RunKey cannot express device_counts yet); "
                    "use allocate for heterogeneous fleets",
                )
            spec = state.spec
        keys = [
            RunKey(
                system=spec.system,
                n_modules=spec.n_modules,
                seed=spec.seed,
                app=app,
                scheme=scheme,
                budget_w=budget,
                n_iters=req.n_iters,
                noisy=req.noisy,
                fs_guardband_frac=req.fs_guardband_frac,
                test_module=req.test_module,
            )
            for app in req.apps
            for scheme in req.schemes
            for budget in req.budgets_w
        ]
        try:
            results = self._engine.submit_batched_sweep(
                keys, skip_infeasible=True
            )
        except BrokenProcessPool:
            # A pool worker died mid-sweep (OOM kill, crash, fault
            # injection).  The engine's `finally` has already destroyed
            # the exported fleet blocks; the request is safe to retry.
            raise ServiceError(
                "worker-crashed",
                "an engine worker died mid-sweep; the request is safe "
                "to retry",
                retryable=True,
            )
        telemetry.count("service.sweep")
        telemetry.count("service.sweep_runs", len(keys))
        runs = []
        for key, result in zip(keys, results):
            if result is None:  # infeasible budget (skip_infeasible slot)
                runs.append(
                    SweepRun(
                        app=key.app,
                        scheme=key.scheme,
                        budget_w=key.budget_w,
                        digest=key.digest(),
                        feasible=False,
                    )
                )
                continue
            runs.append(
                SweepRun(
                    app=key.app,
                    scheme=key.scheme,
                    budget_w=key.budget_w,
                    digest=key.digest(),
                    feasible=True,
                    makespan_s=float(result.makespan_s),
                    total_power_w=float(result.total_power_w),
                    within_budget=bool(result.within_budget),
                    vf=float(result.vf),
                    vt=float(result.vt),
                )
            )
        return SweepResult(fleet_id=req.fleet_id, runs=tuple(runs))

    # -- job membership: incremental re-solve ---------------------------------------

    def admit(self, req: JobAdmitRequest) -> JobStateResult:
        """Place the job (first-fit over contiguous module ranges) and
        re-solve the fleet's shared α over the new active membership."""
        with self._lock:
            self._check_open()
            state = self._fleet(req.fleet_id)
            if any(j.job_id == req.job_id for j in state.jobs):
                raise ServiceError(
                    "duplicate",
                    f"job {req.job_id!r} is already admitted on {req.fleet_id!r}",
                )
            start = self._first_fit(state, req.n_modules)
            if start is None:
                raise ServiceError(
                    "overloaded",
                    f"no contiguous {req.n_modules}-module range free on "
                    f"{req.fleet_id!r} "
                    f"({state.active_modules}/{state.spec.n_modules} busy)",
                    retryable=True,
                )
            state.jobs.append(_Job(req.job_id, start, start + req.n_modules))
            state.jobs.sort(key=lambda j: j.start)
            telemetry.count("service.admit")
            return self._resolve_membership(state)

    def depart(self, req: JobDepartRequest) -> JobStateResult:
        """Remove the job and re-solve over what remains."""
        with self._lock:
            self._check_open()
            state = self._fleet(req.fleet_id)
            before = len(state.jobs)
            state.jobs = [j for j in state.jobs if j.job_id != req.job_id]
            if len(state.jobs) == before:
                raise ServiceError(
                    "bad-request",
                    f"job {req.job_id!r} is not admitted on {req.fleet_id!r}",
                )
            telemetry.count("service.depart")
            return self._resolve_membership(state)

    def set_budget(self, req: BudgetUpdateRequest) -> JobStateResult:
        """Change the fleet's global budget (and the app/scheme the
        membership α is solved under) and re-solve immediately."""
        with self._lock:
            self._check_open()
            state = self._fleet(req.fleet_id)
            state.budget_w = req.budget_w
            state.app = req.app
            state.scheme = req.scheme
            telemetry.count("service.set_budget")
            return self._resolve_membership(state)

    @staticmethod
    def _first_fit(state: _FleetState, n: int) -> int | None:
        """Lowest contiguous free range of ``n`` modules, or ``None``."""
        cursor = 0
        for job in state.jobs:  # kept sorted by start
            if job.start - cursor >= n:
                return cursor
            cursor = max(cursor, job.stop)
        if state.spec.n_modules - cursor >= n:
            return cursor
        return None

    def _resolve_membership(self, state: _FleetState) -> JobStateResult:
        """The incremental α re-solve over the active sub-model.

        Jobs occupy contiguous ranges, so the sub-model is assembled
        from zero-copy :meth:`take_slice` views where possible (one
        :meth:`take` gather otherwise) and handed to the same
        :func:`solve_alpha_batched` the sweeps use — one budget, the
        fleet's global one, with the scheme's FS derating applied.
        """
        jobs = tuple(j.job_id for j in state.jobs)
        active = state.active_modules
        table = self._table(state, state.app, state.scheme, 0, True)
        if active == 0:
            return JobStateResult(
                fleet_id=state.fleet_id,
                jobs=jobs,
                active_modules=0,
                budget_w=state.budget_w,
                feasible=True,
                alpha=1.0,
                freq_ghz=table.model.fmax,
                floor_w=0.0,
            )
        if len(state.jobs) == 1:
            job = state.jobs[0]
            submodel = table.model.take_slice(job.start, job.stop)
        else:
            indices = np.concatenate(
                [np.arange(j.start, j.stop) for j in state.jobs]
            )
            submodel = table.model.take(indices)
        budget = state.budget_w
        if table.fs_actuated and state.fs_guardband_frac > 0.0:
            floor = submodel.total_min_w()
            derated = budget * (1.0 - state.fs_guardband_frac)
            if budget >= floor:
                derated = max(derated, floor)
            budget = derated
        batch = solve_alpha_batched(
            submodel, [budget], chunk_modules=self._chunk
        )
        feasible = bool(batch.feasible[0])
        telemetry.count("service.membership_resolve")
        return JobStateResult(
            fleet_id=state.fleet_id,
            jobs=jobs,
            active_modules=active,
            budget_w=state.budget_w,
            feasible=feasible,
            alpha=float(batch.alphas[0]) if feasible else 0.0,
            freq_ghz=float(batch.freq_ghz[0]) if feasible else 0.0,
            floor_w=float(batch.floor_w[0]),
        )

    # -- schemes ---------------------------------------------------------------------

    def schemes(self) -> SchemesResult:
        """The live registry, as ``repro schemes`` renders it — runtime
        registrations are visible immediately."""
        return SchemesResult(
            schemes=tuple(
                SchemeInfo(
                    name=s.name,
                    label=s.label,
                    pmt_kind=s.pmt_kind,
                    actuation=s.actuation,
                    variation_aware=s.variation_aware,
                    app_dependent=s.app_dependent,
                )
                for s in available_schemes().values()
            )
        )
