"""The allocation-service daemon: asyncio front-end over the engine.

One :class:`ServiceDaemon` serves a single
:class:`~repro.service.engine.AllocationService` over:

* a newline-delimited-JSON **unix socket** (the default transport —
  one request envelope per line, one reply line per request, replies in
  request order per connection; the ``telemetry`` op streams several
  reply lines),
* optionally the same NDJSON protocol on a **TCP port**, and
* optionally a minimal **HTTP adapter** (``POST /v1/<op>`` with a
  ``{"schema_version": N, "payload": {...}}`` body; error codes map to
  HTTP statuses via :data:`~repro.service.api.ERROR_HTTP_STATUS`, so
  overload is a literal 429).

Request handling is strictly bounded: at most ``max_pending`` requests
may be in flight across all connections, and anything beyond that is
rejected *immediately* with a retryable ``overloaded`` error — the
event loop never queues unbounded work behind the engine, so overload
degrades into fast typed rejects rather than latency collapse or a
hang.  Engine calls run on a small thread pool (the engine object is
lock-guarded), keeping the loop free to answer pings and rejects while
a sweep simulates.

Shutdown is a drain, never a drop: SIGTERM/SIGINT (or a ``drain``
request) stops the listeners, answers new requests with a retryable
``draining`` error, waits for in-flight work, then destroys every
hosted fleet's shared-memory block before exiting — the smoke test
asserts ``/dev/shm`` is clean afterwards.

:func:`serve` is the blocking entry point behind ``repro serve``;
:class:`BackgroundServer` hosts the same daemon on a worker thread for
tests, docs, and the benchmark load generator.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import tempfile
import threading
import time
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor

import repro.telemetry as telemetry
from repro.service.api import (
    ERROR_HTTP_STATUS,
    SCHEMA_VERSION,
    Ack,
    ServiceError,
    TelemetrySample,
    decode_request,
    encode_reply,
)
from repro.service.engine import AllocationService

__all__ = ["ServiceDaemon", "BackgroundServer", "serve"]

#: Test hook: sleep this many milliseconds inside every worker-thread
#: dispatch.  Lets the overload tests hold requests in flight
#: deterministically; unset (the default) costs one getenv per request.
_SLOW_ENV = "REPRO_SERVICE_TEST_DELAY_MS"


def default_socket_path() -> str:
    """The per-process default unix-socket path for ``repro serve``."""
    return os.path.join(tempfile.gettempdir(), f"repro-serve-{os.getpid()}.sock")


class ServiceDaemon:
    """Bounded asyncio front-end for one :class:`AllocationService`.

    Parameters
    ----------
    service:
        The engine to serve (owned: drain destroys its fleets).
    socket_path / port / http_port:
        Listeners to open; at least one must be given.  ``port`` serves
        the NDJSON protocol over TCP, ``http_port`` the HTTP adapter
        (both on localhost).
    max_pending:
        In-flight request bound across all connections; excess requests
        are rejected immediately with retryable ``overloaded`` errors.
    workers:
        Threads executing engine calls.  The engine is fully
        lock-guarded, so extra threads only help when requests block on
        different fleets' first table builds.
    """

    def __init__(
        self,
        service: AllocationService,
        *,
        socket_path: str | None = None,
        port: int | None = None,
        http_port: int | None = None,
        max_pending: int = 64,
        workers: int = 1,
    ):
        if socket_path is None and port is None and http_port is None:
            raise ServiceError(
                "bad-request", "the daemon needs a socket path or a port"
            )
        self.service = service
        self.socket_path = socket_path
        self.port = port
        self.http_port = http_port
        self.max_pending = max(1, int(max_pending))
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, int(workers)), thread_name_prefix="repro-serve"
        )
        self._inflight = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._servers: list[asyncio.base_events.Server] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._t0 = time.monotonic()
        self._served: dict[str, int] = {}
        self._rejected: dict[str, int] = {}

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Open the listeners (idempotent per instance)."""
        self._loop = asyncio.get_running_loop()
        if self.socket_path is not None:
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
            self._servers.append(
                await asyncio.start_unix_server(self._serve_ndjson, self.socket_path)
            )
        if self.port is not None:
            server = await asyncio.start_server(
                self._serve_ndjson, "127.0.0.1", self.port
            )
            if self.port == 0:  # ephemeral: record what the OS picked
                self.port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        if self.http_port is not None:
            server = await asyncio.start_server(
                self._serve_http, "127.0.0.1", self.http_port
            )
            if self.http_port == 0:
                self.http_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)

    def request_drain(self) -> None:
        """Begin the graceful drain (signal handler / ``drain`` op).

        Safe to call repeatedly and from any thread via
        ``loop.call_soon_threadsafe``.
        """
        if self._draining:
            return
        self._draining = True
        assert self._loop is not None
        self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        while self._inflight > 0:
            await asyncio.sleep(0.005)
        # All replies written: release the hot fleets' shm blocks.
        self.service.close_all()
        self._pool.shutdown(wait=True)
        if self.socket_path is not None and os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._drained.set()

    async def run_until_drained(
        self,
        *,
        install_signals: bool = False,
        on_ready: Callable[[], None] | None = None,
    ) -> None:
        """Serve until a drain completes.  ``install_signals`` wires
        SIGTERM/SIGINT to :meth:`request_drain` (main thread only);
        ``on_ready`` fires once the listeners are open — ephemeral
        ``port=0``/``http_port=0`` requests are resolved to the real
        port numbers by then."""
        await self.start()
        if on_ready is not None:
            on_ready()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self.request_drain)
        await self._drained.wait()

    # -- dispatch ---------------------------------------------------------------

    def _handle(self, op: str, payload) -> object:
        """Execute one request against the engine (worker thread)."""
        delay_ms = os.environ.get(_SLOW_ENV)
        if delay_ms:
            time.sleep(float(delay_ms) / 1e3)
        service = self.service
        if op == "ping":
            return Ack()
        if op == "open-fleet":
            return service.open_fleet(payload)
        if op == "close-fleet":
            service.close_fleet(payload.fleet_id)
            return Ack(f"closed {payload.fleet_id}")
        if op == "allocate":
            return service.allocate(payload)
        if op == "sweep":
            return service.sweep(payload)
        if op == "admit":
            return service.admit(payload)
        if op == "depart":
            return service.depart(payload)
        if op == "set-budget":
            return service.set_budget(payload)
        if op == "schemes":
            return service.schemes()
        raise ServiceError("unknown-op", f"op {op!r} has no handler")

    def _telemetry_sample(self) -> TelemetrySample:
        snap = telemetry.snapshot() or {}
        return TelemetrySample(
            uptime_s=time.monotonic() - self._t0,
            inflight=self._inflight,
            fleets=self.service.n_fleets,
            jobs=self.service.n_jobs,
            served=tuple(sorted(self._served.items())),
            rejected=tuple(sorted(self._rejected.items())),
            counters=tuple(sorted(snap.items())),
        )

    async def _dispatch(self, op: str, payload) -> tuple[object, ServiceError | None]:
        """Admission control + engine execution; never raises."""
        if self._draining:
            self._count(self._rejected, op)
            return None, ServiceError(
                "draining", "the service is draining", retryable=True
            )
        if self._inflight >= self.max_pending:
            self._count(self._rejected, op)
            return None, ServiceError(
                "overloaded",
                f"{self._inflight} requests in flight (limit "
                f"{self.max_pending}); retry with backoff",
                retryable=True,
            )
        self._inflight += 1
        try:
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self._pool, self._handle, op, payload
            )
            self._count(self._served, op)
            return result, None
        except ServiceError as exc:
            self._count(self._rejected, op)
            return None, exc
        except Exception as exc:  # engine invariant violation — still typed
            self._count(self._rejected, op)
            return None, ServiceError("internal", f"{type(exc).__name__}: {exc}")
        finally:
            self._inflight -= 1

    @staticmethod
    def _count(table: dict[str, int], op: str) -> None:
        table[op] = table.get(op, 0) + 1

    # -- NDJSON transport ----------------------------------------------------------

    async def _serve_ndjson(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    op, payload = decode_request(line)
                except ServiceError as exc:
                    writer.write(encode_reply("?", error=exc))
                    await writer.drain()
                    continue
                if op == "telemetry":
                    await self._stream_telemetry(writer, payload)
                    continue
                if op == "drain":
                    writer.write(encode_reply(op, Ack("draining")))
                    await writer.drain()
                    self.request_drain()
                    continue
                result, error = await self._dispatch(op, payload)
                writer.write(encode_reply(op, result, error=error))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _stream_telemetry(self, writer, req) -> None:
        """``samples`` reply lines, ``interval_s`` apart — a poor
        man's subscription that needs no server-side push machinery."""
        for i in range(req.samples):
            if i:
                await asyncio.sleep(req.interval_s)
            writer.write(encode_reply("telemetry", self._telemetry_sample()))
            await writer.drain()

    # -- HTTP adapter ---------------------------------------------------------------

    async def _serve_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal HTTP/1.1: ``POST /v1/<op>`` with the versioned body
        ``{"schema_version": N, "payload": {...}}``.  One request per
        connection (``Connection: close``)."""
        try:
            status, body = await self._http_once(reader)
            head = (
                f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'OK')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode() + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _http_once(self, reader) -> tuple[int, bytes]:
        try:
            request_line = (await reader.readline()).decode("latin-1").strip()
            length = 0
            while True:
                header = (await reader.readline()).decode("latin-1").strip()
                if not header:
                    break
                name, _, value = header.partition(":")
                if name.lower() == "content-length":
                    length = int(value.strip() or 0)
            body = await reader.readexactly(length) if length else b""
        except (asyncio.IncompleteReadError, ValueError, UnicodeDecodeError):
            err = ServiceError("bad-request", "malformed HTTP request")
            return 400, encode_reply("?", error=err)

        parts = request_line.split()
        if len(parts) != 3 or parts[0] != "POST" or not parts[1].startswith("/v1/"):
            err = ServiceError(
                "unknown-op", "expected POST /v1/<op> (see docs/API.md)"
            )
            return 404, encode_reply("?", error=err)
        op = parts[1][len("/v1/"):]
        # Rebuild the canonical envelope so the HTTP and socket paths
        # share one validator (version check included).
        try:
            envelope = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            err = ServiceError("bad-request", f"body is not valid JSON: {exc}")
            return 400, encode_reply(op, error=err)
        if not isinstance(envelope, dict):
            err = ServiceError("bad-request", "body must be a JSON object")
            return 400, encode_reply(op, error=err)
        envelope["op"] = op
        try:
            op, payload = decode_request(json.dumps(envelope))
        except ServiceError as exc:
            return ERROR_HTTP_STATUS.get(exc.code, 500), encode_reply(op, error=exc)
        if op in ("telemetry",):
            return 200, encode_reply(op, self._telemetry_sample())
        if op == "drain":
            self.request_drain()
            return 200, encode_reply(op, Ack("draining"))
        result, error = await self._dispatch(op, payload)
        if error is not None:
            return ERROR_HTTP_STATUS.get(error.code, 500), encode_reply(op, error=error)
        return 200, encode_reply(op, result)


_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def serve(
    *,
    socket_path: str | None = None,
    port: int | None = None,
    http_port: int | None = None,
    fleets: tuple[str, ...] = (),
    jobs: int = 1,
    max_pending: int = 64,
    workers: int = 1,
    quiet: bool = False,
) -> None:
    """Run the allocation service until SIGTERM/SIGINT drains it.

    This is ``repro serve``.  ``fleets`` pre-opens fleets from CLI
    shorthand specs (``system:n_modules[:seed]``) so the daemon comes up
    hot; with no listener configured a unix socket is created at
    :func:`default_socket_path`.
    """
    from repro.service.api import FleetSpec

    if socket_path is None and port is None and http_port is None:
        socket_path = default_socket_path()
    service = AllocationService(jobs=jobs)
    daemon = ServiceDaemon(
        service,
        socket_path=socket_path,
        port=port,
        http_port=http_port,
        max_pending=max_pending,
        workers=workers,
    )
    for text in fleets:
        handle = service.open_fleet(FleetSpec.parse(text))
        if not quiet:
            print(
                f"opened {handle.fleet_id}: {handle.system} "
                f"n={handle.n_modules:,} (shm {handle.shm_name or 'off'})"
            )
    def _announce() -> None:
        # Runs after the listeners open: daemon.port / daemon.http_port
        # hold the OS-picked numbers when 0 (ephemeral) was requested,
        # so the banner is always connectable-to as printed.
        if quiet:
            return
        where = []
        if daemon.socket_path is not None:
            where.append(f"socket {daemon.socket_path}")
        if daemon.port is not None:
            where.append(f"tcp 127.0.0.1:{daemon.port}")
        if daemon.http_port is not None:
            where.append(f"http 127.0.0.1:{daemon.http_port}")
        print(
            f"repro serve v{SCHEMA_VERSION} listening on "
            + ", ".join(where)
            + " (SIGTERM to drain)",
            flush=True,
        )

    try:
        asyncio.run(
            daemon.run_until_drained(install_signals=True, on_ready=_announce)
        )
    finally:
        # Belt and braces: the drain already destroyed the fleets, but a
        # loop crash must never leak shm blocks.
        service.close_all()


class BackgroundServer:
    """A :class:`ServiceDaemon` on a worker thread, for tests/docs/bench.

    Context-manager protocol: entering starts the daemon and waits for
    its listeners, exiting drains it (fleets destroyed, shm released).
    ``server.service`` is the engine — opening fleets directly on it is
    the cheap way to pre-warm before pointing a client at
    ``server.address``.
    """

    def __init__(
        self,
        service: AllocationService | None = None,
        *,
        socket_path: str | None = None,
        port: int | None = None,
        http_port: int | None = None,
        max_pending: int = 64,
        workers: int = 1,
    ):
        self.service = service if service is not None else AllocationService()
        if socket_path is None and port is None and http_port is None:
            socket_path = os.path.join(
                tempfile.mkdtemp(prefix="repro-serve-"), "service.sock"
            )
        self.daemon = ServiceDaemon(
            self.service,
            socket_path=socket_path,
            port=port,
            http_port=http_port,
            max_pending=max_pending,
            workers=workers,
        )
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None

    @property
    def address(self) -> str | tuple[str, int]:
        """What to hand :class:`~repro.service.client.ServiceClient`."""
        if self.daemon.socket_path is not None:
            return self.daemon.socket_path
        return ("127.0.0.1", self.daemon.port)

    def start(self) -> "BackgroundServer":
        def _run():
            async def _main():
                self._loop = asyncio.get_running_loop()
                await self.daemon.start()
                self._ready.set()
                await self.daemon._drained.wait()

            asyncio.run(_main())

        self._thread = threading.Thread(
            target=_run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ServiceError("internal", "background server failed to start")
        return self

    def drain(self, timeout: float = 30.0) -> None:
        """Threadsafe graceful shutdown; joins the server thread."""
        if self._thread is None:
            return
        if self._loop is not None and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self.daemon.request_drain)
            except RuntimeError:  # loop already closing
                pass
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise ServiceError("timeout", "drain did not complete", retryable=True)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()
