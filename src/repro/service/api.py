"""The service wire API: typed, versioned request/response dataclasses.

This module is the single source of truth for everything that crosses
the allocation-service boundary — the newline-delimited-JSON socket,
the optional HTTP adapter, the :class:`~repro.service.client.ServiceClient`,
the in-process :class:`~repro.service.engine.AllocationService`, and the
CLI's ``repro fleet`` / ``repro hetero`` argument parsing all build and
validate requests through the same dataclasses, replacing the ad-hoc
kwarg plumbing that used to live between ``cli.py``, the experiments,
and the schemes.

Wire format
-----------
One JSON object per line.  Requests::

    {"schema_version": 1, "op": "allocate", "payload": {...}}

Replies::

    {"schema_version": 1, "ok": true,  "op": "allocate", "result": {...}}
    {"schema_version": 1, "ok": false, "op": "allocate",
     "error": {"code": "overloaded", "message": "...", "retryable": true}}

Versioning is strict and fail-loud: a request whose ``schema_version``
is not :data:`SCHEMA_VERSION` is rejected with a typed
``unknown-version`` error, and every payload is validated against the
exact field set of its dataclass — unknown fields are rejected with
``unknown-field`` rather than silently dropped, so schema drift between
client and server can never produce quietly-wrong allocations.  The
evolution policy lives in ``docs/API.md``: adding or changing wire
fields bumps :data:`SCHEMA_VERSION`, and servers keep answering the
previous version's requests for one deprecation release.

Errors are data too: :class:`ServiceError` carries a stable ``code``, a
human message, and a ``retryable`` flag (the 429-style contract —
``overloaded``/``draining``/``worker-crashed`` are safe to retry,
``bad-request``/``unknown-*`` are not), and round-trips through
:meth:`ServiceError.to_wire` / :meth:`ServiceError.from_wire`.
"""

from __future__ import annotations

import json
import math
from dataclasses import MISSING, dataclass, fields

from repro.errors import ReproError

__all__ = [
    "SCHEMA_VERSION",
    "ServiceError",
    "FleetSpec",
    "FleetHandle",
    "AllocationRequest",
    "BudgetAllocation",
    "AllocationResult",
    "SweepRequest",
    "SweepRun",
    "SweepResult",
    "JobAdmitRequest",
    "JobDepartRequest",
    "BudgetUpdateRequest",
    "JobStateResult",
    "SchemeInfo",
    "SchemesResult",
    "TelemetryRequest",
    "TelemetrySample",
    "Ack",
    "REQUEST_TYPES",
    "RESULT_TYPES",
    "encode_request",
    "decode_request",
    "encode_reply",
    "decode_reply",
]

#: The wire schema this build speaks.  Strictly enforced on both sides;
#: see the module docstring and docs/API.md for the evolution policy.
SCHEMA_VERSION = 1

#: Error code -> HTTP status for the optional HTTP adapter.
ERROR_HTTP_STATUS = {
    "bad-request": 400,
    "unknown-version": 400,
    "unknown-field": 400,
    "unknown-op": 404,
    "unknown-fleet": 404,
    "unknown-scheme": 400,
    "unknown-app": 400,
    "duplicate": 409,
    "overloaded": 429,
    "draining": 503,
    "worker-crashed": 503,
    "timeout": 504,
    "internal": 500,
}


class ServiceError(ReproError):
    """A typed, wire-serialisable service failure.

    ``code`` is a stable machine-readable identifier (see
    :data:`ERROR_HTTP_STATUS` for the full set), ``retryable`` tells the
    client whether the same request may succeed later (backpressure and
    crashed-worker errors) or never will (validation errors).
    """

    def __init__(self, code: str, message: str, *, retryable: bool = False):
        self.code = str(code)
        self.retryable = bool(retryable)
        super().__init__(message)

    @property
    def message(self) -> str:
        return str(self.args[0]) if self.args else ""

    def to_wire(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "retryable": self.retryable,
        }

    @classmethod
    def from_wire(cls, obj: dict) -> "ServiceError":
        if not isinstance(obj, dict):
            return cls("internal", f"malformed error payload: {obj!r}")
        return cls(
            str(obj.get("code", "internal")),
            str(obj.get("message", "")),
            retryable=bool(obj.get("retryable", False)),
        )


# -- strict (de)serialisation helpers ------------------------------------------

def _check_fields(cls, obj: object) -> dict:
    """Validate a wire payload against ``cls``'s exact field set.

    Unknown keys are rejected (``unknown-field``), keys for fields
    without defaults must be present (``bad-request``).  Returns the
    payload dict for the caller to coerce field-by-field.
    """
    if not isinstance(obj, dict):
        raise ServiceError(
            "bad-request",
            f"{cls.__name__} payload must be an object, got {type(obj).__name__}",
        )
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(obj) - known)
    if unknown:
        raise ServiceError(
            "unknown-field",
            f"{cls.__name__} does not accept field(s) {', '.join(unknown)} "
            f"at schema_version {SCHEMA_VERSION}",
        )
    for f in fields(cls):
        if (
            f.name not in obj
            and f.default is MISSING
            and f.default_factory is MISSING
        ):
            raise ServiceError(
                "bad-request", f"{cls.__name__} is missing required field {f.name!r}"
            )
    return obj


def _wire_value(value):
    """A dataclass field value as plain JSON-encodable data."""
    if isinstance(value, tuple):
        return [_wire_value(v) for v in value]
    if hasattr(value, "to_wire"):
        return value.to_wire()
    return value


def _to_wire(dc) -> dict:
    """Generic dataclass -> wire dict (tuples become lists, nested
    dataclasses recurse through their own ``to_wire``)."""
    return {f.name: _wire_value(getattr(dc, f.name)) for f in fields(dc)}


def _floats(value, name: str) -> tuple[float, ...]:
    try:
        out = tuple(float(v) for v in value)
    except (TypeError, ValueError) as exc:
        raise ServiceError("bad-request", f"{name} must be a list of numbers: {exc}")
    return out


def _strs(value, name: str) -> tuple[str, ...]:
    if isinstance(value, str) or not hasattr(value, "__iter__"):
        raise ServiceError("bad-request", f"{name} must be a list of strings")
    return tuple(str(v) for v in value)


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ServiceError("bad-request", message)


def _validated_scheme(name: str) -> str:
    """Normalise and validate a scheme name against the live registry.

    This is the one scheme-dispatch point of the whole service surface:
    names resolve through :func:`repro.core.schemes.get_scheme` (so
    schemes registered at runtime with ``register_scheme`` are service-
    visible immediately), never through string ``if``/``elif`` chains.
    """
    from repro.core.schemes import get_scheme

    try:
        return get_scheme(str(name)).name
    except ReproError as exc:
        raise ServiceError("unknown-scheme", str(exc))


def _validated_app(name: str) -> str:
    from repro.apps.registry import get_app

    try:
        return get_app(str(name)).name
    except ReproError as exc:
        raise ServiceError("unknown-app", str(exc))


# -- fleets --------------------------------------------------------------------

@dataclass(frozen=True)
class FleetSpec:
    """How to build (and address) a hosted fleet.

    Homogeneous fleets name a known system (``system``/``n_modules``/
    ``seed`` — the same triple a :class:`~repro.exec.cache.RunKey`
    carries, so sweeps over the fleet are cache-compatible with direct
    engine use).  Heterogeneous fleets list ``device_counts`` as
    ``(device_type_name, count)`` pairs, mirroring
    :func:`repro.cluster.build_hetero_system`.
    """

    system: str = "ha8k"
    n_modules: int = 0
    seed: int = 2015
    fleet_id: str = ""
    device_counts: tuple[tuple[str, int], ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "system", str(self.system))
        object.__setattr__(self, "fleet_id", str(self.fleet_id))
        object.__setattr__(self, "seed", int(self.seed))
        counts = tuple(
            (str(name), int(count)) for name, count in self.device_counts
        )
        object.__setattr__(self, "device_counts", counts)
        n = int(self.n_modules)
        if counts:
            _require(
                all(c > 0 for _, c in counts),
                "device_counts entries must be positive",
            )
            total = sum(c for _, c in counts)
            _require(
                n in (0, total),
                f"n_modules={n} disagrees with device_counts total {total}",
            )
            n = total
        _require(n > 0, "a fleet needs n_modules > 0 or device_counts")
        object.__setattr__(self, "n_modules", n)

    @property
    def is_hetero(self) -> bool:
        return bool(self.device_counts)

    @classmethod
    def parse(cls, text: str, *, fleet_id: str = "") -> "FleetSpec":
        """Parse the CLI shorthand ``system:n_modules[:seed]``."""
        parts = str(text).split(":")
        _require(
            2 <= len(parts) <= 3,
            f"fleet spec {text!r} is not system:n_modules[:seed]",
        )
        try:
            n = int(parts[1])
            seed = int(parts[2]) if len(parts) == 3 else 2015
        except ValueError:
            raise ServiceError(
                "bad-request", f"fleet spec {text!r} has non-integer fields"
            )
        return cls(system=parts[0], n_modules=n, seed=seed, fleet_id=fleet_id)

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "FleetSpec":
        obj = _check_fields(cls, obj)
        counts = obj.get("device_counts", ())
        try:
            counts = tuple((str(n), int(c)) for n, c in counts)
        except (TypeError, ValueError):
            raise ServiceError(
                "bad-request", "device_counts must be [name, count] pairs"
            )
        return cls(
            system=obj.get("system", "ha8k"),
            n_modules=int(obj.get("n_modules", 0)),
            seed=int(obj.get("seed", 2015)),
            fleet_id=obj.get("fleet_id", ""),
            device_counts=counts,
        )


@dataclass(frozen=True)
class FleetHandle:
    """A hosted fleet, as the service addresses it.

    ``shm_name`` names the POSIX shared-memory block holding the
    fleet's variation arrays (empty when the service was configured not
    to export) — the same block :func:`repro.exec.shared.attach_fleet`
    maps, so an engine worker on the same machine can attach the hot
    fleet zero-copy.
    """

    fleet_id: str
    system: str
    n_modules: int
    seed: int
    shm_name: str = ""

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "FleetHandle":
        obj = _check_fields(cls, obj)
        return cls(
            fleet_id=str(obj["fleet_id"]),
            system=str(obj["system"]),
            n_modules=int(obj["n_modules"]),
            seed=int(obj["seed"]),
            shm_name=str(obj.get("shm_name", "")),
        )


# -- allocation (the fast path) ------------------------------------------------

@dataclass(frozen=True)
class AllocationRequest:
    """Plan one scheme's α allocations for many budgets on a hosted fleet.

    The service answers from its cached power-model table — no
    simulation, no fleet-sized temporaries — so this is the hot query
    of the load generator.  Build requests with :meth:`build`, which is
    the shared normalisation/validation path for the CLI, the wire, and
    in-process callers.
    """

    fleet_id: str
    app: str = "bt"
    scheme: str = "vafsor"
    budgets_w: tuple[float, ...] = ()
    test_module: int = 0
    noisy: bool = True
    fs_guardband_frac: float = 0.02

    def __post_init__(self):
        object.__setattr__(self, "fleet_id", str(self.fleet_id))
        object.__setattr__(self, "budgets_w", _floats(self.budgets_w, "budgets_w"))
        _require(bool(self.budgets_w), "budgets_w must not be empty")
        _require(self.fs_guardband_frac >= 0.0, "fs_guardband_frac must be >= 0")
        object.__setattr__(self, "app", _validated_app(self.app))
        object.__setattr__(self, "scheme", _validated_scheme(self.scheme))

    @classmethod
    def build(
        cls,
        *,
        fleet_id: str,
        app: str = "bt",
        scheme: str = "vafsor",
        budgets_w,
        test_module: int = 0,
        noisy: bool = True,
        fs_guardband_frac: float = 0.02,
    ) -> "AllocationRequest":
        """The one request builder (CLI flags and wire payloads both
        land here): coerces budgets, validates app and scheme names
        against their registries, raises :class:`ServiceError` on any
        mismatch."""
        return cls(
            fleet_id=fleet_id,
            app=app,
            scheme=scheme,
            budgets_w=tuple(budgets_w),
            test_module=int(test_module),
            noisy=bool(noisy),
            fs_guardband_frac=float(fs_guardband_frac),
        )

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "AllocationRequest":
        obj = _check_fields(cls, obj)
        return cls.build(
            fleet_id=obj["fleet_id"],
            app=obj.get("app", "bt"),
            scheme=obj.get("scheme", "vafsor"),
            budgets_w=_floats(obj.get("budgets_w", ()), "budgets_w"),
            test_module=obj.get("test_module", 0),
            noisy=obj.get("noisy", True),
            fs_guardband_frac=obj.get("fs_guardband_frac", 0.02),
        )


@dataclass(frozen=True)
class BudgetAllocation:
    """One budget's solved α point (scalars only — per-module arrays
    stay server-side; ``total_allocated_w`` is the Eq (5) aggregate
    ``α·span + floor``)."""

    budget_w: float
    feasible: bool
    alpha: float = 0.0
    raw_alpha: float = 0.0
    constrained: bool = False
    freq_ghz: float = 0.0
    total_allocated_w: float = 0.0
    floor_w: float = 0.0

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "BudgetAllocation":
        obj = _check_fields(cls, obj)
        return cls(
            budget_w=float(obj["budget_w"]),
            feasible=bool(obj["feasible"]),
            alpha=float(obj.get("alpha", 0.0)),
            raw_alpha=float(obj.get("raw_alpha", 0.0)),
            constrained=bool(obj.get("constrained", False)),
            freq_ghz=float(obj.get("freq_ghz", 0.0)),
            total_allocated_w=float(obj.get("total_allocated_w", 0.0)),
            floor_w=float(obj.get("floor_w", 0.0)),
        )


@dataclass(frozen=True)
class AllocationResult:
    """The service's answer to an :class:`AllocationRequest` — one
    :class:`BudgetAllocation` per requested budget, in request order."""

    fleet_id: str
    app: str
    scheme: str
    n_modules: int
    allocations: tuple[BudgetAllocation, ...]

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "AllocationResult":
        obj = _check_fields(cls, obj)
        return cls(
            fleet_id=str(obj["fleet_id"]),
            app=str(obj["app"]),
            scheme=str(obj["scheme"]),
            n_modules=int(obj["n_modules"]),
            allocations=tuple(
                BudgetAllocation.from_wire(a) for a in obj["allocations"]
            ),
        )


# -- sweeps (full engine-backed runs) -------------------------------------------

@dataclass(frozen=True)
class SweepRequest:
    """Run the apps × schemes × budgets cross product as cached engine
    runs (full simulation, digest-addressed).  Results are bit-identical
    to :meth:`repro.exec.ExperimentEngine.submit_batched_sweep` over the
    same :class:`~repro.exec.cache.RunKey` set — the service *is* that
    call."""

    fleet_id: str
    apps: tuple[str, ...] = ("bt",)
    schemes: tuple[str, ...] = ("vafsor",)
    budgets_w: tuple[float, ...] = ()
    n_iters: int | None = None
    noisy: bool = True
    fs_guardband_frac: float = 0.02
    test_module: int = 0

    def __post_init__(self):
        object.__setattr__(self, "fleet_id", str(self.fleet_id))
        object.__setattr__(self, "budgets_w", _floats(self.budgets_w, "budgets_w"))
        _require(bool(self.budgets_w), "budgets_w must not be empty")
        apps = tuple(_validated_app(a) for a in _strs(self.apps, "apps"))
        schemes = tuple(
            _validated_scheme(s) for s in _strs(self.schemes, "schemes")
        )
        _require(bool(apps), "apps must not be empty")
        _require(bool(schemes), "schemes must not be empty")
        object.__setattr__(self, "apps", apps)
        object.__setattr__(self, "schemes", schemes)
        if self.n_iters is not None:
            object.__setattr__(self, "n_iters", int(self.n_iters))

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "SweepRequest":
        obj = _check_fields(cls, obj)
        return cls(
            fleet_id=obj["fleet_id"],
            apps=tuple(_strs(obj.get("apps", ["bt"]), "apps")),
            schemes=tuple(_strs(obj.get("schemes", ["vafsor"]), "schemes")),
            budgets_w=_floats(obj.get("budgets_w", ()), "budgets_w"),
            n_iters=obj.get("n_iters"),
            noisy=bool(obj.get("noisy", True)),
            fs_guardband_frac=float(obj.get("fs_guardband_frac", 0.02)),
            test_module=int(obj.get("test_module", 0)),
        )


@dataclass(frozen=True)
class SweepRun:
    """One run of a sweep: its cache digest plus the headline scalars.

    ``digest`` is the :meth:`RunKey.digest` content address — equal
    digests mean equal requests, and the digest-proof test in
    ``tests/service`` pins the payloads bit-identical to direct engine
    sweeps."""

    app: str
    scheme: str
    budget_w: float
    digest: str
    feasible: bool
    makespan_s: float = 0.0
    total_power_w: float = 0.0
    within_budget: bool = False
    vf: float = 0.0
    vt: float = 0.0

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "SweepRun":
        obj = _check_fields(cls, obj)
        return cls(
            app=str(obj["app"]),
            scheme=str(obj["scheme"]),
            budget_w=float(obj["budget_w"]),
            digest=str(obj["digest"]),
            feasible=bool(obj["feasible"]),
            makespan_s=float(obj.get("makespan_s", 0.0)),
            total_power_w=float(obj.get("total_power_w", 0.0)),
            within_budget=bool(obj.get("within_budget", False)),
            vf=float(obj.get("vf", 0.0)),
            vt=float(obj.get("vt", 0.0)),
        )


@dataclass(frozen=True)
class SweepResult:
    fleet_id: str
    runs: tuple[SweepRun, ...]

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "SweepResult":
        obj = _check_fields(cls, obj)
        return cls(
            fleet_id=str(obj["fleet_id"]),
            runs=tuple(SweepRun.from_wire(r) for r in obj["runs"]),
        )


# -- job membership ------------------------------------------------------------

@dataclass(frozen=True)
class JobAdmitRequest:
    """Admit a job of ``n_modules`` onto a hosted fleet.  The service
    re-solves the fleet's global α over the new active membership."""

    fleet_id: str
    job_id: str
    n_modules: int

    def __post_init__(self):
        object.__setattr__(self, "fleet_id", str(self.fleet_id))
        object.__setattr__(self, "job_id", str(self.job_id))
        object.__setattr__(self, "n_modules", int(self.n_modules))
        _require(self.n_modules > 0, "a job needs n_modules > 0")
        _require(bool(self.job_id), "a job needs a job_id")

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "JobAdmitRequest":
        obj = _check_fields(cls, obj)
        return cls(
            fleet_id=obj["fleet_id"],
            job_id=obj["job_id"],
            n_modules=obj["n_modules"],
        )


@dataclass(frozen=True)
class JobDepartRequest:
    fleet_id: str
    job_id: str

    def __post_init__(self):
        object.__setattr__(self, "fleet_id", str(self.fleet_id))
        object.__setattr__(self, "job_id", str(self.job_id))

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "JobDepartRequest":
        obj = _check_fields(cls, obj)
        return cls(fleet_id=obj["fleet_id"], job_id=obj["job_id"])


@dataclass(frozen=True)
class BudgetUpdateRequest:
    """Change a hosted fleet's global power budget (W); the active jobs'
    shared α is re-solved against the new bound."""

    fleet_id: str
    budget_w: float
    app: str = "bt"
    scheme: str = "vafsor"

    def __post_init__(self):
        object.__setattr__(self, "fleet_id", str(self.fleet_id))
        object.__setattr__(self, "budget_w", float(self.budget_w))
        _require(
            math.isfinite(self.budget_w) and self.budget_w > 0.0,
            "budget_w must be finite and positive",
        )
        object.__setattr__(self, "app", _validated_app(self.app))
        object.__setattr__(self, "scheme", _validated_scheme(self.scheme))

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "BudgetUpdateRequest":
        obj = _check_fields(cls, obj)
        return cls(
            fleet_id=obj["fleet_id"],
            budget_w=obj["budget_w"],
            app=obj.get("app", "bt"),
            scheme=obj.get("scheme", "vafsor"),
        )


@dataclass(frozen=True)
class JobStateResult:
    """The fleet's membership state after an admit/depart/budget change:
    the freshly re-solved shared α over the active modules."""

    fleet_id: str
    jobs: tuple[str, ...]
    active_modules: int
    budget_w: float
    feasible: bool
    alpha: float = 0.0
    freq_ghz: float = 0.0
    floor_w: float = 0.0

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "JobStateResult":
        obj = _check_fields(cls, obj)
        return cls(
            fleet_id=str(obj["fleet_id"]),
            jobs=tuple(str(j) for j in obj["jobs"]),
            active_modules=int(obj["active_modules"]),
            budget_w=float(obj["budget_w"]),
            feasible=bool(obj["feasible"]),
            alpha=float(obj.get("alpha", 0.0)),
            freq_ghz=float(obj.get("freq_ghz", 0.0)),
            floor_w=float(obj.get("floor_w", 0.0)),
        )


# -- schemes, telemetry, acks ----------------------------------------------------

@dataclass(frozen=True)
class SchemeInfo:
    """One registry entry, as ``repro schemes`` renders it."""

    name: str
    label: str
    pmt_kind: str
    actuation: str
    variation_aware: bool
    app_dependent: bool

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "SchemeInfo":
        obj = _check_fields(cls, obj)
        return cls(
            name=str(obj["name"]),
            label=str(obj["label"]),
            pmt_kind=str(obj["pmt_kind"]),
            actuation=str(obj["actuation"]),
            variation_aware=bool(obj["variation_aware"]),
            app_dependent=bool(obj["app_dependent"]),
        )


@dataclass(frozen=True)
class SchemesResult:
    schemes: tuple[SchemeInfo, ...]

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "SchemesResult":
        obj = _check_fields(cls, obj)
        return cls(
            schemes=tuple(SchemeInfo.from_wire(s) for s in obj["schemes"])
        )


@dataclass(frozen=True)
class TelemetryRequest:
    """Stream ``samples`` service-telemetry snapshots, ``interval_s``
    apart, as consecutive reply lines on the same connection."""

    samples: int = 1
    interval_s: float = 0.0

    def __post_init__(self):
        object.__setattr__(self, "samples", int(self.samples))
        object.__setattr__(self, "interval_s", float(self.interval_s))
        _require(1 <= self.samples <= 10_000, "samples must be in [1, 10000]")
        _require(self.interval_s >= 0.0, "interval_s must be >= 0")

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "TelemetryRequest":
        obj = _check_fields(cls, obj)
        return cls(
            samples=obj.get("samples", 1),
            interval_s=obj.get("interval_s", 0.0),
        )


@dataclass(frozen=True)
class TelemetrySample:
    """One point-in-time service snapshot: daemon counters plus (when
    the server runs with telemetry enabled) the library's own counters
    via :func:`repro.telemetry.snapshot`."""

    uptime_s: float
    inflight: int
    fleets: int
    jobs: int
    served: tuple[tuple[str, int], ...] = ()
    rejected: tuple[tuple[str, int], ...] = ()
    counters: tuple[tuple[str, float], ...] = ()

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "TelemetrySample":
        obj = _check_fields(cls, obj)

        def pairs(name, cast):
            try:
                return tuple((str(k), cast(v)) for k, v in obj.get(name, ()))
            except (TypeError, ValueError):
                raise ServiceError("bad-request", f"{name} must be [key, value] pairs")

        return cls(
            uptime_s=float(obj["uptime_s"]),
            inflight=int(obj["inflight"]),
            fleets=int(obj["fleets"]),
            jobs=int(obj["jobs"]),
            served=pairs("served", int),
            rejected=pairs("rejected", int),
            counters=pairs("counters", float),
        )


@dataclass(frozen=True)
class Ack:
    """Generic success reply for ops with nothing to report."""

    message: str = "ok"

    def to_wire(self) -> dict:
        return _to_wire(self)

    @classmethod
    def from_wire(cls, obj: dict) -> "Ack":
        obj = _check_fields(cls, obj)
        return cls(message=str(obj.get("message", "ok")))


# -- the op table and envelope ----------------------------------------------------

#: op name -> request payload type.  The daemon and the client share this
#: table; an op absent here is rejected with ``unknown-op``.
REQUEST_TYPES: dict[str, type] = {
    "ping": Ack,
    "open-fleet": FleetSpec,
    "close-fleet": FleetHandle,
    "allocate": AllocationRequest,
    "sweep": SweepRequest,
    "admit": JobAdmitRequest,
    "depart": JobDepartRequest,
    "set-budget": BudgetUpdateRequest,
    "schemes": Ack,
    "telemetry": TelemetryRequest,
    "drain": Ack,
}

#: op name -> result payload type (for typed client-side decoding).
RESULT_TYPES: dict[str, type] = {
    "ping": Ack,
    "open-fleet": FleetHandle,
    "close-fleet": Ack,
    "allocate": AllocationResult,
    "sweep": SweepResult,
    "admit": JobStateResult,
    "depart": JobStateResult,
    "set-budget": JobStateResult,
    "schemes": SchemesResult,
    "telemetry": TelemetrySample,
    "drain": Ack,
}


def encode_request(op: str, payload) -> bytes:
    """One request as a newline-terminated JSON line."""
    return (
        json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "op": op,
                "payload": payload.to_wire(),
            },
            separators=(",", ":"),
        )
        + "\n"
    ).encode()


def decode_request(line: bytes | str) -> tuple[str, object]:
    """Parse and strictly validate one request line -> (op, typed payload).

    Raises :class:`ServiceError` (never a bare ``json`` or ``KeyError``
    exception) so the daemon can always answer with a typed reply.
    """
    try:
        obj = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServiceError("bad-request", f"request is not valid JSON: {exc}")
    if not isinstance(obj, dict):
        raise ServiceError("bad-request", "request must be a JSON object")
    extra = sorted(set(obj) - {"schema_version", "op", "payload"})
    if extra:
        raise ServiceError(
            "unknown-field", f"unexpected envelope field(s): {', '.join(extra)}"
        )
    version = obj.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ServiceError(
            "unknown-version",
            f"schema_version {version!r} is not supported; this server "
            f"speaks version {SCHEMA_VERSION} (see docs/API.md for the "
            "deprecation policy)",
        )
    op = obj.get("op")
    req_cls = REQUEST_TYPES.get(op)
    if req_cls is None:
        known = ", ".join(sorted(REQUEST_TYPES))
        raise ServiceError("unknown-op", f"unknown op {op!r}; known ops: {known}")
    return op, req_cls.from_wire(obj.get("payload", {}))


def encode_reply(op: str, result=None, error: ServiceError | None = None) -> bytes:
    """One reply as a newline-terminated JSON line."""
    body: dict = {"schema_version": SCHEMA_VERSION, "op": op, "ok": error is None}
    if error is None:
        body["result"] = result.to_wire() if result is not None else None
    else:
        body["error"] = error.to_wire()
    return (json.dumps(body, separators=(",", ":")) + "\n").encode()


def decode_reply(line: bytes | str):
    """Parse one reply line into its typed result.

    Raises the embedded :class:`ServiceError` for ``ok: false`` replies,
    so client code handles wire errors and local errors identically.
    """
    try:
        obj = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServiceError("internal", f"reply is not valid JSON: {exc}")
    if not isinstance(obj, dict):
        raise ServiceError("internal", "reply must be a JSON object")
    version = obj.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ServiceError(
            "unknown-version",
            f"reply schema_version {version!r} does not match {SCHEMA_VERSION}",
        )
    if not obj.get("ok", False):
        raise ServiceError.from_wire(obj.get("error", {}))
    result_cls = RESULT_TYPES.get(obj.get("op"))
    if result_cls is None:
        raise ServiceError("internal", f"reply for unknown op {obj.get('op')!r}")
    return result_cls.from_wire(obj.get("result") or {})
