"""Closed-loop load generator for the allocation service.

:func:`run_load` drives ``concurrency`` worker threads, each with its
own :class:`~repro.service.client.ServiceClient` connection, issuing
``allocate`` requests as fast as replies come back for ``duration_s``
seconds, and reports throughput plus a latency distribution.  Typed
retryable rejects (``overloaded``/``draining``) are counted separately
from hard errors — under deliberate overload the healthy signature is
*rejects without errors and p99 still bounded*, which is exactly what
the graceful-degradation benchmark records.

``python -m repro.service.loadgen`` is the self-contained CI smoke: it
starts a :class:`~repro.service.daemon.BackgroundServer`, opens a fleet,
runs the load, drains, and exits non-zero if the qps floor, the p99
bound, or the ``/dev/shm`` leak check fails.  Point it at an external
daemon with ``--address`` to smoke a real ``repro serve`` process.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from dataclasses import dataclass
from time import perf_counter

from repro.service.api import AllocationRequest, FleetSpec, ServiceError
from repro.service.client import ServiceClient
from repro.util.topology import effective_cpu_count

__all__ = ["LoadReport", "run_load", "main"]


@dataclass(frozen=True)
class LoadReport:
    """One load run's outcome."""

    duration_s: float
    concurrency: int
    n_ok: int
    n_rejected: int
    n_error: int
    p50_ms: float
    p99_ms: float
    max_ms: float

    @property
    def qps(self) -> float:
        """Successful allocation queries per second."""
        return self.n_ok / self.duration_s if self.duration_s > 0 else 0.0

    def summary(self) -> str:
        return (
            f"{self.qps:,.0f} qps over {self.duration_s:.1f}s "
            f"x{self.concurrency} ({self.n_ok:,} ok, "
            f"{self.n_rejected:,} rejected, {self.n_error:,} errors; "
            f"p50 {self.p50_ms:.2f} ms, p99 {self.p99_ms:.2f} ms, "
            f"max {self.max_ms:.2f} ms)"
        )


def _percentile(sorted_ms: list[float], q: float) -> float:
    if not sorted_ms:
        return 0.0
    idx = min(len(sorted_ms) - 1, int(q * (len(sorted_ms) - 1) + 0.5))
    return sorted_ms[idx]


def _default_concurrency() -> int:
    """Affinity-derived worker-thread default: two closed loops per
    effective CPU, capped at the historical default of 4 so small
    ``taskset``/cgroup-restricted environments are not oversubscribed."""
    return max(1, min(4, 2 * effective_cpu_count()))


def run_load(
    address,
    *,
    fleet_id: str,
    duration_s: float = 5.0,
    concurrency: int | None = None,
    app: str = "bt",
    scheme: str = "vafsor",
    budgets_w=(800_000.0,),
    timeout: float = 30.0,
) -> LoadReport:
    """Closed-loop ``allocate`` load against a running service.

    ``concurrency=None`` (the default) resolves via
    :func:`_default_concurrency`.
    """
    if concurrency is None:
        concurrency = _default_concurrency()
    request = AllocationRequest.build(
        fleet_id=fleet_id, app=app, scheme=scheme, budgets_w=budgets_w
    )
    stop = threading.Event()
    lock = threading.Lock()
    ok: list[float] = []  # per-request latencies, ms
    rejected = [0]
    errors = [0]

    def _worker():
        local: list[float] = []
        local_rejected = 0
        local_errors = 0
        try:
            with ServiceClient(address, timeout=timeout) as client:
                while not stop.is_set():
                    t0 = perf_counter()
                    try:
                        client.allocate(request)
                        local.append((perf_counter() - t0) * 1e3)
                    except ServiceError as exc:
                        if exc.retryable:
                            local_rejected += 1
                        else:
                            local_errors += 1
                            break
        except ServiceError:
            local_errors += 1
        with lock:
            ok.extend(local)
            rejected[0] += local_rejected
            errors[0] += local_errors

    threads = [
        threading.Thread(target=_worker, name=f"loadgen-{i}", daemon=True)
        for i in range(max(1, int(concurrency)))
    ]
    t0 = perf_counter()
    for t in threads:
        t.start()
    stop.wait(duration_s)
    stop.set()
    for t in threads:
        t.join(timeout=timeout)
    wall = perf_counter() - t0

    lat = sorted(ok)
    return LoadReport(
        duration_s=wall,
        concurrency=len(threads),
        n_ok=len(ok),
        n_rejected=rejected[0],
        n_error=errors[0],
        p50_ms=_percentile(lat, 0.50),
        p99_ms=_percentile(lat, 0.99),
        max_ms=lat[-1] if lat else 0.0,
    )


def _shm_names() -> set[str]:
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # non-Linux: no check possible
        return set()


def main(argv: list[str] | None = None) -> int:
    """The CI smoke (see module docstring).  Returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Load-generate against the allocation service.",
    )
    parser.add_argument(
        "--address",
        default=None,
        help="unix-socket path of a running daemon (default: self-hosted)",
    )
    parser.add_argument(
        "--fleet",
        default="ha8k:10000",
        help="fleet spec system:n_modules[:seed] (default %(default)s)",
    )
    parser.add_argument(
        "--fleet-id",
        default=None,
        help="use an already-open fleet id instead of opening --fleet",
    )
    parser.add_argument("--duration", type=float, default=5.0, help="seconds")
    parser.add_argument(
        "--concurrency",
        type=int,
        default=None,
        help="worker threads (default: affinity-derived, at most 4)",
    )
    parser.add_argument("--app", default="bt")
    parser.add_argument("--scheme", default="vafsor")
    parser.add_argument(
        "--budget-w",
        type=float,
        default=None,
        help="allocation budget in W (default: 80 W/module)",
    )
    parser.add_argument(
        "--qps-floor", type=float, default=0.0, help="fail below this qps"
    )
    parser.add_argument(
        "--p99-ms", type=float, default=0.0, help="fail above this p99 latency"
    )
    args = parser.parse_args(argv)

    spec = FleetSpec.parse(args.fleet)
    budget = (
        args.budget_w if args.budget_w is not None else 80.0 * spec.n_modules
    )

    shm_before = _shm_names()
    if args.address is None:
        # Self-hosted: bring up a background daemon, run, drain, leak-check.
        from repro.service.daemon import BackgroundServer

        with BackgroundServer() as server:
            handle = server.service.open_fleet(spec)
            report = run_load(
                server.address,
                fleet_id=handle.fleet_id,
                duration_s=args.duration,
                concurrency=args.concurrency,
                app=args.app,
                scheme=args.scheme,
                budgets_w=(budget,),
            )
    else:
        with ServiceClient(args.address) as client:
            fleet_id = args.fleet_id
            if fleet_id is None:
                fleet_id = client.open_fleet(spec).fleet_id
            report = run_load(
                args.address,
                fleet_id=fleet_id,
                duration_s=args.duration,
                concurrency=args.concurrency,
                app=args.app,
                scheme=args.scheme,
                budgets_w=(budget,),
            )

    print(report.summary())
    failures = []
    if args.qps_floor and report.qps < args.qps_floor:
        failures.append(f"qps {report.qps:,.0f} < floor {args.qps_floor:,.0f}")
    if args.p99_ms and report.p99_ms > args.p99_ms:
        failures.append(f"p99 {report.p99_ms:.2f} ms > bound {args.p99_ms:.2f} ms")
    if report.n_error:
        failures.append(f"{report.n_error} hard errors")
    if args.address is None:
        leaked = _shm_names() - shm_before
        if leaked:
            failures.append(f"leaked shm blocks: {sorted(leaked)}")
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
