"""The typed synchronous client for the allocation service.

:class:`ServiceClient` speaks the NDJSON protocol of
:mod:`repro.service.api` over a unix socket (string address) or TCP
(``(host, port)`` tuple), one persistent connection per client.  Every
method sends one typed request and returns the typed result; every
failure — wire errors the server replied with, timeouts, a dropped
connection — surfaces as a :class:`~repro.service.api.ServiceError`
whose ``retryable`` flag tells the caller whether backing off and
retrying can help (``overloaded``/``draining``/``worker-crashed``/
``timeout``/``connection-lost``) or the request itself is wrong.

The client is thread-safe (one request/reply exchange at a time under a
lock) and a context manager::

    with ServiceClient(address) as client:
        fleet = client.open_fleet(FleetSpec(system="ha8k", n_modules=10_000))
        result = client.allocate(
            AllocationRequest.build(
                fleet_id=fleet.fleet_id, scheme="vafsor", budgets_w=[800e3]
            )
        )
"""

from __future__ import annotations

import socket
import threading

from repro.service.api import (
    Ack,
    AllocationRequest,
    AllocationResult,
    BudgetUpdateRequest,
    FleetHandle,
    FleetSpec,
    JobAdmitRequest,
    JobDepartRequest,
    JobStateResult,
    SchemesResult,
    ServiceError,
    SweepRequest,
    SweepResult,
    TelemetryRequest,
    TelemetrySample,
    decode_reply,
    encode_request,
)

__all__ = ["ServiceClient"]


class ServiceClient:
    """One connection to a running allocation service (see module doc).

    Parameters
    ----------
    address:
        A unix-socket path (``str``) or a ``(host, port)`` tuple.
    timeout:
        Socket timeout per reply, seconds.  Expired waits raise a
        retryable ``timeout`` :class:`ServiceError`; the connection is
        then considered poisoned and reconnects on the next call.
    """

    def __init__(self, address: str | tuple[str, int], timeout: float = 30.0):
        self.address = address
        self.timeout = float(timeout)
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._file = None

    # -- connection management ---------------------------------------------------

    def _connect(self) -> None:
        if isinstance(self.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(
                self.address
                if isinstance(self.address, str)
                else tuple(self.address)
            )
        except OSError as exc:
            sock.close()
            raise ServiceError(
                "connection-lost",
                f"cannot connect to {self.address!r}: {exc}",
                retryable=True,
            )
        self._sock = sock
        self._file = sock.makefile("rb")

    def _reset(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._file = None

    def close(self) -> None:
        """Drop the connection (the server keeps running)."""
        with self._lock:
            self._reset()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- the request/reply exchange -------------------------------------------------

    def _call(self, op: str, payload):
        with self._lock:
            if self._sock is None:
                self._connect()
            try:
                self._sock.sendall(encode_request(op, payload))
                line = self._file.readline()
            except socket.timeout:
                self._reset()
                raise ServiceError(
                    "timeout",
                    f"no reply to {op!r} within {self.timeout}s",
                    retryable=True,
                )
            except OSError as exc:
                self._reset()
                raise ServiceError(
                    "connection-lost",
                    f"connection dropped during {op!r}: {exc}",
                    retryable=True,
                )
            if not line:
                self._reset()
                raise ServiceError(
                    "connection-lost",
                    f"server closed the connection during {op!r} "
                    "(draining or crashed)",
                    retryable=True,
                )
            return decode_reply(line)

    def _read_stream_line(self, op: str):
        try:
            line = self._file.readline()
        except socket.timeout:
            self._reset()
            raise ServiceError(
                "timeout",
                f"no {op} stream line within {self.timeout}s",
                retryable=True,
            )
        if not line:
            self._reset()
            raise ServiceError(
                "connection-lost", f"{op} stream ended early", retryable=True
            )
        return decode_reply(line)

    # -- typed operations --------------------------------------------------------

    def ping(self) -> Ack:
        return self._call("ping", Ack())

    def open_fleet(self, spec: FleetSpec) -> FleetHandle:
        """Build and host a fleet; returns its service handle."""
        return self._call("open-fleet", spec)

    def close_fleet(self, fleet: FleetHandle | str) -> Ack:
        if isinstance(fleet, str):
            fleet = FleetHandle(
                fleet_id=fleet, system="", n_modules=1, seed=0
            )
        return self._call("close-fleet", fleet)

    def allocate(self, request: AllocationRequest) -> AllocationResult:
        """The fast path: solved α points for every budget."""
        return self._call("allocate", request)

    def sweep(self, request: SweepRequest) -> SweepResult:
        """Full engine-backed simulation sweep (digest-addressed)."""
        return self._call("sweep", request)

    def admit(self, request: JobAdmitRequest) -> JobStateResult:
        return self._call("admit", request)

    def depart(self, request: JobDepartRequest) -> JobStateResult:
        return self._call("depart", request)

    def set_budget(self, request: BudgetUpdateRequest) -> JobStateResult:
        return self._call("set-budget", request)

    def schemes(self) -> SchemesResult:
        """The server's live scheme registry."""
        return self._call("schemes", Ack())

    def telemetry(
        self, samples: int = 1, interval_s: float = 0.0
    ) -> list[TelemetrySample]:
        """Stream ``samples`` telemetry snapshots (blocking)."""
        req = TelemetryRequest(samples=samples, interval_s=interval_s)
        with self._lock:
            if self._sock is None:
                self._connect()
            try:
                self._sock.sendall(encode_request("telemetry", req))
            except OSError as exc:
                self._reset()
                raise ServiceError(
                    "connection-lost",
                    f"connection dropped sending telemetry: {exc}",
                    retryable=True,
                )
            return [self._read_stream_line("telemetry") for _ in range(samples)]

    def drain(self) -> Ack:
        """Ask the server to drain and shut down gracefully."""
        return self._call("drain", Ack())
