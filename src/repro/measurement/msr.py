"""Emulated machine-specific registers (MSRs) for the RAPL interface.

The paper programs RAPL "with the help of programmable Machine Specific
Registers (MSRs) ... by using the libMSR library".  We emulate the
registers RAPL needs, faithfully enough that higher layers must deal with
the same realities as libMSR users:

* energy is reported as a monotonically increasing 32-bit counter in
  units of 2^-16 J (15.3 µJ) that wraps around;
* power limits are encoded in units of 2^-3 W = 0.125 W;
* the time window is encoded in units of 2^-10 s.

Only the registers used by this project are implemented; reads of other
addresses raise :class:`~repro.errors.MSRAccessError`, as msr-safe would
reject non-whitelisted accesses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MSRAccessError

__all__ = [
    "MSRFile",
    "MSR_RAPL_POWER_UNIT",
    "MSR_PKG_POWER_LIMIT",
    "MSR_PKG_ENERGY_STATUS",
    "MSR_DRAM_ENERGY_STATUS",
    "MSR_PKG_POWER_INFO",
    "ENERGY_UNIT_J",
    "POWER_UNIT_W",
    "TIME_UNIT_S",
]

# Architectural MSR addresses (Intel SDM vol. 3B, table 35).
MSR_RAPL_POWER_UNIT = 0x606
MSR_PKG_POWER_LIMIT = 0x610
MSR_PKG_ENERGY_STATUS = 0x611
MSR_PKG_POWER_INFO = 0x614
MSR_DRAM_ENERGY_STATUS = 0x619

#: Energy status unit: 2^-16 J.
ENERGY_UNIT_J = 2.0**-16
#: Power limit unit: 2^-3 W.
POWER_UNIT_W = 2.0**-3
#: Time window unit: 2^-10 s.
TIME_UNIT_S = 2.0**-10

_COUNTER_MASK = (1 << 32) - 1

_KNOWN = {
    MSR_RAPL_POWER_UNIT,
    MSR_PKG_POWER_LIMIT,
    MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_INFO,
    MSR_DRAM_ENERGY_STATUS,
}

_WRITABLE = {MSR_PKG_POWER_LIMIT}

#: Default MSR_RAPL_POWER_UNIT content: energy unit 2^-16 (bits 12:8 = 16),
#: power unit 2^-3 (bits 3:0 = 3), time unit 2^-10 (bits 19:16 = 10).
_POWER_UNIT_ENCODING = (10 << 16) | (16 << 8) | 3


class MSRFile:
    """Per-socket MSR state for a set of modules.

    This is the lowest level of the emulated power stack: it stores raw
    register bits.  The :class:`~repro.measurement.rapl.RaplMeter`
    accumulates true energy into the wrapping counters and decodes limits.
    """

    def __init__(self, n_modules: int, tdp_w: float = 130.0):
        if n_modules <= 0:
            raise MSRAccessError("MSR file needs at least one module")
        self.n_modules = int(n_modules)
        # Raw 64-bit register images, one row per module.
        self._regs: dict[int, np.ndarray] = {
            MSR_RAPL_POWER_UNIT: np.full(n_modules, _POWER_UNIT_ENCODING, dtype=np.uint64),
            MSR_PKG_POWER_LIMIT: np.zeros(n_modules, dtype=np.uint64),
            MSR_PKG_ENERGY_STATUS: np.zeros(n_modules, dtype=np.uint64),
            MSR_PKG_POWER_INFO: np.full(
                n_modules, int(round(tdp_w / POWER_UNIT_W)), dtype=np.uint64
            ),
            MSR_DRAM_ENERGY_STATUS: np.zeros(n_modules, dtype=np.uint64),
        }
        # Fractional joules not yet visible in the quantised counter.
        self._energy_residual = {
            MSR_PKG_ENERGY_STATUS: np.zeros(n_modules),
            MSR_DRAM_ENERGY_STATUS: np.zeros(n_modules),
        }

    # -- raw access (libMSR-style) -------------------------------------------

    def _check(self, address: int, module: int | None = None) -> None:
        if address not in _KNOWN:
            raise MSRAccessError(f"MSR {address:#x} is not whitelisted")
        if module is not None and not (0 <= module < self.n_modules):
            raise MSRAccessError(
                f"module {module} out of range [0, {self.n_modules})"
            )

    def read(self, module: int, address: int) -> int:
        """Read one register of one module (raw 64-bit value)."""
        self._check(address, module)
        return int(self._regs[address][module])

    def read_all(self, address: int) -> np.ndarray:
        """Read one register across all modules."""
        self._check(address)
        return self._regs[address].copy()

    def write(self, module: int, address: int, value: int) -> None:
        """Write one register of one module; only writable MSRs allowed."""
        self._check(address, module)
        if address not in _WRITABLE:
            raise MSRAccessError(f"MSR {address:#x} is read-only")
        if not (0 <= value < (1 << 64)):
            raise MSRAccessError("MSR values are unsigned 64-bit")
        self._regs[address][module] = np.uint64(value)

    def write_all(self, address: int, values: np.ndarray) -> None:
        """Write one register across all modules."""
        self._check(address)
        if address not in _WRITABLE:
            raise MSRAccessError(f"MSR {address:#x} is read-only")
        arr = np.asarray(values)
        if arr.shape != (self.n_modules,):
            raise MSRAccessError(
                f"expected {self.n_modules} values, got shape {arr.shape}"
            )
        self._regs[address][:] = arr.astype(np.uint64)

    # -- energy accumulation (driven by the RAPL meter) ------------------------

    def accumulate_energy(self, address: int, joules: np.ndarray) -> None:
        """Add true energy (J) to a wrapping 32-bit energy counter."""
        if address not in self._energy_residual:
            raise MSRAccessError(f"MSR {address:#x} is not an energy counter")
        j = np.asarray(joules, dtype=float)
        if j.shape != (self.n_modules,):
            raise MSRAccessError(
                f"expected {self.n_modules} energy values, got shape {j.shape}"
            )
        if np.any(j < 0):
            raise MSRAccessError("energy must be non-negative")
        total = self._energy_residual[address] + j / ENERGY_UNIT_J
        ticks = np.floor(total)
        self._energy_residual[address] = total - ticks
        counter = (self._regs[address].astype(np.int64) + ticks.astype(np.int64)) & _COUNTER_MASK
        self._regs[address][:] = counter.astype(np.uint64)

    # -- decoded helpers -------------------------------------------------------

    def energy_joules(self, address: int) -> np.ndarray:
        """Decode an energy counter into joules (modulo wraparound)."""
        if address not in self._energy_residual:
            raise MSRAccessError(f"MSR {address:#x} is not an energy counter")
        return self._regs[address].astype(float) * ENERGY_UNIT_J

    @staticmethod
    def energy_delta_joules(before: np.ndarray, after: np.ndarray) -> np.ndarray:
        """Joules elapsed between two counter snapshots, wrap-corrected."""
        b = np.asarray(before, dtype=np.int64)
        a = np.asarray(after, dtype=np.int64)
        delta = (a - b) & _COUNTER_MASK
        return delta.astype(float) * ENERGY_UNIT_J

    def encode_power_limit(self, watts: np.ndarray | float, window_s: float) -> np.ndarray:
        """Encode per-module power limits into MSR_PKG_POWER_LIMIT images.

        Layout (simplified from the SDM): bits 14:0 power in 0.125 W
        units, bit 15 enable, bits 23:17 time window in 2^-10 s units.
        """
        w = np.broadcast_to(np.asarray(watts, dtype=float), (self.n_modules,))
        if np.any(w <= 0):
            raise MSRAccessError("power limits must be positive")
        power_bits = np.round(w / POWER_UNIT_W).astype(np.int64)
        if np.any(power_bits >= (1 << 15)):
            raise MSRAccessError("power limit exceeds encodable range")
        window_bits = int(round(window_s / TIME_UNIT_S))
        window_bits = max(1, min(window_bits, (1 << 7) - 1))
        value = power_bits | (1 << 15) | (window_bits << 17)
        return value.astype(np.uint64)

    def decode_power_limit(self) -> tuple[np.ndarray, float, np.ndarray]:
        """Decode MSR_PKG_POWER_LIMIT: (watts, window_s, enabled)."""
        raw = self._regs[MSR_PKG_POWER_LIMIT].astype(np.int64)
        watts = (raw & 0x7FFF).astype(float) * POWER_UNIT_W
        enabled = ((raw >> 15) & 1).astype(bool)
        window_bits = (raw >> 17) & 0x7F
        # All modules share a window in our usage; report the first enabled.
        window_s = float(window_bits[0]) * TIME_UNIT_S if len(raw) else 0.0
        return watts, window_s, enabled
