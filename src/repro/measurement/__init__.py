"""Power measurement substrate (paper Table 1).

Three vendor mechanisms are emulated, matching the capabilities the
paper relies on:

==============  ===========  ===========  ========
Technique       Reported     Granularity  Capping
==============  ===========  ===========  ========
RAPL            average      1 ms         yes
PowerInsight    instant.     1 ms         no
BG/Q EMON       instant.     300 ms       no
==============  ===========  ===========  ========

* :mod:`repro.measurement.msr` — the emulated machine-specific-register
  file RAPL is built on (energy counters with wraparound, power-limit
  registers), with a libMSR-like access API.
* :mod:`repro.measurement.rapl` — Intel RAPL: average power derived from
  energy-counter deltas; the only interface that can enforce caps.
* :mod:`repro.measurement.powerinsight` — Penguin PowerInsight: hall
  sensor + ADC instantaneous node power.
* :mod:`repro.measurement.emon` — IBM BG/Q EMON: node-board level
  instantaneous power at 300 ms.
"""

from repro.measurement.base import MeterSpec, PowerMeter, PowerReading, TABLE1_SPECS
from repro.measurement.emon import EmonMeter
from repro.measurement.msr import MSRFile, MSR_DRAM_ENERGY_STATUS, MSR_PKG_ENERGY_STATUS
from repro.measurement.powerinsight import PowerInsightMeter
from repro.measurement.rapl import RaplMeter

__all__ = [
    "MeterSpec",
    "PowerMeter",
    "PowerReading",
    "TABLE1_SPECS",
    "MSRFile",
    "MSR_PKG_ENERGY_STATUS",
    "MSR_DRAM_ENERGY_STATUS",
    "RaplMeter",
    "PowerInsightMeter",
    "EmonMeter",
]
