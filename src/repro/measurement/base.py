"""Power-meter interface and the Table 1 capability matrix.

A meter observes the *true* power of a :class:`~repro.hardware.ModuleArray`
at an :class:`~repro.hardware.OperatingPoint` through its own imperfect
lens: sampling granularity, sensor noise, and reporting mode (averaged
energy-derived power vs. instantaneous samples).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import CappingUnsupportedError, MeasurementError
from repro.hardware.module import ModuleArray, OperatingPoint

__all__ = ["MeterSpec", "PowerReading", "PowerMeter", "TABLE1_SPECS"]


@dataclass(frozen=True)
class MeterSpec:
    """One row of the paper's Table 1."""

    technique: str
    reported: str  # "average" or "instantaneous"
    granularity_s: float
    supports_capping: bool

    def as_row(self) -> list[object]:
        """Render as a Table 1 row."""
        if self.granularity_s >= 1e-3:
            gran = f"{self.granularity_s * 1e3:.0f} ms"
        else:  # pragma: no cover - no sub-ms meters defined
            gran = f"{self.granularity_s * 1e6:.0f} us"
        return [
            self.technique,
            self.reported.capitalize(),
            gran,
            "Yes" if self.supports_capping else "No",
        ]


#: The paper's Table 1, verbatim.
TABLE1_SPECS: dict[str, MeterSpec] = {
    "rapl": MeterSpec("RAPL", "average", 1e-3, True),
    "powerinsight": MeterSpec("PowerInsight", "instantaneous", 1e-3, False),
    "emon": MeterSpec("BGQ EMON", "instantaneous", 300e-3, False),
}


@dataclass(frozen=True)
class PowerReading:
    """One measurement across a set of modules.

    ``cpu_w`` / ``dram_w`` are per-module arrays in watts; ``duration_s``
    is the interval the reading covers (one granule for instantaneous
    meters, the averaging window for RAPL).
    """

    cpu_w: np.ndarray
    dram_w: np.ndarray
    duration_s: float

    @property
    def module_w(self) -> np.ndarray:
        """Per-module CPU + DRAM power."""
        return self.cpu_w + self.dram_w

    @property
    def total_w(self) -> float:
        """System-level power across all measured modules."""
        return float(self.module_w.sum())


class PowerMeter(abc.ABC):
    """Common interface of the three measurement techniques."""

    #: Subclasses set this to their Table 1 row.
    spec: MeterSpec

    def __init__(self, modules: ModuleArray):
        self.modules = modules

    @property
    def supports_capping(self) -> bool:
        """Whether this meter can also enforce power limits."""
        return self.spec.supports_capping

    @property
    def granularity_s(self) -> float:
        """Finest reporting interval in seconds."""
        return self.spec.granularity_s

    @abc.abstractmethod
    def read(self, op: OperatingPoint, duration_s: float | None = None) -> PowerReading:
        """Measure per-module power at the given operating point.

        ``duration_s`` defaults to one granule and must not be shorter
        than the meter's granularity.
        """

    def _check_duration(self, duration_s: float | None) -> float:
        if duration_s is None:
            return self.granularity_s
        if duration_s < self.granularity_s - 1e-12:
            raise MeasurementError(
                f"{self.spec.technique} cannot report faster than "
                f"{self.granularity_s * 1e3:.0f} ms (requested {duration_s * 1e3:.3f} ms)"
            )
        return float(duration_s)

    def _check_op(self, op: OperatingPoint) -> None:
        if op.n_modules != self.modules.n_modules:
            raise MeasurementError(
                f"operating point covers {op.n_modules} modules, "
                f"meter covers {self.modules.n_modules}"
            )

    def set_power_limit(self, cap_w, window_s: float = 1e-3):  # pragma: no cover
        """Enforce a power cap (only RAPL overrides this)."""
        raise CappingUnsupportedError(
            f"{self.spec.technique} does not support power capping (Table 1)"
        )
