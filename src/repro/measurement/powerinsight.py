"""Penguin Computing PowerInsight emulation (Table 1 row 2).

PowerInsight is a sensor harness: Allegro ACS713 hall-effect current
sensors plus a voltage divider feed three ADCs on a BeagleBone carrier
board.  It reports *instantaneous* power at 1 ms (or faster) and cannot
cap.  We model the measurement chain as white sensor noise plus ADC
quantisation.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.module import ModuleArray, OperatingPoint
from repro.measurement.base import PowerMeter, PowerReading, TABLE1_SPECS

__all__ = ["PowerInsightMeter"]


class PowerInsightMeter(PowerMeter):
    """Instantaneous sensor-based node power measurement.

    Parameters
    ----------
    modules:
        Hardware under measurement.
    rng:
        Noise source (hall-sensor white noise).  ``None`` disables noise.
    noise_frac:
        1-σ relative sensor noise (the PowerInsight qualification report
        places accuracy within a couple of percent).
    adc_step_w:
        Quantisation step of the 10-bit ADC chain mapped to watts.
    """

    spec = TABLE1_SPECS["powerinsight"]

    def __init__(
        self,
        modules: ModuleArray,
        rng: np.random.Generator | None = None,
        *,
        noise_frac: float = 0.015,
        adc_step_w: float = 0.25,
    ):
        super().__init__(modules)
        self._rng = rng
        self._noise_frac = float(noise_frac)
        self._adc_step_w = float(adc_step_w)

    def _quantize(self, watts: np.ndarray) -> np.ndarray:
        if self._adc_step_w <= 0:
            return watts
        return np.round(watts / self._adc_step_w) * self._adc_step_w

    def _noisy(self, watts: np.ndarray) -> np.ndarray:
        if self._rng is None or self._noise_frac == 0.0:
            return self._quantize(watts)
        noise = self._rng.normal(1.0, self._noise_frac, watts.shape)
        return self._quantize(watts * np.clip(noise, 0.9, 1.1))

    def read(self, op: OperatingPoint, duration_s: float | None = None) -> PowerReading:
        """One instantaneous sample per module (CPU and DRAM rails)."""
        self._check_op(op)
        dt = self._check_duration(duration_s)
        cpu = self._noisy(self.modules.cpu_power_at(op))
        dram = self._noisy(self.modules.dram_power_at(op))
        return PowerReading(cpu_w=cpu, dram_w=dram, duration_s=dt)

    def read_trace(self, op: OperatingPoint, n_samples: int) -> list[PowerReading]:
        """A sequence of instantaneous samples (getRawPower-style polling)."""
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        return [self.read(op) for _ in range(n_samples)]
