"""Intel RAPL emulation (Table 1 row 1).

RAPL reports *average* power: software samples the package / DRAM energy
counters and divides the wrap-corrected delta by the elapsed time.  The
granularity floor is 1 ms.  RAPL is also the only technique that can
*enforce* power limits; enforcement itself (choosing an operating point
that honours the written limit) is the job of
:class:`repro.control.rapl_cap.RaplCapController` — this meter provides
the measurement substrate and the limit registers.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.module import ModuleArray, OperatingPoint
from repro.measurement.base import PowerMeter, PowerReading, TABLE1_SPECS
from repro.measurement.msr import (
    MSR_DRAM_ENERGY_STATUS,
    MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_LIMIT,
    MSRFile,
)

__all__ = ["RaplMeter"]


class RaplMeter(PowerMeter):
    """Energy-counter based average power measurement with capping registers.

    Parameters
    ----------
    modules:
        The hardware being measured.
    rng:
        Optional generator for the small model error RAPL's firmware
        estimator exhibits (~0.5 % multiplicative, fixed per module —
        RAPL is a *model*, not a sensor, so its bias is stable across
        reads rather than white noise).
    """

    spec = TABLE1_SPECS["rapl"]

    def __init__(self, modules: ModuleArray, rng: np.random.Generator | None = None):
        super().__init__(modules)
        self.msr = MSRFile(modules.n_modules, tdp_w=modules.arch.tdp_w)
        if rng is None:
            bias = np.zeros(modules.n_modules)
        else:
            bias = np.clip(rng.normal(0.0, 0.005, modules.n_modules), -0.015, 0.015)
        self._bias = 1.0 + bias
        self._clock_s = 0.0

    @property
    def clock_s(self) -> float:
        """Internal measurement clock (advanced by :meth:`read`)."""
        return self._clock_s

    def read(self, op: OperatingPoint, duration_s: float | None = None) -> PowerReading:
        """Run the modules at ``op`` for a window and report average power.

        Drives true energy into the emulated counters, then reads them
        back the way libMSR clients do (snapshot, wait, snapshot, divide
        the wrap-corrected delta).
        """
        self._check_op(op)
        dt = self._check_duration(duration_s)

        cpu_true = self.modules.cpu_power_at(op) * self._bias
        dram_true = self.modules.dram_power_at(op) * self._bias

        pkg_before = self.msr.read_all(MSR_PKG_ENERGY_STATUS)
        dram_before = self.msr.read_all(MSR_DRAM_ENERGY_STATUS)
        self.msr.accumulate_energy(MSR_PKG_ENERGY_STATUS, cpu_true * dt)
        self.msr.accumulate_energy(MSR_DRAM_ENERGY_STATUS, dram_true * dt)
        pkg_after = self.msr.read_all(MSR_PKG_ENERGY_STATUS)
        dram_after = self.msr.read_all(MSR_DRAM_ENERGY_STATUS)
        self._clock_s += dt

        cpu_w = MSRFile.energy_delta_joules(pkg_before, pkg_after) / dt
        dram_w = MSRFile.energy_delta_joules(dram_before, dram_after) / dt
        return PowerReading(cpu_w=cpu_w, dram_w=dram_w, duration_s=dt)

    def set_power_limit(self, cap_w, window_s: float = 1e-3) -> None:
        """Write per-module package power limits (enable bit set)."""
        self.msr.write_all(
            MSR_PKG_POWER_LIMIT, self.msr.encode_power_limit(cap_w, window_s)
        )

    def get_power_limit(self) -> tuple[np.ndarray, float, np.ndarray]:
        """Decode the current limits: (watts, window_s, enabled)."""
        return self.msr.decode_power_limit()
