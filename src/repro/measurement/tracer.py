"""Time-series power tracing over a simulated execution.

The meters in this package answer "what is the power *now*"; production
monitoring wants the *timeline* — per-window samples over a run, energy
integrals, and peak detection.  :class:`PowerTracer` drives any
:class:`~repro.measurement.base.PowerMeter` across a schedule of
operating points (e.g. the phases of a phased application, or a cap
change mid-run) and accumulates a :class:`PowerTimeline`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError
from repro.hardware.module import OperatingPoint
from repro.measurement.base import PowerMeter

__all__ = ["PowerTimeline", "PowerTracer"]


@dataclass(frozen=True)
class PowerTimeline:
    """Sampled total power over time.

    Attributes
    ----------
    times_s:
        Sample timestamps (window ends), shape ``(n_samples,)``.
    cpu_w / dram_w:
        Per-sample, per-module power arrays, shape
        ``(n_samples, n_modules)``.
    """

    times_s: np.ndarray
    cpu_w: np.ndarray
    dram_w: np.ndarray

    def __post_init__(self) -> None:
        if self.times_s.ndim != 1 or self.cpu_w.shape != self.dram_w.shape:
            raise MeasurementError("inconsistent timeline shapes")
        if self.cpu_w.shape[0] != self.times_s.shape[0]:
            raise MeasurementError("one power row per timestamp required")

    @property
    def n_samples(self) -> int:
        """Number of samples recorded."""
        return int(self.times_s.size)

    @property
    def total_w(self) -> np.ndarray:
        """System power per sample (sum over modules)."""
        return (self.cpu_w + self.dram_w).sum(axis=1)

    @property
    def peak_w(self) -> float:
        """Highest sampled system power."""
        return float(self.total_w.max())

    def energy_j(self) -> float:
        """Total energy via left-Riemann integration of system power."""
        if self.n_samples == 0:
            return 0.0
        t = np.concatenate([[0.0], self.times_s])
        dt = np.diff(t)
        return float((self.total_w * dt).sum())

    def mean_power_w(self) -> float:
        """Time-averaged system power."""
        if self.n_samples == 0:
            return 0.0
        return self.energy_j() / float(self.times_s[-1])

    def over_budget_fraction(self, budget_w: float) -> float:
        """Fraction of samples whose system power exceeds ``budget_w``."""
        if self.n_samples == 0:
            return 0.0
        return float((self.total_w > budget_w).mean())


class PowerTracer:
    """Samples a meter over a schedule of operating points.

    Parameters
    ----------
    meter:
        Any power meter; sampling interval defaults to its granularity.
    """

    def __init__(self, meter: PowerMeter, *, interval_s: float | None = None):
        self.meter = meter
        self.interval_s = (
            meter.granularity_s if interval_s is None else float(interval_s)
        )
        if self.interval_s < meter.granularity_s:
            raise MeasurementError(
                "sampling interval cannot beat the meter's granularity"
            )
        self._times: list[float] = []
        self._cpu: list[np.ndarray] = []
        self._dram: list[np.ndarray] = []
        self._clock = 0.0

    def record(self, op: OperatingPoint, duration_s: float) -> None:
        """Hold one operating point for ``duration_s``, sampling throughout."""
        if duration_s <= 0:
            raise MeasurementError("duration must be positive")
        n = max(1, int(round(duration_s / self.interval_s)))
        for _ in range(n):
            reading = self.meter.read(op, duration_s=self.interval_s)
            self._clock += self.interval_s
            self._times.append(self._clock)
            self._cpu.append(reading.cpu_w)
            self._dram.append(reading.dram_w)

    def timeline(self) -> PowerTimeline:
        """Snapshot everything recorded so far."""
        if not self._times:
            return PowerTimeline(
                times_s=np.empty(0),
                cpu_w=np.empty((0, 0)),
                dram_w=np.empty((0, 0)),
            )
        return PowerTimeline(
            times_s=np.asarray(self._times),
            cpu_w=np.stack(self._cpu),
            dram_w=np.stack(self._dram),
        )
