"""IBM Blue Gene/Q EMON emulation (Table 1 row 3).

On BG/Q, power is measured at *node-board* granularity: each board's
FPGA polls two direct-current assemblies over I2C and exposes
instantaneous power through the EMON API every 300 ms.  A board carries
32 compute cards, so readings are sums over card groups — individual
card power is not observable, which is why the paper's Fig 1B plots 48
node boards rather than 1,536 individual processors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeasurementError
from repro.hardware.module import ModuleArray, OperatingPoint
from repro.measurement.base import PowerMeter, PowerReading, TABLE1_SPECS

__all__ = ["EmonMeter"]

#: Compute cards per BG/Q node board.
CARDS_PER_NODE_BOARD = 32


class EmonMeter(PowerMeter):
    """Node-board granularity instantaneous power measurement.

    Parameters
    ----------
    modules:
        Hardware under measurement; ``n_modules`` must be a multiple of
        ``cards_per_board``.
    rng:
        DCA microcontroller sampling noise source (``None`` disables).
    cards_per_board:
        Compute cards aggregated per reading (32 on BG/Q).
    noise_frac:
        1-σ relative noise of the DCA current calculation.
    """

    spec = TABLE1_SPECS["emon"]

    def __init__(
        self,
        modules: ModuleArray,
        rng: np.random.Generator | None = None,
        *,
        cards_per_board: int = CARDS_PER_NODE_BOARD,
        noise_frac: float = 0.01,
    ):
        super().__init__(modules)
        if cards_per_board <= 0:
            raise MeasurementError("cards_per_board must be positive")
        if modules.n_modules % cards_per_board != 0:
            raise MeasurementError(
                f"{modules.n_modules} modules do not fill whole node boards "
                f"of {cards_per_board} cards"
            )
        self.cards_per_board = int(cards_per_board)
        self._rng = rng
        self._noise_frac = float(noise_frac)

    @property
    def n_boards(self) -> int:
        """Number of node boards the meter reports on."""
        return self.modules.n_modules // self.cards_per_board

    def _aggregate(self, per_card: np.ndarray) -> np.ndarray:
        boards = per_card.reshape(self.n_boards, self.cards_per_board).sum(axis=1)
        if self._rng is not None and self._noise_frac > 0.0:
            boards = boards * np.clip(
                self._rng.normal(1.0, self._noise_frac, boards.shape), 0.95, 1.05
            )
        return boards

    def read(self, op: OperatingPoint, duration_s: float | None = None) -> PowerReading:
        """One instantaneous reading per *node board* (chip-core and
        chip-memory domains).

        Note the returned arrays have length ``n_boards``, not
        ``n_modules`` — board-level aggregation is inherent to EMON.
        """
        self._check_op(op)
        dt = self._check_duration(duration_s)
        cpu = self._aggregate(self.modules.cpu_power_at(op))
        dram = self._aggregate(self.modules.dram_power_at(op))
        return PowerReading(cpu_w=cpu, dram_w=dram, duration_s=dt)
