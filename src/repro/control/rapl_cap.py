"""RAPL power capping — the paper's PC actuation strategy.

RAPL enforces an *average* power limit over a (typically 1 ms) window by
dithering between adjacent P-states, and by clock modulation when even
the lowest P-state draws too much.  Two consequences the paper leans on:

* PC strictly honours the CPU power cap (Fig 9: every PC-based scheme is
  under the red line);
* the dynamic control loop does not land every module on exactly the
  intended frequency, so "this dynamic behavior does not guarantee
  consistent performance across modules" (Section 5.3) — the residual
  inhomogeneity that motivates the FS variant.

We model the converged operating point analytically
(:meth:`~repro.hardware.ModuleArray.resolve_cpu_cap`) and superimpose a
small, module-persistent efficiency loss for the dither, plus an optional
window-by-window trace generator for studies that need the oscillation
itself (Fig 2(ii) plots the *average* frequency across RAPL time steps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CappingUnsupportedError, ConfigurationError
from repro.hardware.module import ModuleArray, OperatingPoint
from repro.hardware.power_model import PowerSignature

__all__ = ["RaplCapController", "CapEnforcement"]


@dataclass(frozen=True)
class CapEnforcement:
    """Converged result of enforcing per-module CPU power caps via RAPL.

    Attributes
    ----------
    op:
        The realised operating point (DVFS frequency + duty per module).
    effective_freq_ghz:
        Work rate per module as an equivalent frequency, including the
        duty penalty and the dither efficiency loss.
    cpu_power_w:
        Realised average CPU power per module (≤ cap wherever
        ``cap_met``).
    cap_w:
        The caps that were enforced.
    cap_met:
        False where the cap lies below the module's static floor.
    """

    op: OperatingPoint
    effective_freq_ghz: np.ndarray
    cpu_power_w: np.ndarray
    cap_w: np.ndarray
    cap_met: np.ndarray


class RaplCapController:
    """Enforces CPU power caps the way RAPL's firmware loop does.

    Parameters
    ----------
    modules:
        Hardware under control; its architecture must support capping
        (Table 1 — only RAPL-class parts do).
    rng:
        Source for the module-persistent dither efficiency loss.
        ``None`` yields an ideal controller (useful for unit tests and
        for isolating the algorithmic effects from controller noise).
    dither_loss_frac:
        1-σ of the per-module relative work-rate loss due to P-state
        dithering (≈1 %: the loop spends part of each window above and
        below the target point).
    guardband_frac:
        Fraction by which firmware undershoots the programmed limit to
        guarantee the average never exceeds it.
    """

    def __init__(
        self,
        modules: ModuleArray,
        rng: np.random.Generator | None = None,
        *,
        dither_loss_frac: float = 0.02,
        guardband_frac: float = 0.01,
    ):
        if modules.is_mixed:
            unsupported = [
                dt.name
                for _pos, dt, _sel in modules.device_map.groups()
                if not dt.supports_capping
            ]
            if unsupported:
                raise CappingUnsupportedError(
                    f"device types {', '.join(unsupported)} do not support "
                    "hardware power capping"
                )
        elif not modules.arch.supports_capping:
            raise CappingUnsupportedError(
                f"{modules.arch.name} does not support hardware power capping"
            )
        if not (0.0 <= guardband_frac < 0.5):
            raise ConfigurationError("guardband_frac must be in [0, 0.5)")
        if dither_loss_frac < 0.0:
            raise ConfigurationError("dither_loss_frac must be non-negative")
        self.modules = modules
        self._rng = rng
        self._dither_loss_frac = float(dither_loss_frac)
        self._guardband_frac = float(guardband_frac)

    def enforce(
        self, cap_w: np.ndarray | float, sig: PowerSignature
    ) -> CapEnforcement:
        """Converge each module onto its cap and return the operating point."""
        n = self.modules.n_modules
        cap = np.broadcast_to(np.asarray(cap_w, dtype=float), (n,)).copy()
        if np.any(cap <= 0):
            raise ConfigurationError("power caps must be positive")

        target = cap * (1.0 - self._guardband_frac)
        res = self.modules.resolve_cpu_cap(target, sig)

        effective = res.effective_freq_ghz
        if self._rng is not None and self._dither_loss_frac > 0.0:
            # Only modules whose cap is binding dither; an uncapped module
            # sits at (its device type's) fmax all window long.
            binding = res.freq_ghz < self.modules.fmax_by_module() - 1e-12
            loss = np.abs(self._rng.normal(0.0, self._dither_loss_frac, n))
            effective = effective * np.where(binding, 1.0 - np.clip(loss, 0.0, 0.05), 1.0)

        op = OperatingPoint(freq_ghz=res.freq_ghz, duty=res.duty, signature=sig)
        return CapEnforcement(
            op=op,
            effective_freq_ghz=effective,
            cpu_power_w=res.cpu_power_w,
            cap_w=cap,
            cap_met=res.cap_met,
        )

    def frequency_trace(
        self,
        cap_w: np.ndarray | float,
        sig: PowerSignature,
        n_windows: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Window-by-window P-state trace, shape ``(n_windows, n_modules)``.

        Each RAPL window the firmware picks the ladder frequency just
        below or just above the continuous target so the *average*
        frequency (and hence average power) converges on the target —
        this is the "average CPU frequency for a module across all RAPL
        time steps" plotted on the x-axis of Fig 2(ii).
        """
        if n_windows <= 0:
            raise ConfigurationError("n_windows must be positive")
        if self.modules.is_mixed:
            raise ConfigurationError(
                "frequency_trace is ladder-specific; take a per-type view of a "
                "mixed fleet first"
            )
        arch = self.modules.arch
        enforced = self.enforce(cap_w, sig)
        target = np.clip(enforced.effective_freq_ghz, arch.fmin, arch.fmax)

        ladder = np.asarray(arch.ladder.frequencies)
        lo_idx = np.searchsorted(ladder, target + 1e-9, side="right") - 1
        lo_idx = np.clip(lo_idx, 0, len(ladder) - 1)
        hi_idx = np.clip(lo_idx + 1, 0, len(ladder) - 1)
        f_lo, f_hi = ladder[lo_idx], ladder[hi_idx]
        span = np.where(f_hi > f_lo, f_hi - f_lo, 1.0)
        p_hi = np.where(f_hi > f_lo, (target - f_lo) / span, 0.0)

        picks = rng.random((n_windows, self.modules.n_modules)) < p_hi
        return np.where(picks, f_hi, f_lo)
