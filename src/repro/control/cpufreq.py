"""cpufrequtils emulation — the paper's FS actuation strategy.

Frequency Selection pins every module to the statically derived common
frequency (paper Eq 1) with the ``userspace`` governor.  Because the
request is a P-state, it is quantised onto the ladder; because nothing
enforces power, realised power is whatever the workload draws at that
frequency — FS "has the potential to violate the derived CPU power cap"
(Section 5.3), which is exactly what makes it slightly faster than PC.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.module import ModuleArray, OperatingPoint
from repro.hardware.power_model import PowerSignature

__all__ = ["CpuFreq", "GOVERNORS"]

#: Governors cpufrequtils exposes that we model.
GOVERNORS = ("performance", "powersave", "userspace")


class CpuFreq:
    """Per-module CPU frequency control in the style of cpufrequtils.

    The ``performance`` governor pins fmax, ``powersave`` pins fmin, and
    ``userspace`` honours :meth:`set_speed` requests (quantised down to
    the ladder so a request can never draw more power than intended).
    """

    def __init__(self, modules: ModuleArray):
        self.modules = modules
        self._governor = "performance"
        self._speed = np.full(modules.n_modules, modules.arch.fmax)

    @property
    def governor(self) -> str:
        """Currently selected governor."""
        return self._governor

    def available_frequencies(self) -> tuple[float, ...]:
        """The ladder, as ``cpufreq-info`` would report it."""
        return self.modules.arch.ladder.frequencies

    def set_governor(self, name: str) -> None:
        """Select a governor; resets pinned speeds to the governor's policy."""
        if name not in GOVERNORS:
            raise ConfigurationError(
                f"unknown governor {name!r}; available: {', '.join(GOVERNORS)}"
            )
        self._governor = name
        arch = self.modules.arch
        if name == "performance":
            self._speed[:] = arch.fmax
        elif name == "powersave":
            self._speed[:] = arch.fmin

    def set_speed(self, freq_ghz: np.ndarray | float) -> np.ndarray:
        """Pin per-module frequencies (userspace governor only).

        Requests are rounded *down* to the nearest ladder frequency and
        the realised values are returned.
        """
        if self._governor != "userspace":
            raise ConfigurationError(
                "set_speed requires the userspace governor "
                f"(current: {self._governor!r})"
            )
        n = self.modules.n_modules
        req = np.broadcast_to(np.asarray(freq_ghz, dtype=float), (n,))
        if np.any(~np.isfinite(req)) or np.any(req <= 0):
            raise ConfigurationError("requested frequencies must be positive")
        self._speed = np.asarray(self.modules.arch.ladder.quantize_down(req))
        return self._speed.copy()

    def current_speed(self) -> np.ndarray:
        """Per-module pinned frequency in GHz."""
        return self._speed.copy()

    def operating_point(self, sig: PowerSignature) -> OperatingPoint:
        """The operating point the current settings realise for ``sig``.

        FS never engages clock modulation — duty is always 1.0.
        """
        return OperatingPoint(
            freq_ghz=self._speed.copy(),
            duty=np.ones(self.modules.n_modules),
            signature=sig,
        )
