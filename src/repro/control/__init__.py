"""Power actuation: the paper's two management strategies.

* :mod:`repro.control.rapl_cap` — **PC** (Power Capping): write a CPU
  power limit per module; RAPL's firmware loop converges on an operating
  point whose average power honours it.  Guaranteed never to exceed the
  cap, but the dynamic dithering makes realised performance slightly
  inhomogeneous.
* :mod:`repro.control.cpufreq` — **FS** (Frequency Selection): pin a
  P-state with the userspace governor, as cpufrequtils does.  Guarantees
  homogeneous performance but only *indirectly* manages power — it may
  exceed the derived cap (paper Section 5.3).
"""

from repro.control.cpufreq import CpuFreq
from repro.control.rapl_cap import CapEnforcement, RaplCapController

__all__ = ["CpuFreq", "RaplCapController", "CapEnforcement"]
