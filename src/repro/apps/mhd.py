"""MHD — 3-D magneto-hydro-dynamics simulation (Modified Leapfrog method).

The space-weather code of Ogino et al. used throughout the paper's
Section 4 analysis.  Each iteration solves the MHD equations on a 3-D
domain decomposition and exchanges halos with all six torus neighbours
via MPI_Sendrecv.  That per-iteration synchronisation is the key
behaviour: under a power cap the *completion* time variation stays ≈1
(Fig 2(iii), Vt ≈ 1.0) while the fast ranks pile up enormous
MPI_Sendrecv wait time (Fig 3: sync-time Vt up to 57 at Cm = 60 W) —
frequency inhomogeneity hides as load imbalance instead of runtime
spread.
"""

from __future__ import annotations

from repro.apps.base import AppModel, CommSpec
from repro.hardware.power_model import PowerSignature

__all__ = ["MHD"]

MHD = AppModel(
    name="mhd",
    signature=PowerSignature(
        cpu_activity=0.749, dram_activity=0.27, dram_freq_coupling=1.0
    ),
    cpu_bound_fraction=0.85,
    iter_seconds_fmax=0.6,
    default_iters=150,
    comm=CommSpec(kind="neighbor", ndim=3, message_bytes=512 * 1024),
    residual_sigma_dyn=0.015,
    residual_sigma_dram=0.015,
    description="3-D MHD, Modified Leapfrog, torus halo exchange (Ogino et al.)",
)
