"""NPB EP — Embarrassingly Parallel Gaussian-variate generation (Class D).

The paper's probe workload for the Fig 1 variability study, chosen
because it is CPU-bound with a cache-resident working set, has no
communication until the final tally reduction, and shows <0.5 % per-run
noise — so any measured spread is manufacturing variability, nothing
else.
"""

from __future__ import annotations

from repro.apps.base import AppModel, CommSpec
from repro.hardware.power_model import PowerSignature

__all__ = ["EP"]

EP = AppModel(
    name="ep",
    signature=PowerSignature(
        cpu_activity=0.85, dram_activity=0.05, dram_freq_coupling=1.0
    ),
    cpu_bound_fraction=0.985,
    iter_seconds_fmax=3.0,
    default_iters=10,
    comm=CommSpec(kind="none", final_allreduce=True),
    residual_sigma_dyn=0.010,
    residual_sigma_dram=0.010,
    description="NPB EP Class D, MPI, Marsaglia polar method",
)
