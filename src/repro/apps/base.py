"""The application model every benchmark instantiates.

An :class:`AppModel` is a *performance and power characterisation*, not a
numerical kernel: what matters for reproducing the paper is how execution
time responds to per-module frequency and how power responds to the
application's activity — the numerics themselves are irrelevant to both.

Ground-truth power of an (app, module) pair
-------------------------------------------
The shared manufacturing variation (leakage, dynamic, DRAM factors) is a
property of the silicon; but how strongly a given app *expresses* the
dynamic and DRAM spread depends on which units it exercises.  We model
this with a small app-specific multiplicative residual on the dynamic and
DRAM factors, drawn deterministically per (app, module).  The *STREAM
microbenchmark (residual 0) is the lens through which the PVT sees the
system; apps whose residual is large (NPB-BT) are the ones the paper's
calibration predicts worst (~10 % vs <5 %).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.topology import grid_dims, torus_neighbors
from repro.errors import ConfigurationError
from repro.hardware.module import ModuleArray
from repro.hardware.power_model import PowerSignature
from repro.hardware.variability import ModuleVariation
from repro.simmpi import fastpath
from repro.simmpi.machine import BspMachine
from repro.simmpi.tracing import RankTrace

__all__ = ["CommSpec", "AppModel"]

_COMM_KINDS = ("none", "neighbor", "allreduce", "pipeline")


@dataclass(frozen=True)
class CommSpec:
    """Communication pattern of one application.

    ``kind`` is ``"none"`` (embarrassingly parallel), ``"neighbor"``
    (per-iteration halo exchange on an ``ndim``-torus via MPI_Sendrecv),
    ``"allreduce"`` (per-iteration synchronising reduction), or
    ``"pipeline"`` (each rank feeds its successor once per iteration —
    a software pipeline; *not* bulk-synchronous, so it always runs on
    the event-driven machine rather than the vectorised fast path).
    ``final_allreduce`` adds one reduction at the end regardless (EP
    collects its Gaussian tallies once).
    """

    kind: str = "none"
    ndim: int = 0
    message_bytes: float = 0.0
    final_allreduce: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _COMM_KINDS:
            raise ConfigurationError(
                f"comm kind must be one of {_COMM_KINDS}, got {self.kind!r}"
            )
        if self.kind == "neighbor" and self.ndim <= 0:
            raise ConfigurationError("neighbor communication needs ndim >= 1")
        if self.message_bytes < 0:
            raise ConfigurationError("message_bytes must be non-negative")


@dataclass(frozen=True)
class AppModel:
    """Performance/power characterisation of one MPI benchmark.

    Attributes
    ----------
    name:
        Registry key ("dgemm", "stream", "ep", "bt", "sp", "mhd", "mvmc").
    signature:
        Power signature (CPU activity, DRAM activity, DRAM-frequency
        coupling).
    cpu_bound_fraction:
        κ — the fraction of per-iteration time (at fmax) that scales
        inversely with effective frequency; the remainder is
        frequency-insensitive (memory stalls).
    iter_seconds_fmax:
        Per-iteration time on a nominal module at fmax, seconds.
    default_iters:
        Iteration count of the standard problem size.
    comm:
        Communication pattern.
    residual_sigma_dyn / residual_sigma_dram:
        Log-σ of the app-specific expression residual on the dynamic /
        DRAM variation factors (see module docstring).
    description:
        One-line provenance (suite, class/problem size).
    """

    name: str
    signature: PowerSignature
    cpu_bound_fraction: float
    iter_seconds_fmax: float
    default_iters: int
    comm: CommSpec = CommSpec()
    residual_sigma_dyn: float = 0.015
    residual_sigma_dram: float = 0.015
    description: str = ""

    def __post_init__(self) -> None:
        if not (0.0 <= self.cpu_bound_fraction <= 1.0):
            raise ConfigurationError("cpu_bound_fraction must be in [0, 1]")
        if self.iter_seconds_fmax <= 0:
            raise ConfigurationError("iter_seconds_fmax must be positive")
        if self.default_iters <= 0:
            raise ConfigurationError("default_iters must be positive")
        if self.residual_sigma_dyn < 0 or self.residual_sigma_dram < 0:
            raise ConfigurationError("residual sigmas must be non-negative")

    def with_(self, **changes) -> "AppModel":
        """Copy with fields replaced (e.g. a custom iteration count)."""
        return replace(self, **changes)

    # -- ground-truth power view -------------------------------------------------

    def specialize(
        self, modules: ModuleArray, rng: np.random.Generator
    ) -> ModuleArray:
        """This app's ground-truth view of the hardware.

        Applies the app-specific expression residual to the dynamic and
        DRAM variation factors.  ``rng`` must be keyed per (system, app)
        so the residual is a stable property of the pair, not noise —
        e.g. ``system.rng.rng(f"app-residual/{app.name}")``.
        """
        var = modules.variation
        n = var.n_modules
        dyn = var.dyn
        dram = var.dram
        # Residual tails are clipped at 2.5 sigma: the paper's calibration
        # error tops out around 10% (NPB-BT); unbounded tails would let a
        # single pathological module dominate the statistic.  Module 0 is
        # the designated calibration module and carries zero residual by
        # convention: the paper's single-module calibration produced
        # system-level budget adherence (Fig 9) and kept tight budgets
        # feasible, which requires the test module to be representative,
        # while per-module errors still reach 5-10% (Section 5.3).
        # Calibrating on any other module explores the "unrepresentative
        # test module" regime (see the calibration-lottery ablation).
        if self.residual_sigma_dyn > 0.0:
            z = np.clip(rng.standard_normal(n), -2.5, 2.5)
            z[0] = 0.0
            dyn = dyn * np.exp(self.residual_sigma_dyn * z)
        if self.residual_sigma_dram > 0.0:
            z = np.clip(rng.standard_normal(n), -2.5, 2.5)
            z[0] = 0.0
            dram = dram * np.exp(self.residual_sigma_dram * z)
        return ModuleArray(
            modules.arch,
            ModuleVariation(leak=var.leak, dyn=dyn, dram=dram, perf=var.perf),
            modules.device_map,
        )

    # -- execution -----------------------------------------------------------------

    def neighbor_table(self, n_ranks: int) -> np.ndarray | None:
        """Halo-exchange partners for ``n_ranks`` (None for non-neighbor apps)."""
        if self.comm.kind != "neighbor":
            return None
        return torus_neighbors(grid_dims(n_ranks, self.comm.ndim))

    def run(
        self,
        rates_ghz: np.ndarray,
        fmax_ghz: float,
        *,
        n_iters: int | None = None,
        latency_s: float = 5e-6,
        bandwidth_gbps: float = 5.0,
        work_imbalance: np.ndarray | None = None,
        noise_frac: float = 0.0,
        noise_rng: np.random.Generator | None = None,
        rate_jitter_frac: float = 0.0,
        jitter_rng: np.random.Generator | None = None,
    ) -> RankTrace:
        """Simulate the application on ranks running at ``rates_ghz``.

        Parameters
        ----------
        rates_ghz:
            Per-rank work rate (effective frequency × perf factor).
        fmax_ghz:
            The architecture's fmax — defines the reference at which one
            iteration takes :attr:`iter_seconds_fmax`.
        n_iters:
            Iteration count (defaults to the standard problem size).
        work_imbalance:
            Optional per-rank multiplicative work factors (the paper's
            apps are perfectly balanced; ≠1 models naturally imbalanced
            codes).
        noise_frac / noise_rng:
            Per-phase operating-system noise (see
            :class:`~repro.simmpi.BspMachine`).
        rate_jitter_frac / jitter_rng:
            Log-σ of a per-(rank, iteration) symmetric fluctuation of the
            effective compute speed.  Models the slow oscillation of a
            RAPL-governed operating point (thermals, workload phases) —
            the paper's observation that RAPL's "dynamic behavior does
            not guarantee consistent performance" (Section 5.3).  It is
            what lets even the slowest rank of a capped run accumulate
            some MPI_Sendrecv wait time (Fig 3).

        Notes
        -----
        Deterministic runs (no noise, no jitter) dispatch through
        :func:`repro.simmpi.fastpath.simulate_app`: BSP-expressible
        communication executes as whole-fleet array operations with
        steady-state fast-forwarding; the ``"pipeline"`` kind falls back
        to the event-driven machine.  Stochastic runs need fresh draws
        every iteration, so they keep the explicit per-iteration BSP
        loop (and therefore require a BSP-expressible comm kind).
        """
        iters = self.default_iters if n_iters is None else int(n_iters)
        if iters <= 0:
            raise ConfigurationError("n_iters must be positive")
        if rate_jitter_frac < 0:
            raise ConfigurationError("rate_jitter_frac must be non-negative")
        if rate_jitter_frac > 0.0 and jitter_rng is None:
            raise ConfigurationError("rate_jitter_frac > 0 requires jitter_rng")

        if noise_frac == 0.0 and rate_jitter_frac == 0.0:
            return fastpath.simulate_app(
                self,
                rates_ghz,
                fmax_ghz,
                n_iters=iters,
                latency_s=latency_s,
                bandwidth_gbps=bandwidth_gbps,
                work_imbalance=work_imbalance,
            )
        if not fastpath.is_bsp_expressible(self):
            raise ConfigurationError(
                f"per-iteration noise/jitter is only supported for "
                f"BSP-expressible comm kinds, not {self.comm.kind!r}"
            )
        machine = BspMachine(
            rates_ghz,
            latency_s=latency_s,
            bandwidth_gbps=bandwidth_gbps,
            noise_frac=noise_frac,
            noise_rng=noise_rng,
        )
        n_ranks = machine.n_ranks

        kappa = self.cpu_bound_fraction
        base = self.iter_seconds_fmax
        if work_imbalance is None:
            scaled = np.ones(n_ranks)
        else:
            scaled = np.asarray(work_imbalance, dtype=float)
            if scaled.shape != (n_ranks,):
                raise ConfigurationError(
                    "work_imbalance must have one entry per rank"
                )
        cpu_work = kappa * base * fmax_ghz * scaled  # GHz·seconds
        fixed = (1.0 - kappa) * base * scaled  # seconds

        neighbors = self.neighbor_table(n_ranks)
        for _ in range(iters):
            if rate_jitter_frac > 0.0:
                jitter = np.exp(
                    rate_jitter_frac * jitter_rng.standard_normal(n_ranks)
                )
                machine.compute(cpu_work * jitter)
            else:
                machine.compute(cpu_work)
            if kappa < 1.0:
                machine.elapse(fixed)
            if self.comm.kind == "neighbor":
                machine.sendrecv(neighbors, self.comm.message_bytes)
            elif self.comm.kind == "allreduce":
                machine.allreduce(max(self.comm.message_bytes, 8.0))
        if self.comm.final_allreduce:
            machine.allreduce(8.0)
        return machine.trace()
