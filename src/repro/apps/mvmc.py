"""mVMC-mini — many-variable variational Monte Carlo (FIBER suite).

RIKEN AICS's strongly-correlated-electron mini-app, middle-scale
setting.  Monte Carlo sampling with per-iteration parameter reductions:
the allreduce synchronises all ranks every optimisation step, so — like
MHD and the NPB multizone codes — variation manifests as wait time
rather than completion-time spread ("NPB-BT, NPB-SP and mVMC are more
similar to MHD", Section 4.3).
"""

from __future__ import annotations

from repro.apps.base import AppModel, CommSpec
from repro.hardware.power_model import PowerSignature

__all__ = ["MVMC"]

MVMC = AppModel(
    name="mvmc",
    signature=PowerSignature(
        cpu_activity=0.68, dram_activity=0.20, dram_freq_coupling=1.0
    ),
    cpu_bound_fraction=0.82,
    iter_seconds_fmax=0.8,
    default_iters=100,
    comm=CommSpec(kind="allreduce", message_bytes=64 * 1024),
    residual_sigma_dyn=0.02,
    residual_sigma_dram=0.02,
    description="mVMC-mini (FIBER), middle-scale, MPI Monte Carlo",
)
