"""*STREAM — sustainable memory bandwidth (HPC Challenge).

The paper's AVX-optimised, OpenMP+MPI *STREAM with 24 GB vectors.  Two
roles in the study:

1. It is the microbenchmark used to generate the system PVT, because it
   "exhibited both memory and CPU boundedness" — its expression residual
   is zero by construction (the PVT sees the system through *STREAM's
   eyes).
2. Its DRAM power is large (≈33 W at fmax on a nominal module) and only
   weakly coupled to CPU frequency (bandwidth saturation), which is why
   the Naïve scheme — whose PMT assumes TDP-proportioned DRAM power —
   underestimates *STREAM's DRAM draw and overshoots the global budget
   (Fig 9, the one constraint violation in the evaluation).

Under CPU power caps *STREAM still slows down (uncore/issue-rate
effects), which the paper observes as "trends similar to *DGEMM"; we use
κ = 0.60.
"""

from __future__ import annotations

from repro.apps.base import AppModel, CommSpec
from repro.hardware.power_model import PowerSignature

__all__ = ["STREAM"]

STREAM = AppModel(
    name="stream",
    signature=PowerSignature(
        cpu_activity=0.66, dram_activity=1.0, dram_freq_coupling=0.25
    ),
    cpu_bound_fraction=0.60,
    iter_seconds_fmax=1.5,
    default_iters=50,
    comm=CommSpec(kind="none"),
    residual_sigma_dyn=0.0,
    residual_sigma_dram=0.0,
    description="HPCC *STREAM, AVX + OpenMP, 24 GB vectors per module",
)
