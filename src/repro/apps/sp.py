"""NPB SP-MZ — Scalar Penta-diagonal multizone solver (Class E, MPI+OpenMP).

Behaviourally a sibling of BT-MZ (per-iteration zone-boundary
synchronisation, similar power profile, operable down to Cm = 50 W) but
with a well-predicted power expression — the paper reports SP's
calibration error within the normal <5 % band, and its headline VaPc
result (4.03X at 96 kW) shows the capping-based scheme at its best.
"""

from __future__ import annotations

from repro.apps.base import AppModel, CommSpec
from repro.hardware.power_model import PowerSignature

__all__ = ["SP"]

SP = AppModel(
    name="sp",
    # Calibrated so the Table 4 bands hold with margin at any seed:
    # natural module power ~82 W (> 80: "X" at Cm=80) and fmin floor
    # ~49.2 W (< 50: operable at Cm=50, the paper's 4.03X scenario).
    signature=PowerSignature(
        cpu_activity=0.60, dram_activity=0.22, dram_freq_coupling=1.0
    ),
    cpu_bound_fraction=0.78,
    iter_seconds_fmax=0.35,
    default_iters=200,
    comm=CommSpec(kind="neighbor", ndim=2, message_bytes=256 * 1024),
    residual_sigma_dyn=0.015,
    residual_sigma_dram=0.015,
    description="NPB SP-MZ Class E, hybrid MPI+OpenMP",
)
