"""Program builders for the event-driven simulator.

The paper's benchmarks are bulk-synchronous and run on the vectorised
:class:`~repro.simmpi.BspMachine`; these builders express the same
communication skeletons (and two non-BSP ones) as explicit per-rank
programs for :class:`~repro.simmpi.EventDrivenMachine` — useful for
validating the fast path and for studying codes the paper's model
cannot express (pipelines, master/worker).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.simmpi.eventsim import Allreduce, Compute, Recv, Send

__all__ = [
    "halo_exchange_program",
    "allreduce_program",
    "pipeline_program",
    "master_worker_program",
]


def halo_exchange_program(
    neighbors: np.ndarray,
    *,
    ghz_seconds: float,
    n_iters: int,
    message_bytes: float = 0.0,
) -> Callable[[int], Iterator]:
    """BSP halo exchange: compute, send to all neighbours, receive from all.

    Matches the :meth:`~repro.simmpi.BspMachine.sendrecv` semantics when
    transfer costs are negligible — the cross-validation tests rely on
    this equivalence.
    """
    nb = np.asarray(neighbors)
    if nb.ndim != 2:
        raise ConfigurationError("neighbors must be a (n_ranks, k) array")
    if n_iters <= 0 or ghz_seconds < 0:
        raise ConfigurationError("n_iters must be positive, work non-negative")

    def program(rank: int) -> Iterator:
        partners = [int(p) for p in nb[rank]]
        for it in range(n_iters):
            yield Compute(ghz_seconds)
            for p in partners:
                yield Send(p, tag=it, message_bytes=message_bytes)
            for p in partners:
                yield Recv(p, tag=it)

    return program


def allreduce_program(
    *,
    ghz_seconds: float,
    n_iters: int,
    message_bytes: float = 8.0,
) -> Callable[[int], Iterator]:
    """Compute + global reduction per iteration (mVMC-style)."""
    if n_iters <= 0 or ghz_seconds < 0:
        raise ConfigurationError("n_iters must be positive, work non-negative")

    def program(rank: int) -> Iterator:
        for _ in range(n_iters):
            yield Compute(ghz_seconds)
            yield Allreduce(message_bytes)

    return program


def pipeline_program(
    n_ranks: int,
    *,
    ghz_seconds_per_stage: float,
    n_items: int,
    message_bytes: float = 0.0,
) -> Callable[[int], Iterator]:
    """A software pipeline: rank r processes each item after rank r-1.

    Not expressible on the BSP machine (ranks are *not* doing the same
    superstep): stage r sits idle until the pipeline fills, then streams.
    """
    if n_ranks <= 0 or n_items <= 0:
        raise ConfigurationError("n_ranks and n_items must be positive")

    def program(rank: int) -> Iterator:
        for item in range(n_items):
            if rank > 0:
                yield Recv(rank - 1, tag=item)
            yield Compute(ghz_seconds_per_stage)
            if rank < n_ranks - 1:
                yield Send(rank + 1, tag=item, message_bytes=message_bytes)

    return program


def master_worker_program(
    n_ranks: int,
    *,
    task_ghz_seconds: float,
    n_tasks: int,
    message_bytes: float = 0.0,
) -> Callable[[int], Iterator]:
    """Static master/worker: rank 0 farms tasks round-robin to workers.

    Each worker receives its task assignments, computes, and returns a
    result; the master collects everything.  (Static assignment — the
    event simulator has no wildcard receive, matching deterministic
    replay semantics.)
    """
    if n_ranks < 2:
        raise ConfigurationError("master/worker needs at least 2 ranks")
    if n_tasks <= 0:
        raise ConfigurationError("n_tasks must be positive")
    n_workers = n_ranks - 1

    def program(rank: int) -> Iterator:
        if rank == 0:
            for task in range(n_tasks):
                yield Send(1 + task % n_workers, tag=task, message_bytes=message_bytes)
            for task in range(n_tasks):
                yield Recv(1 + task % n_workers, tag=n_tasks + task)
        else:
            my_tasks = [t for t in range(n_tasks) if 1 + t % n_workers == rank]
            for task in my_tasks:
                yield Recv(0, tag=task)
                yield Compute(task_ghz_seconds)
                yield Send(0, tag=n_tasks + task, message_bytes=message_bytes)

    return program
