"""NPB BT-MZ — Block Tri-diagonal multizone solver (Class E, MPI+OpenMP).

Two properties of BT matter for the paper's results:

* per-iteration zone-boundary exchanges synchronise neighbouring ranks,
  so under a cap its completion time tracks the slowest module (like
  MHD, unlike *DGEMM);
* it is the *worst-predicted* application: its per-module power
  expression deviates most from the *STREAM-derived PVT (~10 % error,
  Section 5.3), which is why VaPc visibly trails the oracle VaPcOr for
  BT in Fig 7.  We give it the largest expression residual.

Its moderate power draw (module ≈82 W at fmax, ≈49 W at fmin) keeps it
operable down to Cm = 50 W — the 96 kW column of Table 4 where the
paper's headline 5.4X VaFs speedup occurs.
"""

from __future__ import annotations

from repro.apps.base import AppModel, CommSpec
from repro.hardware.power_model import PowerSignature

__all__ = ["BT"]

BT = AppModel(
    name="bt",
    signature=PowerSignature(
        cpu_activity=0.60, dram_activity=0.21, dram_freq_coupling=1.0
    ),
    cpu_bound_fraction=0.80,
    iter_seconds_fmax=0.4,
    default_iters=200,
    comm=CommSpec(kind="neighbor", ndim=2, message_bytes=256 * 1024),
    residual_sigma_dyn=0.055,
    residual_sigma_dram=0.045,
    description="NPB BT-MZ Class E, hybrid MPI+OpenMP",
)
