"""Benchmark application models (paper Section 3.3).

Each application is characterised along the four axes that drive every
per-app difference in the paper's results:

1. **Power signature** — how hard it drives the CPU and DRAM domains
   (and how strongly DRAM traffic couples to CPU frequency);
2. **CPU-boundedness** — the fraction of compute time that scales with
   clock frequency;
3. **Communication pattern** — none (*DGEMM, *STREAM), a final reduction
   (EP), per-iteration halo exchanges (BT, SP, MHD), or per-iteration
   reductions (mVMC);
4. **Calibration residual** — how well the *STREAM-derived PVT predicts
   this app's per-module power (worst for NPB-BT: ~10 %, Section 5.3).

The registry exposes all seven benchmarks from the paper.
"""

from repro.apps.base import AppModel, CommSpec
from repro.apps.registry import APPS, get_app, list_apps

__all__ = ["AppModel", "CommSpec", "APPS", "get_app", "list_apps"]
