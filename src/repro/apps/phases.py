"""Phase-structured applications (paper §7: "analyzing their phase behavior").

Real applications alternate between compute-bound and memory-bound
*phases* within each iteration.  A single static α (the paper's scheme)
must budget for the aggregate profile; a phase-aware manager can re-solve
α per phase — running the memory phase (which draws less CPU power) at a
higher frequency under the *same* instantaneous budget.

:class:`AppPhase` describes one phase; :class:`PhasedApp` composes them
into an iterating application runnable on the BSP machine with
per-phase rates.  :mod:`repro.core.phase_budget` implements the
phase-aware planner on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.base import AppModel, CommSpec
from repro.cluster.topology import grid_dims, torus_neighbors
from repro.errors import ConfigurationError
from repro.hardware.power_model import PowerSignature
from repro.simmpi.machine import BspMachine
from repro.simmpi.tracing import RankTrace

__all__ = ["AppPhase", "PhasedApp", "GMRES_LIKE"]


@dataclass(frozen=True)
class AppPhase:
    """One phase of a phase-structured application."""

    name: str
    seconds_fmax: float
    cpu_bound_fraction: float
    signature: PowerSignature

    def __post_init__(self) -> None:
        if self.seconds_fmax <= 0:
            raise ConfigurationError("phase duration must be positive")
        if not (0.0 <= self.cpu_bound_fraction <= 1.0):
            raise ConfigurationError("cpu_bound_fraction must be in [0, 1]")


@dataclass(frozen=True)
class PhasedApp:
    """An application whose iterations cycle through distinct phases.

    Communication (if any) happens once per iteration, after the last
    phase — the common structure of solvers that compute several kernels
    then exchange halos.
    """

    name: str
    phases: tuple[AppPhase, ...]
    default_iters: int
    comm: CommSpec = field(default_factory=CommSpec)
    residual_sigma_dyn: float = 0.015
    residual_sigma_dram: float = 0.015

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("a PhasedApp needs at least one phase")
        if self.default_iters <= 0:
            raise ConfigurationError("default_iters must be positive")
        names = [p.name for p in self.phases]
        if len(set(names)) != len(names):
            raise ConfigurationError("phase names must be unique")
        # Phase boundaries need mid-run rate switches, which only the BSP
        # machine supports — non-BSP comm kinds cannot be phase-structured.
        if self.comm.kind not in ("none", "neighbor", "allreduce"):
            raise ConfigurationError(
                f"PhasedApp requires a BSP-expressible comm kind, "
                f"not {self.comm.kind!r}"
            )

    @property
    def iter_seconds_fmax(self) -> float:
        """Per-iteration time at fmax (sum of phases)."""
        return sum(p.seconds_fmax for p in self.phases)

    def phase_weights(self) -> np.ndarray:
        """Fraction of iteration time spent in each phase (at fmax)."""
        secs = np.array([p.seconds_fmax for p in self.phases])
        return secs / secs.sum()

    def aggregate_signature(self) -> PowerSignature:
        """Time-weighted average power signature (the static planner's view)."""
        w = self.phase_weights()
        return PowerSignature(
            cpu_activity=float(sum(wi * p.signature.cpu_activity for wi, p in zip(w, self.phases))),
            dram_activity=float(sum(wi * p.signature.dram_activity for wi, p in zip(w, self.phases))),
            dram_freq_coupling=float(
                sum(wi * p.signature.dram_freq_coupling for wi, p in zip(w, self.phases))
            ),
        )

    def phase_model(self, phase: AppPhase) -> AppModel:
        """A standalone AppModel for one phase (used for calibration)."""
        return AppModel(
            name=f"{self.name}/{phase.name}",
            signature=phase.signature,
            cpu_bound_fraction=phase.cpu_bound_fraction,
            iter_seconds_fmax=phase.seconds_fmax,
            default_iters=self.default_iters,
            comm=CommSpec(kind="none"),
            residual_sigma_dyn=self.residual_sigma_dyn,
            residual_sigma_dram=self.residual_sigma_dram,
        )

    def as_static_app(self) -> AppModel:
        """The whole app flattened to one aggregate AppModel.

        This is what a phase-blind planner (the paper's static scheme)
        budgets for: one signature, one κ.
        """
        w = self.phase_weights()
        kappa = float(sum(wi * p.cpu_bound_fraction for wi, p in zip(w, self.phases)))
        return AppModel(
            name=self.name,
            signature=self.aggregate_signature(),
            cpu_bound_fraction=kappa,
            iter_seconds_fmax=self.iter_seconds_fmax,
            default_iters=self.default_iters,
            comm=self.comm,
            residual_sigma_dyn=self.residual_sigma_dyn,
            residual_sigma_dram=self.residual_sigma_dram,
        )

    def run(
        self,
        rates_per_phase: np.ndarray,
        fmax_ghz: float,
        *,
        n_iters: int | None = None,
        latency_s: float = 5e-6,
        bandwidth_gbps: float = 5.0,
    ) -> RankTrace:
        """Simulate with per-phase per-rank rates.

        ``rates_per_phase`` has shape ``(n_phases, n_ranks)`` — a
        phase-aware power manager switches the operating point at phase
        boundaries, so each phase may run at its own frequency.
        """
        iters = self.default_iters if n_iters is None else int(n_iters)
        if iters <= 0:
            raise ConfigurationError("n_iters must be positive")
        rates = np.asarray(rates_per_phase, dtype=float)
        if rates.ndim != 2 or rates.shape[0] != len(self.phases):
            raise ConfigurationError(
                f"rates_per_phase must have shape (n_phases={len(self.phases)}, "
                f"n_ranks); got {rates.shape}"
            )
        n_ranks = rates.shape[1]
        machine = BspMachine(
            rates[0], latency_s=latency_s, bandwidth_gbps=bandwidth_gbps
        )
        neighbors = (
            torus_neighbors(grid_dims(n_ranks, self.comm.ndim))
            if self.comm.kind == "neighbor"
            else None
        )
        for _ in range(iters):
            for phase, phase_rates in zip(self.phases, rates):
                machine.set_rates(phase_rates)
                kappa = phase.cpu_bound_fraction
                machine.compute(kappa * phase.seconds_fmax * fmax_ghz)
                if kappa < 1.0:
                    machine.elapse((1.0 - kappa) * phase.seconds_fmax)
            if self.comm.kind == "neighbor":
                machine.sendrecv(neighbors, self.comm.message_bytes)
            elif self.comm.kind == "allreduce":
                machine.allreduce(max(self.comm.message_bytes, 8.0))
        return machine.trace()


#: A Krylov-solver-like example: a compute-heavy kernel phase, a
#: bandwidth-saturated sparse phase, and a light orthogonalisation
#: phase, with a per-iteration reduction.
GMRES_LIKE = PhasedApp(
    name="gmres-like",
    phases=(
        AppPhase(
            "spmv",
            seconds_fmax=0.35,
            cpu_bound_fraction=0.45,
            signature=PowerSignature(0.55, 0.85, dram_freq_coupling=0.35),
        ),
        AppPhase(
            "kernel",
            seconds_fmax=0.40,
            cpu_bound_fraction=0.95,
            signature=PowerSignature(0.92, 0.20, dram_freq_coupling=1.0),
        ),
        AppPhase(
            "ortho",
            seconds_fmax=0.15,
            cpu_bound_fraction=0.75,
            signature=PowerSignature(0.70, 0.35, dram_freq_coupling=0.8),
        ),
    ),
    default_iters=120,
    comm=CommSpec(kind="allreduce", message_bytes=4096),
)
