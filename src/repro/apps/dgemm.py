"""*DGEMM — compute-bound matrix multiply (HPC Challenge / HPL kernel).

The paper runs the thread-parallelised Intel MKL DGEMM with a
12,288×12,288 matrix per module.  Characteristics that matter here:

* near-peak CPU activity (calibrated so a nominal HA8K module draws
  ≈100.8 W CPU / ≈112.8 W module at fmax, matching Fig 2(i));
* almost fully CPU-bound (κ = 0.97) — capping translates nearly 1:1
  into slowdown;
* embarrassingly parallel across MPI ranks: *no* synchronisation, so
  per-rank times diverge freely and Vt reaches 1.64 at Cm = 70 W
  (Fig 2(iii)).
"""

from __future__ import annotations

from repro.apps.base import AppModel, CommSpec
from repro.hardware.power_model import PowerSignature

__all__ = ["DGEMM"]

DGEMM = AppModel(
    name="dgemm",
    signature=PowerSignature(
        cpu_activity=0.941, dram_activity=0.25, dram_freq_coupling=1.0
    ),
    cpu_bound_fraction=0.97,
    iter_seconds_fmax=4.0,
    default_iters=20,
    comm=CommSpec(kind="none"),
    residual_sigma_dyn=0.012,
    residual_sigma_dram=0.012,
    description="HPCC *DGEMM, MKL thread-parallel, 12288x12288 per module",
)
