"""Registry of the paper's seven benchmarks."""

from __future__ import annotations

from repro.apps.base import AppModel
from repro.apps.bt import BT
from repro.apps.dgemm import DGEMM
from repro.apps.ep import EP
from repro.apps.mhd import MHD
from repro.apps.mvmc import MVMC
from repro.apps.sp import SP
from repro.apps.stream import STREAM
from repro.errors import ConfigurationError

__all__ = ["APPS", "get_app", "list_apps"]

#: All benchmarks, keyed by name.
APPS: dict[str, AppModel] = {
    app.name: app for app in (DGEMM, STREAM, EP, BT, SP, MHD, MVMC)
}


def get_app(name: str) -> AppModel:
    """Look up a benchmark by name (case-insensitive, '*' prefix ignored)."""
    key = name.lower().lstrip("*")
    try:
        return APPS[key]
    except KeyError:
        known = ", ".join(sorted(APPS))
        raise ConfigurationError(f"unknown application {name!r}; known: {known}") from None


def list_apps() -> list[str]:
    """Names of all registered benchmarks, sorted."""
    return sorted(APPS)
