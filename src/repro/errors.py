"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch
everything raised by this package with a single ``except`` clause while
still being able to discriminate specific failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A system, application, or scheme was configured inconsistently."""


class InfeasibleBudgetError(ReproError):
    """The requested power budget cannot be met even at minimum frequency.

    Corresponds to the "--" entries of Table 4 in the paper: the modules
    under consideration cannot be operated even with the minimum CPU
    frequency under the given system-level power constraint.
    """

    def __init__(self, budget_w: float, floor_w: float, message: str | None = None):
        self.budget_w = float(budget_w)
        self.floor_w = float(floor_w)
        if message is None:
            message = (
                f"power budget {budget_w:.1f} W is below the minimum-frequency "
                f"floor {floor_w:.1f} W; modules cannot be operated (Table 4 '--')"
            )
        super().__init__(message)


class MeasurementError(ReproError):
    """A power-measurement interface was used outside its capabilities."""


class CappingUnsupportedError(MeasurementError):
    """Power capping was requested on a meter that cannot enforce caps.

    Of the three techniques in Table 1 of the paper, only RAPL supports
    capping; EMON and PowerInsight are measurement-only.
    """


class MSRAccessError(ReproError):
    """An MSR address was read or written that the emulated CPU lacks."""


class SchedulerError(ReproError):
    """The job scheduler could not satisfy an allocation request."""


class SimulationError(ReproError):
    """The discrete-event application simulator reached an invalid state."""
