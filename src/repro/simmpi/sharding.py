"""Shard planning for the 2-D ``(n_configs, n_ranks)`` fast path.

The batched executor streams ~20 fleet-sized float64 arrays per
superstep (clocks, the four accumulators, snapshot/delta/prev quads,
sync scratch, detector scratch).  Once the per-superstep working set
outgrows the CPU caches, every numpy op becomes a DRAM-bandwidth-bound
pass and throughput falls off a cliff — the 50k→100k-module drop in
``BENCH_fleet.json``.  The fix is tiling: split the plane into blocks
whose working set fits a cache-sized budget and make few fused passes
per superstep instead of one full-plane pass per op.

This module is the pure planning half: geometry and sizing only, no
execution.  :func:`plan_shards` turns a plane shape plus optional user
knobs into a :class:`ShardPlan` — a row-block height and a tuple of
column-tile boundaries that together cover the plane exactly once.  The
executor half lives in :mod:`repro.simmpi.fastpath`
(``run_fast_sharded``), which consumes plans and guarantees bit-identity
with the unsharded path (ARCHITECTURE.md invariant 8).

Row blocks are free parallelism (configs are independent), so the
planner prefers keeping all configs together and splitting columns;
rows split only when the config axis alone overflows the budget.
Column tiles are balanced to within one rank so no shard straggles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.util.topology import NumaTopology, effective_cpu_count

__all__ = [
    "BYTES_PER_ELEMENT",
    "DEFAULT_TARGET_BYTES",
    "SHARD_MODES",
    "ShardPlan",
    "ShardSpec",
    "plan_shards",
]

#: How a plan's shards execute: ``"threads"`` runs column tiles on an
#: in-process thread pool (:func:`~repro.simmpi.fastpath.run_fast_sharded`);
#: ``"processes"`` distributes row blocks over a persistent worker-process
#: pool attached to the plane via shared memory
#: (:mod:`repro.simmpi.procshard`).  A mode is execution layout only —
#: results are bit-identical either way (ARCHITECTURE.md invariants 8/9).
SHARD_MODES = ("threads", "processes")

#: Per-plane-element working-set footprint of one sharded superstep:
#: ~22 live float64 arrays (machine state ×4, rates, snapshot/delta/prev
#: quads ×12, ready, cached dt, detector + sync scratch ×3).
BYTES_PER_ELEMENT = 176

#: Default per-tile working-set budget.  Sized to sit inside a shared
#: L3 slice with room for the interpreter; ~48k plane elements at
#: :data:`BYTES_PER_ELEMENT`.  Override per-process with the
#: ``REPRO_SHARD_TARGET_BYTES`` environment variable or per-call via
#: :class:`ShardSpec`/:func:`plan_shards`.
DEFAULT_TARGET_BYTES = 8 * 1024 * 1024

_TARGET_ENV = "REPRO_SHARD_TARGET_BYTES"


def _resolve_target_bytes(
    target_bytes: int | None, topology: NumaTopology | None = None
) -> int:
    if target_bytes is None:
        raw = os.environ.get(_TARGET_ENV)
        if raw is None:
            return _default_target_bytes(topology)
        try:
            target_bytes = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{_TARGET_ENV} must be an integer byte count; got {raw!r}"
            ) from None
        if target_bytes <= 0:
            raise ConfigurationError(
                f"{_TARGET_ENV} must be a positive byte count; got {raw!r}"
            )
    if target_bytes <= 0:
        raise ConfigurationError("shard working-set budget must be positive")
    return int(target_bytes)


def _default_target_bytes(topology: NumaTopology | None) -> int:
    """The auto tiling budget: :data:`DEFAULT_TARGET_BYTES`, shrunk when
    a probed per-node LLC says even that would thrash.  The default is a
    *cap*, never raised, so machines whose LLC sysfs is absent (or huge)
    plan exactly as before."""
    if topology is None or topology.llc_bytes is None:
        return DEFAULT_TARGET_BYTES
    # Budget for the per-node working set: half the node's LLC, leaving
    # the other half for the interpreter, rate planes, and neighbours.
    per_node = max(BYTES_PER_ELEMENT, topology.llc_bytes // 2)
    return min(DEFAULT_TARGET_BYTES, per_node)


@dataclass(frozen=True)
class ShardPlan:
    """A validated tiling of one ``(n_configs, n_ranks)`` plane.

    ``col_bounds`` holds the column-tile edges ``(0, …, n_ranks)`` —
    tile *t* spans ``[col_bounds[t], col_bounds[t+1])`` — and
    ``row_block`` the maximum configs per row block, so the blocks are
    ``[0, row_block), [row_block, 2·row_block), …``.  Together the tiles
    partition the plane: every element belongs to exactly one
    (row block, column tile) pair.
    """

    n_configs: int
    n_ranks: int
    row_block: int
    col_bounds: tuple[int, ...]
    n_workers: int

    def __post_init__(self) -> None:
        if self.n_configs <= 0 or self.n_ranks <= 0:
            raise ConfigurationError("plane dimensions must be positive")
        if not 1 <= self.row_block <= self.n_configs:
            raise ConfigurationError(
                f"row_block must be in [1, {self.n_configs}]; "
                f"got {self.row_block}"
            )
        if self.n_workers <= 0:
            raise ConfigurationError("n_workers must be positive")
        b = self.col_bounds
        if len(b) < 2 or b[0] != 0 or b[-1] != self.n_ranks:
            raise ConfigurationError(
                f"col_bounds must run 0..{self.n_ranks}; got {b}"
            )
        if any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ConfigurationError(
                f"col_bounds must be strictly increasing; got {b}"
            )

    @property
    def n_col_shards(self) -> int:
        """Column tiles per row block."""
        return len(self.col_bounds) - 1

    @property
    def n_row_blocks(self) -> int:
        """Row blocks covering the config axis."""
        return -(-self.n_configs // self.row_block)

    @property
    def is_unsharded(self) -> bool:
        """Whether the plan is the whole plane in one piece — the
        executor routes such plans straight to the unsharded path."""
        return self.n_col_shards == 1 and self.row_block >= self.n_configs

    def col_tiles(self) -> tuple[tuple[int, int], ...]:
        """``(start, stop)`` column ranges, left to right."""
        b = self.col_bounds
        return tuple((b[i], b[i + 1]) for i in range(len(b) - 1))

    def row_blocks(self) -> tuple[tuple[int, int], ...]:
        """``(start, stop)`` config-row ranges, top to bottom."""
        return tuple(
            (r, min(r + self.row_block, self.n_configs))
            for r in range(0, self.n_configs, self.row_block)
        )


def _balanced_bounds(n_ranks: int, width_cap: int) -> tuple[int, ...]:
    """Tile edges for ``n_ranks`` columns with tiles ≤ ``width_cap``,
    balanced to within one rank so no tile straggles."""
    n_tiles = -(-n_ranks // width_cap)
    base, extra = divmod(n_ranks, n_tiles)
    bounds = [0]
    for t in range(n_tiles):
        bounds.append(bounds[-1] + base + (1 if t < extra else 0))
    return tuple(bounds)


def plan_shards(
    n_configs: int,
    n_ranks: int,
    *,
    shard_ranks: int | None = None,
    shard_workers: int | None = None,
    target_bytes: int | None = None,
    topology: NumaTopology | None = None,
) -> ShardPlan:
    """Tile a plane to the working-set budget (or explicit knobs).

    Auto mode (no ``shard_ranks``): a plane that fits the budget stays
    unsharded; otherwise configs are kept together (rows split only if
    the config axis alone overflows) and columns are cut into balanced
    tiles whose ``rows × width`` working set meets the budget.

    ``shard_ranks`` forces fixed-width column tiles (clamped to
    ``[1, n_ranks]``; the last tile takes the remainder) — the
    deterministic shape the differential suite drives through adversarial
    boundaries.  ``shard_workers`` caps the thread-pool width; it
    defaults to ``min(effective CPUs, column tiles)`` (the affinity-aware
    count — a ``taskset``/cgroup-restricted process plans for the cores
    it may actually use).

    ``topology`` makes the auto geometry locality-aware: the tiling
    budget is sized to the probed per-node LLC (never above the default)
    and, on multi-node machines, the config axis is split so every node
    can own whole row blocks.  Like every shard knob this changes
    execution layout only — the plan's tiles still cover the plane
    exactly once and results are bit-identical (invariants 8/9/11).
    """
    if n_configs <= 0 or n_ranks <= 0:
        raise ConfigurationError("plane dimensions must be positive")
    if shard_workers is not None and shard_workers <= 0:
        raise ConfigurationError("shard_workers must be positive")

    if shard_ranks is not None:
        if shard_ranks <= 0:
            raise ConfigurationError("shard_ranks must be positive")
        width = min(int(shard_ranks), n_ranks)
        bounds = tuple(range(0, n_ranks, width)) + (n_ranks,)
        row_block = n_configs
    else:
        budget = _resolve_target_bytes(target_bytes, topology) // BYTES_PER_ELEMENT
        budget = max(1, budget)
        if n_configs * n_ranks <= budget:
            row_block, bounds = n_configs, (0, n_ranks)
        else:
            row_block = min(n_configs, budget)
            width_cap = max(1, budget // row_block)
            if n_ranks <= width_cap:
                bounds = (0, n_ranks)
            else:
                bounds = _balanced_bounds(n_ranks, width_cap)
        if (
            topology is not None
            and topology.n_nodes > 1
            and n_configs >= topology.n_nodes
            and -(-n_configs // row_block) < topology.n_nodes
        ):
            # Node alignment: enough row blocks that each NUMA node can
            # own at least one whole block (rows are independent, so
            # splitting them finer is free — invariant 7).
            row_block = max(1, -(-n_configs // topology.n_nodes))

    n_tiles = len(bounds) - 1
    if shard_workers is not None:
        workers = min(int(shard_workers), n_tiles)
    else:
        available = (
            topology.n_cpus if topology is not None else effective_cpu_count()
        )
        workers = min(available, n_tiles)
    return ShardPlan(
        n_configs=n_configs,
        n_ranks=n_ranks,
        row_block=row_block,
        col_bounds=bounds,
        n_workers=max(1, workers),
    )


@dataclass(frozen=True)
class ShardSpec:
    """User-facing shard knobs, independent of any plane shape.

    A spec travels through the runner/engine/CLI layers (never into a
    :class:`~repro.exec.cache.RunKey` — sharding cannot change results,
    so it must not change digests) and resolves to a concrete
    :class:`ShardPlan` per run via :meth:`plan`.  The default spec is
    pure auto-tuning.

    ``mode`` picks the executor (:data:`SHARD_MODES`): ``"threads"``
    (default) tiles within one process, ``"processes"`` spreads row
    blocks across a worker-process pool over a shared-memory plane.
    The geometry (:meth:`plan`) is mode-independent.
    """

    shard_ranks: int | None = None
    shard_workers: int | None = None
    target_bytes: int | None = None
    mode: str = "threads"

    def __post_init__(self) -> None:
        if self.mode not in SHARD_MODES:
            raise ConfigurationError(
                f"shard mode must be one of {SHARD_MODES}; got {self.mode!r}"
            )

    def plan(self, n_configs: int, n_ranks: int) -> ShardPlan:
        """The concrete plan for one plane shape."""
        return plan_shards(
            n_configs,
            n_ranks,
            shard_ranks=self.shard_ranks,
            shard_workers=self.shard_workers,
            target_bytes=self.target_bytes,
        )
