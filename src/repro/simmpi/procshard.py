"""Cross-process sharded execution of the batched ``(n_configs, n_ranks)`` plane.

The thread-sharded executor (:func:`~repro.simmpi.fastpath.run_fast_sharded`)
runs one row block at a time and parallelises only the column tiles
inside it — per-tile Python dispatch and the GIL cap how much of a
multi-socket box one process can use.  This module is the next scale
step (ROADMAP "cross-process sharding"): the plane itself is exported as
a named POSIX shared-memory segment and a persistent pool of worker
*processes* executes :class:`~repro.simmpi.sharding.ShardPlan` row
blocks in-place on attached views.

Why row blocks are the right unit: config rows never interact
(ARCHITECTURE.md invariant 7), so the invariant-8 superstep reduction —
partial row maxima combined by ``np.max`` and ANDed detector verdicts —
closes *within* a row block.  A worker therefore runs the exact same
fused tile passes the thread-sharded executor runs for that block, with
zero per-superstep IPC, and the only cross-process protocol is the
shared plane itself: the parent owns the segment (creates, unlinks),
writes the rates plane once, and each worker writes the four trace
accumulators for its disjoint row range.  Traces assembled from the
plane are bit-identical to the unsharded and thread-sharded paths —
ARCHITECTURE.md invariant 9, proven adversarially by
``tests/simmpi/test_procshard_differential.py``.

Lifecycle robustness: the pool is created lazily and reused across
runs; a worker death (:class:`BrokenProcessPool`), a stuck worker
(``REPRO_PROCSHARD_TIMEOUT_S``, default 900 s), or any other dispatch
failure tears the pool down, destroys the segment, and falls back to
in-process thread sharding — the caller sees correct results either
way, and the segment is unlinked on every path so ``/dev/shm`` never
leaks (leak-checked by ``tests/simmpi/conftest.py``).  Per-block wall
times measured inside the workers are recorded into the *parent's*
telemetry collector as backdated spans (``sim.procshard.block``).
"""

from __future__ import annotations

import atexit
import gc
import os
import pickle
import signal
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, replace
from multiprocessing import get_context, parent_process, shared_memory
from time import perf_counter

import numpy as np

import repro.telemetry as telemetry
from repro.errors import ConfigurationError
from repro.simmpi.sharding import ShardPlan, plan_shards
from repro.simmpi.tracing import RankTrace
from repro.util.shm import attach_block
from repro.util.topology import NumaTopology, cpu_budget

__all__ = [
    "SharedPlane",
    "export_plane",
    "export_plane_split",
    "attach_plane",
    "destroy_plane",
    "run_fast_procshard",
    "reset_pool",
]

#: Segment layout, in plane order: the read-only input plane, then the
#: four trace accumulators workers fill (the
#: :class:`~repro.simmpi.machine.BatchedBspMachine` state fields), then
#: the pickled :class:`~repro.simmpi.fastpath.BspProgram` bytes.
_PLANE_FIELDS = ("rates", "clock", "compute", "wait", "comm")

#: Wall-clock budget for one pooled run before falling back in-process.
_TIMEOUT_ENV = "REPRO_PROCSHARD_TIMEOUT_S"
_DEFAULT_TIMEOUT_S = 900.0

#: Test-only fault hook, read inside the worker: ``"kill"`` SIGKILLs the
#: worker mid-block (exercises the BrokenProcessPool fallback), ``"hang"``
#: sleeps past any timeout (exercises the timeout fallback).
_FAULT_ENV = "REPRO_PROCSHARD_FAULT"

#: Worker pinning override: ``"1"`` forces :func:`os.sched_setaffinity`
#: pinning in the pool initializer, ``"0"`` disables it.  Default: pin
#: whenever the platform supports it.  Placement only — results are
#: bit-identical either way (ARCHITECTURE.md invariant 11).
_PIN_ENV = "REPRO_PROCSHARD_PIN"


def _timeout_s() -> float:
    raw = os.environ.get(_TIMEOUT_ENV)
    if raw is None:
        return _DEFAULT_TIMEOUT_S
    try:
        timeout = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{_TIMEOUT_ENV} must be a positive number of seconds; got {raw!r}"
        ) from None
    if timeout <= 0:
        raise ConfigurationError(
            f"{_TIMEOUT_ENV} must be a positive number of seconds; got {raw!r}"
        )
    return timeout


def _pin_default() -> bool:
    raw = os.environ.get(_PIN_ENV)
    if raw is None:
        return hasattr(os, "sched_setaffinity")
    if raw not in ("0", "1"):
        raise ConfigurationError(f"{_PIN_ENV} must be '0' or '1'; got {raw!r}")
    return raw == "1"


@dataclass(frozen=True)
class SharedPlane:
    """Picklable handle for one exported ``(n_configs, n_ranks)`` plane.

    Ownership contract (invariant 9): the exporting process owns the
    segment — it creates it, is the only writer of the ``rates`` plane
    and the program bytes, and must eventually call
    :func:`destroy_plane`.  Workers attach read-only to ``rates``, and
    each writes only its assigned row range of the four output planes.

    A handle may describe a *segment* of a larger plane
    (:func:`export_plane_split`): ``row0`` is the segment's global
    config-row offset and ``n_configs`` the rows it holds, so workers
    translate the plan's global row ranges to segment-local ones.
    ``group`` ties the segments of one run together — the worker-side
    attach cache evicts by group, not by name, so a worker serving two
    node-local segments of the same run keeps both mapped.
    """

    shm_name: str
    n_configs: int
    n_ranks: int
    prog_len: int
    row0: int = 0
    group: str = ""

    @property
    def plane_bytes(self) -> int:
        """Bytes of one ``(n_configs, n_ranks)`` float64 plane."""
        return self.n_configs * self.n_ranks * np.dtype(np.float64).itemsize


def _plane_view(
    shm: shared_memory.SharedMemory, handle: SharedPlane, index: int
) -> np.ndarray:
    return np.ndarray(
        (handle.n_configs, handle.n_ranks),
        dtype=np.float64,
        buffer=shm.buf,
        offset=index * handle.plane_bytes,
    )


#: Exporter-side open segments: name -> (mapping, creator pid).  The pid
#: keeps a fork-inherited copy of this registry from unlinking segments
#: the child never owned.
_OWNED: dict[str, tuple[shared_memory.SharedMemory, int]] = {}

#: Worker-side attachments: one (mapping, rates, outputs, program,
#: group) per segment name.  Every run exports a fresh segment group, so
#: stale entries are evicted as soon as a segment of a newer group
#: attaches — same-group siblings (node-local segments of one run) stay
#: mapped together.
_ATTACHED: dict[
    str,
    tuple[
        shared_memory.SharedMemory, np.ndarray, dict[str, np.ndarray], object, str
    ],
] = {}

#: Monotonic per-process sequence for segment-group ids.
_GROUP_SEQ = 0


def _next_group() -> str:
    global _GROUP_SEQ
    _GROUP_SEQ += 1
    return f"{os.getpid()}.{_GROUP_SEQ}"


def _export_segment(
    rows: np.ndarray, blob: bytes, row0: int, group: str
) -> SharedPlane:
    plane = rows.shape[0] * rows.shape[1] * np.dtype(np.float64).itemsize
    shm = shared_memory.SharedMemory(
        create=True, size=len(_PLANE_FIELDS) * plane + len(blob)
    )
    try:
        handle = SharedPlane(
            shm_name=shm.name,
            n_configs=int(rows.shape[0]),
            n_ranks=int(rows.shape[1]),
            prog_len=len(blob),
            row0=int(row0),
            group=group,
        )
        np.copyto(_plane_view(shm, handle, 0), rows)
        shm.buf[len(_PLANE_FIELDS) * plane:len(_PLANE_FIELDS) * plane + len(blob)] = blob
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    _OWNED[handle.shm_name] = (shm, os.getpid())
    return handle


def _validated_rates(rates: np.ndarray) -> np.ndarray:
    r = np.ascontiguousarray(rates, dtype=np.float64)
    if r.ndim != 2 or r.size == 0:
        raise ConfigurationError(
            f"rates must be a non-empty (n_configs, n_ranks) array; got {r.shape}"
        )
    return r


def export_plane(rates: np.ndarray, program) -> SharedPlane:
    """Export a rates plane plus its program as one shared segment.

    The four output planes start zero-filled (fresh POSIX segments are
    zero pages) and are populated by the workers; the parent reads them
    back through :func:`plane_views` once the pool has drained.
    """
    r = _validated_rates(rates)
    blob = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
    return _export_segment(r, blob, 0, _next_group())


def export_plane_split(
    rates: np.ndarray, program, row_bounds: tuple[int, ...] | None = None
) -> tuple[SharedPlane, ...]:
    """Export one plane as per-node row segments sharing a group.

    ``row_bounds`` are global config-row edges ``(0, …, n_configs)``;
    each ``[row_bounds[i], row_bounds[i+1])`` range becomes its own
    self-contained segment (rates rows + zeroed outputs + program blob),
    so workers bound to a NUMA node fault node-local pages only.  With
    ``None`` (or two bounds) this is exactly :func:`export_plane` in a
    one-element tuple.  Splitting is placement only: traces assembled
    from the segments are bit-identical to the single-segment path
    (invariant 11).
    """
    r = _validated_rates(rates)
    if row_bounds is None:
        row_bounds = (0, r.shape[0])
    b = tuple(int(x) for x in row_bounds)
    if (
        len(b) < 2
        or b[0] != 0
        or b[-1] != r.shape[0]
        or any(b[i] >= b[i + 1] for i in range(len(b) - 1))
    ):
        raise ConfigurationError(
            f"row_bounds must run 0..{r.shape[0]} strictly increasing; got {b}"
        )
    blob = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
    group = _next_group()
    handles: list[SharedPlane] = []
    try:
        for b0, b1 in zip(b, b[1:]):
            handles.append(_export_segment(r[b0:b1], blob, b0, group))
    except BaseException:
        for h in handles:
            destroy_plane(h)
        raise
    return tuple(handles)


def plane_views(handle: SharedPlane) -> dict[str, np.ndarray]:
    """The exporter's views of every plane (rates + the four outputs)."""
    owned = _OWNED.get(handle.shm_name)
    if owned is None:
        raise ConfigurationError(
            f"plane {handle.shm_name!r} is not owned by this process"
        )
    shm = owned[0]
    return {
        field: _plane_view(shm, handle, i)
        for i, field in enumerate(_PLANE_FIELDS)
    }


def attach_plane(
    handle: SharedPlane,
) -> tuple[np.ndarray, dict[str, np.ndarray], object]:
    """Worker-side attach: (read-only rates, writable outputs, program).

    Cached per segment name — a worker executing several row blocks of
    one segment maps and unpickles once.  Eviction is by *group*:
    segments of older runs go on the first attach of a newer group,
    while same-group siblings (the node-local segments of one split
    plane) coexist in the cache.
    """
    cached = _ATTACHED.get(handle.shm_name)
    if cached is not None:
        return cached[1], cached[2], cached[3]
    shm = attach_block(handle.shm_name)
    rates = _plane_view(shm, handle, 0)
    rates.flags.writeable = False
    outs = {
        field: _plane_view(shm, handle, i)
        for i, field in enumerate(_PLANE_FIELDS)
        if field != "rates"
    }
    base = len(_PLANE_FIELDS) * handle.plane_bytes
    program = pickle.loads(bytes(shm.buf[base:base + handle.prog_len]))
    stale = [
        name for name, entry in _ATTACHED.items() if entry[4] != handle.group
    ]
    while stale:
        old_shm, old_rates, old_outs, old_prog, _old_group = _ATTACHED.pop(
            stale.pop()
        )
        del old_rates, old_outs, old_prog
        gc.collect()
        try:
            old_shm.close()
        except BufferError:  # a view escaped; GC will finish the close
            pass
    _ATTACHED[handle.shm_name] = (shm, rates, outs, program, handle.group)
    return rates, outs, program


def destroy_plane(handle: SharedPlane) -> None:
    """Release the exporter's mapping and unlink the segment.

    Safe while workers still hold mappings (POSIX keeps them valid);
    new attaches fail afterwards, which is the point.  Idempotent.
    """
    owned = _OWNED.pop(handle.shm_name, None)
    if owned is None:
        return
    shm = owned[0]
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # already unlinked (double destroy)
        pass


# -- the worker side -----------------------------------------------------------

#: Worker-process-local thread pool for column tiles, sized on demand.
_W_POOL: ThreadPoolExecutor | None = None
_W_POOL_WIDTH = 0


def _worker_thread_pool(threads: int) -> ThreadPoolExecutor | None:
    global _W_POOL, _W_POOL_WIDTH
    if threads <= 1:
        return None
    if _W_POOL is None or _W_POOL_WIDTH < threads:
        if _W_POOL is not None:
            _W_POOL.shutdown(wait=True)
        _W_POOL = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-procshard"
        )
        _W_POOL_WIDTH = threads
    return _W_POOL


def _worker_init(pin_q=None) -> None:
    """Pool-process initializer.

    A forked worker inherits the parent's telemetry collector and
    shared-memory registries; recording into the former would be lost
    (and could contend on inherited locks), and the latter describe
    segments this process does not own.  Drop both.

    With ``pin_q`` (a queue holding one :class:`~repro.util.topology`
    CPU slice per worker) the worker pins itself to its slice — but only
    to CPUs inside its *inherited* affinity mask, so a worker forked
    from an engine pool that was itself pinned stays within the parent's
    grant rather than escaping it.  An empty intersection (or a platform
    without affinity support) skips pinning entirely: placement may
    never fail a run.
    """
    telemetry.disable()
    _OWNED.clear()
    _ATTACHED.clear()
    if pin_q is None:
        return
    try:
        cpus = tuple(pin_q.get(timeout=10.0))
        allowed = set(os.sched_getaffinity(0))
    except Exception:  # queue drained / no affinity support
        return
    target = set(cpus) & allowed
    if target:
        try:
            os.sched_setaffinity(0, target)
        except OSError:  # pragma: no cover - mask raced with a cgroup change
            pass


def _current_cpu() -> int:
    """The CPU this process is executing on (``-1`` when unknowable).

    Field 39 of ``/proc/self/stat`` — split after the last ``)`` so a
    process name containing spaces or parentheses cannot shift fields.
    """
    try:
        with open("/proc/self/stat", "rb") as f:
            stat = f.read().decode("ascii", "replace")
        return int(stat.rsplit(")", 1)[1].split()[36])
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        return -1


def _run_block(
    handle: SharedPlane,
    latency_s: float,
    bandwidth_gbps: float,
    col_bounds: tuple[int, ...],
    r0: int,
    r1: int,
    threads: int,
) -> tuple[int, int, float, int, int]:
    """Execute global rows ``[r0, r1)`` in-place on the attached segment.

    This is byte-for-byte the per-row-block body of
    ``run_fast_sharded``: a machine over the block's rates rows, the
    fused tile passes over the plan's column tiles (or the plain batched
    walk for a single tile), then the four accumulators written into the
    output planes.  The handle may be a node-local segment of a split
    plane, so global rows are translated by ``handle.row0`` before
    indexing.  Returns ``(r0, r1, wall_s, pid, cpu)`` for the parent's
    backdated telemetry spans and placement gauges.
    """
    fault = os.environ.get(_FAULT_ENV)
    if fault == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault == "hang":
        time.sleep(3600.0)
    t0 = perf_counter()
    from repro.simmpi import fastpath

    rates, outs, program = attach_plane(handle)
    lr0, lr1 = r0 - handle.row0, r1 - handle.row0
    machine = fastpath.BatchedBspMachine(
        rates[lr0:lr1], latency_s=latency_s, bandwidth_gbps=bandwidth_gbps
    )
    tiles = tuple(
        (col_bounds[i], col_bounds[i + 1]) for i in range(len(col_bounds) - 1)
    )
    if len(tiles) == 1:
        fastpath._exec_ops_batched(machine, program.ops)
    else:
        busy = [0.0] * len(tiles)
        fastpath._exec_ops_sharded(
            fastpath._ShardedExec(
                machine, tiles, _worker_thread_pool(threads), busy
            ),
            program.ops,
        )
    outs["clock"][lr0:lr1] = machine.clock_s
    outs["compute"][lr0:lr1] = machine._compute_s
    outs["wait"][lr0:lr1] = machine._wait_s
    outs["comm"][lr0:lr1] = machine._comm_s
    return r0, r1, perf_counter() - t0, os.getpid(), _current_cpu()


# -- the parent side -----------------------------------------------------------

#: The persistent worker-process pool, grown (never shrunk) on demand.
_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0
_POOL_PINNED = False
#: The pool's outstanding :class:`~repro.util.topology.CpuLease`, held
#: for the pool's lifetime so composed engine pools see these cores as
#: claimed in the process-wide budget.
_POOL_LEASE = None
#: Last CPU each worker pid was observed on (parent side), for the
#: ``sim.procshard.migrations`` counter.
_LAST_CPU: dict[int, int] = {}


def _get_pool(n_workers: int, pin: bool = False) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS, _POOL_PINNED, _POOL_LEASE
    if (
        _POOL is not None
        and _POOL_WORKERS >= n_workers
        and _POOL_PINNED == pin
    ):
        return _POOL
    reset_pool()
    try:
        ctx = get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        ctx = get_context()
    initargs: tuple = ()
    if pin:
        # Claim node-aware CPU slices from the process-wide ledger and
        # ship one to each worker through a queue consumed exactly once
        # per initializer run.
        _POOL_LEASE = cpu_budget().claim(n_workers, label="procshard")
        pin_q = ctx.Queue()
        for s in _POOL_LEASE.slices:
            pin_q.put(tuple(s))
        initargs = (pin_q,)
    _POOL = ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=ctx,
        initializer=_worker_init,
        initargs=initargs,
    )
    _POOL_WORKERS = n_workers
    _POOL_PINNED = pin
    return _POOL


def reset_pool() -> None:
    """Tear the worker pool down (it is rebuilt lazily on next use).

    Called on every fallback so a broken or wedged pool cannot poison
    later runs; hung workers are terminated best-effort rather than
    waited on.  Releases the pool's CPU lease back to the budget.
    """
    global _POOL, _POOL_WORKERS, _POOL_PINNED, _POOL_LEASE
    if _POOL_LEASE is not None:
        cpu_budget().release(_POOL_LEASE)
        _POOL_LEASE = None
    _POOL_PINNED = False
    _LAST_CPU.clear()
    if _POOL is None:
        return
    pool, _POOL, _POOL_WORKERS = _POOL, None, 0
    # Snapshot before shutdown(): the executor drops its _processes
    # reference there, and a wedged worker must still be terminated so
    # neither it nor the executor's management thread outlives us.
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.terminate()
        except Exception:  # already dead / already reaped
            pass


@atexit.register
def _cleanup() -> None:
    reset_pool()
    pid = os.getpid()
    for name in [n for n, (_shm, owner) in _OWNED.items() if owner == pid]:
        shm, _owner = _OWNED.pop(name)
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def _process_layout(plan: ShardPlan) -> tuple[ShardPlan, int, int]:
    """(refined plan, worker processes, threads per worker).

    Row blocks are the distribution unit, so a plan whose config axis
    was never split (the thread executor prefers whole-column tiling) is
    refined to one that gives every worker a block — bit-identical by
    row independence.  Leftover worker budget becomes each worker's
    column-tile thread width.
    """
    workers = max(1, plan.n_workers)
    if plan.n_row_blocks < workers and plan.n_configs > plan.n_row_blocks:
        plan = replace(plan, row_block=max(1, -(-plan.n_configs // workers)))
    n_procs = min(workers, plan.n_row_blocks)
    inner = max(1, workers // n_procs) if plan.n_col_shards > 1 else 1
    return plan, n_procs, inner


def _node_row_bounds(
    plan: ShardPlan, topology: NumaTopology | None
) -> tuple[int, ...]:
    """Global row edges splitting the plane into per-node segments.

    Bounds land only on the plan's row-block edges (a block never
    straddles two segments) and blocks are apportioned to nodes in
    proportion to their CPU counts.  Single-node topologies — and plans
    with a single row block — collapse to ``(0, n_configs)``, i.e. the
    unsplit plane.
    """
    blocks = plan.row_blocks()
    if topology is None or topology.n_nodes <= 1 or len(blocks) < 2:
        return (0, plan.n_configs)
    weights = [node.n_cpus for node in topology.nodes]
    total = sum(weights)
    bounds = [0]
    assigned = 0
    acc = 0
    for i, w in enumerate(weights):
        acc += w
        k = len(blocks) if i == len(weights) - 1 else round(
            len(blocks) * acc / total
        )
        k = max(assigned, min(int(k), len(blocks)))
        if k > assigned:
            bounds.append(blocks[k - 1][1])
            assigned = k
    return tuple(bounds)


def _pooled_traces(
    program,
    r: np.ndarray,
    latency_s: float,
    bandwidth_gbps: float,
    plan: ShardPlan,
    n_procs: int,
    inner_threads: int,
    timeout_s: float,
    topology: NumaTopology | None,
    pin: bool,
) -> list[RankTrace]:
    handles = export_plane_split(r, program, _node_row_bounds(plan, topology))
    try:
        pool = _get_pool(n_procs, pin)

        def _segment_for(row: int) -> SharedPlane:
            for h in handles:
                if h.row0 <= row < h.row0 + h.n_configs:
                    return h
            raise ConfigurationError(  # pragma: no cover - bounds align
                f"row {row} outside every exported segment"
            )

        futures = [
            pool.submit(
                _run_block,
                _segment_for(r0),
                latency_s,
                bandwidth_gbps,
                plan.col_bounds,
                r0,
                r1,
                inner_threads,
            )
            for r0, r1 in plan.row_blocks()
        ]
        deadline = perf_counter() + timeout_s
        results = [
            f.result(timeout=max(0.001, deadline - perf_counter()))
            for f in futures
        ]
        if telemetry.enabled():
            for r0, r1, wall, pid, cpu in results:
                telemetry.record_span(
                    "sim.procshard.block", wall, rows=f"{r0}:{r1}", pid=pid
                )
                if cpu >= 0:
                    telemetry.gauge(f"sim.procshard.worker.cpu[{pid}]", cpu)
                    if topology is not None:
                        telemetry.gauge(
                            f"sim.procshard.worker.node[{pid}]",
                            topology.node_of(cpu),
                        )
                    prev = _LAST_CPU.get(pid)
                    if prev is not None and prev != cpu:
                        telemetry.count("sim.procshard.migrations")
                    _LAST_CPU[pid] = cpu
        traces: list[RankTrace] = []
        for h in sorted(handles, key=lambda h: h.row0):
            views = plane_views(h)
            traces.extend(
                RankTrace(
                    total_s=views["clock"][c].copy(),
                    compute_s=views["compute"][c].copy(),
                    wait_s=views["wait"][c].copy(),
                    comm_s=views["comm"][c].copy(),
                )
                for c in range(h.n_configs)
            )
        return traces
    finally:
        for h in handles:
            destroy_plane(h)


def run_fast_procshard(
    program,
    rates: np.ndarray,
    *,
    latency_s: float = 5e-6,
    bandwidth_gbps: float = 5.0,
    plan: ShardPlan | None = None,
    pin: bool | None = None,
    topology: NumaTopology | None = None,
) -> list[RankTrace]:
    """Execute ``run_fast_batched``'s contract across worker processes.

    Row blocks of ``plan`` (auto-tuned when ``None``) are dispatched to
    the persistent pool; each worker runs the invariant-8 fused tile
    passes for its block in-place on the shared plane, and the parent
    assembles one :class:`RankTrace` per config row — bit-identical to
    the unsharded and thread-sharded paths (invariant 9).

    Placement: on multi-node topologies the plane is exported as
    node-local segments (:func:`export_plane_split`) and, when ``pin``
    resolves true (default: whenever the platform supports affinity;
    override per-call or via ``REPRO_PROCSHARD_PIN``), workers pin to
    CPU slices claimed from the process-wide
    :func:`~repro.util.topology.cpu_budget`.  ``topology`` defaults to
    the probed machine — a test seam, like ``plan``.  All of it is
    execution layout only (invariant 11).

    Any dispatch failure — a killed worker, a timeout, a pool that
    cannot be built — falls back to in-process thread sharding on the
    same plan, after tearing the pool down and unlinking the segments;
    genuine program errors re-raise from the fallback unchanged.  Calls
    made from inside a multiprocessing child never fork a nested pool at
    all: they degrade to the same in-process path up front (counted as
    ``sim.procshard.nested_fallback``).
    """
    r = np.ascontiguousarray(rates, dtype=float)
    if r.ndim != 2 or r.shape[1] != program.n_ranks:
        raise ConfigurationError(
            f"rates shape {r.shape} != (n_configs, {program.n_ranks})"
        )
    if topology is None:
        topology = cpu_budget().topology
    if plan is None:
        plan = plan_shards(r.shape[0], r.shape[1], topology=topology)
    elif (plan.n_configs, plan.n_ranks) != r.shape:
        raise ConfigurationError(
            f"plan is for a {(plan.n_configs, plan.n_ranks)} plane; "
            f"rates have shape {r.shape}"
        )
    plan, n_procs, inner_threads = _process_layout(plan)
    # Resolved before the fallback guard: a malformed timeout or pin env
    # is a configuration error and must surface, not trigger a silent
    # fallback.
    timeout_s = _timeout_s()
    if pin is None:
        pin = _pin_default()
    if parent_process() is not None:
        # Already inside a multiprocessing child (e.g. an
        # ``ExperimentEngine(jobs>1)`` worker).  Forking a nested pool
        # from here inherits the outer pool's queue-feeder threads and
        # any lock they hold mid-operation — the grandchildren can wedge
        # on a dead futex forever — and would double-book CPUs the outer
        # pool's lease already claimed.  Degrade to in-process thread
        # sharding on the same plan: bit-identical (invariant 9), and
        # the composition stays inside the CPU budget.
        telemetry.count("sim.procshard.nested_fallback")
        from repro.simmpi import fastpath

        return fastpath.run_fast_sharded(
            program, r,
            latency_s=latency_s, bandwidth_gbps=bandwidth_gbps,
            plan=plan, mode="threads",
        )
    with telemetry.span(
        "sim.run_fast_procshard",
        configs=int(r.shape[0]),
        ranks=program.n_ranks,
        row_blocks=plan.n_row_blocks,
        workers=n_procs,
        nodes=topology.n_nodes,
        pinned=int(bool(pin)),
    ):
        try:
            return _pooled_traces(
                program, r, latency_s, bandwidth_gbps,
                plan, n_procs, inner_threads, timeout_s,
                topology, bool(pin),
            )
        except (Exception, _FuturesTimeout) as exc:
            telemetry.count("sim.procshard.fallback")
            telemetry.count(f"sim.procshard.fallback[{type(exc).__name__}]")
            reset_pool()
            from repro.simmpi import fastpath

            return fastpath.run_fast_sharded(
                program, r,
                latency_s=latency_s, bandwidth_gbps=bandwidth_gbps,
                plan=plan, mode="threads",
            )
