"""Cross-process sharded execution of the batched ``(n_configs, n_ranks)`` plane.

The thread-sharded executor (:func:`~repro.simmpi.fastpath.run_fast_sharded`)
runs one row block at a time and parallelises only the column tiles
inside it — per-tile Python dispatch and the GIL cap how much of a
multi-socket box one process can use.  This module is the next scale
step (ROADMAP "cross-process sharding"): the plane itself is exported as
a named POSIX shared-memory segment and a persistent pool of worker
*processes* executes :class:`~repro.simmpi.sharding.ShardPlan` row
blocks in-place on attached views.

Why row blocks are the right unit: config rows never interact
(ARCHITECTURE.md invariant 7), so the invariant-8 superstep reduction —
partial row maxima combined by ``np.max`` and ANDed detector verdicts —
closes *within* a row block.  A worker therefore runs the exact same
fused tile passes the thread-sharded executor runs for that block, with
zero per-superstep IPC, and the only cross-process protocol is the
shared plane itself: the parent owns the segment (creates, unlinks),
writes the rates plane once, and each worker writes the four trace
accumulators for its disjoint row range.  Traces assembled from the
plane are bit-identical to the unsharded and thread-sharded paths —
ARCHITECTURE.md invariant 9, proven adversarially by
``tests/simmpi/test_procshard_differential.py``.

Lifecycle robustness: the pool is created lazily and reused across
runs; a worker death (:class:`BrokenProcessPool`), a stuck worker
(``REPRO_PROCSHARD_TIMEOUT_S``, default 900 s), or any other dispatch
failure tears the pool down, destroys the segment, and falls back to
in-process thread sharding — the caller sees correct results either
way, and the segment is unlinked on every path so ``/dev/shm`` never
leaks (leak-checked by ``tests/simmpi/conftest.py``).  Per-block wall
times measured inside the workers are recorded into the *parent's*
telemetry collector as backdated spans (``sim.procshard.block``).
"""

from __future__ import annotations

import atexit
import gc
import os
import pickle
import signal
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, replace
from multiprocessing import get_context, shared_memory
from time import perf_counter

import numpy as np

import repro.telemetry as telemetry
from repro.errors import ConfigurationError
from repro.simmpi.sharding import ShardPlan, plan_shards
from repro.simmpi.tracing import RankTrace
from repro.util.shm import attach_block

__all__ = [
    "SharedPlane",
    "export_plane",
    "attach_plane",
    "destroy_plane",
    "run_fast_procshard",
    "reset_pool",
]

#: Segment layout, in plane order: the read-only input plane, then the
#: four trace accumulators workers fill (the
#: :class:`~repro.simmpi.machine.BatchedBspMachine` state fields), then
#: the pickled :class:`~repro.simmpi.fastpath.BspProgram` bytes.
_PLANE_FIELDS = ("rates", "clock", "compute", "wait", "comm")

#: Wall-clock budget for one pooled run before falling back in-process.
_TIMEOUT_ENV = "REPRO_PROCSHARD_TIMEOUT_S"
_DEFAULT_TIMEOUT_S = 900.0

#: Test-only fault hook, read inside the worker: ``"kill"`` SIGKILLs the
#: worker mid-block (exercises the BrokenProcessPool fallback), ``"hang"``
#: sleeps past any timeout (exercises the timeout fallback).
_FAULT_ENV = "REPRO_PROCSHARD_FAULT"


def _timeout_s() -> float:
    raw = os.environ.get(_TIMEOUT_ENV)
    if raw is None:
        return _DEFAULT_TIMEOUT_S
    try:
        timeout = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{_TIMEOUT_ENV} must be a positive number of seconds; got {raw!r}"
        ) from None
    if timeout <= 0:
        raise ConfigurationError(
            f"{_TIMEOUT_ENV} must be a positive number of seconds; got {raw!r}"
        )
    return timeout


@dataclass(frozen=True)
class SharedPlane:
    """Picklable handle for one exported ``(n_configs, n_ranks)`` plane.

    Ownership contract (invariant 9): the exporting process owns the
    segment — it creates it, is the only writer of the ``rates`` plane
    and the program bytes, and must eventually call
    :func:`destroy_plane`.  Workers attach read-only to ``rates``, and
    each writes only its assigned row range of the four output planes.
    """

    shm_name: str
    n_configs: int
    n_ranks: int
    prog_len: int

    @property
    def plane_bytes(self) -> int:
        """Bytes of one ``(n_configs, n_ranks)`` float64 plane."""
        return self.n_configs * self.n_ranks * np.dtype(np.float64).itemsize


def _plane_view(
    shm: shared_memory.SharedMemory, handle: SharedPlane, index: int
) -> np.ndarray:
    return np.ndarray(
        (handle.n_configs, handle.n_ranks),
        dtype=np.float64,
        buffer=shm.buf,
        offset=index * handle.plane_bytes,
    )


#: Exporter-side open segments: name -> (mapping, creator pid).  The pid
#: keeps a fork-inherited copy of this registry from unlinking segments
#: the child never owned.
_OWNED: dict[str, tuple[shared_memory.SharedMemory, int]] = {}

#: Worker-side attachments: one (mapping, rates, outputs, program) per
#: segment name.  Every run exports a fresh segment, so stale entries
#: are evicted as soon as a newer name attaches.
_ATTACHED: dict[
    str,
    tuple[shared_memory.SharedMemory, np.ndarray, dict[str, np.ndarray], object],
] = {}


def export_plane(rates: np.ndarray, program) -> SharedPlane:
    """Export a rates plane plus its program as one shared segment.

    The four output planes start zero-filled (fresh POSIX segments are
    zero pages) and are populated by the workers; the parent reads them
    back through :func:`plane_views` once the pool has drained.
    """
    r = np.ascontiguousarray(rates, dtype=np.float64)
    if r.ndim != 2 or r.size == 0:
        raise ConfigurationError(
            f"rates must be a non-empty (n_configs, n_ranks) array; got {r.shape}"
        )
    blob = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
    plane = r.shape[0] * r.shape[1] * np.dtype(np.float64).itemsize
    shm = shared_memory.SharedMemory(
        create=True, size=len(_PLANE_FIELDS) * plane + len(blob)
    )
    try:
        handle = SharedPlane(
            shm_name=shm.name,
            n_configs=int(r.shape[0]),
            n_ranks=int(r.shape[1]),
            prog_len=len(blob),
        )
        np.copyto(_plane_view(shm, handle, 0), r)
        shm.buf[len(_PLANE_FIELDS) * plane:len(_PLANE_FIELDS) * plane + len(blob)] = blob
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    _OWNED[handle.shm_name] = (shm, os.getpid())
    return handle


def plane_views(handle: SharedPlane) -> dict[str, np.ndarray]:
    """The exporter's views of every plane (rates + the four outputs)."""
    owned = _OWNED.get(handle.shm_name)
    if owned is None:
        raise ConfigurationError(
            f"plane {handle.shm_name!r} is not owned by this process"
        )
    shm = owned[0]
    return {
        field: _plane_view(shm, handle, i)
        for i, field in enumerate(_PLANE_FIELDS)
    }


def attach_plane(
    handle: SharedPlane,
) -> tuple[np.ndarray, dict[str, np.ndarray], object]:
    """Worker-side attach: (read-only rates, writable outputs, program).

    Cached per segment name — a worker executing several row blocks of
    one run maps and unpickles once.  Older segments (previous runs) are
    evicted on the first attach of a newer one.
    """
    cached = _ATTACHED.get(handle.shm_name)
    if cached is not None:
        return cached[1], cached[2], cached[3]
    shm = attach_block(handle.shm_name)
    rates = _plane_view(shm, handle, 0)
    rates.flags.writeable = False
    outs = {
        field: _plane_view(shm, handle, i)
        for i, field in enumerate(_PLANE_FIELDS)
        if field != "rates"
    }
    base = len(_PLANE_FIELDS) * handle.plane_bytes
    program = pickle.loads(bytes(shm.buf[base:base + handle.prog_len]))
    stale = [name for name in _ATTACHED if name != handle.shm_name]
    while stale:
        old_shm, old_rates, old_outs, old_prog = _ATTACHED.pop(stale.pop())
        del old_rates, old_outs, old_prog
        gc.collect()
        try:
            old_shm.close()
        except BufferError:  # a view escaped; GC will finish the close
            pass
    _ATTACHED[handle.shm_name] = (shm, rates, outs, program)
    return rates, outs, program


def destroy_plane(handle: SharedPlane) -> None:
    """Release the exporter's mapping and unlink the segment.

    Safe while workers still hold mappings (POSIX keeps them valid);
    new attaches fail afterwards, which is the point.  Idempotent.
    """
    owned = _OWNED.pop(handle.shm_name, None)
    if owned is None:
        return
    shm = owned[0]
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # already unlinked (double destroy)
        pass


# -- the worker side -----------------------------------------------------------

#: Worker-process-local thread pool for column tiles, sized on demand.
_W_POOL: ThreadPoolExecutor | None = None
_W_POOL_WIDTH = 0


def _worker_thread_pool(threads: int) -> ThreadPoolExecutor | None:
    global _W_POOL, _W_POOL_WIDTH
    if threads <= 1:
        return None
    if _W_POOL is None or _W_POOL_WIDTH < threads:
        if _W_POOL is not None:
            _W_POOL.shutdown(wait=True)
        _W_POOL = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-procshard"
        )
        _W_POOL_WIDTH = threads
    return _W_POOL


def _worker_init() -> None:
    """Pool-process initializer.

    A forked worker inherits the parent's telemetry collector and
    shared-memory registries; recording into the former would be lost
    (and could contend on inherited locks), and the latter describe
    segments this process does not own.  Drop both.
    """
    telemetry.disable()
    _OWNED.clear()
    _ATTACHED.clear()


def _run_block(
    handle: SharedPlane,
    latency_s: float,
    bandwidth_gbps: float,
    col_bounds: tuple[int, ...],
    r0: int,
    r1: int,
    threads: int,
) -> tuple[int, int, float, int]:
    """Execute rows ``[r0, r1)`` in-place on the attached plane.

    This is byte-for-byte the per-row-block body of
    ``run_fast_sharded``: a machine over the block's rates rows, the
    fused tile passes over the plan's column tiles (or the plain batched
    walk for a single tile), then the four accumulators written into the
    output planes.  Returns ``(r0, r1, wall_s, pid)`` for the parent's
    backdated telemetry spans.
    """
    fault = os.environ.get(_FAULT_ENV)
    if fault == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault == "hang":
        time.sleep(3600.0)
    t0 = perf_counter()
    from repro.simmpi import fastpath

    rates, outs, program = attach_plane(handle)
    machine = fastpath.BatchedBspMachine(
        rates[r0:r1], latency_s=latency_s, bandwidth_gbps=bandwidth_gbps
    )
    tiles = tuple(
        (col_bounds[i], col_bounds[i + 1]) for i in range(len(col_bounds) - 1)
    )
    if len(tiles) == 1:
        fastpath._exec_ops_batched(machine, program.ops)
    else:
        busy = [0.0] * len(tiles)
        fastpath._exec_ops_sharded(
            fastpath._ShardedExec(
                machine, tiles, _worker_thread_pool(threads), busy
            ),
            program.ops,
        )
    outs["clock"][r0:r1] = machine.clock_s
    outs["compute"][r0:r1] = machine._compute_s
    outs["wait"][r0:r1] = machine._wait_s
    outs["comm"][r0:r1] = machine._comm_s
    return r0, r1, perf_counter() - t0, os.getpid()


# -- the parent side -----------------------------------------------------------

#: The persistent worker-process pool, grown (never shrunk) on demand.
_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0


def _get_pool(n_workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS >= n_workers:
        return _POOL
    reset_pool()
    try:
        ctx = get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        ctx = get_context()
    _POOL = ProcessPoolExecutor(
        max_workers=n_workers, mp_context=ctx, initializer=_worker_init
    )
    _POOL_WORKERS = n_workers
    return _POOL


def reset_pool() -> None:
    """Tear the worker pool down (it is rebuilt lazily on next use).

    Called on every fallback so a broken or wedged pool cannot poison
    later runs; hung workers are terminated best-effort rather than
    waited on.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is None:
        return
    pool, _POOL, _POOL_WORKERS = _POOL, None, 0
    # Snapshot before shutdown(): the executor drops its _processes
    # reference there, and a wedged worker must still be terminated so
    # neither it nor the executor's management thread outlives us.
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.terminate()
        except Exception:  # already dead / already reaped
            pass


@atexit.register
def _cleanup() -> None:
    reset_pool()
    pid = os.getpid()
    for name in [n for n, (_shm, owner) in _OWNED.items() if owner == pid]:
        shm, _owner = _OWNED.pop(name)
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def _process_layout(plan: ShardPlan) -> tuple[ShardPlan, int, int]:
    """(refined plan, worker processes, threads per worker).

    Row blocks are the distribution unit, so a plan whose config axis
    was never split (the thread executor prefers whole-column tiling) is
    refined to one that gives every worker a block — bit-identical by
    row independence.  Leftover worker budget becomes each worker's
    column-tile thread width.
    """
    workers = max(1, plan.n_workers)
    if plan.n_row_blocks < workers and plan.n_configs > plan.n_row_blocks:
        plan = replace(plan, row_block=max(1, -(-plan.n_configs // workers)))
    n_procs = min(workers, plan.n_row_blocks)
    inner = max(1, workers // n_procs) if plan.n_col_shards > 1 else 1
    return plan, n_procs, inner


def _pooled_traces(
    program,
    r: np.ndarray,
    latency_s: float,
    bandwidth_gbps: float,
    plan: ShardPlan,
    n_procs: int,
    inner_threads: int,
    timeout_s: float,
) -> list[RankTrace]:
    handle = export_plane(r, program)
    try:
        pool = _get_pool(n_procs)
        futures = [
            pool.submit(
                _run_block,
                handle,
                latency_s,
                bandwidth_gbps,
                plan.col_bounds,
                r0,
                r1,
                inner_threads,
            )
            for r0, r1 in plan.row_blocks()
        ]
        deadline = perf_counter() + timeout_s
        results = [
            f.result(timeout=max(0.001, deadline - perf_counter()))
            for f in futures
        ]
        if telemetry.enabled():
            for r0, r1, wall, pid in results:
                telemetry.record_span(
                    "sim.procshard.block", wall, rows=f"{r0}:{r1}", pid=pid
                )
        views = plane_views(handle)
        return [
            RankTrace(
                total_s=views["clock"][c].copy(),
                compute_s=views["compute"][c].copy(),
                wait_s=views["wait"][c].copy(),
                comm_s=views["comm"][c].copy(),
            )
            for c in range(handle.n_configs)
        ]
    finally:
        destroy_plane(handle)


def run_fast_procshard(
    program,
    rates: np.ndarray,
    *,
    latency_s: float = 5e-6,
    bandwidth_gbps: float = 5.0,
    plan: ShardPlan | None = None,
) -> list[RankTrace]:
    """Execute ``run_fast_batched``'s contract across worker processes.

    Row blocks of ``plan`` (auto-tuned when ``None``) are dispatched to
    the persistent pool; each worker runs the invariant-8 fused tile
    passes for its block in-place on the shared plane, and the parent
    assembles one :class:`RankTrace` per config row — bit-identical to
    the unsharded and thread-sharded paths (invariant 9).

    Any dispatch failure — a killed worker, a timeout, a pool that
    cannot be built — falls back to in-process thread sharding on the
    same plan, after tearing the pool down and unlinking the segment;
    genuine program errors re-raise from the fallback unchanged.
    """
    r = np.ascontiguousarray(rates, dtype=float)
    if r.ndim != 2 or r.shape[1] != program.n_ranks:
        raise ConfigurationError(
            f"rates shape {r.shape} != (n_configs, {program.n_ranks})"
        )
    if plan is None:
        plan = plan_shards(r.shape[0], r.shape[1])
    elif (plan.n_configs, plan.n_ranks) != r.shape:
        raise ConfigurationError(
            f"plan is for a {(plan.n_configs, plan.n_ranks)} plane; "
            f"rates have shape {r.shape}"
        )
    plan, n_procs, inner_threads = _process_layout(plan)
    # Resolved before the fallback guard: a malformed timeout env is a
    # configuration error and must surface, not trigger a silent fallback.
    timeout_s = _timeout_s()
    with telemetry.span(
        "sim.run_fast_procshard",
        configs=int(r.shape[0]),
        ranks=program.n_ranks,
        row_blocks=plan.n_row_blocks,
        workers=n_procs,
    ):
        try:
            return _pooled_traces(
                program, r, latency_s, bandwidth_gbps,
                plan, n_procs, inner_threads, timeout_s,
            )
        except (Exception, _FuturesTimeout) as exc:
            telemetry.count("sim.procshard.fallback")
            telemetry.count(f"sim.procshard.fallback[{type(exc).__name__}]")
            reset_pool()
            from repro.simmpi import fastpath

            return fastpath.run_fast_sharded(
                program, r,
                latency_s=latency_s, bandwidth_gbps=bandwidth_gbps,
                plan=plan, mode="threads",
            )
