"""Fleet-scale vectorised fast path for bulk-synchronous programs.

The event-driven machine (:mod:`repro.simmpi.eventsim`) advances one
Python-level operation per rank per step — exact and fully general, but
O(ranks × ops) interpreter work caps it at a few thousand ranks.  Every
benchmark in the paper, however, is bulk-synchronous: all ranks execute
the *same* operation sequence, so one whole-fleet array operation per
superstep suffices.  This module provides that fast path:

* a tiny vector-op IR (:class:`VCompute`, :class:`VElapse`,
  :class:`VBarrier`, :class:`VAllreduce`, :class:`VSendrecv`,
  :class:`VLoop`) wrapped in a :class:`BspProgram`;
* :func:`run_fast` — executes a program on a
  :class:`~repro.simmpi.machine.BspMachine` with two whole-fleet
  shortcuts: communication-free op runs are fused into a single
  vectorised advance, and iterated supersteps are *fast-forwarded* once
  their per-iteration state increments become stationary (after a
  barrier/allreduce all clocks coincide, so iteration k+1 repeats
  iteration k exactly; a halo exchange reaches the same steady state
  once the slowest module's wavefront has propagated around the torus);
* :func:`run_event` / :func:`to_event_program` — lowers the same program
  to per-rank generators on the :class:`EventDrivenMachine`, the
  independent reference the differential suite
  (``tests/simmpi/test_fastpath_differential.py``) checks against;
* :func:`simulate_app` — the dispatch :mod:`repro.core.runner` uses:
  BSP-expressible applications (``comm.kind`` of ``"none"``,
  ``"neighbor"`` or ``"allreduce"``) take the vectorised path, anything
  else (the ``"pipeline"`` kind) falls back to the event-driven machine.

Equivalence contract
--------------------
For any :class:`BspProgram`, :func:`run_fast` and :func:`run_event`
agree on every :class:`RankTrace` field to ≤ 1e-9 relative error,
with one caveat: the event lowering of :class:`VSendrecv` models the
exchange as eager point-to-point messages, which charges transfer costs
per message instead of once per superstep — the two paths are exactly
equivalent only when the exchange's transfer cost is zero (zero latency
and zero payload, pure synchronisation).  Barrier and allreduce costs
use the same closed form on both machines and match at any cost.

Fast-forward accuracy: extrapolating a stationary increment replaces
``m`` float additions by one multiply-add, perturbing results by
O(m·ε) ≈ 1e-13 relative — far inside the 1e-9 contract and the 1e-6
golden-pin tolerance.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

import repro.telemetry as telemetry
from repro.errors import ConfigurationError, SimulationError
from repro.simmpi.eventsim import (
    Allreduce,
    Barrier,
    Compute,
    Elapse,
    EventDrivenMachine,
    Recv,
    Send,
)
from repro.simmpi.machine import BatchedBspMachine, BspMachine, MachineState
from repro.simmpi.sharding import SHARD_MODES, ShardPlan, ShardSpec, plan_shards
from repro.simmpi.tracing import RankTrace

__all__ = [
    "VCompute",
    "VElapse",
    "VBarrier",
    "VAllreduce",
    "VSendrecv",
    "VLoop",
    "BspProgram",
    "run_fast",
    "run_fast_batched",
    "run_fast_sharded",
    "run_event",
    "to_event_program",
    "is_bsp_expressible",
    "bsp_app_program",
    "event_app_program",
    "simulate_app",
    "simulate_app_batched",
    "BSP_COMM_KINDS",
]

#: Communication kinds the vectorised fast path can express.
BSP_COMM_KINDS = ("none", "neighbor", "allreduce")

#: Only fast-forward a loop when at least this many iterations remain —
#: below that, plain iteration is cheaper than the delta bookkeeping.
_MIN_FF_REMAINING = 3

#: Consecutive identical per-iteration increments required before the
#: loop is declared stationary.  One uniform-shift observation is
#: already sufficient mathematically (see :func:`_exec_loop`); the
#: second is a guard against accumulated rounding noise.
_FF_STABLE_ITERS = 2


@dataclass(frozen=True)
class VCompute:
    """Whole-fleet compute phase: per-rank work in GHz·seconds
    (scalar = perfectly balanced)."""

    ghz_seconds: float | np.ndarray


@dataclass(frozen=True)
class VElapse:
    """Whole-fleet frequency-insensitive time (memory stalls, I/O)."""

    seconds: float | np.ndarray


@dataclass(frozen=True)
class VBarrier:
    """Global synchronisation."""


@dataclass(frozen=True)
class VAllreduce:
    """Synchronising reduction (barrier + log₂-tree transfer cost)."""

    message_bytes: float = 8.0


@dataclass(frozen=True, eq=False)
class VSendrecv:
    """Halo exchange on an explicit ``(n_ranks, k)`` neighbour table."""

    neighbors: np.ndarray
    message_bytes: float = 0.0


@dataclass(frozen=True, eq=False)
class VLoop:
    """``iters`` repetitions of a superstep body."""

    body: tuple
    iters: int


_VOp = VCompute | VElapse | VBarrier | VAllreduce | VSendrecv | VLoop
_LOCAL_OPS = (VCompute, VElapse)
_SYNC_OPS = (VBarrier, VAllreduce, VSendrecv)


@dataclass(frozen=True, eq=False)
class BspProgram:
    """A rank-uniform (SPMD) program over the vector-op IR.

    Every rank executes the same operation sequence; per-rank
    variability enters only through array-valued op payloads and the
    machine's rank rates.  That uniformity is what makes the program
    executable as whole-fleet array operations *and* trivially
    deadlock-free when lowered to the event-driven machine.
    """

    n_ranks: int
    ops: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.n_ranks <= 0:
            raise ConfigurationError("n_ranks must be positive")
        object.__setattr__(self, "ops", tuple(self.ops))
        self._validate(self.ops)

    def _validate(self, ops: Sequence[_VOp]) -> None:
        for op in ops:
            if isinstance(op, _LOCAL_OPS):
                val = op.ghz_seconds if isinstance(op, VCompute) else op.seconds
                arr = np.asarray(val, dtype=float)
                if arr.ndim not in (0, 1) or (
                    arr.ndim == 1 and arr.shape != (self.n_ranks,)
                ):
                    raise ConfigurationError(
                        f"op payload must be scalar or shape ({self.n_ranks},); "
                        f"got {arr.shape}"
                    )
                if np.any(arr < 0) or np.any(~np.isfinite(arr)):
                    raise ConfigurationError(
                        "op payloads must be finite and non-negative"
                    )
            elif isinstance(op, VSendrecv):
                nb = np.asarray(op.neighbors)
                if nb.ndim != 2 or nb.shape[0] != self.n_ranks:
                    raise ConfigurationError(
                        f"neighbors must have shape (n_ranks, k); got {nb.shape}"
                    )
                if nb.size and (nb.min() < 0 or nb.max() >= self.n_ranks):
                    raise ConfigurationError("neighbor indices out of range")
            elif isinstance(op, VLoop):
                if op.iters <= 0:
                    raise ConfigurationError("loop iterations must be positive")
                self._validate(op.body)
            elif isinstance(op, (VBarrier, VAllreduce)):
                pass
            else:
                raise ConfigurationError(f"unknown fast-path op {op!r}")


# -- the vectorised executor ---------------------------------------------------


def _has_sync(ops: Sequence[_VOp]) -> bool:
    return any(
        isinstance(op, _SYNC_OPS)
        or (isinstance(op, VLoop) and _has_sync(op.body))
        for op in ops
    )


def _local_dt(ops: Sequence[_VOp], rates: np.ndarray) -> np.ndarray:
    """Combined per-rank seconds of a communication-free op sequence."""
    n = rates.shape[0]
    dt = np.zeros(n)
    for op in ops:
        if isinstance(op, VCompute):
            dt += np.broadcast_to(
                np.asarray(op.ghz_seconds, dtype=float), (n,)
            ) / rates
        elif isinstance(op, VElapse):
            dt += np.broadcast_to(np.asarray(op.seconds, dtype=float), (n,))
        elif isinstance(op, VLoop):
            dt += op.iters * _local_dt(op.body, rates)
        else:  # pragma: no cover - guarded by _has_sync
            raise SimulationError(f"{op!r} is not a local op")
    return dt


def _exec_ops(machine: BspMachine, ops: Sequence[_VOp]) -> None:
    """Execute an op sequence, fusing communication-free runs."""
    i, n_ops = 0, len(ops)
    while i < n_ops:
        op = ops[i]
        # Fuse a maximal run of sync-free ops into one fleet-wide advance.
        if isinstance(op, _LOCAL_OPS) or (
            isinstance(op, VLoop) and not _has_sync(op.body)
        ):
            j = i
            while j < n_ops and (
                isinstance(ops[j], _LOCAL_OPS)
                or (isinstance(ops[j], VLoop) and not _has_sync(ops[j].body))
            ):
                j += 1
            machine.advance_local(_local_dt(ops[i:j], machine.rates))
            i = j
            continue
        if isinstance(op, VBarrier):
            machine.barrier()
        elif isinstance(op, VAllreduce):
            machine.allreduce(op.message_bytes)
        elif isinstance(op, VSendrecv):
            machine.sendrecv(np.asarray(op.neighbors), op.message_bytes)
        elif isinstance(op, VLoop):
            _exec_loop(machine, op)
        else:  # pragma: no cover - programs are validated on construction
            raise SimulationError(f"unknown fast-path op {op!r}")
        i += 1


def _is_uniform_shift(clock_delta: np.ndarray) -> bool:
    """Whether one iteration advanced every rank's clock by the same
    amount (to rounding noise)."""
    return bool(
        np.allclose(clock_delta, clock_delta[0], rtol=1e-12, atol=1e-15)
    )


def _exec_loop(machine: BspMachine, loop: VLoop) -> None:
    """Run a synchronising loop, fast-forwarding its steady state.

    Every body op commutes with adding a constant to all clocks: compute
    and elapse add fixed per-rank amounts, and barrier / allreduce /
    halo-exchange are max-plus operations, so shifting the whole clock
    vector by ``c`` shifts their result by ``c``.  Hence a *uniform*
    per-iteration clock increment is a proof of stationarity — the next
    iteration is the previous one translated in time, forever.  A stable
    but **non-uniform** increment proves nothing: in a halo-exchange
    ring the slowest module's delay wavefront moves one hop per
    superstep, and ranks it has not yet reached advance at their own
    (transient) pace for up to the graph diameter before snapping to the
    global rate.  We therefore fast-forward only on a uniform, repeated
    increment, and fall back to plain iteration otherwise.  A
    barrier/allreduce body equalises all clocks each iteration, so its
    increment is uniform from the second pass; a halo-exchange body gets
    there once the wavefront has covered the graph (at most the torus
    diameter, usually far fewer iterations because near-slowest modules
    are dense at fleet scale).
    """
    remaining = loop.iters
    # Preallocated snapshot/delta buffers reused across iterations: the
    # steady-state detector would otherwise allocate ~8 fleet-sized
    # arrays per superstep.  Values are identical — the buffers only
    # change where the temporaries live.
    n = machine.n_ranks
    _blank = lambda: MachineState(*(np.empty(n) for _ in range(4)))  # noqa: E731
    before, delta, prev_delta = _blank(), _blank(), _blank()
    have_prev = False
    stable = 0
    while remaining > 0:
        machine.state_into(before)
        _exec_ops(machine, loop.body)
        remaining -= 1
        if remaining < _MIN_FF_REMAINING:
            continue
        machine.delta_into(before, delta)
        if (
            have_prev
            and delta.allclose(prev_delta)
            and _is_uniform_shift(delta.clock_s)
        ):
            stable += 1
            if stable >= _FF_STABLE_ITERS:
                machine.fast_forward(delta, remaining)
                telemetry.count("sim.fast_forward")
                telemetry.observe("sim.ff_saved_iters", remaining)
                return
        else:
            stable = 0
        prev_delta, delta = delta, prev_delta
        have_prev = True


def run_fast(
    program: BspProgram,
    rates: np.ndarray,
    *,
    latency_s: float = 5e-6,
    bandwidth_gbps: float = 5.0,
) -> RankTrace:
    """Execute a :class:`BspProgram` on the vectorised fast path."""
    r = np.asarray(rates, dtype=float)
    if r.shape != (program.n_ranks,):
        raise ConfigurationError(
            f"rates shape {r.shape} != program ranks ({program.n_ranks},)"
        )
    machine = BspMachine(r, latency_s=latency_s, bandwidth_gbps=bandwidth_gbps)
    machine.observer = telemetry.timeline("fastpath")
    with telemetry.span("sim.run_fast", ranks=program.n_ranks):
        _exec_ops(machine, program.ops)
    return machine.trace()


# -- the config-batched executor -----------------------------------------------


def _local_dt_batched(ops: Sequence[_VOp], rates: np.ndarray) -> np.ndarray:
    """Combined per-rank seconds of a communication-free op sequence,
    for every config row at once (row-wise identical to :func:`_local_dt`)."""
    n = rates.shape[1]
    dt = np.zeros(rates.shape)
    for op in ops:
        if isinstance(op, VCompute):
            dt += np.broadcast_to(
                np.asarray(op.ghz_seconds, dtype=float), (n,)
            ) / rates
        elif isinstance(op, VElapse):
            dt += np.broadcast_to(np.asarray(op.seconds, dtype=float), (n,))
        elif isinstance(op, VLoop):
            dt += op.iters * _local_dt_batched(op.body, rates)
        else:  # pragma: no cover - guarded by _has_sync
            raise SimulationError(f"{op!r} is not a local op")
    return dt


def _exec_ops_batched(machine: BatchedBspMachine, ops: Sequence[_VOp]) -> None:
    """Execute an op sequence on the 2-D machine, fusing communication-free
    runs exactly where :func:`_exec_ops` does (fusion boundaries depend
    only on op types, so the two paths fuse identically)."""
    i, n_ops = 0, len(ops)
    while i < n_ops:
        op = ops[i]
        if isinstance(op, _LOCAL_OPS) or (
            isinstance(op, VLoop) and not _has_sync(op.body)
        ):
            j = i
            while j < n_ops and (
                isinstance(ops[j], _LOCAL_OPS)
                or (isinstance(ops[j], VLoop) and not _has_sync(ops[j].body))
            ):
                j += 1
            machine.advance_local(_local_dt_batched(ops[i:j], machine.rates))
            i = j
            continue
        if isinstance(op, VBarrier):
            machine.barrier()
        elif isinstance(op, VAllreduce):
            machine.allreduce(op.message_bytes)
        elif isinstance(op, VSendrecv):
            machine.sendrecv(np.asarray(op.neighbors), op.message_bytes)
        elif isinstance(op, VLoop):
            _exec_loop_batched(machine, op)
        else:  # pragma: no cover - programs are validated on construction
            raise SimulationError(f"unknown fast-path op {op!r}")
        i += 1


def _rows_close(delta: tuple, prev: tuple, scratch: tuple) -> np.ndarray:
    """Per-row equivalent of :meth:`MachineState.allclose`: True where a
    row's four increments all match the previous iteration's.

    Evaluates ``np.isclose``'s finite-operand predicate
    ``|d - p| <= atol + rtol * |p|`` directly into the two caller-owned
    scratch arrays — same decision, none of ``isclose``'s
    machine-sized temporaries (sim deltas are always finite).
    """
    diff, tol = scratch[0], scratch[1]
    ok = np.ones(delta[0].shape[0], dtype=bool)
    for d, p in zip(delta, prev):
        np.subtract(d, p, out=diff)
        np.abs(diff, out=diff)
        np.abs(p, out=tol)
        tol *= 1e-12
        tol += 1e-15
        ok &= (diff <= tol).all(axis=1)
    return ok


def _rows_uniform(clock_delta: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """Per-row equivalent of :func:`_is_uniform_shift` (same
    allocation-free ``isclose`` predicate as :func:`_rows_close`;
    the reference column's tolerance is a ``(rows, 1)`` broadcast)."""
    ref = clock_delta[:, :1]
    np.subtract(clock_delta, ref, out=scratch)
    np.abs(scratch, out=scratch)
    tol = 1e-12 * np.abs(ref)
    tol += 1e-15
    return (scratch <= tol).all(axis=1)


def _exec_loop_batched(machine: BatchedBspMachine, loop: VLoop) -> None:
    """Run a synchronising loop for all configs, fast-forwarding each
    config's steady state *independently*.

    The timing invariant that makes this bit-identical to per-config
    :func:`_exec_loop`: a config must be fast-forwarded at exactly the
    iteration its 1-D run would be, because ``c + k·d`` and
    ``(c + d) + (k−1)·d`` differ in the last ulp.  The per-row
    ``(prev, stable)`` detector state therefore survives the active-set
    shrink — retired configs leave the batch, the rest carry their
    streak across the extraction.  Every machine op is row-independent,
    so executing the surviving subset alone reproduces exactly what the
    full batch would have computed for those rows.
    """
    remaining = loop.iters
    parent = machine
    sub = machine
    rows = np.arange(machine.n_configs)
    shape = (machine.n_configs, machine.n_ranks)
    before = tuple(np.empty(shape) for _ in range(4))
    delta = tuple(np.empty(shape) for _ in range(4))
    prev = tuple(np.empty(shape) for _ in range(4))
    have_prev = False
    stable = np.zeros(machine.n_configs, dtype=np.int64)
    while remaining > 0:
        sub.state_into(before)
        _exec_ops_batched(sub, loop.body)
        remaining -= 1
        if remaining < _MIN_FF_REMAINING:
            continue
        sub.delta_into(before, delta)
        if have_prev:
            # `before` is dead until the next state_into: reuse it as the
            # detector's scratch space.
            ok = _rows_close(delta, prev, before) & _rows_uniform(
                delta[0], before[2]
            )
            stable = np.where(ok, stable + 1, 0)
        else:
            stable[:] = 0
        retire = stable >= _FF_STABLE_ITERS
        if np.any(retire):
            sub.fast_forward_rows(retire, delta, remaining)
            telemetry.count("sim.fast_forward", int(retire.sum()))
            telemetry.observe("sim.ff_saved_iters", remaining)
            if sub is not parent:
                parent.write_rows(rows[retire], sub, retire)
            keep = ~retire
            rows = rows[keep]
            if rows.size == 0:
                return
            sub = sub.extract_rows(keep)
            shape = (rows.size, sub.n_ranks)
            prev = tuple(d[keep] for d in delta)
            before = tuple(np.empty(shape) for _ in range(4))
            delta = tuple(np.empty(shape) for _ in range(4))
            stable = stable[keep]
            have_prev = True
        else:
            prev, delta = delta, prev
            have_prev = True
    if sub is not parent:
        parent.write_rows(rows, sub)


# -- the sharded executor ------------------------------------------------------
#
# Tiling strategy: the unsharded loop body makes one full-plane pass per
# numpy op (~30 per superstep with the detector), so beyond cache size
# every op streams from DRAM.  The sharded executor reorganises each
# superstep into 2-3 fused *tile passes* — per tile: [finish previous
# sync; snapshot; advance locals; partial row-max], [halo gathers], and
# [finish sync; delta; detector verdicts] — so each tile's ~20 arrays
# are touched many times while cache-hot and streamed from DRAM only
# once per pass.  Per-segment local dt is computed once per loop entry
# (it is loop-invariant) instead of once per iteration.
#
# Bit-identity (ARCHITECTURE.md invariant 8): every tiled update applies
# the same elementwise IEEE-754 ops as its full-width original on the
# same operands; the only cross-column couplings — the barrier row max,
# the halo gathers, and the detector's row reductions — are exact
# operand selections / AND-reductions, which commute with any column
# partition.  Cross-row coupling does not exist, so row blocks are
# trivially exact.


def _shard_segments(
    ops: Sequence[_VOp],
) -> list[tuple[tuple, _VOp | None]]:
    """Split an op sequence at its synchronisation points.

    Returns ``(locals, sync)`` pairs where ``locals`` is a maximal
    sync-free run — exactly the runs :func:`_exec_ops_batched` fuses,
    since the boundaries depend only on op types — and ``sync`` is the
    following barrier / allreduce / sendrecv / sync-bearing loop, or
    ``None`` for a trailing local run.
    """
    segs: list[tuple[tuple, _VOp | None]] = []
    run: list[_VOp] = []
    for op in ops:
        if isinstance(op, _LOCAL_OPS) or (
            isinstance(op, VLoop) and not _has_sync(op.body)
        ):
            run.append(op)
        else:
            segs.append((tuple(run), op))
            run = []
    if run:
        segs.append((tuple(run), None))
    return segs


def _local_dt_tile(
    ops: Sequence[_VOp], rates: np.ndarray, a: int, b: int
) -> np.ndarray:
    """:func:`_local_dt_batched` restricted to columns ``[a, b)`` —
    elementwise identical to slicing the full result, since every term
    is per-element."""
    sub = rates[:, a:b]
    w = b - a
    dt = np.zeros(sub.shape)
    for op in ops:
        if isinstance(op, VCompute):
            pay = np.asarray(op.ghz_seconds, dtype=float)
            dt += np.broadcast_to(pay if pay.ndim == 0 else pay[a:b], (w,)) / sub
        elif isinstance(op, VElapse):
            pay = np.asarray(op.seconds, dtype=float)
            dt += np.broadcast_to(pay if pay.ndim == 0 else pay[a:b], (w,))
        elif isinstance(op, VLoop):
            dt += op.iters * _local_dt_tile(op.body, rates, a, b)
        else:  # pragma: no cover - guarded by _has_sync
            raise SimulationError(f"{op!r} is not a local op")
    return dt


class _ShardedExec:
    """Execution state of one row block on a column-tiled plan.

    Owns the machine, the tile boundaries, the full-width gathered-ready
    plane, the per-tile partial buffers, and the (shared) thread pool.
    Per-tile scratch makes every tile pass race-free: concurrent visits
    write only their own column range and their own scratch.  ``busy_s``
    accumulates per-tile busy seconds across the whole run (shared
    through :meth:`shrink` so retirement does not reset the telemetry).
    """

    __slots__ = (
        "machine", "bounds", "pool", "busy_s",
        "ready", "partials", "wait_scr", "diff_scr", "tol_scr", "gather_scr",
    )

    def __init__(
        self,
        machine: BatchedBspMachine,
        bounds: tuple[tuple[int, int], ...],
        pool: ThreadPoolExecutor | None,
        busy_s: list[float],
    ):
        self.machine = machine
        self.bounds = bounds
        self.pool = pool
        self.busy_s = busy_s
        c = machine.n_configs
        self.ready = np.empty(machine.rates.shape)
        self.partials = np.empty((c, len(bounds)))
        self.wait_scr = [np.empty((c, b - a)) for a, b in bounds]
        self.diff_scr = [np.empty((c, b - a)) for a, b in bounds]
        self.tol_scr = [np.empty((c, b - a)) for a, b in bounds]
        self.gather_scr: list[tuple[np.ndarray, np.ndarray] | None]
        self.gather_scr = [None] * len(bounds)

    def shrink(self, keep: np.ndarray) -> "_ShardedExec":
        """A new exec over the kept config rows, same column tiling."""
        return _ShardedExec(
            self.machine.extract_rows(keep), self.bounds, self.pool, self.busy_s
        )

    def gather_pair(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        """Tile *t*'s halo-gather scratch, allocated on first exchange."""
        pair = self.gather_scr[t]
        if pair is None:
            a, b = self.bounds[t]
            c = self.machine.n_configs
            pair = (np.empty((c, b - a)), np.empty((c, b - a)))
            self.gather_scr[t] = pair
        return pair

    def apply_sync(self, pend: tuple, t: int, a: int, b: int) -> None:
        """Apply a pending sync's phase 2 to tile *t* (wait/comm/clock)."""
        kind, ready, cost = pend
        self.machine.sync_cols(
            a, b, ready if kind == "row" else ready[:, a:b], cost,
            self.wait_scr[t],
        )

    def foreach(self, visit) -> None:
        """Run ``visit(t, a, b)`` over every tile — on the pool when one
        is attached, else inline.  Returns only once all tiles are done,
        so consecutive passes are separated by a full barrier; worker
        exceptions propagate."""
        bounds = self.bounds
        busy = self.busy_s

        def run(t: int) -> None:
            a, b = bounds[t]
            t0 = perf_counter()
            visit(t, a, b)
            busy[t] += perf_counter() - t0

        if self.pool is None:
            for t in range(len(bounds)):
                run(t)
        else:
            list(self.pool.map(run, range(len(bounds))))


def _dt_tiles(ex: _ShardedExec, ops: tuple) -> list[np.ndarray] | None:
    """Per-tile local-time caches for one sync-free run (``None`` when
    the run is empty).  Loop-invariant, so loops build these once per
    entry; :meth:`BatchedBspMachine.advance_local`'s non-negativity
    guard is hoisted here."""
    if not ops:
        return None
    tiles = []
    for a, b in ex.bounds:
        dt = _local_dt_tile(ops, ex.machine.rates, a, b)
        if np.any(dt < 0):
            raise SimulationError("local time must be non-negative")
        tiles.append(dt)
    return tiles


def _fused_pass(
    ex: _ShardedExec,
    *,
    pend: tuple | None = None,
    snap: tuple | None = None,
    dt: list[np.ndarray] | None = None,
    partial: bool = False,
) -> None:
    """One tiled pass: finish a pending sync, snapshot, advance local
    time, and/or compute barrier partial row-maxima — fused so each
    tile's arrays are touched together while cache-hot."""
    m = ex.machine

    def visit(t: int, a: int, b: int) -> None:
        if pend is not None:
            ex.apply_sync(pend, t, a, b)
        if snap is not None:
            m.snapshot_cols(a, b, snap)
        if dt is not None:
            m.advance_cols(a, b, dt[t])
        if partial:
            m.rowmax_cols(a, b, ex.partials[:, t])

    ex.foreach(visit)


def _barrier_pend(ex: _ShardedExec, op: _VOp) -> tuple:
    """Reduce the tiles' partial row maxima (max of maxes is the exact
    full-row max) and price the collective; a ``partial`` pass must have
    just filled ``ex.partials``."""
    m = ex.machine
    ready_row = np.max(ex.partials, axis=1)[:, None]
    if isinstance(op, VAllreduce):
        hops = max(1, int(np.ceil(np.log2(max(m.n_ranks, 2)))))
        cost = 2 * (
            hops * m.latency_s + op.message_bytes / (m.bandwidth_gbps * 1e9)
        )
    else:
        cost = 0.0
    return ("row", ready_row, cost)


def _sendrecv_phase1(ex: _ShardedExec, op: VSendrecv) -> tuple:
    """The halo exchange's gather pass: fill ``ex.ready`` tile by tile.

    Gathers read *other* tiles' clocks, so this runs as its own pass —
    :meth:`_ShardedExec.foreach`'s completion barrier guarantees every
    tile's local advance finished before any gather starts, and no
    clock is written until the pass completes.
    """
    m = ex.machine
    nb = np.asarray(op.neighbors)
    if nb.ndim != 2 or nb.shape[0] != m.n_ranks:
        raise SimulationError(
            f"neighbors must have shape (n_ranks, k); got {nb.shape}"
        )
    if nb.size and (nb.min() < 0 or nb.max() >= m.n_ranks):
        raise SimulationError("neighbor indices out of range")

    def visit(t: int, a: int, b: int) -> None:
        m.gather_ready_cols(a, b, nb, ex.ready[:, a:b], ex.gather_pair(t))

    ex.foreach(visit)
    cost = m.latency_s + op.message_bytes * nb.shape[1] / (
        m.bandwidth_gbps * 1e9
    )
    return ("full", ex.ready, cost)


def _ref_delta(
    ex: _ShardedExec,
    pend: tuple | None,
    tail_dt: list[np.ndarray] | None,
    before: tuple,
) -> tuple[np.ndarray, np.ndarray]:
    """The detector's reference column — column 0's clock delta for this
    iteration, computed ahead of the closing pass so worker tiles never
    read another tile's in-flight delta.  Replays the exact IEEE-754 ops
    the closing pass performs on column 0 (``ready + cost``, ``+ dt``,
    ``- before``), so the result is bitwise equal to ``delta[0][:, :1]``.
    Returns ``(ref, tolerance)`` as :func:`_rows_uniform` computes them.
    """
    if pend is not None:
        _kind, ready, cost = pend
        post = ready[:, 0] + cost
    else:
        post = ex.machine.clock_s[:, 0].copy()
    if tail_dt is not None:
        post = post + tail_dt[0][:, 0]
    ref = (post - before[0][:, 0])[:, None]
    rtol = 1e-12 * np.abs(ref)
    rtol += 1e-15
    return ref, rtol


def _closing_pass(
    ex: _ShardedExec,
    pend: tuple | None,
    tail_dt: list[np.ndarray] | None,
    before: tuple,
    delta: tuple,
    prev: tuple,
    ref: np.ndarray | None,
    rtol: np.ndarray | None,
    ok_parts: np.ndarray,
    uni_parts: np.ndarray,
) -> None:
    """End-of-iteration pass: finish the superstep (pending sync +
    trailing locals), write the per-tile delta, and — when ``ref`` is
    given — evaluate the steady-state detector's per-tile verdicts with
    the same predicate as :func:`_rows_close` / :func:`_rows_uniform`
    (a row's full-width ``.all`` is the AND of its tile ``.all``\\ s)."""
    m = ex.machine

    def visit(t: int, a: int, b: int) -> None:
        if pend is not None:
            ex.apply_sync(pend, t, a, b)
        if tail_dt is not None:
            m.advance_cols(a, b, tail_dt[t])
        m.delta_cols(a, b, before, delta)
        if ref is None:
            return
        diff, tol = ex.diff_scr[t], ex.tol_scr[t]
        ok = None
        for d, p in zip(delta, prev):
            np.subtract(d[:, a:b], p[:, a:b], out=diff)
            np.abs(diff, out=diff)
            np.abs(p[:, a:b], out=tol)
            tol *= 1e-12
            tol += 1e-15
            good = (diff <= tol).all(axis=1)
            ok = good if ok is None else ok & good
        ok_parts[:, t] = ok
        np.subtract(delta[0][:, a:b], ref, out=diff)
        np.abs(diff, out=diff)
        uni_parts[:, t] = (diff <= rtol).all(axis=1)

    ex.foreach(visit)


def _exec_loop_sharded(ex: _ShardedExec, loop: VLoop) -> None:
    """The sharded twin of :func:`_exec_loop_batched`.

    Identical control flow — the same per-row ``(prev, stable)``
    detector state machine, retiring each config at exactly the
    iteration the unsharded executor would, with the same active-set
    extraction — but the per-iteration work is reorganised into the
    fused tile passes described at the top of this section, and each
    segment's local dt is cached across iterations (it is
    loop-invariant; the cache is row-sliced on extraction).
    """
    segs = _shard_segments(loop.body)
    tail_ops: tuple = ()
    if segs and segs[-1][1] is None:
        tail_ops = segs.pop()[0]
    remaining = loop.iters
    parent = ex.machine
    rows = np.arange(parent.n_configs)
    n_tiles = len(ex.bounds)
    shape = parent.rates.shape
    seg_dt = [_dt_tiles(ex, locs) for locs, _ in segs]
    tail_dt = _dt_tiles(ex, tail_ops)
    before = tuple(np.empty(shape) for _ in range(4))
    delta = tuple(np.empty(shape) for _ in range(4))
    prev = tuple(np.empty(shape) for _ in range(4))
    ok_parts = np.empty((shape[0], n_tiles), dtype=bool)
    uni_parts = np.empty((shape[0], n_tiles), dtype=bool)
    have_prev = False
    stable = np.zeros(shape[0], dtype=np.int64)
    while remaining > 0:
        # Mirrors _exec_loop_batched's post-decrement `remaining <
        # _MIN_FF_REMAINING: continue`: iterations that skip the
        # detector also skip the snapshot and delta.
        detect = remaining - 1 >= _MIN_FF_REMAINING
        pend: tuple | None = None
        snap = before if detect else None
        for si, (locs, sync) in enumerate(segs):
            dts = seg_dt[si]
            if isinstance(sync, (VBarrier, VAllreduce)):
                _fused_pass(ex, pend=pend, snap=snap, dt=dts, partial=True)
                pend = _barrier_pend(ex, sync)
            else:
                if pend is not None or snap is not None or dts is not None:
                    _fused_pass(ex, pend=pend, snap=snap, dt=dts)
                if isinstance(sync, VSendrecv):
                    pend = _sendrecv_phase1(ex, sync)
                else:  # a sync-bearing nested loop
                    pend = None
                    _exec_loop_sharded(ex, sync)
            snap = None
        remaining -= 1
        if not detect:
            if pend is not None or tail_dt is not None:
                _fused_pass(ex, pend=pend, dt=tail_dt)
            continue
        if have_prev:
            ref, rtol = _ref_delta(ex, pend, tail_dt, before)
        else:
            ref = rtol = None
        _closing_pass(
            ex, pend, tail_dt, before, delta, prev, ref, rtol,
            ok_parts, uni_parts,
        )
        if have_prev:
            ok = ok_parts.all(axis=1)
            ok &= uni_parts.all(axis=1)
            stable = np.where(ok, stable + 1, 0)
        else:
            stable[:] = 0
        retire = stable >= _FF_STABLE_ITERS
        if np.any(retire):
            m = ex.machine
            whole = bool(retire.all())
            repeats = remaining

            def ff_visit(t: int, a: int, b: int) -> None:
                m.fast_forward_rows_cols(
                    a, b, retire, delta, repeats, ex.diff_scr[t], whole
                )

            ex.foreach(ff_visit)
            telemetry.count("sim.fast_forward", int(retire.sum()))
            telemetry.observe("sim.ff_saved_iters", remaining)
            if ex.machine is not parent:
                parent.write_rows(rows[retire], ex.machine, retire)
            keep = ~retire
            rows = rows[keep]
            if rows.size == 0:
                return
            ex = ex.shrink(keep)
            shape = ex.machine.rates.shape
            prev = tuple(d[keep] for d in delta)
            before = tuple(np.empty(shape) for _ in range(4))
            delta = tuple(np.empty(shape) for _ in range(4))
            ok_parts = np.empty((shape[0], n_tiles), dtype=bool)
            uni_parts = np.empty((shape[0], n_tiles), dtype=bool)
            stable = stable[keep]
            seg_dt = [
                None if c is None else [dt[keep] for dt in c] for c in seg_dt
            ]
            tail_dt = (
                None if tail_dt is None else [dt[keep] for dt in tail_dt]
            )
            have_prev = True
        else:
            prev, delta = delta, prev
            have_prev = True
    if ex.machine is not parent:
        parent.write_rows(rows, ex.machine)


def _exec_ops_sharded(ex: _ShardedExec, ops: Sequence[_VOp]) -> None:
    """Top-level sharded op walk (fusion boundaries identical to
    :func:`_exec_ops_batched`).  Top-level sequences are a handful of
    ops, so only loop bodies get the cross-segment pass fusion."""
    for locs, sync in _shard_segments(ops):
        dts = _dt_tiles(ex, locs)
        if isinstance(sync, (VBarrier, VAllreduce)):
            _fused_pass(ex, dt=dts, partial=True)
            _fused_pass(ex, pend=_barrier_pend(ex, sync))
        elif isinstance(sync, VSendrecv):
            if dts is not None:
                _fused_pass(ex, dt=dts)
            _fused_pass(ex, pend=_sendrecv_phase1(ex, sync))
        elif isinstance(sync, VLoop):
            if dts is not None:
                _fused_pass(ex, dt=dts)
            _exec_loop_sharded(ex, sync)
        elif dts is not None:
            _fused_pass(ex, dt=dts)


def _resolve_shard_plan(shard, shape: tuple[int, int]) -> ShardPlan | None:
    """Normalise :func:`run_fast_batched`'s ``shard`` argument
    (``None`` stays ``None``: the unsharded path)."""
    if shard is None:
        return None
    if isinstance(shard, ShardPlan):
        if (shard.n_configs, shard.n_ranks) != shape:
            raise ConfigurationError(
                f"plan is for a {(shard.n_configs, shard.n_ranks)} plane; "
                f"rates have shape {shape}"
            )
        return shard
    if isinstance(shard, str):
        if shard != "auto":
            raise ConfigurationError(
                f"shard must be None, 'auto', a ShardSpec, or a ShardPlan; "
                f"got {shard!r}"
            )
        shard = ShardSpec()
    if isinstance(shard, ShardSpec):
        return shard.plan(shape[0], shape[1])
    raise ConfigurationError(
        f"shard must be None, 'auto', a ShardSpec, or a ShardPlan; "
        f"got {shard!r}"
    )


def _resolve_shard_mode(shard) -> str:
    """The execution mode a ``shard`` argument asks for (specs carry it;
    plans, ``"auto"`` and ``None`` mean the in-process thread executor)."""
    return shard.mode if isinstance(shard, ShardSpec) else "threads"


def run_fast_sharded(
    program: BspProgram,
    rates: np.ndarray,
    *,
    latency_s: float = 5e-6,
    bandwidth_gbps: float = 5.0,
    plan: ShardPlan | None = None,
    mode: str = "threads",
) -> list[RankTrace]:
    """Execute :func:`run_fast_batched`'s contract on a tiled plan.

    Row blocks run sequentially through the column-tiled executor (or
    plain :func:`_exec_ops_batched` when the plan has a single column
    tile); column tiles within a pass run on a thread pool when the plan
    asks for more than one worker.  Results are bit-identical to the
    unsharded path — ARCHITECTURE.md invariant 8.  ``plan=None``
    auto-tunes via :func:`~repro.simmpi.sharding.plan_shards`.

    ``mode="processes"`` hands the same plan to the cross-process
    executor (:func:`repro.simmpi.procshard.run_fast_procshard`): row
    blocks run on a persistent worker-process pool over a shared-memory
    plane, bit-identical again (invariant 9) and falling back to this
    thread path on any worker failure.
    """
    if mode not in SHARD_MODES:
        raise ConfigurationError(
            f"shard mode must be one of {SHARD_MODES}; got {mode!r}"
        )
    r = np.asarray(rates, dtype=float)
    if r.ndim != 2 or r.shape[1] != program.n_ranks:
        raise ConfigurationError(
            f"rates shape {r.shape} != (n_configs, {program.n_ranks})"
        )
    if plan is None:
        plan = plan_shards(r.shape[0], r.shape[1])
    elif (plan.n_configs, plan.n_ranks) != r.shape:
        raise ConfigurationError(
            f"plan is for a {(plan.n_configs, plan.n_ranks)} plane; "
            f"rates have shape {r.shape}"
        )
    if mode == "processes":
        from repro.simmpi import procshard

        return procshard.run_fast_procshard(
            program, r,
            latency_s=latency_s, bandwidth_gbps=bandwidth_gbps, plan=plan,
        )
    tiles = plan.col_tiles()
    busy = [0.0] * len(tiles)
    pool: ThreadPoolExecutor | None = None
    traces: list[RankTrace] = []
    t0 = perf_counter()
    with telemetry.span(
        "sim.run_fast_sharded",
        configs=int(r.shape[0]),
        ranks=program.n_ranks,
        row_blocks=plan.n_row_blocks,
        col_shards=plan.n_col_shards,
        workers=plan.n_workers,
    ):
        try:
            if plan.n_workers > 1 and plan.n_col_shards > 1:
                pool = ThreadPoolExecutor(
                    max_workers=plan.n_workers,
                    thread_name_prefix="repro-shard",
                )
            for r0, r1 in plan.row_blocks():
                machine = BatchedBspMachine(
                    r[r0:r1], latency_s=latency_s, bandwidth_gbps=bandwidth_gbps
                )
                if plan.n_col_shards == 1:
                    _exec_ops_batched(machine, program.ops)
                else:
                    _exec_ops_sharded(
                        _ShardedExec(machine, tiles, pool, busy), program.ops
                    )
                traces.extend(machine.traces())
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        if telemetry.enabled():
            wall = perf_counter() - t0
            for t, (a, b) in enumerate(tiles):
                telemetry.observe("sim.shard_ranks", b - a)
                telemetry.record_span(
                    "sim.shard", busy[t], tile=t, cols=f"{a}:{b}"
                )
            if wall > 0.0:
                telemetry.observe(
                    "sim.shard_occupancy",
                    min(1.0, sum(busy) / (wall * plan.n_workers)),
                )
    return traces


def run_fast_batched(
    program: BspProgram,
    rates: np.ndarray,
    *,
    latency_s: float = 5e-6,
    bandwidth_gbps: float = 5.0,
    shard: ShardPlan | ShardSpec | str | None = None,
) -> list[RankTrace]:
    """Execute one :class:`BspProgram` for many rate configurations at
    once on the 2-D vectorised path.

    ``rates`` has shape ``(n_configs, n_ranks)``; the result is one
    :class:`RankTrace` per config, bit-identical to ``n_configs``
    separate :func:`run_fast` calls at the corresponding rate rows.

    ``shard`` selects the execution layout — never the results:
    ``None`` runs the whole plane unsharded, ``"auto"`` (or a
    :class:`~repro.simmpi.sharding.ShardSpec`) tiles it to the
    working-set budget via :func:`~repro.simmpi.sharding.plan_shards`,
    and an explicit :class:`~repro.simmpi.sharding.ShardPlan` is used
    as given.  A spec's ``mode`` additionally picks the executor
    (threads in-process vs the worker-process pool).  Plans that
    degenerate to one whole-plane tile fall through to the unsharded
    executor.
    """
    r = np.asarray(rates, dtype=float)
    if r.ndim != 2 or r.shape[1] != program.n_ranks:
        raise ConfigurationError(
            f"rates shape {r.shape} != (n_configs, {program.n_ranks})"
        )
    plan = _resolve_shard_plan(shard, r.shape)
    if plan is not None and not plan.is_unsharded:
        return run_fast_sharded(
            program, r,
            latency_s=latency_s, bandwidth_gbps=bandwidth_gbps, plan=plan,
            mode=_resolve_shard_mode(shard),
        )
    machine = BatchedBspMachine(
        r, latency_s=latency_s, bandwidth_gbps=bandwidth_gbps
    )
    with telemetry.span(
        "sim.run_fast_batched", configs=int(r.shape[0]), ranks=program.n_ranks
    ):
        _exec_ops_batched(machine, program.ops)
    return machine.traces()


# -- lowering to the event-driven machine --------------------------------------


def _send_targets(op: VSendrecv, n_ranks: int) -> list[list[int]]:
    """``targets[r]`` = ranks whose neighbour table lists ``r``.

    The BSP exchange has rank *r* wait on its listed neighbours, so the
    event lowering must have each of those neighbours *send* to r —
    for an asymmetric table the send set is the transpose of the
    receive set.  (Torus/ring tables are symmetric; the general form
    keeps the lowering faithful for arbitrary tables.)
    """
    targets: list[list[int]] = [[] for _ in range(n_ranks)]
    nb = np.asarray(op.neighbors)
    for r in range(n_ranks):
        for p in nb[r]:
            targets[int(p)].append(r)
    return targets


def to_event_program(program: BspProgram) -> Callable[[int], Iterator]:
    """Lower a :class:`BspProgram` to per-rank event-machine generators.

    The result runs on :class:`EventDrivenMachine` — the differential
    reference.  Sends are emitted before receives within each exchange,
    so lowered programs can never deadlock.
    """
    n = program.n_ranks
    send_tables: dict[int, list[list[int]]] = {}

    def lower(ops: Sequence[_VOp], rank: int) -> Iterator:
        for op in ops:
            if isinstance(op, VCompute):
                work = np.broadcast_to(
                    np.asarray(op.ghz_seconds, dtype=float), (n,)
                )
                yield Compute(float(work[rank]))
            elif isinstance(op, VElapse):
                secs = np.broadcast_to(np.asarray(op.seconds, dtype=float), (n,))
                yield Elapse(float(secs[rank]))
            elif isinstance(op, VBarrier):
                yield Barrier()
            elif isinstance(op, VAllreduce):
                yield Allreduce(op.message_bytes)
            elif isinstance(op, VSendrecv):
                table = send_tables.setdefault(id(op), _send_targets(op, n))
                for dst in table[rank]:
                    yield Send(dst, message_bytes=op.message_bytes)
                for src in np.asarray(op.neighbors)[rank]:
                    yield Recv(int(src))
            elif isinstance(op, VLoop):
                for _ in range(op.iters):
                    yield from lower(op.body, rank)
            else:  # pragma: no cover - programs are validated on construction
                raise SimulationError(f"unknown fast-path op {op!r}")

    def prog(rank: int) -> Iterator:
        yield from lower(program.ops, rank)

    return prog


def run_event(
    program: BspProgram,
    rates: np.ndarray,
    *,
    latency_s: float = 5e-6,
    bandwidth_gbps: float = 5.0,
) -> RankTrace:
    """Execute a :class:`BspProgram` on the event-driven reference path."""
    machine = EventDrivenMachine(
        np.asarray(rates, dtype=float),
        latency_s=latency_s,
        bandwidth_gbps=bandwidth_gbps,
    )
    return machine.run(to_event_program(program))


# -- application dispatch ------------------------------------------------------


def is_bsp_expressible(app) -> bool:
    """Whether an app's communication pattern fits the fast path.

    True for the rank-uniform kinds (``"none"``, ``"neighbor"``,
    ``"allreduce"``); False for anything needing genuine point-to-point
    matching (``"pipeline"``), which must run event-driven.
    """
    return app.comm.kind in BSP_COMM_KINDS


def _app_work(app, n_ranks: int, fmax_ghz: float, work_imbalance):
    """Per-rank (cpu GHz·seconds, fixed seconds) of one app iteration."""
    if work_imbalance is None:
        scaled = np.ones(n_ranks)
    else:
        scaled = np.asarray(work_imbalance, dtype=float)
        if scaled.shape != (n_ranks,):
            raise ConfigurationError("work_imbalance must have one entry per rank")
    kappa = app.cpu_bound_fraction
    base = app.iter_seconds_fmax
    return kappa * base * fmax_ghz * scaled, (1.0 - kappa) * base * scaled


def bsp_app_program(
    app,
    n_ranks: int,
    fmax_ghz: float,
    n_iters: int,
    work_imbalance: np.ndarray | None = None,
) -> BspProgram:
    """An :class:`~repro.apps.base.AppModel`'s iteration structure as a
    :class:`BspProgram` (BSP-expressible comm kinds only)."""
    if not is_bsp_expressible(app):
        raise ConfigurationError(
            f"comm kind {app.comm.kind!r} is not BSP-expressible"
        )
    if n_iters <= 0:
        raise ConfigurationError("n_iters must be positive")
    cpu_work, fixed = _app_work(app, n_ranks, fmax_ghz, work_imbalance)
    body: list[_VOp] = [VCompute(cpu_work)]
    if app.cpu_bound_fraction < 1.0:
        body.append(VElapse(fixed))
    if app.comm.kind == "neighbor":
        body.append(VSendrecv(app.neighbor_table(n_ranks), app.comm.message_bytes))
    elif app.comm.kind == "allreduce":
        body.append(VAllreduce(max(app.comm.message_bytes, 8.0)))
    ops: list[_VOp] = [VLoop(tuple(body), int(n_iters))]
    if app.comm.final_allreduce:
        ops.append(VAllreduce(8.0))
    return BspProgram(n_ranks, tuple(ops))


def event_app_program(
    app,
    n_ranks: int,
    fmax_ghz: float,
    n_iters: int,
    work_imbalance: np.ndarray | None = None,
) -> Callable[[int], Iterator]:
    """Per-rank event-machine program for any comm kind.

    This is the explicit fallback: the ``"pipeline"`` kind (rank r
    receives from r−1 and feeds r+1 each iteration — a software
    pipeline, not bulk-synchronous) only exists here.
    """
    if n_iters <= 0:
        raise ConfigurationError("n_iters must be positive")
    cpu_work, fixed = _app_work(app, n_ranks, fmax_ghz, work_imbalance)
    kappa = app.cpu_bound_fraction
    comm = app.comm
    neighbors = app.neighbor_table(n_ranks) if comm.kind == "neighbor" else None

    def prog(rank: int) -> Iterator:
        for _ in range(n_iters):
            yield Compute(float(cpu_work[rank]))
            if kappa < 1.0:
                yield Elapse(float(fixed[rank]))
            if comm.kind == "pipeline":
                if rank + 1 < n_ranks:
                    yield Send(rank + 1, message_bytes=comm.message_bytes)
                if rank > 0:
                    yield Recv(rank - 1)
            elif comm.kind == "neighbor":
                for p in neighbors[rank]:
                    yield Send(int(p), message_bytes=comm.message_bytes)
                for p in neighbors[rank]:
                    yield Recv(int(p))
            elif comm.kind == "allreduce":
                yield Allreduce(max(comm.message_bytes, 8.0))
        if comm.final_allreduce:
            yield Allreduce(8.0)

    return prog


def simulate_app(
    app,
    rates_ghz: np.ndarray,
    fmax_ghz: float,
    *,
    n_iters: int | None = None,
    latency_s: float = 5e-6,
    bandwidth_gbps: float = 5.0,
    work_imbalance: np.ndarray | None = None,
) -> RankTrace:
    """Simulate an application, automatically picking the fastest exact path.

    BSP-expressible communication runs as whole-fleet array operations
    (:func:`run_fast`); anything else falls back to the event-driven
    machine.  This is the entry point :mod:`repro.core.runner` uses for
    every managed (deterministic) execution.
    """
    rates = np.asarray(rates_ghz, dtype=float)
    iters = int(app.default_iters if n_iters is None else n_iters)
    if iters <= 0:
        raise ConfigurationError("n_iters must be positive")
    n_ranks = int(rates.shape[0]) if rates.ndim == 1 else 0
    if is_bsp_expressible(app):
        telemetry.count("sim.route.fast")
        program = bsp_app_program(app, n_ranks or 1, fmax_ghz, iters, work_imbalance)
        return run_fast(
            program, rates, latency_s=latency_s, bandwidth_gbps=bandwidth_gbps
        )
    telemetry.count("sim.route.event")
    machine = EventDrivenMachine(
        rates, latency_s=latency_s, bandwidth_gbps=bandwidth_gbps
    )
    machine.observer = telemetry.timeline("eventsim")
    with telemetry.span(
        "sim.run_event", ranks=machine.n_ranks, comm=app.comm.kind
    ):
        return machine.run(
            event_app_program(app, machine.n_ranks, fmax_ghz, iters, work_imbalance)
        )


def simulate_app_batched(
    app,
    rates_ghz: np.ndarray,
    fmax_ghz: float,
    *,
    n_iters: int | None = None,
    latency_s: float = 5e-6,
    bandwidth_gbps: float = 5.0,
    work_imbalance: np.ndarray | None = None,
    shard: ShardPlan | ShardSpec | str | None = None,
) -> list[RankTrace]:
    """Simulate one application under many rate configurations at once.

    ``rates_ghz`` has shape ``(n_configs, n_ranks)``.  BSP-expressible
    apps run as a single 2-D pass (:func:`run_fast_batched`); the
    program is built once — :func:`bsp_app_program` is deterministic in
    its arguments, so the shared program equals what each per-config
    :func:`simulate_app` call would build.  Non-BSP comm (``"pipeline"``)
    has genuinely per-rank control flow and falls back to per-config
    dispatch, which is the sequential path verbatim.

    ``shard`` is forwarded to :func:`run_fast_batched` (execution
    layout only — results are bit-identical either way); the per-config
    fallback ignores it, as 1-D runs have nothing to tile.
    """
    rates = np.asarray(rates_ghz, dtype=float)
    if rates.ndim != 2:
        raise ConfigurationError(
            f"rates must have shape (n_configs, n_ranks); got {rates.shape}"
        )
    iters = int(app.default_iters if n_iters is None else n_iters)
    if iters <= 0:
        raise ConfigurationError("n_iters must be positive")
    if is_bsp_expressible(app):
        telemetry.count("sim.route.fast_batched")
        program = bsp_app_program(
            app, int(rates.shape[1]), fmax_ghz, iters, work_imbalance
        )
        return run_fast_batched(
            program, rates,
            latency_s=latency_s, bandwidth_gbps=bandwidth_gbps, shard=shard,
        )
    return [
        simulate_app(
            app,
            rates[c],
            fmax_ghz,
            n_iters=iters,
            latency_s=latency_s,
            bandwidth_gbps=bandwidth_gbps,
            work_imbalance=work_imbalance,
        )
        for c in range(rates.shape[0])
    ]
