"""Event-driven MPI program simulator (the general-purpose path).

:class:`~repro.simmpi.machine.BspMachine` is the vectorised fast path
for bulk-synchronous codes — every rank executes the same superstep
structure, so per-superstep array operations suffice.  This module is
the general path: each rank runs its *own* program (a generator yielding
operations), with genuine point-to-point message matching, blocking
receives, and deadlock detection.  It exists for three reasons:

1. applications that are not bulk-synchronous (pipelines,
   master/worker) can still be simulated;
2. it cross-validates the BSP machine — the equivalence tests run the
   same halo-exchange program on both and compare timings;
3. it documents the timing semantics precisely (eager sends, rendezvous
   on receive).

Timing model
------------
* ``Compute(ghz_seconds)`` — advances the rank by work/rate.
* ``Send(dst, tag, bytes)`` — eager: the message is available to the
  receiver at ``t_send + latency + bytes/bw``; the sender continues
  immediately (buffered).
* ``Recv(src, tag)`` — blocks until the matching message (FIFO per
  (src, dst, tag)) is available; wait time is charged to the receiver.
* ``Barrier()`` / ``Allreduce(bytes)`` — global synchronisation at the
  latest arrival (allreduce adds a log₂-tree cost, matching the BSP
  machine).

Programs are generator functions ``prog(rank) -> Iterator[Op]``.
"""

from __future__ import annotations

from collections import defaultdict, deque
from collections.abc import Callable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.simmpi.tracing import RankTrace

__all__ = [
    "Compute",
    "Elapse",
    "Send",
    "Recv",
    "Barrier",
    "Allreduce",
    "EventDrivenMachine",
]


@dataclass(frozen=True)
class Compute:
    """Local work in GHz·seconds (time = work / rank rate)."""

    ghz_seconds: float


@dataclass(frozen=True)
class Elapse:
    """Frequency-insensitive local time (memory stalls, I/O)."""

    seconds: float


@dataclass(frozen=True)
class Send:
    """Eager point-to-point send."""

    dst: int
    tag: int = 0
    message_bytes: float = 0.0


@dataclass(frozen=True)
class Recv:
    """Blocking receive of the matching (src, tag) message."""

    src: int
    tag: int = 0


@dataclass(frozen=True)
class Barrier:
    """Global synchronisation."""


@dataclass(frozen=True)
class Allreduce:
    """Global reduction (barrier + log-tree transfer cost)."""

    message_bytes: float = 8.0


_Op = Compute | Elapse | Send | Recv | Barrier | Allreduce


class _RankState:
    __slots__ = ("it", "clock", "compute", "wait", "comm", "blocked_on", "done")

    def __init__(self, it: Iterator[_Op]):
        self.it = it
        self.clock = 0.0
        self.compute = 0.0
        self.wait = 0.0
        self.comm = 0.0
        self.blocked_on: Recv | str | None = None
        self.done = False


class EventDrivenMachine:
    """Runs one generator program per rank with message matching.

    Parameters mirror :class:`~repro.simmpi.BspMachine`.
    """

    def __init__(
        self,
        rates: np.ndarray,
        *,
        latency_s: float = 5e-6,
        bandwidth_gbps: float = 5.0,
    ):
        r = np.asarray(rates, dtype=float)
        if r.ndim != 1 or r.size == 0 or np.any(r <= 0) or np.any(~np.isfinite(r)):
            raise SimulationError("rates must be a non-empty, positive 1-D array")
        self.rates = r
        self.latency_s = float(latency_s)
        self.bandwidth_gbps = float(bandwidth_gbps)
        #: Optional sync observer (duck-typed: ``on_sync(op, clock_s,
        #: wait_s)``), notified at each global collective release —
        #: the event-driven counterpart of the BSP machine's observer.
        self.observer = None

    @property
    def n_ranks(self) -> int:
        """Number of ranks simulated."""
        return int(self.rates.size)

    def _transfer(self, message_bytes: float) -> float:
        return self.latency_s + message_bytes / (self.bandwidth_gbps * 1e9)

    def run(self, program: Callable[[int], Iterator[_Op]]) -> RankTrace:
        """Execute ``program(rank)`` on every rank to completion.

        Raises :class:`SimulationError` on deadlock (some rank blocks on
        a receive whose send never happens, or a barrier some rank never
        reaches).
        """
        n = self.n_ranks
        ranks = [_RankState(iter(program(r))) for r in range(n)]
        # (src, dst, tag) -> deque of availability times.
        mailbox: dict[tuple[int, int, int], deque[float]] = defaultdict(deque)
        # Receivers blocked per key (FIFO, matching MPI ordering).
        waiting_recv: dict[tuple[int, int, int], deque[int]] = defaultdict(deque)
        barrier_waiting: list[int] = []
        barrier_kind: list[_Op] = []
        runnable: list[int] = list(range(n))

        def advance(idx: int) -> None:
            """Run rank ``idx`` until it blocks or finishes."""
            st = ranks[idx]
            while True:
                try:
                    op = next(st.it)
                except StopIteration:
                    st.done = True
                    return
                if isinstance(op, Compute):
                    if op.ghz_seconds < 0:
                        raise SimulationError("compute work must be non-negative")
                    dt = op.ghz_seconds / self.rates[idx]
                    st.clock += dt
                    st.compute += dt
                elif isinstance(op, Elapse):
                    if op.seconds < 0:
                        raise SimulationError("elapsed time must be non-negative")
                    st.clock += op.seconds
                    st.compute += op.seconds
                elif isinstance(op, Send):
                    if not (0 <= op.dst < n):
                        raise SimulationError(f"send to invalid rank {op.dst}")
                    cost = self._transfer(op.message_bytes)
                    avail = st.clock + cost
                    st.comm += cost
                    st.clock += cost
                    key = (idx, op.dst, op.tag)
                    if waiting_recv[key]:
                        rcv = waiting_recv[key].popleft()
                        self._complete_recv(ranks[rcv], avail)
                        runnable.append(rcv)
                    else:
                        mailbox[key].append(avail)
                elif isinstance(op, Recv):
                    if not (0 <= op.src < n):
                        raise SimulationError(f"recv from invalid rank {op.src}")
                    key = (op.src, idx, op.tag)
                    if mailbox[key]:
                        avail = mailbox[key].popleft()
                        self._complete_recv(st, avail)
                    else:
                        st.blocked_on = op
                        waiting_recv[key].append(idx)
                        return
                elif isinstance(op, (Barrier, Allreduce)):
                    st.blocked_on = "barrier"
                    barrier_waiting.append(idx)
                    barrier_kind.append(op)
                    if len(barrier_waiting) == n:
                        release = max(ranks[i].clock for i in barrier_waiting)
                        cost = self._collective_cost(barrier_kind)
                        obs = self.observer
                        if obs is not None:
                            wait_s = np.zeros(n)
                            for i in barrier_waiting:
                                wait_s[i] = release - ranks[i].clock
                        for i in barrier_waiting:
                            r = ranks[i]
                            r.wait += release - r.clock
                            r.comm += cost
                            r.clock = release + cost
                            r.blocked_on = None
                            if i != idx:
                                runnable.append(i)
                        if obs is not None:
                            kind = (
                                "allreduce"
                                if any(isinstance(o, Allreduce) for o in barrier_kind)
                                else "barrier"
                            )
                            obs.on_sync(kind, np.full(n, release + cost), wait_s)
                        barrier_waiting.clear()
                        barrier_kind.clear()
                        continue  # this rank proceeds past the barrier
                    return
                else:  # pragma: no cover - defensive
                    raise SimulationError(f"unknown operation {op!r}")

        while runnable:
            idx = runnable.pop()
            st = ranks[idx]
            if st.done:
                continue
            st.blocked_on = None
            advance(idx)

        stuck = [i for i, st in enumerate(ranks) if not st.done]
        if stuck:
            details = {i: ranks[i].blocked_on for i in stuck}
            raise SimulationError(f"deadlock: ranks {details} never completed")

        trace = RankTrace(
            total_s=np.array([st.clock for st in ranks]),
            compute_s=np.array([st.compute for st in ranks]),
            wait_s=np.array([st.wait for st in ranks]),
            comm_s=np.array([st.comm for st in ranks]),
        )
        obs = self.observer
        if obs is not None:
            # Terminal snapshot, so programs with no collectives (pure
            # point-to-point pipelines) still produce a timeline event.
            obs.on_sync("finish", trace.total_s, trace.wait_s)
        return trace

    def _complete_recv(self, st: _RankState, avail: float) -> None:
        wait = max(0.0, avail - st.clock)
        st.wait += wait
        st.clock = max(st.clock, avail)
        st.blocked_on = None

    def _collective_cost(self, ops: list[_Op]) -> float:
        if all(isinstance(o, Barrier) for o in ops):
            return 0.0
        message_bytes = max(
            (o.message_bytes for o in ops if isinstance(o, Allreduce)), default=8.0
        )
        hops = max(1, int(np.ceil(np.log2(max(self.n_ranks, 2)))))
        return 2 * (hops * self.latency_s + message_bytes / (self.bandwidth_gbps * 1e9))
