"""The vectorised bulk-synchronous machine.

:class:`BspMachine` maintains one virtual clock per MPI rank.  Compute
operations advance each clock by that rank's own compute time (work
divided by the rank's work rate); communication operations synchronise
clocks (globally or with topological neighbours) and charge the idle gap
to the rank's MPI wait time.  This is exact for bulk-synchronous codes —
which every benchmark in the paper is — and costs O(ranks) per
superstep, so 1,920-rank × hundreds-of-iterations runs are milliseconds.

Semantics of a halo exchange (``sendrecv``): rank *r* may leave the
exchange of superstep *k* once it **and all its neighbours** have
reached it.  Iterating supersteps propagates a slow module's delay
outward one hop per iteration — the wavefront behaviour that makes a
synchronised code's completion time track the globally slowest module
even though each rank only talks to its neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.simmpi.tracing import RankTrace

__all__ = ["BspMachine", "BatchedBspMachine", "MachineState"]


@dataclass(frozen=True)
class MachineState:
    """Snapshot of a :class:`BspMachine`'s four per-rank accumulators.

    The vectorised fast path (:mod:`repro.simmpi.fastpath`) uses state
    deltas to detect when an iterated superstep has reached its steady
    state — once the per-iteration increment of every accumulator is
    constant, the remaining iterations can be fast-forwarded as one
    whole-fleet array operation.
    """

    clock_s: np.ndarray
    compute_s: np.ndarray
    wait_s: np.ndarray
    comm_s: np.ndarray

    def delta_from(self, earlier: "MachineState") -> "MachineState":
        """Per-rank increments accumulated since ``earlier``."""
        return MachineState(
            clock_s=self.clock_s - earlier.clock_s,
            compute_s=self.compute_s - earlier.compute_s,
            wait_s=self.wait_s - earlier.wait_s,
            comm_s=self.comm_s - earlier.comm_s,
        )

    def allclose(
        self, other: "MachineState", *, rtol: float = 1e-12, atol: float = 1e-15
    ) -> bool:
        """Whether two states (usually deltas) agree to rounding noise."""
        return all(
            np.allclose(getattr(self, f), getattr(other, f), rtol=rtol, atol=atol)
            for f in ("clock_s", "compute_s", "wait_s", "comm_s")
        )


class BspMachine:
    """Per-rank virtual clocks with synchronising communication.

    Parameters
    ----------
    rates:
        Work rate of each rank in GHz-equivalents (effective frequency ×
        performance bin factor of the module hosting the rank).
    latency_s:
        Base cost of one communication operation (software + network
        latency), paid by every participant.
    bandwidth_gbps:
        Link bandwidth used to convert message bytes into transfer time.
    noise_frac:
        Mean relative operating-system noise added to every compute
        phase (one-sided exponential — interruptions only ever slow a
        rank down).  0 models the paper's "no per-run noise" idealised
        ranks; a few tenths of a percent reproduces the residual
        synchronisation spread of uncapped runs (Fig 3, Cm = No).
    noise_rng:
        Generator for the noise draws; required when ``noise_frac`` > 0.
    """

    def __init__(
        self,
        rates: np.ndarray,
        *,
        latency_s: float = 5e-6,
        bandwidth_gbps: float = 5.0,
        noise_frac: float = 0.0,
        noise_rng: np.random.Generator | None = None,
    ):
        r = np.asarray(rates, dtype=float)
        if r.ndim != 1 or r.size == 0:
            raise SimulationError("rates must be a non-empty 1-D array")
        if np.any(~np.isfinite(r)) or np.any(r <= 0):
            raise SimulationError("rates must be finite and positive")
        if latency_s < 0 or bandwidth_gbps <= 0:
            raise SimulationError("latency must be >= 0 and bandwidth > 0")
        if noise_frac < 0:
            raise SimulationError("noise_frac must be non-negative")
        if noise_frac > 0 and noise_rng is None:
            raise SimulationError("noise_frac > 0 requires a noise_rng")
        self._noise_frac = float(noise_frac)
        self._noise_rng = noise_rng
        self.rates = r
        self.latency_s = float(latency_s)
        self.bandwidth_gbps = float(bandwidth_gbps)
        self.clock_s = np.zeros(r.size)
        self._compute_s = np.zeros(r.size)
        self._wait_s = np.zeros(r.size)
        self._comm_s = np.zeros(r.size)
        # Preallocated scratch reused across supersteps.  At fleet scale
        # (100k+ ranks) per-op temporaries exceed the allocator's mmap
        # threshold, so allocating them per superstep costs a
        # mmap/munmap + page-fault cycle each — reuse keeps the arrays
        # resident and the throughput trajectory flat in fleet size.
        # All updates stay elementwise identical: ``a += b`` and
        # ``np.op(..., out=...)`` perform the same IEEE-754 operations
        # as their allocating forms.
        self._dt_scratch = np.empty(r.size)
        self._ready_scratch = np.empty(r.size)
        self._wait_scratch = np.empty(r.size)
        self._gather_scratch: dict[int, np.ndarray] = {}
        #: Optional sync observer (duck-typed: ``on_sync(op, clock_s,
        #: wait_s)``), e.g. a telemetry PhaseTimeline.  ``None`` keeps
        #: the sync path free of any telemetry cost.
        self.observer = None

    @property
    def n_ranks(self) -> int:
        """Number of ranks on the machine."""
        return int(self.rates.size)

    def set_rates(self, rates: np.ndarray) -> None:
        """Change per-rank work rates mid-run (a DVFS transition at a
        phase boundary; takes effect for subsequent compute calls)."""
        r = np.asarray(rates, dtype=float)
        if r.shape != self.rates.shape:
            raise SimulationError(
                f"rates shape {r.shape} != machine shape {self.rates.shape}"
            )
        if np.any(~np.isfinite(r)) or np.any(r <= 0):
            raise SimulationError("rates must be finite and positive")
        self.rates = r

    def _transfer_cost(self, message_bytes: float) -> float:
        return self.latency_s + message_bytes / (self.bandwidth_gbps * 1e9)

    # -- operations ------------------------------------------------------------

    def compute(self, ghz_seconds: np.ndarray | float) -> None:
        """Advance each rank by a compute phase.

        ``ghz_seconds`` is the work per rank expressed in GHz·seconds —
        the time the phase takes on a 1 GHz-equivalent module.  A scalar
        means perfectly balanced work.
        """
        work = np.broadcast_to(np.asarray(ghz_seconds, dtype=float), (self.n_ranks,))
        if np.any(work < 0):
            raise SimulationError("compute work must be non-negative")
        dt = np.divide(work, self.rates, out=self._dt_scratch)
        if self._noise_frac > 0.0:
            dt = dt * (1.0 + self._noise_frac * self._noise_rng.exponential(size=self.n_ranks))
        self.clock_s += dt
        self._compute_s += dt

    def elapse(self, seconds: np.ndarray | float) -> None:
        """Advance each rank by frequency-*insensitive* time (memory stalls,
        I/O): the (1 − κ) part of a partially CPU-bound phase."""
        dt = np.broadcast_to(np.asarray(seconds, dtype=float), (self.n_ranks,))
        if np.any(dt < 0):
            raise SimulationError("elapsed time must be non-negative")
        self.clock_s += dt
        self._compute_s += dt

    def advance_local(self, dt_seconds: np.ndarray | float) -> None:
        """Advance each rank by precomputed local time (fast-path entry).

        Semantically a fused ``compute`` + ``elapse``: ``dt_seconds`` is
        the per-rank local time of one or more communication-free
        phases, already divided by the rank rates.  Accounted as compute
        time, like both constituents.
        """
        dt = np.broadcast_to(np.asarray(dt_seconds, dtype=float), (self.n_ranks,))
        if np.any(dt < 0):
            raise SimulationError("local time must be non-negative")
        self.clock_s += dt
        self._compute_s += dt

    # -- fast-path state access ------------------------------------------------

    def state(self) -> MachineState:
        """Copy of the four per-rank accumulators (fast-path snapshots)."""
        return MachineState(
            clock_s=self.clock_s.copy(),
            compute_s=self._compute_s.copy(),
            wait_s=self._wait_s.copy(),
            comm_s=self._comm_s.copy(),
        )

    def state_into(self, out: MachineState) -> None:
        """Snapshot the accumulators into a caller-preallocated state
        (the fast path reuses two such buffers per loop instead of
        allocating four fleet-sized arrays per iteration)."""
        np.copyto(out.clock_s, self.clock_s)
        np.copyto(out.compute_s, self._compute_s)
        np.copyto(out.wait_s, self._wait_s)
        np.copyto(out.comm_s, self._comm_s)

    def delta_into(self, earlier: MachineState, out: MachineState) -> None:
        """Per-rank increments since ``earlier``, written into ``out``
        (same subtraction :meth:`MachineState.delta_from` performs)."""
        np.subtract(self.clock_s, earlier.clock_s, out=out.clock_s)
        np.subtract(self._compute_s, earlier.compute_s, out=out.compute_s)
        np.subtract(self._wait_s, earlier.wait_s, out=out.wait_s)
        np.subtract(self._comm_s, earlier.comm_s, out=out.comm_s)

    def fast_forward(self, delta: MachineState, repeats: int) -> None:
        """Apply ``repeats`` copies of a per-iteration state increment.

        The whole-fleet shortcut behind the vectorised fast path: once
        an iterated superstep's increments are stationary (every rank
        gains the same clock/compute/wait/comm per iteration), the
        remaining iterations collapse to one multiply-add per array.
        """
        if repeats < 0:
            raise SimulationError("repeats must be non-negative")
        if repeats == 0:
            return
        self.clock_s += np.multiply(delta.clock_s, repeats, out=self._dt_scratch)
        self._compute_s += np.multiply(delta.compute_s, repeats, out=self._dt_scratch)
        self._wait_s += np.multiply(delta.wait_s, repeats, out=self._dt_scratch)
        self._comm_s += np.multiply(delta.comm_s, repeats, out=self._dt_scratch)

    def barrier(self) -> None:
        """Global synchronisation: everyone waits for the slowest rank."""
        self._ready_scratch.fill(self.clock_s.max())
        self._sync_to(self._ready_scratch, 0.0, "barrier")

    def allreduce(self, message_bytes: float = 8.0) -> None:
        """Synchronising reduction: barrier semantics plus tree cost.

        Cost model: a reduce-then-broadcast binary tree — ⌈log₂ P⌉
        latency hops each way plus two payload traversals.
        """
        hops = max(1, int(np.ceil(np.log2(max(self.n_ranks, 2)))))
        cost = 2 * (
            hops * self.latency_s + message_bytes / (self.bandwidth_gbps * 1e9)
        )
        self._ready_scratch.fill(self.clock_s.max())
        self._sync_to(self._ready_scratch, cost, "allreduce")

    def sendrecv(self, neighbors: np.ndarray, message_bytes: float = 0.0) -> None:
        """Halo exchange: each rank waits for its neighbours.

        ``neighbors`` has shape ``(n_ranks, k)``; entry ``[r, j]`` is the
        j-th partner of rank r.  The exchange completes for rank r when r
        and all partners have entered it.  ``message_bytes`` is the halo
        size *per neighbour*; each rank pays one latency plus k
        transfers.
        """
        nb = np.asarray(neighbors)
        if nb.ndim != 2 or nb.shape[0] != self.n_ranks:
            raise SimulationError(
                f"neighbors must have shape (n_ranks, k); got {nb.shape}"
            )
        if nb.size and (nb.min() < 0 or nb.max() >= self.n_ranks):
            raise SimulationError("neighbor indices out of range")
        k = int(nb.shape[1])
        gather = self._gather_scratch.get(k)
        if gather is None:
            gather = self._gather_scratch[k] = np.empty(nb.shape)
        np.take(self.clock_s, nb, out=gather)
        ready = np.max(gather, axis=1, out=self._ready_scratch)
        np.maximum(self.clock_s, ready, out=ready)
        self._sync_to(
            ready, self._transfer_cost(message_bytes * nb.shape[1]), "sendrecv"
        )

    def _sync_to(
        self, ready_s: np.ndarray, transfer_cost_s: float, op: str
    ) -> None:
        wait = np.subtract(ready_s, self.clock_s, out=self._wait_scratch)
        self._wait_s += wait
        self._comm_s += transfer_cost_s
        np.add(ready_s, transfer_cost_s, out=self.clock_s)
        if self.observer is not None:
            self.observer.on_sync(op, self.clock_s, wait)

    # -- results ---------------------------------------------------------------

    def trace(self) -> RankTrace:
        """Snapshot the per-rank timing accumulated so far."""
        return RankTrace(
            total_s=self.clock_s.copy(),
            compute_s=self._compute_s.copy(),
            wait_s=self._wait_s.copy(),
            comm_s=self._comm_s.copy(),
        )


class BatchedBspMachine:
    """Many independent :class:`BspMachine` runs as one 2-D machine.

    State arrays have shape ``(n_configs, n_ranks)``: row *c* is exactly
    the machine a :class:`BspMachine` built from ``rates[c]`` would be.
    Every operation is row-independent — config rows never interact — and
    each is implemented with the same elementwise IEEE-754 operations as
    the 1-D machine, so row *c*'s results are bit-identical to a 1-D run
    at ``rates[c]``.  Sweeps exploit this: one batched pass over all
    budgets replaces ``n_configs`` Python-level fleet traversals.

    No noise and no observer: the batched path exists for the managed
    (deterministic) sweeps, which never enable per-run noise, and
    telemetry timelines are per-run by construction.
    """

    def __init__(
        self,
        rates: np.ndarray,
        *,
        latency_s: float = 5e-6,
        bandwidth_gbps: float = 5.0,
    ):
        r = np.asarray(rates, dtype=float)
        if r.ndim != 2 or r.size == 0:
            raise SimulationError(
                "rates must be a non-empty (n_configs, n_ranks) array"
            )
        if np.any(~np.isfinite(r)) or np.any(r <= 0):
            raise SimulationError("rates must be finite and positive")
        if latency_s < 0 or bandwidth_gbps <= 0:
            raise SimulationError("latency must be >= 0 and bandwidth > 0")
        self.rates = r
        self.latency_s = float(latency_s)
        self.bandwidth_gbps = float(bandwidth_gbps)
        shape = r.shape
        self.clock_s = np.zeros(shape)
        self._compute_s = np.zeros(shape)
        self._wait_s = np.zeros(shape)
        self._comm_s = np.zeros(shape)
        # Scratch reused across supersteps (see BspMachine.__init__).
        self._dt_scratch = np.empty(shape)
        self._ready_scratch = np.empty(shape)
        self._wait_scratch = np.empty(shape)
        self._take_scratch = np.empty(shape)
        self._rowmax_scratch = np.empty((shape[0], 1))

    @property
    def n_configs(self) -> int:
        """Number of stacked configurations (rows)."""
        return int(self.rates.shape[0])

    @property
    def n_ranks(self) -> int:
        """Number of ranks per configuration (columns)."""
        return int(self.rates.shape[1])

    @classmethod
    def _from_state(
        cls,
        rates: np.ndarray,
        latency_s: float,
        bandwidth_gbps: float,
        clock_s: np.ndarray,
        compute_s: np.ndarray,
        wait_s: np.ndarray,
        comm_s: np.ndarray,
    ) -> "BatchedBspMachine":
        m = cls(rates, latency_s=latency_s, bandwidth_gbps=bandwidth_gbps)
        np.copyto(m.clock_s, clock_s)
        np.copyto(m._compute_s, compute_s)
        np.copyto(m._wait_s, wait_s)
        np.copyto(m._comm_s, comm_s)
        return m

    def extract_rows(self, keep: np.ndarray) -> "BatchedBspMachine":
        """A new machine holding only the selected config rows (copies;
        the fast path uses this to drop fast-forwarded configs from the
        active set mid-loop)."""
        return self._from_state(
            self.rates[keep],
            self.latency_s,
            self.bandwidth_gbps,
            self.clock_s[keep],
            self._compute_s[keep],
            self._wait_s[keep],
            self._comm_s[keep],
        )

    def write_rows(
        self,
        rows: np.ndarray,
        sub: "BatchedBspMachine",
        sub_rows: np.ndarray | None = None,
    ) -> None:
        """Copy a sub-machine's state (or a row subset of it) back into
        the given parent rows."""
        sel = slice(None) if sub_rows is None else sub_rows
        self.clock_s[rows] = sub.clock_s[sel]
        self._compute_s[rows] = sub._compute_s[sel]
        self._wait_s[rows] = sub._wait_s[sel]
        self._comm_s[rows] = sub._comm_s[sel]

    # -- operations (row-wise identical to BspMachine) ---------------------------

    def advance_local(self, dt_seconds: np.ndarray) -> None:
        """Advance every config's ranks by precomputed local time."""
        dt = np.broadcast_to(
            np.asarray(dt_seconds, dtype=float), self.rates.shape
        )
        if np.any(dt < 0):
            raise SimulationError("local time must be non-negative")
        self.clock_s += dt
        self._compute_s += dt

    def _row_ready(self) -> np.ndarray:
        """Per-row clock maximum broadcast across ranks (barrier target)."""
        np.max(self.clock_s, axis=1, keepdims=True, out=self._rowmax_scratch)
        np.copyto(self._ready_scratch, self._rowmax_scratch)
        return self._ready_scratch

    def barrier(self) -> None:
        """Per-config global synchronisation."""
        self._sync_to(self._row_ready(), 0.0)

    def allreduce(self, message_bytes: float = 8.0) -> None:
        """Per-config synchronising reduction (same closed-form cost as
        :meth:`BspMachine.allreduce`)."""
        hops = max(1, int(np.ceil(np.log2(max(self.n_ranks, 2)))))
        cost = 2 * (
            hops * self.latency_s + message_bytes / (self.bandwidth_gbps * 1e9)
        )
        self._sync_to(self._row_ready(), cost)

    def sendrecv(self, neighbors: np.ndarray, message_bytes: float = 0.0) -> None:
        """Per-config halo exchange on a shared neighbour table."""
        nb = np.asarray(neighbors)
        if nb.ndim != 2 or nb.shape[0] != self.n_ranks:
            raise SimulationError(
                f"neighbors must have shape (n_ranks, k); got {nb.shape}"
            )
        if nb.size and (nb.min() < 0 or nb.max() >= self.n_ranks):
            raise SimulationError("neighbor indices out of range")
        # Partner-at-a-time gathers into (C, R) scratch instead of one
        # (C, R, k) fancy-indexed temporary: max is exact and selects an
        # operand, so the accumulation order cannot change the result and
        # the row-wise outcome stays bit-identical to the 1-D machine's.
        ready = self._ready_scratch
        np.take(self.clock_s, nb[:, 0], axis=1, out=ready)
        for j in range(1, nb.shape[1]):
            np.take(self.clock_s, nb[:, j], axis=1, out=self._take_scratch)
            np.maximum(ready, self._take_scratch, out=ready)
        np.maximum(self.clock_s, ready, out=ready)
        cost = self.latency_s + message_bytes * nb.shape[1] / (
            self.bandwidth_gbps * 1e9
        )
        self._sync_to(self._ready_scratch, cost)

    def _sync_to(self, ready_s: np.ndarray, transfer_cost_s: float) -> None:
        wait = np.subtract(ready_s, self.clock_s, out=self._wait_scratch)
        self._wait_s += wait
        self._comm_s += transfer_cost_s
        np.add(ready_s, transfer_cost_s, out=self.clock_s)

    # -- fast-path state access --------------------------------------------------

    def state_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Copies of the four ``(n_configs, n_ranks)`` accumulators."""
        return (
            self.clock_s.copy(),
            self._compute_s.copy(),
            self._wait_s.copy(),
            self._comm_s.copy(),
        )

    def state_into(
        self, out: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    ) -> None:
        """Snapshot the accumulators into preallocated buffers (the
        loop detector's per-iteration path, allocation-free)."""
        np.copyto(out[0], self.clock_s)
        np.copyto(out[1], self._compute_s)
        np.copyto(out[2], self._wait_s)
        np.copyto(out[3], self._comm_s)

    def delta_into(
        self,
        earlier: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        out: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> None:
        """Per-element increments since ``earlier``, written into ``out``."""
        np.subtract(self.clock_s, earlier[0], out=out[0])
        np.subtract(self._compute_s, earlier[1], out=out[1])
        np.subtract(self._wait_s, earlier[2], out=out[2])
        np.subtract(self._comm_s, earlier[3], out=out[3])

    def fast_forward_rows(
        self,
        rows: np.ndarray,
        delta: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        repeats: int,
    ) -> None:
        """Apply ``repeats`` per-iteration increments to selected rows
        (``delta`` arrays are machine-shaped; only ``rows`` are read).

        Per element this is the same ``a + repeats * d`` multiply-add
        :meth:`BspMachine.fast_forward` performs.
        """
        if repeats <= 0:
            return
        d_clock, d_compute, d_wait, d_comm = delta
        rows = np.asarray(rows)
        if rows.dtype == bool and rows.all():
            # Whole batch retires at once (the common case for uniform
            # sweeps): same multiply-add, without the masked copies.
            self.clock_s += np.multiply(d_clock, repeats, out=self._dt_scratch)
            self._compute_s += np.multiply(
                d_compute, repeats, out=self._dt_scratch
            )
            self._wait_s += np.multiply(d_wait, repeats, out=self._dt_scratch)
            self._comm_s += np.multiply(d_comm, repeats, out=self._dt_scratch)
            return
        self.clock_s[rows] += repeats * d_clock[rows]
        self._compute_s[rows] += repeats * d_compute[rows]
        self._wait_s[rows] += repeats * d_wait[rows]
        self._comm_s[rows] += repeats * d_comm[rows]

    # -- column-tiled twins (the sharded fast path) ------------------------------
    #
    # Each method below is the restriction of a full-width operation to
    # the column range [a, b).  Every update is elementwise (or, for the
    # maxima, exact operand selection), so applying a full-width op is
    # bit-identical to applying its twin on each tile of any column
    # partition — the invariant the sharded executor in
    # :mod:`repro.simmpi.fastpath` is built on.  Tiles never overlap, so
    # concurrent twin calls on disjoint ranges are race-free.

    def advance_cols(self, a: int, b: int, dt: np.ndarray) -> None:
        """:meth:`advance_local` on columns ``[a, b)``.

        ``dt`` is the caller's cached ``(n_configs, b - a)`` local-time
        tile, validated non-negative when the cache was built.
        """
        self.clock_s[:, a:b] += dt
        self._compute_s[:, a:b] += dt

    def rowmax_cols(self, a: int, b: int, out: np.ndarray) -> None:
        """Per-row clock maximum over columns ``[a, b)`` — one tile's
        contribution to the barrier/allreduce ready value.  Max is exact
        operand selection, so the max of these partials equals the
        full-row max bit for bit."""
        np.max(self.clock_s[:, a:b], axis=1, out=out)

    def gather_ready_cols(
        self,
        a: int,
        b: int,
        nb: np.ndarray,
        out: np.ndarray,
        scratch: tuple[np.ndarray, np.ndarray],
    ) -> None:
        """:meth:`sendrecv`'s ready-value gather for columns ``[a, b)``.

        Reads the *whole* clock plane (neighbours live in other tiles),
        writes only ``out`` — callers must not mutate clocks anywhere
        while a gather pass is in flight.  Partner-at-a-time maxima in
        the same order as the full-width gather.
        """
        g, h = scratch
        np.take(self.clock_s, nb[a:b, 0], axis=1, out=g)
        for j in range(1, nb.shape[1]):
            np.take(self.clock_s, nb[a:b, j], axis=1, out=h)
            np.maximum(g, h, out=g)
        np.maximum(self.clock_s[:, a:b], g, out=out)

    def sync_cols(
        self,
        a: int,
        b: int,
        ready_s: np.ndarray,
        transfer_cost_s: float,
        wait_scratch: np.ndarray,
    ) -> None:
        """:meth:`_sync_to` on columns ``[a, b)``.  ``ready_s`` is either
        the ``(n_configs, 1)`` row-ready vector (barrier/allreduce) or
        the tile's slice of a full gathered ready plane (sendrecv)."""
        cl = self.clock_s[:, a:b]
        np.subtract(ready_s, cl, out=wait_scratch)
        self._wait_s[:, a:b] += wait_scratch
        self._comm_s[:, a:b] += transfer_cost_s
        np.add(ready_s, transfer_cost_s, out=cl)

    def snapshot_cols(
        self, a: int, b: int, out: tuple[np.ndarray, ...]
    ) -> None:
        """:meth:`state_into` on columns ``[a, b)`` of machine-shaped
        buffers."""
        np.copyto(out[0][:, a:b], self.clock_s[:, a:b])
        np.copyto(out[1][:, a:b], self._compute_s[:, a:b])
        np.copyto(out[2][:, a:b], self._wait_s[:, a:b])
        np.copyto(out[3][:, a:b], self._comm_s[:, a:b])

    def delta_cols(
        self,
        a: int,
        b: int,
        earlier: tuple[np.ndarray, ...],
        out: tuple[np.ndarray, ...],
    ) -> None:
        """:meth:`delta_into` on columns ``[a, b)``."""
        np.subtract(self.clock_s[:, a:b], earlier[0][:, a:b], out=out[0][:, a:b])
        np.subtract(
            self._compute_s[:, a:b], earlier[1][:, a:b], out=out[1][:, a:b]
        )
        np.subtract(self._wait_s[:, a:b], earlier[2][:, a:b], out=out[2][:, a:b])
        np.subtract(self._comm_s[:, a:b], earlier[3][:, a:b], out=out[3][:, a:b])

    def fast_forward_rows_cols(
        self,
        a: int,
        b: int,
        rows: np.ndarray,
        delta: tuple[np.ndarray, ...],
        repeats: int,
        scratch: np.ndarray,
        whole: bool,
    ) -> None:
        """:meth:`fast_forward_rows` on columns ``[a, b)``; ``whole``
        precomputes ``rows.all()`` once for all tiles, ``scratch`` is a
        tile-shaped multiply buffer."""
        if repeats <= 0:
            return
        arrays = (self.clock_s, self._compute_s, self._wait_s, self._comm_s)
        if whole:
            for arr, d in zip(arrays, delta):
                arr[:, a:b] += np.multiply(d[:, a:b], repeats, out=scratch)
            return
        for arr, d in zip(arrays, delta):
            arr[rows, a:b] += repeats * d[rows, a:b]

    # -- results ---------------------------------------------------------------

    def traces(self) -> list[RankTrace]:
        """One :class:`RankTrace` per configuration row (copies)."""
        return [
            RankTrace(
                total_s=self.clock_s[c].copy(),
                compute_s=self._compute_s[c].copy(),
                wait_s=self._wait_s[c].copy(),
                comm_s=self._comm_s[c].copy(),
            )
            for c in range(self.n_configs)
        ]
