"""The vectorised bulk-synchronous machine.

:class:`BspMachine` maintains one virtual clock per MPI rank.  Compute
operations advance each clock by that rank's own compute time (work
divided by the rank's work rate); communication operations synchronise
clocks (globally or with topological neighbours) and charge the idle gap
to the rank's MPI wait time.  This is exact for bulk-synchronous codes —
which every benchmark in the paper is — and costs O(ranks) per
superstep, so 1,920-rank × hundreds-of-iterations runs are milliseconds.

Semantics of a halo exchange (``sendrecv``): rank *r* may leave the
exchange of superstep *k* once it **and all its neighbours** have
reached it.  Iterating supersteps propagates a slow module's delay
outward one hop per iteration — the wavefront behaviour that makes a
synchronised code's completion time track the globally slowest module
even though each rank only talks to its neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.simmpi.tracing import RankTrace

__all__ = ["BspMachine", "MachineState"]


@dataclass(frozen=True)
class MachineState:
    """Snapshot of a :class:`BspMachine`'s four per-rank accumulators.

    The vectorised fast path (:mod:`repro.simmpi.fastpath`) uses state
    deltas to detect when an iterated superstep has reached its steady
    state — once the per-iteration increment of every accumulator is
    constant, the remaining iterations can be fast-forwarded as one
    whole-fleet array operation.
    """

    clock_s: np.ndarray
    compute_s: np.ndarray
    wait_s: np.ndarray
    comm_s: np.ndarray

    def delta_from(self, earlier: "MachineState") -> "MachineState":
        """Per-rank increments accumulated since ``earlier``."""
        return MachineState(
            clock_s=self.clock_s - earlier.clock_s,
            compute_s=self.compute_s - earlier.compute_s,
            wait_s=self.wait_s - earlier.wait_s,
            comm_s=self.comm_s - earlier.comm_s,
        )

    def allclose(
        self, other: "MachineState", *, rtol: float = 1e-12, atol: float = 1e-15
    ) -> bool:
        """Whether two states (usually deltas) agree to rounding noise."""
        return all(
            np.allclose(getattr(self, f), getattr(other, f), rtol=rtol, atol=atol)
            for f in ("clock_s", "compute_s", "wait_s", "comm_s")
        )


class BspMachine:
    """Per-rank virtual clocks with synchronising communication.

    Parameters
    ----------
    rates:
        Work rate of each rank in GHz-equivalents (effective frequency ×
        performance bin factor of the module hosting the rank).
    latency_s:
        Base cost of one communication operation (software + network
        latency), paid by every participant.
    bandwidth_gbps:
        Link bandwidth used to convert message bytes into transfer time.
    noise_frac:
        Mean relative operating-system noise added to every compute
        phase (one-sided exponential — interruptions only ever slow a
        rank down).  0 models the paper's "no per-run noise" idealised
        ranks; a few tenths of a percent reproduces the residual
        synchronisation spread of uncapped runs (Fig 3, Cm = No).
    noise_rng:
        Generator for the noise draws; required when ``noise_frac`` > 0.
    """

    def __init__(
        self,
        rates: np.ndarray,
        *,
        latency_s: float = 5e-6,
        bandwidth_gbps: float = 5.0,
        noise_frac: float = 0.0,
        noise_rng: np.random.Generator | None = None,
    ):
        r = np.asarray(rates, dtype=float)
        if r.ndim != 1 or r.size == 0:
            raise SimulationError("rates must be a non-empty 1-D array")
        if np.any(~np.isfinite(r)) or np.any(r <= 0):
            raise SimulationError("rates must be finite and positive")
        if latency_s < 0 or bandwidth_gbps <= 0:
            raise SimulationError("latency must be >= 0 and bandwidth > 0")
        if noise_frac < 0:
            raise SimulationError("noise_frac must be non-negative")
        if noise_frac > 0 and noise_rng is None:
            raise SimulationError("noise_frac > 0 requires a noise_rng")
        self._noise_frac = float(noise_frac)
        self._noise_rng = noise_rng
        self.rates = r
        self.latency_s = float(latency_s)
        self.bandwidth_gbps = float(bandwidth_gbps)
        self.clock_s = np.zeros(r.size)
        self._compute_s = np.zeros(r.size)
        self._wait_s = np.zeros(r.size)
        self._comm_s = np.zeros(r.size)
        #: Optional sync observer (duck-typed: ``on_sync(op, clock_s,
        #: wait_s)``), e.g. a telemetry PhaseTimeline.  ``None`` keeps
        #: the sync path free of any telemetry cost.
        self.observer = None

    @property
    def n_ranks(self) -> int:
        """Number of ranks on the machine."""
        return int(self.rates.size)

    def set_rates(self, rates: np.ndarray) -> None:
        """Change per-rank work rates mid-run (a DVFS transition at a
        phase boundary; takes effect for subsequent compute calls)."""
        r = np.asarray(rates, dtype=float)
        if r.shape != self.rates.shape:
            raise SimulationError(
                f"rates shape {r.shape} != machine shape {self.rates.shape}"
            )
        if np.any(~np.isfinite(r)) or np.any(r <= 0):
            raise SimulationError("rates must be finite and positive")
        self.rates = r

    def _transfer_cost(self, message_bytes: float) -> float:
        return self.latency_s + message_bytes / (self.bandwidth_gbps * 1e9)

    # -- operations ------------------------------------------------------------

    def compute(self, ghz_seconds: np.ndarray | float) -> None:
        """Advance each rank by a compute phase.

        ``ghz_seconds`` is the work per rank expressed in GHz·seconds —
        the time the phase takes on a 1 GHz-equivalent module.  A scalar
        means perfectly balanced work.
        """
        work = np.broadcast_to(np.asarray(ghz_seconds, dtype=float), (self.n_ranks,))
        if np.any(work < 0):
            raise SimulationError("compute work must be non-negative")
        dt = work / self.rates
        if self._noise_frac > 0.0:
            dt = dt * (1.0 + self._noise_frac * self._noise_rng.exponential(size=self.n_ranks))
        self.clock_s = self.clock_s + dt
        self._compute_s = self._compute_s + dt

    def elapse(self, seconds: np.ndarray | float) -> None:
        """Advance each rank by frequency-*insensitive* time (memory stalls,
        I/O): the (1 − κ) part of a partially CPU-bound phase."""
        dt = np.broadcast_to(np.asarray(seconds, dtype=float), (self.n_ranks,))
        if np.any(dt < 0):
            raise SimulationError("elapsed time must be non-negative")
        self.clock_s = self.clock_s + dt
        self._compute_s = self._compute_s + dt

    def advance_local(self, dt_seconds: np.ndarray | float) -> None:
        """Advance each rank by precomputed local time (fast-path entry).

        Semantically a fused ``compute`` + ``elapse``: ``dt_seconds`` is
        the per-rank local time of one or more communication-free
        phases, already divided by the rank rates.  Accounted as compute
        time, like both constituents.
        """
        dt = np.broadcast_to(np.asarray(dt_seconds, dtype=float), (self.n_ranks,))
        if np.any(dt < 0):
            raise SimulationError("local time must be non-negative")
        self.clock_s = self.clock_s + dt
        self._compute_s = self._compute_s + dt

    # -- fast-path state access ------------------------------------------------

    def state(self) -> MachineState:
        """Copy of the four per-rank accumulators (fast-path snapshots)."""
        return MachineState(
            clock_s=self.clock_s.copy(),
            compute_s=self._compute_s.copy(),
            wait_s=self._wait_s.copy(),
            comm_s=self._comm_s.copy(),
        )

    def fast_forward(self, delta: MachineState, repeats: int) -> None:
        """Apply ``repeats`` copies of a per-iteration state increment.

        The whole-fleet shortcut behind the vectorised fast path: once
        an iterated superstep's increments are stationary (every rank
        gains the same clock/compute/wait/comm per iteration), the
        remaining iterations collapse to one multiply-add per array.
        """
        if repeats < 0:
            raise SimulationError("repeats must be non-negative")
        if repeats == 0:
            return
        self.clock_s = self.clock_s + repeats * delta.clock_s
        self._compute_s = self._compute_s + repeats * delta.compute_s
        self._wait_s = self._wait_s + repeats * delta.wait_s
        self._comm_s = self._comm_s + repeats * delta.comm_s

    def barrier(self) -> None:
        """Global synchronisation: everyone waits for the slowest rank."""
        self._sync_to(np.full(self.n_ranks, self.clock_s.max()), 0.0, "barrier")

    def allreduce(self, message_bytes: float = 8.0) -> None:
        """Synchronising reduction: barrier semantics plus tree cost.

        Cost model: a reduce-then-broadcast binary tree — ⌈log₂ P⌉
        latency hops each way plus two payload traversals.
        """
        hops = max(1, int(np.ceil(np.log2(max(self.n_ranks, 2)))))
        cost = 2 * (
            hops * self.latency_s + message_bytes / (self.bandwidth_gbps * 1e9)
        )
        self._sync_to(np.full(self.n_ranks, self.clock_s.max()), cost, "allreduce")

    def sendrecv(self, neighbors: np.ndarray, message_bytes: float = 0.0) -> None:
        """Halo exchange: each rank waits for its neighbours.

        ``neighbors`` has shape ``(n_ranks, k)``; entry ``[r, j]`` is the
        j-th partner of rank r.  The exchange completes for rank r when r
        and all partners have entered it.  ``message_bytes`` is the halo
        size *per neighbour*; each rank pays one latency plus k
        transfers.
        """
        nb = np.asarray(neighbors)
        if nb.ndim != 2 or nb.shape[0] != self.n_ranks:
            raise SimulationError(
                f"neighbors must have shape (n_ranks, k); got {nb.shape}"
            )
        if nb.size and (nb.min() < 0 or nb.max() >= self.n_ranks):
            raise SimulationError("neighbor indices out of range")
        ready = np.maximum(self.clock_s, self.clock_s[nb].max(axis=1))
        self._sync_to(
            ready, self._transfer_cost(message_bytes * nb.shape[1]), "sendrecv"
        )

    def _sync_to(
        self, ready_s: np.ndarray, transfer_cost_s: float, op: str
    ) -> None:
        wait = ready_s - self.clock_s
        self._wait_s = self._wait_s + wait
        self._comm_s = self._comm_s + transfer_cost_s
        self.clock_s = ready_s + transfer_cost_s
        if self.observer is not None:
            self.observer.on_sync(op, self.clock_s, wait)

    # -- results ---------------------------------------------------------------

    def trace(self) -> RankTrace:
        """Snapshot the per-rank timing accumulated so far."""
        return RankTrace(
            total_s=self.clock_s.copy(),
            compute_s=self._compute_s.copy(),
            wait_s=self._wait_s.copy(),
            comm_s=self._comm_s.copy(),
        )
