"""Per-rank timing records produced by the BSP machine."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.stats import worst_case_variation

__all__ = ["RankTrace"]


@dataclass(frozen=True)
class RankTrace:
    """Timing of one simulated application run, per MPI rank.

    Attributes
    ----------
    total_s:
        Wall-clock completion time of each rank (application exit is the
        max across ranks for a synchronised code).
    compute_s:
        Time each rank spent computing.
    wait_s:
        Time each rank spent blocked in any MPI operation — the paper's
        "cumulative time spent ... in MPI_Sendrecv" (Fig 3) when the only
        communication is the halo exchange.
    comm_s:
        Unavoidable transfer cost (latency/bandwidth), identical work on
        every rank; excluded from ``wait_s``.
    """

    total_s: np.ndarray
    compute_s: np.ndarray
    wait_s: np.ndarray
    comm_s: np.ndarray

    @property
    def n_ranks(self) -> int:
        """Number of ranks traced."""
        return int(self.total_s.shape[0])

    @property
    def makespan_s(self) -> float:
        """Application completion time (slowest rank)."""
        return float(self.total_s.max())

    @property
    def vt(self) -> float:
        """Worst-case execution-time variation across ranks (paper's Vt)."""
        return worst_case_variation(self.total_s)

    def wait_vt(self, floor_s: float = 1e-3) -> float:
        """Worst-case variation of per-rank MPI wait time.

        The paper notes Fig 3's Vt values "are very high because for one
        process, the MPI_Sendrecv overhead is very small"; a floor keeps
        the ratio defined when the slowest rank waits ~0 s.
        """
        return worst_case_variation(np.maximum(self.wait_s, floor_s))
