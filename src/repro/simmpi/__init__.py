"""Vectorised bulk-synchronous SPMD application simulator.

The paper's performance phenomena are *timing* phenomena: per-rank
compute speed follows module frequency, and synchronising communication
(MPI_Sendrecv halo exchanges, allreduces, barriers) propagates straggler
delay while accumulating wait time on the fast ranks.  This subpackage
simulates exactly that:

* :mod:`repro.simmpi.machine` — :class:`BspMachine`, a per-rank virtual
  clock with ``compute`` / ``barrier`` / ``allreduce`` / ``sendrecv``
  operations, all vectorised over ranks.
* :mod:`repro.simmpi.tracing` — :class:`RankTrace`, the per-rank timing
  record (total, compute, and MPI wait time, the quantity plotted in
  Fig 3 and Fig 8(ii)).
* :mod:`repro.simmpi.eventsim` — the general path: an event-driven
  simulator with true point-to-point matching, blocking receives and
  deadlock detection, for programs that are not bulk-synchronous.  The
  two paths cross-validate each other in the test suite.
* :mod:`repro.simmpi.fastpath` — the fleet-scale fast path: a vector-op
  program IR executed as whole-fleet array operations with steady-state
  fast-forwarding, plus the lowering onto the event-driven machine that
  the differential equivalence suite verifies against.
"""

from repro.simmpi.eventsim import (
    Allreduce,
    Barrier,
    Compute,
    Elapse,
    EventDrivenMachine,
    Recv,
    Send,
)
from repro.simmpi.fastpath import (
    BspProgram,
    VAllreduce,
    VBarrier,
    VCompute,
    VElapse,
    VLoop,
    VSendrecv,
    is_bsp_expressible,
    run_event,
    run_fast,
    simulate_app,
)
from repro.simmpi.machine import BspMachine, MachineState
from repro.simmpi.tracing import RankTrace

__all__ = [
    "BspMachine",
    "MachineState",
    "RankTrace",
    "EventDrivenMachine",
    "Compute",
    "Elapse",
    "Send",
    "Recv",
    "Barrier",
    "Allreduce",
    "BspProgram",
    "VCompute",
    "VElapse",
    "VBarrier",
    "VAllreduce",
    "VSendrecv",
    "VLoop",
    "run_fast",
    "run_event",
    "simulate_app",
    "is_bsp_expressible",
]
