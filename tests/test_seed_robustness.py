"""Seed-robustness: the reproduction's conclusions are not seed luck.

Every published number uses seed 2015; these tests re-run the key
qualitative checks at other seeds (reduced scale for speed) and assert
the *conclusions* — not the exact values — hold.
"""

import pytest

from repro.apps.registry import get_app
from repro.cluster.configs import build_system
from repro.core.budget import classify_constraint
from repro.core.pvt import generate_pvt
from repro.core.runner import run_budgeted
from repro.experiments.table4 import _true_model
from repro.util.stats import worst_case_variation

SEEDS = (7, 1234, 987654)
N = 512


@pytest.fixture(scope="module", params=SEEDS)
def system(request):
    return build_system("ha8k", n_modules=N, seed=request.param)


@pytest.fixture(scope="module")
def pvt(system):
    return generate_pvt(system)


class TestVariationBands:
    def test_module_vp_band(self, system):
        app = get_app("dgemm")
        power = system.modules.module_power(system.arch.fmax, app.signature)
        assert 1.15 <= worst_case_variation(power) <= 1.5  # paper: 1.2-1.5

    def test_dram_vp_band(self, system):
        app = get_app("dgemm")
        dram = system.modules.dram_power(system.arch.fmax, app.signature)
        assert 2.0 <= worst_case_variation(dram) <= 3.6  # paper: ~2.8


class TestTable4Robust:
    def test_matrix_matches_paper(self, system):
        from repro.experiments.common import CM_GRID_W, PAPER_TABLE4

        for name, row in PAPER_TABLE4.items():
            model = _true_model(system, get_app(name))
            for cm in CM_GRID_W:
                assert classify_constraint(model, cm * N) == row[cm], (
                    system.rng,
                    name,
                    cm,
                )


class TestSchemeOrderingRobust:
    @pytest.mark.parametrize("app_name,cm", [("bt", 50), ("dgemm", 70), ("mhd", 60)])
    def test_variation_aware_wins(self, system, pvt, app_name, cm):
        app = get_app(app_name)
        budget = float(cm) * N
        naive = run_budgeted(system, app, "naive", budget, pvt=pvt, n_iters=10)
        pc = run_budgeted(system, app, "pc", budget, pvt=pvt, n_iters=10)
        vafs = run_budgeted(system, app, "vafs", budget, pvt=pvt, n_iters=10)
        assert pc.makespan_s < naive.makespan_s
        assert vafs.makespan_s < pc.makespan_s
        assert vafs.speedup_over(naive) > 1.5  # tight budgets: large gains

    def test_naive_stream_violates(self, system, pvt):
        r = run_budgeted(
            system, get_app("stream"), "naive", 85.0 * N, pvt=pvt, n_iters=3
        )
        assert not r.within_budget

    def test_vafs_stream_adheres(self, system, pvt):
        r = run_budgeted(
            system, get_app("stream"), "vafs", 85.0 * N, pvt=pvt, n_iters=3
        )
        assert r.within_budget
