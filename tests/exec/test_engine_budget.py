"""Composition proof for the process-wide CPU budget.

``ExperimentEngine(jobs>1)`` worker pools, the process-sharded
simulation executor, and inner tile threads all draw worker counts from
the same :func:`~repro.util.topology.cpu_budget` / effective-affinity
plumbing, so composed pools partition cores instead of oversubscribing.
The audit surface is the placement gauges the engine records
(``engine.cpu_budget.total`` / ``engine.pool.workers`` /
``engine.pool.cpus_granted``): granted CPUs never exceed the budget, on
any machine, for any composition — the acceptance criterion of the
NUMA-locality change.
"""

import os

import pytest

import repro.telemetry as telemetry
from repro.exec import ExperimentEngine, RunKey, ShardSpec
from repro.util.topology import cpu_budget, effective_cpu_count, reset_topology


@pytest.fixture
def fresh_telemetry():
    telemetry.enable()
    yield
    telemetry.disable()


def _sweep():
    """Two batched groups (distinct fleet sizes), two keys each — enough
    tasks that ``jobs=2`` genuinely fans out over the engine pool."""
    from repro.experiments.common import DEFAULT_SEED

    return [
        RunKey(
            system="ha8k", n_modules=n, seed=DEFAULT_SEED, app="bt",
            scheme="vafsor", budget_w=cm * n, n_iters=2,
        )
        for n in (24, 32)
        for cm in (70.0, 80.0)
    ]


class TestComposedPoolsRespectBudget:
    def test_engine_jobs_times_procshard_stays_inside_budget(
        self, fresh_telemetry, monkeypatch
    ):
        """The acceptance composition: ``jobs=2`` engine pool ×
        ``--shard-mode=processes`` × pinned workers.  The distinct CPUs
        the engine grants can never exceed the budget total."""
        monkeypatch.delenv("REPRO_PROCSHARD_PIN", raising=False)
        engine = ExperimentEngine(
            jobs=2,
            pin=True,
            shard=ShardSpec(shard_ranks=13, shard_workers=2,
                            mode="processes"),
        )
        engine.submit_batched_sweep(_sweep())
        snap = telemetry.snapshot()
        assert snap is not None
        assert snap["engine.cpu_budget.total"] == cpu_budget().total
        assert snap["engine.pool.workers"] == 2
        assert (
            snap["engine.pool.cpus_granted"] <= snap["engine.cpu_budget.total"]
        )

    def test_unpinned_pool_still_records_gauges(self, fresh_telemetry):
        engine = ExperimentEngine(jobs=2, pin=False)
        engine.map(abs, [-1, 2, -3, 4])
        snap = telemetry.snapshot()
        assert snap["engine.pool.workers"] == 2
        assert (
            snap["engine.pool.cpus_granted"] <= snap["engine.cpu_budget.total"]
        )

    def test_lease_released_after_sweep(self, fresh_telemetry):
        reset_topology()
        budget = cpu_budget()
        before = budget.n_leases
        engine = ExperimentEngine(jobs=2, pin=True)
        engine.map(abs, [-1, 2, -3])
        assert budget.n_leases == before
        assert budget.claimed_cpus == 0

    def test_sequential_engine_claims_nothing(self, fresh_telemetry):
        reset_topology()
        engine = ExperimentEngine(jobs=1)
        engine.map(abs, [-1, 2])
        assert cpu_budget().n_leases == 0


class TestAffinityDerivedDefaults:
    def test_jobs_zero_resolves_to_effective_cpus(self):
        assert ExperimentEngine(jobs=0).jobs == effective_cpu_count()
        assert ExperimentEngine(jobs=None).jobs == effective_cpu_count()

    def test_explicit_jobs_preserved(self):
        assert ExperimentEngine(jobs=3).jobs == 3
        assert ExperimentEngine(jobs=-2).jobs == 1

    def test_pin_resolution_rules(self):
        has_affinity = hasattr(os, "sched_setaffinity")
        auto = ExperimentEngine(jobs=4)
        assert auto._resolve_pin(4) == has_affinity
        assert ExperimentEngine(jobs=4, pin=False)._resolve_pin(4) is False
        # A sequential pool never pins under auto.
        assert ExperimentEngine(jobs=1)._resolve_pin(1) is False

    def test_loadgen_default_concurrency_is_affinity_derived(self):
        from repro.service.loadgen import _default_concurrency

        expected = max(1, min(4, 2 * effective_cpu_count()))
        assert _default_concurrency() == expected
