"""Telemetry must observe, never perturb.

The acceptance contract for the telemetry subsystem: executing the same
:class:`RunKey` with telemetry enabled and disabled produces
bit-identical results — spans, metrics, timelines and run-array capture
are pure observation.  Verified differentially across schemes, both
simulator routes (the vectorised fast path and the event-driven
fallback), and the managed engine path that scopes telemetry by run key.
"""

import numpy as np
import pytest

import repro.telemetry as telemetry
from repro.exec import RunKey, execute_key
from repro.experiments.common import DEFAULT_SEED

N_MODULES = 48
N_ITERS = 4

KEYS = [
    # Fast-path route (noisy=False is implied by scheme runs here being
    # deterministic BSP codes) across actuation kinds + uncapped.
    RunKey(system="ha8k", n_modules=N_MODULES, seed=DEFAULT_SEED,
           app="bt", scheme="naive", budget_w=60.0 * N_MODULES, n_iters=N_ITERS),
    RunKey(system="ha8k", n_modules=N_MODULES, seed=DEFAULT_SEED,
           app="bt", scheme="vafsor", budget_w=60.0 * N_MODULES, n_iters=N_ITERS),
    RunKey(system="ha8k", n_modules=N_MODULES, seed=DEFAULT_SEED,
           app="mhd", scheme="vapcor", budget_w=80.0 * N_MODULES, n_iters=N_ITERS),
    RunKey(system="ha8k", n_modules=N_MODULES, seed=DEFAULT_SEED,
           app="bt", scheme=None, budget_w=None, n_iters=N_ITERS),
]


def _flatten(result) -> list[np.ndarray]:
    arrays = [
        result.effective_freq_ghz,
        result.cpu_power_w,
        result.dram_power_w,
        result.cap_met,
        result.trace.total_s,
        result.trace.compute_s,
        result.trace.wait_s,
        result.trace.comm_s,
    ]
    if result.solution is not None:
        arrays += [
            result.solution.pmodule_w,
            result.solution.pcpu_w,
            np.array([result.solution.alpha, result.solution.freq_ghz]),
        ]
    return arrays


@pytest.fixture(autouse=True)
def _telemetry_off_before_and_after():
    telemetry.disable()
    yield
    telemetry.disable()


class TestTelemetryIsPureObservation:
    @pytest.mark.parametrize("key", KEYS, ids=lambda k: f"{k.app}-{k.scheme}")
    def test_engine_results_bit_identical_with_telemetry(self, key):
        baseline = execute_key(key)

        telemetry.enable()
        traced = execute_key(key)
        collector = telemetry.disable()

        for got, want in zip(_flatten(traced), _flatten(baseline)):
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)

        # ...and telemetry actually observed the run, scoped to its key.
        assert collector.n_spans > 0
        digest12 = key.digest()[:12]
        assert digest12 in collector.runs()
        assert all(s.run == digest12 for s in collector.spans)
        assert collector.run_labels[digest12] == key.describe()

    def test_budgeted_run_records_expected_shape(self):
        from repro.exec import ExperimentEngine

        key = KEYS[1]  # vafsor: fs actuation through the fast path
        telemetry.enable()
        ExperimentEngine().run(key)
        c = telemetry.disable()

        names = {s.name for s in c.spans}
        assert {"engine.execute", "run.budgeted", "run.plan", "run.actuate",
                "run.simulate", "scheme.allocate", "scheme.build_pmt",
                "solve_alpha", "sim.run_fast"} <= names
        assert c.metrics.counter("run.budgeted").value == 1
        assert c.metrics.counter("sim.route.fast").value == 1
        assert c.metrics.counter("engine.exec").value == 1
        # One fast-path timeline, and the runner's per-module capture.
        assert [t.kind for t in c.timelines] == ["fastpath"]
        run_rec = c.run_arrays[0]
        assert run_rec.name == "run"
        assert run_rec.arrays["module_power_w"].shape == (N_MODULES,)
        assert run_rec.arrays["effective_freq_ghz"].shape == (N_MODULES,)

    def test_event_driven_route_identical_and_observed(self):
        # A pipeline-comm app is the one kind that must run on the
        # event-driven machine; telemetry must be inert there too.
        from repro.apps.base import AppModel, CommSpec, PowerSignature
        from repro.simmpi.fastpath import simulate_app

        app = AppModel(
            name="pipe",
            signature=PowerSignature(0.5, 0.5),
            cpu_bound_fraction=1.0,
            iter_seconds_fmax=0.5,
            default_iters=10,
            comm=CommSpec(kind="pipeline"),
        )
        rates = np.full(6, 2.0)
        rates[0] = 1.0

        baseline = simulate_app(app, rates, 2.0, n_iters=10)
        telemetry.enable()
        traced = simulate_app(app, rates, 2.0, n_iters=10)
        c = telemetry.disable()

        for field in ("total_s", "compute_s", "wait_s", "comm_s"):
            assert np.array_equal(getattr(traced, field), getattr(baseline, field))
        assert c.metrics.counter("sim.route.event").value == 1
        assert [t.kind for t in c.timelines] == ["eventsim"]
        assert c.timelines[0].n_events > 0
