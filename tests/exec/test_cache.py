"""Cache-key stability and result serialisation round-trips.

The contract under test: a :class:`RunKey` digest changes *iff* a
run-relevant input changes — never for presentation fields, never
spuriously — and a cached :class:`RunResult` round-trips bit-identically
through the on-disk NPZ format.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, InfeasibleBudgetError
from repro.exec import ResultCache, RunKey, execute_key
from repro.exec.cache import payload_to_result, result_to_payload

# -- RunKey strategies --------------------------------------------------------

# Budgeted keys only (scheme and budget set together); floats are drawn
# from finite, positive ranges the runner actually accepts.
run_keys = st.builds(
    RunKey,
    system=st.sampled_from(["ha8k", "cab", "teller"]),
    n_modules=st.integers(min_value=1, max_value=4096),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    app=st.sampled_from(["bt", "sp", "dgemm", "stream", "mhd", "mvmc"]),
    scheme=st.sampled_from(["naive", "pc", "vapc", "vafs", "vapcor", "vafsor"]),
    budget_w=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    n_iters=st.one_of(st.none(), st.integers(min_value=1, max_value=100)),
    noisy=st.booleans(),
    fs_guardband_frac=st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
    test_module=st.integers(min_value=0, max_value=64),
    app_overrides=st.one_of(
        st.just(()),
        st.just((("residual_sigma_dyn", 0.05),)),
    ),
)

#: Field -> a replacement value guaranteed to differ from any generated one.
_PERTURBATIONS = {
    "system": "vulcan",
    "n_modules": 5000,
    "seed": -1,
    "app": "ep",
    "scheme": "fs-oracle-perturbed",
    "budget_w": 2e6,
    "n_iters": 101,
    "noisy": None,  # toggled below
    "fs_guardband_frac": 0.33,
    "test_module": 65,
    "turbo": None,  # toggled below
    "arch_base": "ivy-bridge-e5-2697v2",
    "arch_overrides": (("variation.sigma_leak", 0.42),),
    "app_overrides": (("residual_sigma_dram", 0.42),),
    "procs_per_node": 7,
    "meter_kind": "emon",
}


class TestRunKeyDigest:
    @settings(max_examples=50, deadline=None)
    @given(key=run_keys)
    def test_digest_is_deterministic(self, key):
        clone = dataclasses.replace(key)
        assert key.digest() == clone.digest()

    @settings(max_examples=50, deadline=None)
    @given(key=run_keys, field=st.sampled_from(sorted(_PERTURBATIONS)))
    def test_digest_changes_iff_an_input_changes(self, key, field):
        value = _PERTURBATIONS[field]
        if value is None:  # booleans: flip
            value = not getattr(key, field)
        perturbed = dataclasses.replace(key, **{field: value})
        assert getattr(perturbed, field) != getattr(key, field)
        assert perturbed.digest() != key.digest()

    @settings(max_examples=25, deadline=None)
    @given(key=run_keys, label=st.text(max_size=20))
    def test_label_never_changes_the_digest(self, key, label):
        assert dataclasses.replace(key, label=label).digest() == key.digest()

    @settings(max_examples=25, deadline=None)
    @given(a=run_keys, b=run_keys)
    def test_equal_keys_iff_equal_digests(self, a, b):
        assert (a == b) == (a.digest() == b.digest())

    def test_uncapped_key(self):
        key = RunKey(
            system="ha8k", n_modules=8, seed=1, app="bt",
            scheme=None, budget_w=None,
        )
        assert "uncapped" in key.describe()

    @settings(max_examples=50, deadline=None)
    @given(key=run_keys)
    def test_numpy_scalar_fields_hash_like_python_scalars(self, key):
        """The scalar *type* an experiment computed a field with must
        never change the cache address (canonical-bytes hashing)."""
        promoted = dataclasses.replace(
            key,
            n_modules=np.int64(key.n_modules),
            seed=np.int64(key.seed),
            budget_w=np.float64(key.budget_w),
            fs_guardband_frac=np.float64(key.fs_guardband_frac),
        )
        assert promoted.digest() == key.digest()

    def test_digest_pinned(self):
        """Known digests at CACHE_SCHEMA_VERSION 2.

        These pins make the canonical encoding part of the public
        contract: any change to field canonicalisation, float byte
        encoding, JSON layout, or the schema version shows up here as a
        different address — i.e. a silently cold cache.
        """
        budgeted = RunKey(
            system="ha8k", n_modules=1920, seed=2015, app="bt",
            scheme="vafs", budget_w=96000.0, n_iters=None,
        )
        assert budgeted.digest() == (
            "0a07390644a7cdb3c28e3b62054151c2809eb8a46d56f2a8c924cd257804d361"
        )
        uncapped = RunKey(
            system="ha8k", n_modules=1920, seed=2015, app="bt",
            scheme=None, budget_w=None,
        )
        assert uncapped.digest() == (
            "5b90300c953fcaca96850cda6715021c948f37e9a81912bd7e755bf34bac94c6"
        )

    def test_negative_zero_collapses(self):
        """-0.0 == 0.0, so the digests must coincide too."""
        a = RunKey(
            system="ha8k", n_modules=8, seed=1, app="bt",
            scheme="vafs", budget_w=800.0, fs_guardband_frac=0.0,
        )
        b = dataclasses.replace(a, fs_guardband_frac=-0.0)
        assert a == b
        assert a.digest() == b.digest()

    def test_half_specified_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            RunKey(
                system="ha8k", n_modules=8, seed=1, app="bt",
                scheme="vafs", budget_w=None,
            )
        with pytest.raises(ConfigurationError):
            RunKey(
                system="ha8k", n_modules=8, seed=1, app="bt",
                scheme=None, budget_w=100.0,
            )


# -- serialisation round-trip -------------------------------------------------

def _small_key(**over):
    base = dict(
        system="ha8k", n_modules=24, seed=2015, app="bt",
        scheme="vafs", budget_w=55.0 * 24, n_iters=4,
    )
    base.update(over)
    return RunKey(**base)


def _assert_results_identical(a, b):
    assert a.app_name == b.app_name
    assert a.scheme_name == b.scheme_name
    assert a.budget_w == b.budget_w
    for f in ("effective_freq_ghz", "cpu_power_w", "dram_power_w", "cap_met"):
        got, want = getattr(a, f), getattr(b, f)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)
    for f in ("total_s", "compute_s", "wait_s", "comm_s"):
        assert np.array_equal(getattr(a.trace, f), getattr(b.trace, f))
    if b.solution is None:
        assert a.solution is None
    else:
        for f in ("alpha", "raw_alpha", "constrained", "freq_ghz", "budget_w"):
            assert getattr(a.solution, f) == getattr(b.solution, f)
        for f in ("pmodule_w", "pcpu_w", "pdram_w"):
            assert np.array_equal(getattr(a.solution, f), getattr(b.solution, f))


class TestSerialization:
    def test_payload_round_trip_budgeted(self):
        result = execute_key(_small_key())
        meta, arrays = result_to_payload(result)
        _assert_results_identical(payload_to_result(meta, arrays), result)

    def test_payload_round_trip_uncapped(self):
        result = execute_key(_small_key(scheme=None, budget_w=None))
        assert result.solution is None
        meta, arrays = result_to_payload(result)
        _assert_results_identical(payload_to_result(meta, arrays), result)

    def test_disk_round_trip_is_bit_identical(self, tmp_path):
        key = _small_key()
        result = execute_key(key)
        cache = ResultCache(tmp_path)
        assert cache.get(key) is None
        cache.put(key, result)
        assert key in cache
        assert len(cache) == 1
        _assert_results_identical(cache.get(key), result)

    def test_infeasible_budget_is_cached_and_reraised(self, tmp_path):
        key = _small_key(budget_w=1.0)  # far below the fmin floor
        cache = ResultCache(tmp_path)
        with pytest.raises(InfeasibleBudgetError) as excinfo:
            execute_key(key)
        cache.put_infeasible(key, excinfo.value)
        with pytest.raises(InfeasibleBudgetError) as cached:
            cache.get(key)
        assert cached.value.budget_w == excinfo.value.budget_w
        assert cached.value.floor_w == excinfo.value.floor_w

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        key = _small_key()
        cache = ResultCache(tmp_path)
        cache.put(key, execute_key(key))
        (tmp_path / f"{key.digest()}.npz").write_bytes(b"not an npz file")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_small_key(), execute_key(_small_key()))
        assert cache.clear() == 1
        assert len(cache) == 0
