"""Differential proof for the config-batched sweep path.

:meth:`ExperimentEngine.submit_batched_sweep` groups pending keys that
share a system/fleet/app and executes each group as one vectorised pass
(with ``jobs > 1``, fleets ship to workers once through shared memory).
Everything observable must match the per-key path bit-for-bit: results,
cached NPZ payloads, key digests, and infeasible semantics.
"""

import itertools

import numpy as np
import pytest

from repro.apps import get_app
from repro.core.runner import run_budgeted, run_budgeted_batched
from repro.errors import InfeasibleBudgetError
from repro.exec import (
    ExperimentEngine,
    RunKey,
    attach_fleet,
    destroy_fleet,
    execute_key,
    export_fleet,
    fleet_pvt,
)
from repro.exec.engine import _group_signature, _pvt_for, _spec, _system_for
from repro.experiments.common import DEFAULT_SEED

pytestmark = pytest.mark.slow

N_MODULES = 96
N_ITERS = 5

#: Two apps x six schemes x two budgets, plus an uncapped key: exercises
#: grouping (four batchable groups), the singleton fallback, and scheme
#: diversity (pc and fs actuation) inside each group.
SWEEP = [
    RunKey(
        system="ha8k", n_modules=N_MODULES, seed=DEFAULT_SEED,
        app=app, scheme=scheme, budget_w=cm * N_MODULES, n_iters=N_ITERS,
    )
    for app, cms in (("bt", (50.0, 70.0)), ("stream", (80.0, 100.0)))
    for cm in cms
    for scheme in ("naive", "pc", "vapcor", "vapc", "vafsor", "vafs")
] + [
    RunKey(
        system="ha8k", n_modules=N_MODULES, seed=DEFAULT_SEED,
        app="bt", scheme=None, budget_w=None, n_iters=N_ITERS,
    )
]


def _flatten(result) -> list[np.ndarray]:
    arrays = [
        result.effective_freq_ghz,
        result.cpu_power_w,
        result.dram_power_w,
        result.cap_met,
        result.trace.total_s,
        result.trace.compute_s,
        result.trace.wait_s,
        result.trace.comm_s,
    ]
    if result.solution is not None:
        arrays += [
            result.solution.pmodule_w,
            result.solution.pcpu_w,
            result.solution.pdram_w,
            np.array([result.solution.alpha, result.solution.freq_ghz]),
        ]
    return arrays


def _assert_sweeps_identical(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        for ga, wa in zip(_flatten(g), _flatten(w)):
            assert ga.dtype == wa.dtype
            assert np.array_equal(ga, wa)


@pytest.fixture(scope="module")
def sequential_reference():
    """Ground truth: every key executed per-key, in-process, uncached."""
    return [execute_key(k) for k in SWEEP]


class TestBatchedBitIdentity:
    def test_batched_inprocess_equals_sequential(self, sequential_reference):
        engine = ExperimentEngine(jobs=1, batch=True)
        results = engine.submit_sweep(SWEEP)
        _assert_sweeps_identical(results, sequential_reference)
        assert engine.stats.executed == len(SWEEP)
        # 2 apps x 2 budgets share (system, fleet, app) per app: the 24
        # budgeted keys land in 2 groups of 12; the uncapped key falls
        # back to the per-key path.
        assert engine.stats.n_batches == 2
        assert engine.stats.batched_keys == 24

    def test_batched_pool_shared_memory_equals_sequential(
        self, sequential_reference
    ):
        engine = ExperimentEngine(jobs=4, batch=True)
        results = engine.submit_sweep(SWEEP)
        _assert_sweeps_identical(results, sequential_reference)
        assert engine.stats.executed == len(SWEEP)
        assert engine.stats.batched_keys == 24

    def test_batch_off_restores_per_key_path(self, sequential_reference):
        engine = ExperimentEngine(jobs=1, batch=False)
        results = engine.submit_sweep(SWEEP)
        _assert_sweeps_identical(results, sequential_reference)
        assert engine.stats.n_batches == 0

    def test_cache_payloads_bit_identical_across_paths(self, tmp_path):
        """The acceptance bar: NPZ entries a batched run writes are
        bit-identical to the sequential path's, under unchanged digests."""
        seq_dir, bat_dir = tmp_path / "seq", tmp_path / "bat"
        ExperimentEngine(batch=False, cache_dir=seq_dir).submit_sweep(SWEEP)
        ExperimentEngine(batch=True, cache_dir=bat_dir).submit_sweep(SWEEP)
        names = sorted(p.name for p in seq_dir.glob("*.npz"))
        assert names == sorted(p.name for p in bat_dir.glob("*.npz"))
        assert names == sorted(f"{k.digest()}.npz" for k in SWEEP)
        for name in names:
            with np.load(seq_dir / name, allow_pickle=True) as a, \
                 np.load(bat_dir / name, allow_pickle=True) as b:
                assert sorted(a.files) == sorted(b.files)
                for entry in a.files:
                    assert np.array_equal(a[entry], b[entry]), (name, entry)

    def test_warm_cache_after_batched_write(self, tmp_path, sequential_reference):
        engine = ExperimentEngine(batch=True, cache_dir=tmp_path)
        engine.submit_sweep(SWEEP)
        warm = engine.submit_sweep(SWEEP)
        _assert_sweeps_identical(warm, sequential_reference)
        assert engine.stats.hits == len(SWEEP)
        assert engine.stats.misses == len(SWEEP)


class TestBatchedSemantics:
    def test_infeasible_member_raises_like_sequential(self):
        bad = RunKey(
            system="ha8k", n_modules=N_MODULES, seed=DEFAULT_SEED,
            app="bt", scheme="vafs", budget_w=1.0, n_iters=N_ITERS,
        )
        with pytest.raises(InfeasibleBudgetError):
            ExperimentEngine(batch=True).submit_sweep([SWEEP[0], bad])

    def test_skip_infeasible_yields_none_in_group(self, tmp_path):
        bad = RunKey(
            system="ha8k", n_modules=N_MODULES, seed=DEFAULT_SEED,
            app="bt", scheme="vafs", budget_w=1.0, n_iters=N_ITERS,
        )
        engine = ExperimentEngine(batch=True, cache_dir=tmp_path)
        results = engine.submit_sweep(SWEEP[:6] + [bad], skip_infeasible=True)
        assert all(r is not None for r in results[:6])
        assert results[6] is None
        # Infeasibility is cached through the batched path too.
        again = engine.submit_sweep([bad], skip_infeasible=True)
        assert again == [None]
        assert engine.stats.hits == 1

    def test_group_signature_separates_fleets_and_apps(self):
        # Same system/fleet/app, different scheme and budget: one group.
        assert _group_signature(SWEEP[0]) == _group_signature(SWEEP[6])
        other_app = RunKey(
            system="ha8k", n_modules=N_MODULES, seed=DEFAULT_SEED,
            app="stream", scheme="naive", budget_w=80.0 * N_MODULES,
            n_iters=N_ITERS,
        )
        other_fleet = RunKey(
            system="ha8k", n_modules=N_MODULES * 2, seed=DEFAULT_SEED,
            app="bt", scheme="naive", budget_w=80.0 * N_MODULES,
            n_iters=N_ITERS,
        )
        assert _group_signature(SWEEP[0]) != _group_signature(other_app)
        assert _group_signature(SWEEP[0]) != _group_signature(other_fleet)

    def test_amortized_stats_sum_to_group_wall(self):
        engine = ExperimentEngine(batch=True)
        engine.submit_sweep(SWEEP[:12])
        assert engine.stats.n_batches == 1
        batch = engine.stats.batches[0]
        assert batch.n_keys == 12
        per_key = [r.wall_s for r in engine.stats.records]
        assert sum(per_key) == pytest.approx(batch.wall_s)
        assert "batched dispatch" in engine.stats.format_summary()


class TestActuationDedup:
    def test_shared_ladder_rows_bit_identical_and_independent(self):
        """FS budgets that quantize onto one ladder step share a single
        actuation point and simulated row inside the batched pass; every
        result must still match its own per-config run bitwise, and no
        two results may alias each other's arrays."""
        system = _system_for(_spec(SWEEP[0]))
        app = get_app("bt")
        configs = [
            ("vafsor", cm * N_MODULES) for cm in (55.0, 55.0, 55.2, 68.0)
        ]
        outs = run_budgeted_batched(
            system, app, configs, noisy=False, n_iters=N_ITERS
        )
        # The dedup actually triggered: equal budgets, one ladder step.
        assert outs[0].effective_freq_ghz[0] == outs[1].effective_freq_ghz[0]
        for out, (scheme, budget_w) in zip(outs, configs):
            ref = run_budgeted(
                system, app, scheme, budget_w, noisy=False, n_iters=N_ITERS
            )
            _assert_sweeps_identical([out], [ref])
        for a, b in itertools.combinations(outs, 2):
            for field in ("effective_freq_ghz", "cpu_power_w", "dram_power_w"):
                assert not np.shares_memory(
                    getattr(a, field), getattr(b, field)
                ), field
            assert not np.shares_memory(a.trace.total_s, b.trace.total_s)


class TestSharedFleet:
    def test_export_attach_roundtrip_is_bit_identical(self):
        system = _system_for(_spec(SWEEP[0]))
        handle = export_fleet(system)
        try:
            attached = attach_fleet(handle)
            assert attached.name == system.name
            assert attached.n_modules == system.n_modules
            for field in ("leak", "dyn", "dram", "perf"):
                a = getattr(attached.modules.variation, field)
                w = getattr(system.modules.variation, field)
                assert np.array_equal(a, w), field
                assert not a.flags.writeable
            # The worker-side PVT build reproduces the parent's exactly.
            pvt, want = fleet_pvt(handle), _pvt_for(_spec(SWEEP[0]))
            for col in ("scale_cpu_max", "scale_cpu_min",
                        "scale_dram_max", "scale_dram_min"):
                assert np.array_equal(getattr(pvt, col), getattr(want, col)), col
        finally:
            destroy_fleet(handle)

    def test_destroy_is_idempotent(self):
        system = _system_for(_spec(SWEEP[0]))
        handle = export_fleet(system)
        destroy_fleet(handle)
        destroy_fleet(handle)
