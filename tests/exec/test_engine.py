"""Differential correctness harness for the experiment engine.

The engine's whole value rests on one guarantee: a run's result is a
pure function of its :class:`RunKey`, so parallel fan-out and cached
results can stand in for sequential, freshly computed ones.  These tests
prove it differentially on a fig7-style sweep: sequential-uncached,
``jobs=4``-uncached, cold-cache, and warm-cache executions must produce
bit-identical :class:`RunResult` arrays.
"""

import numpy as np
import pytest

from repro.errors import InfeasibleBudgetError
from repro.exec import ExperimentEngine, RunKey, execute_key, get_engine, reset
from repro.experiments.common import DEFAULT_SEED

pytestmark = pytest.mark.slow

N_MODULES = 96
N_ITERS = 5

#: A representative fig7-style sweep: every scheme on two benchmarks at
#: their tightest Table-4 "X" budgets, plus an uncapped reference.
SWEEP = [
    RunKey(
        system="ha8k", n_modules=N_MODULES, seed=DEFAULT_SEED,
        app=app, scheme=scheme, budget_w=cm * N_MODULES, n_iters=N_ITERS,
    )
    for app, cm in (("bt", 50.0), ("stream", 80.0))
    for scheme in ("naive", "pc", "vapcor", "vapc", "vafsor", "vafs")
] + [
    RunKey(
        system="ha8k", n_modules=N_MODULES, seed=DEFAULT_SEED,
        app="bt", scheme=None, budget_w=None, n_iters=N_ITERS,
    )
]


def _flatten(result) -> list[np.ndarray]:
    arrays = [
        result.effective_freq_ghz,
        result.cpu_power_w,
        result.dram_power_w,
        result.cap_met,
        result.trace.total_s,
        result.trace.compute_s,
        result.trace.wait_s,
        result.trace.comm_s,
    ]
    if result.solution is not None:
        arrays += [
            result.solution.pmodule_w,
            result.solution.pcpu_w,
            result.solution.pdram_w,
            np.array([result.solution.alpha, result.solution.freq_ghz]),
        ]
    return arrays


def _assert_sweeps_identical(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        for ga, wa in zip(_flatten(g), _flatten(w)):
            assert ga.dtype == wa.dtype
            assert np.array_equal(ga, wa)


@pytest.fixture(scope="module")
def sequential_reference():
    """The ground truth: every key executed in-process, in order, no cache."""
    return [execute_key(k) for k in SWEEP]


class TestDifferentialDeterminism:
    def test_parallel_equals_sequential(self, sequential_reference):
        engine = ExperimentEngine(jobs=4)
        results = engine.submit_sweep(SWEEP)
        _assert_sweeps_identical(results, sequential_reference)
        assert engine.stats.executed == len(SWEEP)

    def test_cold_cache_parallel_equals_sequential(
        self, sequential_reference, tmp_path
    ):
        engine = ExperimentEngine(jobs=4, cache_dir=tmp_path)
        cold = engine.submit_sweep(SWEEP)
        _assert_sweeps_identical(cold, sequential_reference)
        assert engine.stats.misses == len(SWEEP)
        assert engine.stats.hits == 0

    def test_warm_cache_equals_sequential(self, sequential_reference, tmp_path):
        engine = ExperimentEngine(jobs=4, cache_dir=tmp_path)
        engine.submit_sweep(SWEEP)
        warm = engine.submit_sweep(SWEEP)
        _assert_sweeps_identical(warm, sequential_reference)
        assert engine.stats.hits == len(SWEEP)

    def test_reversed_order_equals_sequential(self, sequential_reference):
        engine = ExperimentEngine(jobs=4)
        results = engine.submit_sweep(list(reversed(SWEEP)))
        _assert_sweeps_identical(results, list(reversed(sequential_reference)))

    def test_single_run_through_cache(self, sequential_reference, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        first = engine.run(SWEEP[0])
        second = engine.run(SWEEP[0])
        _assert_sweeps_identical([first, second], [sequential_reference[0]] * 2)
        assert engine.stats.hits == 1 and engine.stats.misses == 1


class TestSweepSemantics:
    def test_results_in_input_order(self):
        engine = ExperimentEngine(jobs=4)
        results = engine.submit_sweep(SWEEP)
        for key, result in zip(SWEEP, results):
            assert result.app_name == key.app
            assert result.scheme_name == key.scheme
            assert result.budget_w == key.budget_w

    def test_infeasible_raises_by_default(self):
        bad = RunKey(
            system="ha8k", n_modules=8, seed=1, app="bt",
            scheme="vafs", budget_w=1.0, n_iters=2,
        )
        with pytest.raises(InfeasibleBudgetError):
            ExperimentEngine().submit_sweep([SWEEP[0], bad])

    def test_skip_infeasible_yields_none_in_place(self, tmp_path):
        bad = RunKey(
            system="ha8k", n_modules=8, seed=1, app="bt",
            scheme="vafs", budget_w=1.0, n_iters=2,
        )
        engine = ExperimentEngine(cache_dir=tmp_path)
        results = engine.submit_sweep([SWEEP[0], bad], skip_infeasible=True)
        assert results[0] is not None
        assert results[1] is None
        # The infeasibility itself is cached: the re-sweep answers both
        # slots from disk.
        again = engine.submit_sweep([SWEEP[0], bad], skip_infeasible=True)
        assert again[1] is None
        assert engine.stats.hits == 2

    def test_map_parallel_equals_sequential(self):
        items = list(range(20))
        seq = ExperimentEngine().map(_square, items)
        par = ExperimentEngine(jobs=4).map(_square, items)
        assert seq == par == [i * i for i in items]


def _square(x: int) -> int:
    return x * x


class TestGlobalEngine:
    def test_default_engine_is_sequential_and_cacheless(self):
        reset()
        try:
            engine = get_engine()
            assert engine.jobs == 1
            assert engine.cache is None
            assert get_engine() is engine
        finally:
            reset()
