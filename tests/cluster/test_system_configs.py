"""Tests for System and the Table 2 configurations."""

import numpy as np
import pytest

from repro.cluster.configs import PAPER_STUDY_SIZES, build_system
from repro.cluster.system import System
from repro.errors import CappingUnsupportedError, ConfigurationError
from repro.hardware.microarch import IVY_BRIDGE_E5_2697V2
from repro.measurement.emon import EmonMeter
from repro.measurement.powerinsight import PowerInsightMeter
from repro.measurement.rapl import RaplMeter


class TestBuildSystem:
    def test_ha8k_full_size(self):
        sys = build_system("ha8k")
        assert sys.n_modules == 1920
        assert sys.n_nodes == 960
        assert sys.procs_per_node == 2
        assert sys.arch.name == "ivy-bridge-e5-2697v2"

    def test_cab(self):
        sys = build_system("cab")
        assert sys.n_modules == 2592
        assert not sys.dram_measurable  # BIOS restriction (paper 3.2)
        assert sys.supports_capping

    def test_vulcan(self):
        sys = build_system("vulcan", n_modules=1536)
        assert sys.meter_kind == "emon"
        assert not sys.supports_capping

    def test_teller(self):
        sys = build_system("teller")
        assert sys.n_modules == 104
        assert sys.meter_kind == "powerinsight"
        assert not sys.supports_capping

    def test_paper_study_sizes(self):
        assert PAPER_STUDY_SIZES == {
            "cab": 2386,
            "vulcan": 1536,
            "teller": 64,
            "ha8k": 1920,
        }

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            build_system("summit")

    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            build_system("ha8k", n_modules=0)

    def test_case_insensitive(self):
        assert build_system("HA8K", n_modules=4).name == "ha8k"

    def test_deterministic_by_seed(self):
        a = build_system("ha8k", n_modules=64, seed=7)
        b = build_system("ha8k", n_modules=64, seed=7)
        assert np.array_equal(a.modules.variation.leak, b.modules.variation.leak)

    def test_seed_changes_variation(self):
        a = build_system("ha8k", n_modules=64, seed=7)
        b = build_system("ha8k", n_modules=64, seed=8)
        assert not np.array_equal(a.modules.variation.leak, b.modules.variation.leak)


class TestSystemBehaviour:
    def test_meter_types(self):
        assert isinstance(build_system("ha8k", n_modules=4).meter(), RaplMeter)
        assert isinstance(build_system("teller", n_modules=4).meter(), PowerInsightMeter)
        assert isinstance(
            build_system("vulcan", n_modules=64).meter(), EmonMeter
        )

    def test_cap_controller_on_ha8k(self):
        sys = build_system("ha8k", n_modules=8)
        assert sys.cap_controller() is not None

    def test_cap_controller_rejected_elsewhere(self):
        with pytest.raises(CappingUnsupportedError):
            build_system("vulcan", n_modules=64).cap_controller()

    def test_subset_view(self):
        sys = build_system("ha8k", n_modules=16)
        sub = sys.subset([1, 5, 9])
        assert sub.n_modules == 3
        assert sub.modules.variation.leak[2] == sys.modules.variation.leak[9]

    def test_invalid_meter_kind(self):
        sys = build_system("ha8k", n_modules=4)
        with pytest.raises(ConfigurationError):
            System(
                name="x",
                arch=IVY_BRIDGE_E5_2697V2,
                modules=sys.modules,
                procs_per_node=2,
                meter_kind="ipmi",
                rng=sys.rng,
            )

    def test_ideal_controller_is_noise_free(self):
        sys = build_system("ha8k", n_modules=8)
        from repro.hardware.power_model import PowerSignature

        sig = PowerSignature(0.8, 0.3)
        a = sys.cap_controller(ideal=True).enforce(70.0, sig).effective_freq_ghz
        b = sys.modules.resolve_cpu_cap(np.full(8, 70.0), sig).effective_freq_ghz
        assert np.allclose(a, b)
