"""Tests for synthetic workload generation."""

import numpy as np
import pytest

from repro.cluster.workloads import WorkloadSpec, generate_workload
from repro.errors import ConfigurationError
from repro.util.rng import spawn_rng


def spec(**kw):
    base = dict(
        n_jobs=20, mean_interarrival_s=5.0, min_modules=16, max_modules=128
    )
    base.update(kw)
    return WorkloadSpec(**base)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            spec(n_jobs=0)
        with pytest.raises(ConfigurationError):
            spec(min_modules=0)
        with pytest.raises(ConfigurationError):
            spec(min_modules=200)  # > max
        with pytest.raises(ConfigurationError):
            spec(width_quantum=0)
        with pytest.raises(ConfigurationError):
            spec(apps=("hpl-typo",))
        with pytest.raises(ConfigurationError):
            spec(apps=())


class TestGenerate:
    def test_count_and_fields(self):
        jobs = generate_workload(spec(), spawn_rng(0, "w"))
        assert len(jobs) == 20
        names = {j.name for j in jobs}
        assert len(names) == 20  # unique

    def test_arrivals_sorted(self):
        jobs = generate_workload(spec(), spawn_rng(1, "w"))
        arrivals = [j.arrival_s for j in jobs]
        assert arrivals == sorted(arrivals)

    def test_widths_quantised_and_bounded(self):
        s = spec(width_quantum=8)
        jobs = generate_workload(s, spawn_rng(2, "w"))
        for j in jobs:
            assert j.n_modules % 8 == 0
            assert 8 <= j.n_modules <= s.max_modules

    def test_apps_from_spec(self):
        jobs = generate_workload(spec(apps=("dgemm",)), spawn_rng(3, "w"))
        assert all(j.app.name == "dgemm" for j in jobs)

    def test_deterministic(self):
        a = generate_workload(spec(), spawn_rng(4, "w"))
        b = generate_workload(spec(), spawn_rng(4, "w"))
        assert [(j.name, j.n_modules, j.arrival_s) for j in a] == [
            (j.name, j.n_modules, j.arrival_s) for j in b
        ]

    def test_load_scales_with_interarrival(self):
        fast = generate_workload(spec(mean_interarrival_s=1.0), spawn_rng(5, "w"))
        slow = generate_workload(spec(mean_interarrival_s=50.0), spawn_rng(5, "w"))
        assert fast[-1].arrival_s < slow[-1].arrival_s
