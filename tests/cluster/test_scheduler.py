"""Tests for the job scheduler."""

import numpy as np
import pytest

from repro.cluster.configs import build_system
from repro.cluster.scheduler import JobScheduler
from repro.errors import SchedulerError
from repro.hardware.power_model import PowerSignature


@pytest.fixture
def sched():
    return JobScheduler(build_system("ha8k", n_modules=32))


class TestAllocate:
    def test_contiguous(self, sched):
        a = sched.allocate("j1", 8)
        assert np.array_equal(a.module_ids, np.arange(8))
        assert sched.n_free == 24

    def test_two_jobs_disjoint(self, sched):
        a = sched.allocate("j1", 8)
        b = sched.allocate("j2", 8)
        assert not set(a.module_ids) & set(b.module_ids)

    def test_random_policy_deterministic(self):
        s1 = JobScheduler(build_system("ha8k", n_modules=32, seed=1))
        s2 = JobScheduler(build_system("ha8k", n_modules=32, seed=1))
        a = s1.allocate("j", 8, policy="random")
        b = s2.allocate("j", 8, policy="random")
        assert np.array_equal(a.module_ids, b.module_ids)

    def test_efficient_first_picks_low_power(self, sched):
        a = sched.allocate("j", 4, policy="efficient-first")
        sig = PowerSignature(0.7, 0.5)
        power = sched.system.modules.module_power(sched.system.arch.fmax, sig)
        chosen = set(a.module_ids)
        worst_chosen = max(power[i] for i in chosen)
        best_unchosen = min(
            power[i] for i in range(32) if i not in chosen
        )
        assert worst_chosen <= best_unchosen

    def test_exhaustion(self, sched):
        sched.allocate("j1", 30)
        with pytest.raises(SchedulerError):
            sched.allocate("j2", 4)

    def test_duplicate_job(self, sched):
        sched.allocate("j1", 4)
        with pytest.raises(SchedulerError):
            sched.allocate("j1", 4)

    def test_bad_inputs(self, sched):
        with pytest.raises(SchedulerError):
            sched.allocate("j", 0)
        with pytest.raises(SchedulerError):
            sched.allocate("j", 4, policy="mystery")


class TestRelease:
    def test_release_returns_modules(self, sched):
        sched.allocate("j1", 8)
        sched.release("j1")
        assert sched.n_free == 32
        assert sched.jobs() == []

    def test_release_unknown(self, sched):
        with pytest.raises(SchedulerError):
            sched.release("ghost")

    def test_reallocate_after_release(self, sched):
        sched.allocate("j1", 32)
        sched.release("j1")
        a = sched.allocate("j2", 32)
        assert a.n_modules == 32
