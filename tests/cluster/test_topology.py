"""Tests for rank topologies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.topology import grid_dims, ring_neighbors, torus_neighbors
from repro.errors import ConfigurationError


class TestRing:
    def test_small_ring(self):
        nb = ring_neighbors(4)
        assert nb.shape == (4, 2)
        assert list(nb[0]) == [3, 1]
        assert list(nb[3]) == [2, 0]

    def test_single_rank_self(self):
        nb = ring_neighbors(1)
        assert list(nb[0]) == [0, 0]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            ring_neighbors(0)


class TestGridDims:
    def test_exact_square(self):
        assert grid_dims(16, 2) == (4, 4)

    def test_cube(self):
        assert grid_dims(64, 3) == (4, 4, 4)

    def test_product_preserved(self):
        for n in (1, 2, 6, 30, 64, 100, 1920):
            for d in (1, 2, 3):
                dims = grid_dims(n, d)
                assert int(np.prod(dims)) == n
                assert len(dims) == d

    def test_prime(self):
        assert grid_dims(7, 2) == (7, 1)

    def test_1920_3d_near_cubic(self):
        dims = grid_dims(1920, 3)
        assert int(np.prod(dims)) == 1920
        assert max(dims) / min(dims) <= 3  # near-cubic

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            grid_dims(0, 2)
        with pytest.raises(ConfigurationError):
            grid_dims(4, 0)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=5000), st.integers(min_value=1, max_value=4))
    def test_product_property(self, n, d):
        assert int(np.prod(grid_dims(n, d))) == n


class TestTorus:
    def test_2d_grid_neighbors(self):
        nb = torus_neighbors((2, 3))
        assert nb.shape == (6, 4)
        # rank 0 = (0,0): -row=(1,0)=3, +row=(1,0)=3, -col=(0,2)=2, +col=(0,1)=1
        assert set(nb[0]) == {3, 2, 1}

    def test_symmetry(self):
        # If j is a neighbour of i, then i is a neighbour of j.
        nb = torus_neighbors((4, 4))
        for i in range(16):
            for j in nb[i]:
                assert i in nb[j]

    def test_degenerate_axis_self_neighbor(self):
        nb = torus_neighbors((1, 3))
        assert nb[0, 0] == 0 and nb[0, 1] == 0  # flat axis wraps to self

    def test_3d_shape(self):
        nb = torus_neighbors((2, 2, 2))
        assert nb.shape == (8, 6)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            torus_neighbors(())
        with pytest.raises(ConfigurationError):
            torus_neighbors((0, 2))
