"""Tests for the benchmark application models."""

import numpy as np
import pytest

from repro.apps.base import AppModel, CommSpec
from repro.apps.registry import APPS, get_app, list_apps
from repro.cluster.configs import build_system
from repro.errors import ConfigurationError
from repro.hardware.power_model import PowerSignature

FMAX = 2.7


class TestRegistry:
    def test_all_seven_present(self):
        assert list_apps() == ["bt", "dgemm", "ep", "mhd", "mvmc", "sp", "stream"]

    def test_get_app_variants(self):
        assert get_app("DGEMM").name == "dgemm"
        assert get_app("*STREAM").name == "stream"

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_app("hpl")

    def test_stream_is_pvt_reference(self):
        # *STREAM generates the PVT; its expression residual must be zero.
        s = get_app("stream")
        assert s.residual_sigma_dyn == 0.0
        assert s.residual_sigma_dram == 0.0

    def test_bt_worst_predicted(self):
        # BT has the largest residual (paper: ~10% prediction error).
        bt = get_app("bt")
        for other in APPS.values():
            assert bt.residual_sigma_dyn >= other.residual_sigma_dyn


class TestValidation:
    def _mk(self, **kw):
        base = dict(
            name="t",
            signature=PowerSignature(0.5, 0.5),
            cpu_bound_fraction=0.8,
            iter_seconds_fmax=1.0,
            default_iters=10,
        )
        base.update(kw)
        return AppModel(**base)

    def test_kappa_bounds(self):
        with pytest.raises(ConfigurationError):
            self._mk(cpu_bound_fraction=1.5)

    def test_positive_times(self):
        with pytest.raises(ConfigurationError):
            self._mk(iter_seconds_fmax=0.0)
        with pytest.raises(ConfigurationError):
            self._mk(default_iters=0)

    def test_comm_spec_validation(self):
        with pytest.raises(ConfigurationError):
            CommSpec(kind="gossip")
        with pytest.raises(ConfigurationError):
            CommSpec(kind="neighbor", ndim=0)
        with pytest.raises(ConfigurationError):
            CommSpec(message_bytes=-1.0)

    def test_with_override(self):
        app = self._mk()
        assert app.with_(default_iters=3).default_iters == 3


class TestRun:
    def test_nominal_runtime_matches_iter_seconds(self):
        app = get_app("dgemm")
        trace = app.run(np.full(4, FMAX), FMAX, n_iters=5)
        expected = 5 * app.iter_seconds_fmax
        assert np.allclose(trace.total_s, expected, rtol=1e-6)

    def test_half_speed_cpu_bound_scaling(self):
        app = get_app("dgemm")  # kappa = 0.97
        t_full = app.run(np.full(2, FMAX), FMAX, n_iters=2).makespan_s
        t_half = app.run(np.full(2, FMAX / 2), FMAX, n_iters=2).makespan_s
        expected = t_full * (0.97 * 2.0 + 0.03)
        assert t_half == pytest.approx(expected, rel=1e-6)

    def test_memory_bound_scales_less(self):
        stream, dgemm = get_app("stream"), get_app("dgemm")
        rates = np.full(2, FMAX / 2)
        slow_stream = stream.run(rates, FMAX, n_iters=2).makespan_s / (
            stream.run(np.full(2, FMAX), FMAX, n_iters=2).makespan_s
        )
        slow_dgemm = dgemm.run(rates, FMAX, n_iters=2).makespan_s / (
            dgemm.run(np.full(2, FMAX), FMAX, n_iters=2).makespan_s
        )
        assert slow_stream < slow_dgemm

    def test_dgemm_no_sync_vt_spreads(self):
        app = get_app("dgemm")
        rates = np.linspace(1.5, 2.7, 16)
        trace = app.run(rates, FMAX, n_iters=5)
        assert trace.vt > 1.4
        assert np.allclose(trace.wait_s, 0.0)

    def test_mhd_sync_hides_vt_but_accumulates_wait(self):
        # Paper Fig 2(iii)/Fig 3: MHD Vt ~ 1 under caps, sync time varies.
        app = get_app("mhd")
        rng = np.random.default_rng(0)
        rates = rng.uniform(1.4, 2.2, 64)
        trace = app.run(rates, FMAX, n_iters=60)
        assert trace.vt < 1.05
        slowest = int(np.argmin(rates))
        assert trace.wait_s[slowest] == pytest.approx(trace.wait_s.min())
        assert trace.wait_vt() > 10.0

    def test_mvmc_allreduce_synchronises(self):
        app = get_app("mvmc")
        rates = np.random.default_rng(1).uniform(1.4, 2.2, 32)
        trace = app.run(rates, FMAX, n_iters=20)
        assert trace.vt < 1.01

    def test_ep_final_allreduce_only(self):
        app = get_app("ep")
        rates = np.array([1.5, 2.7])
        trace = app.run(rates, FMAX, n_iters=3)
        # One final sync: both finish together.
        assert trace.total_s[0] == pytest.approx(trace.total_s[1])
        # But fast rank waited once at the end.
        assert trace.wait_s[1] > 0

    def test_work_imbalance(self):
        app = get_app("dgemm")
        trace = app.run(
            np.full(2, FMAX), FMAX, n_iters=2, work_imbalance=np.array([1.0, 2.0])
        )
        assert trace.total_s[1] == pytest.approx(2 * trace.total_s[0])

    def test_work_imbalance_shape_checked(self):
        with pytest.raises(ConfigurationError):
            get_app("dgemm").run(
                np.full(2, FMAX), FMAX, work_imbalance=np.ones(3)
            )

    def test_bad_iters(self):
        with pytest.raises(ConfigurationError):
            get_app("dgemm").run(np.full(2, FMAX), FMAX, n_iters=0)

    def test_neighbor_table(self):
        assert get_app("dgemm").neighbor_table(16) is None
        nb = get_app("mhd").neighbor_table(64)
        assert nb is not None and nb.shape == (64, 6)


class TestSpecialize:
    def test_residual_stable_per_pair(self):
        sys = build_system("ha8k", n_modules=32)
        app = get_app("bt")
        a = app.specialize(sys.modules, sys.rng.rng(f"app-residual/{app.name}"))
        b = app.specialize(sys.modules, sys.rng.rng(f"app-residual/{app.name}"))
        assert np.array_equal(a.variation.dyn, b.variation.dyn)

    def test_leakage_shared_across_apps(self):
        sys = build_system("ha8k", n_modules=32)
        bt = get_app("bt").specialize(sys.modules, sys.rng.rng("app-residual/bt"))
        sp = get_app("sp").specialize(sys.modules, sys.rng.rng("app-residual/sp"))
        assert np.array_equal(bt.variation.leak, sp.variation.leak)
        assert not np.array_equal(bt.variation.dyn, sp.variation.dyn)

    def test_stream_unchanged(self):
        sys = build_system("ha8k", n_modules=32)
        app = get_app("stream")
        view = app.specialize(sys.modules, sys.rng.rng("app-residual/stream"))
        assert np.array_equal(view.variation.dyn, sys.modules.variation.dyn)
        assert np.array_equal(view.variation.dram, sys.modules.variation.dram)


class TestPowerCalibration:
    """App signatures must land in the Table 4 feasibility bands."""

    @pytest.fixture(scope="class")
    def nominal(self):
        from repro.hardware.microarch import IVY_BRIDGE_E5_2697V2
        from repro.hardware.module import ModuleArray
        from repro.hardware.variability import ModuleVariation

        ones = np.ones(1)
        return ModuleArray(
            IVY_BRIDGE_E5_2697V2,
            ModuleVariation(leak=ones, dyn=ones, dram=ones, perf=ones),
        )

    # (app, natural module power band at fmax, floor band at fmin) from
    # Table 4's bullet/check/dash pattern.
    CASES = [
        ("dgemm", (110.0, 120.0), (60.0, 70.0)),
        ("stream", (100.0, 110.0), (70.0, 80.0)),
        ("mhd", (90.0, 100.0), (50.0, 60.0)),
        ("bt", (80.0, 90.0), (40.0, 50.0)),
        ("sp", (80.0, 90.0), (40.0, 50.0)),
        ("mvmc", (80.0, 90.0), (50.0, 60.0)),
    ]

    @pytest.mark.parametrize("name,max_band,min_band", CASES)
    def test_table4_bands(self, nominal, name, max_band, min_band):
        app = get_app(name)
        arch = nominal.arch
        p_max = float(nominal.module_power(arch.fmax, app.signature)[0])
        p_min = float(nominal.module_power(arch.fmin, app.signature)[0])
        assert max_band[0] < p_max <= max_band[1], f"{name} fmax power {p_max}"
        assert min_band[0] < p_min <= min_band[1], f"{name} fmin power {p_min}"

    def test_dgemm_matches_fig2_means(self, nominal):
        app = get_app("dgemm")
        cpu = float(nominal.cpu_power(2.7, app.signature)[0])
        mod = float(nominal.module_power(2.7, app.signature)[0])
        assert cpu == pytest.approx(100.8, abs=2.0)  # paper: 100.8 W
        assert mod == pytest.approx(112.8, abs=2.5)  # paper: 112.8 W

    def test_mhd_matches_fig2_means(self, nominal):
        app = get_app("mhd")
        cpu = float(nominal.cpu_power(2.7, app.signature)[0])
        mod = float(nominal.module_power(2.7, app.signature)[0])
        assert cpu == pytest.approx(83.9, abs=2.0)  # paper: 83.9 W
        assert mod == pytest.approx(96.4, abs=2.5)  # paper: 96.4 W
