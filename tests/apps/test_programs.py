"""Tests for the event-driven program builders."""

import numpy as np
import pytest

from repro.apps.programs import (
    allreduce_program,
    halo_exchange_program,
    master_worker_program,
    pipeline_program,
)
from repro.cluster.topology import ring_neighbors, torus_neighbors
from repro.errors import ConfigurationError
from repro.simmpi.eventsim import EventDrivenMachine
from repro.simmpi.machine import BspMachine


def machine(rates):
    return EventDrivenMachine(
        np.asarray(rates, dtype=float), latency_s=0.0, bandwidth_gbps=1e12
    )


class TestHaloExchange:
    def test_matches_bsp_on_torus(self):
        rng = np.random.default_rng(3)
        rates = rng.uniform(1.0, 2.5, 27)
        nb = torus_neighbors((3, 3, 3))
        prog = halo_exchange_program(nb, ghz_seconds=2.0, n_iters=12)
        t_ev = machine(rates).run(prog)

        bsp = BspMachine(rates, latency_s=0.0, bandwidth_gbps=1e12)
        for _ in range(12):
            bsp.compute(2.0)
            bsp.sendrecv(nb)
        t_bsp = bsp.trace()
        assert np.allclose(t_ev.total_s, t_bsp.total_s)
        assert np.allclose(t_ev.wait_s, t_bsp.wait_s)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            halo_exchange_program(np.zeros(4, dtype=int), ghz_seconds=1.0, n_iters=1)
        with pytest.raises(ConfigurationError):
            halo_exchange_program(ring_neighbors(4), ghz_seconds=1.0, n_iters=0)


class TestAllreduceProgram:
    def test_synchronises(self):
        rates = np.array([1.0, 2.0, 4.0])
        prog = allreduce_program(ghz_seconds=4.0, n_iters=3)
        t = machine(rates).run(prog)
        assert t.total_s.max() == pytest.approx(t.total_s.min())
        assert t.wait_s[0] == pytest.approx(0.0)  # slowest never waits


class TestPipeline:
    def test_fill_and_drain(self):
        # 3 equal stages at rate 1, 5 items of 1 GHz-second each:
        # last stage finishes at (n_stages + n_items - 1) * stage_time.
        prog = pipeline_program(3, ghz_seconds_per_stage=1.0, n_items=5)
        t = machine(np.ones(3)).run(prog)
        assert t.total_s[-1] == pytest.approx(3 + 5 - 1)

    def test_slow_stage_bottlenecks(self):
        rates = np.array([1.0, 0.5, 1.0])  # middle stage half speed
        prog = pipeline_program(3, ghz_seconds_per_stage=1.0, n_items=6)
        t = machine(rates).run(prog)
        # Steady-state throughput is set by the 2 s middle stage.
        assert t.total_s[-1] == pytest.approx(1.0 + 6 * 2.0 + 1.0, rel=0.15)
        # Downstream of the bottleneck accumulates wait.
        assert t.wait_s[2] > t.wait_s[1]

    def test_not_expressible_as_bsp(self):
        # Rank 0 does all its work before rank 2 starts anything —
        # fundamentally different from a superstep structure.
        prog = pipeline_program(2, ghz_seconds_per_stage=1.0, n_items=1)
        t = machine(np.ones(2)).run(prog)
        assert t.total_s[1] == pytest.approx(2.0)
        assert t.wait_s[1] == pytest.approx(1.0)


class TestMasterWorker:
    def test_all_tasks_processed(self):
        prog = master_worker_program(4, task_ghz_seconds=1.0, n_tasks=9)
        t = machine(np.ones(4)).run(prog)
        # 3 workers x 3 tasks each, 1 s per task.
        assert t.compute_s[1:].sum() == pytest.approx(9.0)
        assert t.total_s[0] >= 3.0

    def test_fast_worker_finishes_sooner(self):
        rates = np.array([1.0, 2.0, 1.0])
        prog = master_worker_program(3, task_ghz_seconds=1.0, n_tasks=8)
        t = machine(rates).run(prog)
        assert t.compute_s[1] < t.compute_s[2]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            master_worker_program(1, task_ghz_seconds=1.0, n_tasks=3)
        with pytest.raises(ConfigurationError):
            master_worker_program(3, task_ghz_seconds=1.0, n_tasks=0)
